"""Setuptools shim.

The offline environment ships setuptools 65 without the ``wheel`` package,
so PEP 517 editable builds fail with "invalid command 'bdist_wheel'".
Keeping a classic ``setup.py`` lets ``pip install -e . --no-use-pep517``
(and plain ``pip install -e .`` on newer toolchains) work everywhere.
"""

from setuptools import setup

setup()

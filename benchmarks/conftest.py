"""Shared benchmark configuration.

Every bench regenerates one of the paper's tables or figures, writes
the rendered artifact to ``benchmarks/results/`` and asserts the
*shape* criteria from DESIGN.md §3.  Workload scale can be raised for
higher-fidelity numbers:

    REPRO_BENCH_SCALE=1.0 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.4"))


def write_artifact(name: str, content: str) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(content + "\n")
    return path


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()

"""Table 3 — RegVault relative hardware resource cost over the SoC.

Shape criteria: crypto-engine and CLB each below 5% of the SoC in both
LUTs and FFs, several times smaller than the FPU.
"""

from conftest import write_artifact

from repro.hwcost import (
    clb_cost,
    crypto_engine_cost,
    format_table3,
    fpu_cost,
    table3,
)


def test_table3_shape(benchmark):
    rows = benchmark(table3)
    artifact = format_table3(rows)
    write_artifact("table3_hw_cost.txt", artifact)
    print("\n" + artifact)

    for row in rows:
        assert row.engine_pct < 5.5, "engine must stay below ~5% of SoC"
        if row.clb_pct is not None:
            assert row.clb_pct < 5.0, "CLB must stay below 5% of SoC"
        assert row.fpu_pct > 3 * row.engine_pct, (
            "the FPU must dwarf the RegVault additions"
        )


def test_engine_structure():
    engine = crypto_engine_cost()
    # The 8 x 128-bit key registers alone are 1024 FFs.
    assert engine.ffs >= 1024
    assert engine.luts > 1000  # an unrolled QARMA datapath is not free


def test_clb_scales_with_entries():
    costs = [clb_cost(n).ffs for n in (0, 2, 4, 8, 16)]
    assert costs == sorted(costs)
    assert clb_cost(0).luts == 0
    # Storage dominates: at least entry_bits per entry.
    assert clb_cost(8).ffs >= 8 * 196


def test_fpu_reference_is_fixed():
    fpu = fpu_cost()
    assert fpu.luts == 18_200 and fpu.ffs == 8_100

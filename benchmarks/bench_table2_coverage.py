"""Table 2 — protected kernel data coverage.

Verifies that the built kernel actually implements all six protected
data classes with the tweaks and mechanisms the paper lists, by
inspecting the generated kernel assembly and layouts.
"""

import re

import pytest
from conftest import write_artifact

from repro.kernel import KernelConfig
from repro.kernel.build import build_kernel
from repro.kernel.structs import CRED, MM_STRUCT, SELINUX_STATE


@pytest.fixture(scope="module")
def image():
    return build_kernel(KernelConfig.full())


def _spill_protection_works() -> bool:
    """Sensitive values that spill get encrypted slots (key g)."""
    from repro.compiler import (
        Annotation, Field, Function, FunctionType, I64, IRBuilder, Module,
        StructType,
    )
    from repro.compiler.ir import GlobalVar
    from repro.compiler.pipeline import CompileOptions, compile_module

    module = Module("spilltest")
    secret = module.add_struct(StructType("s", (
        Field("v", I64, Annotation.RAND),
    )))
    module.add_global(GlobalVar("g", secret))
    func = Function("spill_many", FunctionType(I64, ()))
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    base = b.addr_of_global("g")
    # More live sensitive values than registers -> forced spills.
    values = [b.load_field(base, secret, "v") for _ in range(24)]
    total = values[0]
    for value in values[1:]:
        total = b.add(total, value)
    b.ret(total)
    asm = compile_module(module, CompileOptions.full()).asm
    return "cregk" in asm and "crdgk" in asm


def test_table2_coverage(benchmark, image):
    asm = image.kernel_asm
    checks = {
        # Control data.
        "return address (tweak: stack pointer)": (
            "creak ra, ra[7:0], sp" in asm
            and "crdak ra, ra, sp, [7:0]" in asm
        ),
        "function pointer (key b, tweak: storage addr)": (
            re.search(r"crdbk \w+, \w+, \w+, \[7:0\]", asm) is not None
        ),
        # Non-control data.
        "kernel keys (manual, key e)": (
            re.search(r"creek \w+", asm) is not None
            and re.search(r"crdek \w+", asm) is not None
        ),
        "cred struct (annotation, integrity)": (
            image.layout.struct_layout(CRED).slot("uid").size == 8
        ),
        "selinux state (annotation, integrity)": (
            image.layout.struct_layout(SELINUX_STATE)
            .slot("enforcing").size == 8
        ),
        "pgd pointers (key f)": (
            re.search(r"cr[ed]fk \w+", asm) is not None
        ),
        # The two techniques.
        "chain-based interrupt protection (key c)": (
            "creck" in asm and "crdck" in asm
        ),
        "spill protection (key g)": _spill_protection_works(),
    }
    artifact_lines = ["Table 2 — protected kernel data coverage", ""]
    for name, present in checks.items():
        artifact_lines.append(f"  [{'x' if present else ' '}] {name}")
        assert present, f"missing protection: {name}"
    # Runtime attribution: every class must actually execute crypto.
    from repro.analysis import crypto_breakdown, format_breakdown

    usages = crypto_breakdown()
    artifact_lines += ["", format_breakdown(usages)]
    active_keys = {usage.key.letter for usage in usages}
    assert {"a", "b", "c", "d", "e", "f", "m"}.issubset(active_keys)

    artifact = "\n".join(artifact_lines)
    write_artifact("table2_coverage.txt", artifact)
    print("\n" + artifact)

    benchmark.pedantic(
        lambda: build_kernel(KernelConfig.full()), iterations=1, rounds=1
    )


def test_baseline_kernel_has_no_crypto(image):
    baseline = build_kernel(KernelConfig.baseline())
    for mnemonic in ("creak", "crdak", "crebk", "creck", "creek", "crefk"):
        assert mnemonic not in baseline.kernel_asm

    # And the protected build must shrink nothing: annotated fields grow.
    protected_size = image.layout.sizeof(CRED)
    baseline_size = baseline.layout.sizeof(CRED)
    assert protected_size > baseline_size


def test_dedicated_keys_per_class(image):
    """Distinct key registers per data class (anti cross-class
    substitution, §2.4.3)."""
    asm = image.kernel_asm
    used_keys = set(re.findall(r"cr[ed]([a-g])k ", asm))
    assert {"a", "b", "c", "d", "e", "f"}.issubset(used_keys)

"""§4.2 — crypto-engine characteristics.

The paper's engine "completes the QARMA cipher in 3 cycles" and a CLB
hit returns in one; this bench verifies those architectural latencies
and measures the software model's cipher throughput.
"""

from conftest import write_artifact

from repro.crypto import CryptoEngine, KeySelect
from repro.crypto.primitives import FULL_RANGE
from repro.crypto.qarma import Qarma64

KEY = 0x0123456789ABCDEF0FEDCBA987654321


def test_qarma_throughput(benchmark):
    cipher = Qarma64()

    def encrypt_block():
        return cipher.encrypt(0xDEADBEEFCAFEBABE, 0x1000, KEY)

    result = benchmark(encrypt_block)
    assert result == cipher.encrypt(0xDEADBEEFCAFEBABE, 0x1000, KEY)


def test_engine_latencies():
    engine = CryptoEngine(clb_entries=8)
    engine.key_file.set_key(KeySelect.A, KEY)
    ciphertext, miss = engine.encrypt(KeySelect.A, 1, FULL_RANGE, 2)
    _, hit = engine.encrypt(KeySelect.A, 1, FULL_RANGE, 2)
    artifact = (
        "Crypto-engine latencies (paper §4.2: 3-cycle QARMA)\n"
        f"  CLB miss: {miss} cycles\n"
        f"  CLB hit:  {hit} cycles\n"
    )
    write_artifact("engine_latency.txt", artifact)
    print("\n" + artifact)
    assert miss == 3
    assert hit == 1


def test_decrypt_throughput(benchmark):
    cipher = Qarma64()
    ciphertext = cipher.encrypt(0x42, 0x9, KEY)
    plaintext = benchmark(lambda: cipher.decrypt(ciphertext, 0x9, KEY))
    assert plaintext == 0x42

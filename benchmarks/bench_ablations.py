"""Ablations — cipher choice and mechanism attribution (§5).

Shape criteria: XOR-DSR (the related-work baseline) loses to the
informed disclosure attack while QARMA and XEX-XTEA defend; the cost
ordering follows engine latency (xor < qarma < xex); CIP alone decides
the interrupt-context attack.
"""

import pytest
from conftest import bench_scale, write_artifact

from repro.analysis.ablations import (
    CIPHERS,
    cip_ablation,
    cipher_cost_comparison,
    format_ablations,
    informed_disclosure_attack,
)


@pytest.fixture(scope="module")
def disclosure():
    return [informed_disclosure_attack(cipher) for cipher in CIPHERS]


@pytest.fixture(scope="module")
def costs():
    return cipher_cost_comparison(scale=bench_scale())


def test_ablations(benchmark, disclosure, costs):
    cip = cip_ablation()
    artifact = format_ablations(disclosure, costs, cip)
    write_artifact("ablations.txt", artifact)
    print("\n" + artifact)

    by_cipher = {row.cipher: row for row in disclosure}
    # §5: "all of these works suffer memory disclosures, due to the
    # weak XOR-based encryption".
    assert by_cipher["xor"].mask_recovered
    assert by_cipher["xor"].forged_root
    # Cryptographically strong ciphers resist the same playbook.
    assert not by_cipher["qarma"].forged_root
    assert not by_cipher["xex"].forged_root

    cost = {row.cipher: row.null_call_cycles for row in costs}
    assert cost["xor"] <= cost["qarma"] <= cost["xex"]

    # The interrupt window is CIP's alone.
    assert cip.with_mechanism_blocked
    assert not cip.without_mechanism_blocked

    benchmark.pedantic(
        lambda: informed_disclosure_attack("qarma"),
        iterations=1,
        rounds=2,
    )

"""Figure 5c — SPEC-intspeed-shaped macro overheads.

Shape criterion: FULL overhead close to zero (the paper's headline for
user-space-bound programs — RegVault instruments only kernel code).
"""

import pytest
from conftest import bench_scale, write_artifact

from repro.bench.overhead import (
    PAPER_FULL_AVERAGE,
    averages,
    format_figure,
    overhead_table,
)
from repro.bench.runner import measure_matrix, run_workload
from repro.bench.workloads import spec
from repro.kernel import KernelConfig


@pytest.fixture(scope="module")
def matrix():
    return measure_matrix(spec.SUITE, scale=bench_scale())


def test_figure5c(benchmark, matrix):
    rows = overhead_table(matrix)
    artifact = format_figure(
        "Figure 5c — SPEC-intspeed-shaped suite, overhead vs baseline",
        rows,
        paper_full_average=PAPER_FULL_AVERAGE["spec"],
    )
    write_artifact("fig5c_spec.txt", artifact)
    print("\n" + artifact)

    avg = averages(rows)
    assert avg["full"] <= 2.0, "macro overhead must be close to zero"
    assert avg["ra"] <= 1.5
    # Macro overhead must sit well below the micro suites' range.
    assert avg["full"] < 2.0

    benchmark.pedantic(
        lambda: run_workload(
            spec.SUITE[3], KernelConfig.full(), bench_scale()
        ),
        iterations=1,
        rounds=2,
    )


def test_results_identical_across_configs(matrix):
    by_workload = {}
    for (workload, config), measurement in matrix.items():
        by_workload.setdefault(workload, set()).add(measurement.exit_code)
    for workload, exit_codes in by_workload.items():
        assert len(exit_codes) == 1, f"{workload} diverges: {exit_codes}"

"""RIPE-style attack matrix (§4.3.1's RIPE port, systematized).

Shape criteria: every overwrite/substitution cell lands on the original
kernel and is stopped by RegVault; temporal replay is effective against
both (the documented limitation — address tweaks carry no version).
"""

import pytest
from conftest import write_artifact

from repro.attacks.ripe import format_matrix, run_matrix
from repro.kernel import KernelConfig


@pytest.fixture(scope="module")
def results():
    return run_matrix()


def test_ripe_matrix(benchmark, results):
    artifact = format_matrix(results)
    write_artifact("ripe_matrix.txt", artifact)
    print("\n" + artifact)

    for result in results:
        if result.technique == "replay":
            assert result.succeeded, (
                "replay must be shown effective (documented limitation)"
            )
        elif result.config == "baseline":
            assert result.succeeded, (
                f"{result.target}/{result.technique} must land on the "
                f"original kernel ({result.outcome})"
            )
        else:
            assert not result.succeeded, (
                f"{result.target}/{result.technique} must be stopped "
                f"({result.outcome})"
            )

    from repro.attacks.ripe import run_cell

    benchmark.pedantic(
        lambda: run_cell("cred_uid", "overwrite", KernelConfig.full()),
        iterations=1,
        rounds=2,
    )

"""§4.4.1 — CLB performance study.

Shape criteria: hit ratio grows monotonically with entry count and is
around 50% or better at 8 entries (paper: 51.7%); enabling the CLB
recovers a substantial part of the CLB-less overhead (paper: 4.5% →
2.6%).
"""

import pytest
from conftest import bench_scale, write_artifact

from repro.analysis import clb_study, format_clb_study
from repro.bench.runner import run_workload
from repro.bench.workloads import unixbench
from repro.kernel import KernelConfig


@pytest.fixture(scope="module")
def points():
    return clb_study(scale=bench_scale())


def test_clb_study(benchmark, points):
    artifact = format_clb_study(points)
    write_artifact("clb_study.txt", artifact)
    print("\n" + artifact)

    by_entries = {p.entries: p for p in points}
    ratios = [p.hit_ratio_pct for p in points]
    assert ratios == sorted(ratios), "hit ratio must grow with entries"
    assert by_entries[0].hit_ratio_pct == 0.0
    assert by_entries[8].hit_ratio_pct >= 45.0, (
        "8 entries should serve about half of all operations (paper: 51.7%)"
    )
    assert by_entries[8].overhead_pct < by_entries[0].overhead_pct, (
        "the CLB must reduce full-protection overhead"
    )
    recovered = (
        by_entries[0].overhead_pct - by_entries[8].overhead_pct
    ) / by_entries[0].overhead_pct
    assert recovered >= 0.1, "the CLB should recover a tangible fraction"

    benchmark.pedantic(
        lambda: run_workload(
            unixbench.SUITE[7], KernelConfig.full(clb_entries=8),
            bench_scale(),
        ),
        iterations=1,
        rounds=2,
    )


def test_diminishing_returns(points):
    """Going from 8 to 32 entries buys much less than 0 to 8."""
    by_entries = {p.entries: p for p in points}
    gain_0_8 = by_entries[8].hit_ratio_pct - by_entries[0].hit_ratio_pct
    gain_8_32 = by_entries[32].hit_ratio_pct - by_entries[8].hit_ratio_pct
    assert gain_0_8 > gain_8_32

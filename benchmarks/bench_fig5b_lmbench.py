"""Figure 5b — LMbench latency overheads for RA / FP / NON-CONTROL / FULL.

Shape criteria: FULL overhead in low single digits on average (paper:
2.5%), RA below FULL, FP and NON-CONTROL small, every configuration
computing identical results.
"""

import pytest
from conftest import bench_scale, write_artifact

from repro.bench.overhead import (
    PAPER_FULL_AVERAGE,
    averages,
    format_figure,
    overhead_table,
)
from repro.bench.runner import measure_matrix, run_workload
from repro.bench.workloads import lmbench
from repro.kernel import KernelConfig


@pytest.fixture(scope="module")
def matrix():
    return measure_matrix(lmbench.SUITE, scale=bench_scale())


def test_figure5b(benchmark, matrix):
    rows = overhead_table(matrix)
    artifact = format_figure(
        "Figure 5b — LMbench-shaped suite, overhead vs baseline",
        rows,
        paper_full_average=PAPER_FULL_AVERAGE["lmbench"],
    )
    write_artifact("fig5b_lmbench.txt", artifact)
    print("\n" + artifact)

    avg = averages(rows)
    assert 0.5 <= avg["full"] <= 9.0, "FULL must be low single digits"
    assert avg["ra"] < avg["full"], "RA alone must cost less than FULL"
    assert avg["fp"] <= avg["full"]
    assert avg["noncontrol"] <= avg["full"]

    benchmark.pedantic(
        lambda: run_workload(
            lmbench.SUITE[0], KernelConfig.full(), bench_scale()
        ),
        iterations=1,
        rounds=2,
    )


def test_results_identical_across_configs(matrix):
    by_workload = {}
    for (workload, config), measurement in matrix.items():
        by_workload.setdefault(workload, set()).add(measurement.exit_code)
    for workload, exit_codes in by_workload.items():
        assert len(exit_codes) == 1, f"{workload} diverges: {exit_codes}"

"""Security feature switches (§3.2.3).

Mirrors the SELinux weak spot the paper describes: all access decisions
funnel through flag fields in a global ``selinux_state``.  Zeroing
``initialized`` (or ``enforcing``) in the unprotected kernel disables
enforcement outright [Shen, BlackHat'17].  Under RegVault the fields
are ``__rand_integrity``-protected, so the overwrite trips an
integrity exception at the next check.
"""

from __future__ import annotations

from repro.compiler.builder import IRBuilder
from repro.compiler.ir import Const, Function, GlobalVar, Module
from repro.compiler.types import FunctionType, VOID
from repro.kernel.structs import SELINUX_STATE, SYSCALL_FN

#: Permissions below this are granted by the toy policy.
POLICY_ALLOW_BELOW = 4


def build_selinux(module: Module) -> None:
    module.add_global(GlobalVar("selinux_state", SELINUX_STATE))
    _build_init(module)
    _build_check(module)


def _build_init(module: Module) -> None:
    func = Function("selinux_init", FunctionType(VOID, ()))
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    state = b.addr_of_global("selinux_state")
    b.store_field(state, SELINUX_STATE, "lock", Const(0))
    b.store_field(state, SELINUX_STATE, "disabled", Const(0))
    b.store_field(state, SELINUX_STATE, "enforcing", Const(1))
    b.store_field(state, SELINUX_STATE, "initialized", Const(1))
    b.store_field(state, SELINUX_STATE, "policy_seq", Const(1))
    b.ret()


def _build_check(module: Module) -> None:
    """sys_selinux_check(perm): 1 = allowed, 0 = denied.

    Keeps the real kernel's logic shape: an uninitialized or
    non-enforcing state grants everything — that is precisely what the
    attack exploits by clearing the flags.
    """
    func = Function("sys_selinux_check", SYSCALL_FN, ["perm", "a1", "a2"])
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    state = b.addr_of_global("selinux_state")
    initialized = b.load_field(state, SELINUX_STATE, "initialized")
    is_init = b.cmp("ne", initialized, 0)
    b.cond_br(is_init, "check_enforcing", "allow")

    b.block("check_enforcing")
    enforcing = b.load_field(state, SELINUX_STATE, "enforcing")
    is_enforcing = b.cmp("ne", enforcing, 0)
    b.cond_br(is_enforcing, "enforce", "allow")

    b.block("enforce")
    permitted = b.cmp("lt", func.params[0], POLICY_ALLOW_BELOW)
    b.cond_br(permitted, "allow", "deny")

    b.block("allow")
    b.ret(Const(1))
    b.block("deny")
    b.ret(Const(0))

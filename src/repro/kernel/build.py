"""Kernel image construction.

Puts the whole stack together for one :class:`KernelConfig`:

1. the user program (compiled **unprotected** — RegVault is a kernel
   mechanism; its instructions are not even executable in user mode),
2. the kernel IR module (all subsystems) compiled under the config's
   protection options,
3. the hand-written assembly (boot, trap entry/exit with or without
   CIP),
4. both assembled into loadable :class:`~repro.isa.assembler.Program`
   images.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.builder import IRBuilder
from repro.compiler.ir import Const, Function, GlobalVar, Module
from repro.compiler.layout import LayoutEngine
from repro.compiler.memops import build_typed_copy
from repro.compiler.pipeline import CompileOptions, CompiledModule, compile_module
from repro.compiler.types import FunctionType, I64
from repro.errors import KernelError
from repro.isa.assembler import Program, assemble
from repro.kernel import layout as kmap
from repro.kernel.boot import generate_boot
from repro.kernel.cip import build_cip_helpers
from repro.kernel.config import KernelConfig
from repro.kernel.accounting import build_accounting
from repro.kernel.cred import build_cred
from repro.kernel.entry import generate_trap_entry, generate_trap_exit
from repro.kernel.keyring import build_keyring
from repro.kernel.pagetable import build_pagetable
from repro.kernel.sched import build_sched
from repro.kernel.selinux import build_selinux
from repro.kernel.structs import ALL_STRUCTS, CRED, SYS_EXIT, THREAD_INFO
from repro.kernel.syscalls import build_syscalls
from repro.kernel.xtea import build_xtea

#: Offsets the trap-exit assembly needs, as .equ symbols.
_THREAD_OFFSET_SYMBOLS = {
    "THREAD_WRAPPED_RA_LO": "wrapped_ra_key_lo",
    "THREAD_WRAPPED_RA_HI": "wrapped_ra_key_hi",
    "THREAD_WRAPPED_INT_LO": "wrapped_int_key_lo",
    "THREAD_WRAPPED_INT_HI": "wrapped_int_key_hi",
}


@dataclass
class KernelImage:
    """Everything a session needs to boot and to reason about layout."""

    config: KernelConfig
    kernel_program: Program
    user_program: Program
    kernel_compiled: CompiledModule
    kernel_asm: str
    user_asm: str

    @property
    def layout(self) -> LayoutEngine:
        return self.kernel_compiled.layout

    def symbol(self, name: str) -> int:
        for program in (self.kernel_program, self.user_program):
            if name in program.symbols:
                return program.symbols[name]
        raise KernelError(f"unknown symbol {name!r}")

    def field_offset(self, struct, field_name: str) -> int:
        return self.layout.struct_layout(struct).slot(field_name).offset

    def global_field_addr(self, symbol: str, struct, field_name: str) -> int:
        return self.symbol(symbol) + self.field_offset(struct, field_name)

    def thread_base(self, tid: int) -> int:
        stride = self.layout.sizeof(THREAD_INFO)
        return self.symbol("threads") + tid * stride

    def thread_field_addr(self, tid: int, field_name: str) -> int:
        return self.thread_base(tid) + self.field_offset(
            THREAD_INFO, field_name
        )


def default_user_module() -> Module:
    """A trivial user program: exit(42) via the syscall ABI."""
    module = Module("user")
    main = Function("main", FunctionType(I64, ()))
    module.add_function(main)
    b = IRBuilder(main)
    b.block("entry")
    b.intrinsic("ecall", [Const(SYS_EXIT), Const(42)], returns=True)
    b.ret(Const(0))
    return module


def build_user_program(user_module: Module | None) -> tuple[Program, str]:
    """Compile and assemble the user program (always unprotected)."""
    module = user_module if user_module is not None else default_user_module()
    compiled = compile_module(module, CompileOptions.baseline())
    startup = (
        "_start:\n"
        "    call main\n"
        # If main returns, exit with its return value.
        "    mv a1, zero\n"
        "    li a7, %d\n"
        "    ecall\n"
        "user_hang:\n"
        "    j user_hang\n"
    ) % SYS_EXIT
    asm = startup + compiled.asm
    program = assemble(asm, bases=kmap.USER_BASES)
    return program, asm


def _build_attack_gadget(module: Module) -> None:
    """A never-legitimately-called function standing in for a ROP/JOP
    payload: hijacked control flow that reaches it halts the machine
    with the recognizable exit code 0xAA (the attacker "wins")."""
    func = Function("attack_gadget", FunctionType(I64, (I64, I64, I64)),
                    ["a0", "a1", "a2"])
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    b.intrinsic("halt", [Const(0xAA)])
    b.ret(Const(0))


def build_kernel_module(config: KernelConfig, user_entry: int) -> Module:
    """Assemble the kernel's IR module from all subsystems."""
    module = Module("kernel")
    for struct in ALL_STRUCTS:
        module.add_struct(struct)
    module.add_global(GlobalVar("__user_entry", I64, init=user_entry))
    _build_attack_gadget(module)
    build_cip_helpers(module, cip=config.cip)
    build_accounting(module)
    build_xtea(module)
    build_cred(module)
    build_selinux(module)
    build_keyring(module, protect=config.noncontrol)
    build_pagetable(module)
    build_typed_copy(module, CRED)   # fork-path cred copy (§2.4.2)
    build_sched(module, config)
    build_syscalls(module, config)
    return module


#: Kernel-side build cache.  The kernel image depends only on the
#: configuration and the (fixed) user entry address, so sessions that
#: differ only in their user program share one compiled kernel.
#: Programs are never mutated after assembly, so sharing is safe.
_KERNEL_CACHE: dict[tuple[KernelConfig, int], tuple] = {}


def _build_kernel_side(config: KernelConfig, user_entry: int):
    key = (config, user_entry)
    cached = _KERNEL_CACHE.get(key)
    if cached is not None:
        return cached
    kernel_module = build_kernel_module(config, user_entry)
    compiled = compile_module(kernel_module, config.compile_options)

    offsets = [
        f".equ {symbol}, "
        f"{compiled.layout.struct_layout(THREAD_INFO).slot(field_name).offset}"
        for symbol, field_name in _THREAD_OFFSET_SYMBOLS.items()
    ]
    asm_lines = (
        offsets
        + [".text"]
        + generate_boot(generate_keys=config.any_protection)
        + generate_trap_entry(cip=config.cip)
        + generate_trap_exit(cip=config.cip, reload_keys=config.uses_keys)
        + ["", compiled.asm]
    )
    kernel_asm = "\n".join(asm_lines)
    kernel_program = assemble(kernel_asm)
    result = (kernel_program, compiled, kernel_asm)
    _KERNEL_CACHE[key] = result
    return result


def build_kernel(
    config: KernelConfig, user_module: Module | None = None
) -> KernelImage:
    """Produce the full two-image (kernel + user) build."""
    user_program, user_asm = build_user_program(user_module)
    kernel_program, compiled, kernel_asm = _build_kernel_side(
        config, user_program.entry
    )
    return KernelImage(
        config=config,
        kernel_program=kernel_program,
        user_program=user_program,
        kernel_compiled=compiled,
        kernel_asm=kernel_asm,
        user_asm=user_asm,
    )

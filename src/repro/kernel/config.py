"""Kernel build configuration (the paper's protection matrix, §4.4.2)."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.compiler.pipeline import CompileOptions


@dataclass(frozen=True)
class KernelConfig:
    """One kernel build + machine configuration.

    The four Figure-5 configurations map to:

    ========== ==== ==== =========== ===== =====
    name        ra   fp  noncontrol  spill  cip
    ========== ==== ==== =========== ===== =====
    baseline    no   no      no        no    no
    ra          yes  no      no        no    no
    fp          no   yes     no        no    no
    noncontrol  no   no      yes       no    no
    full        yes  yes     yes       yes   yes
    ========== ==== ==== =========== ===== =====
    """

    name: str = "full"
    ra: bool = True
    fp: bool = True
    noncontrol: bool = True
    protect_spills: bool = True
    #: Chain-based interrupt context protection (§2.4.3).
    cip: bool = True
    #: CLB entries in the crypto-engine (0 disables the CLB).
    clb_entries: int = 8
    #: Randomization cipher: "qarma" (the paper), "xor" (DSR baseline,
    #: intentionally weak — §5), or "xex" (XEX-XTEA, the CRAFT-style
    #: drop-in alternative).
    cipher: str = "qarma"
    #: Timer interrupt interval in cycles (0 disables the tick).
    timer_interval: int = 20_000
    #: Number of kernel threads (all start at the user entry point;
    #: multi-threaded workloads branch on getpid).
    num_threads: int = 1
    #: Boot thread 0 with uid/gid 0 (used by attack scenarios that need
    #: a legitimate privileged actor).
    root_thread: bool = False

    @property
    def compile_options(self) -> CompileOptions:
        return CompileOptions(
            name=self.name,
            ra=self.ra,
            fp=self.fp,
            noncontrol=self.noncontrol,
            protect_spills=self.protect_spills,
        )

    @property
    def uses_keys(self) -> bool:
        """Does any protection require per-thread key reloads?"""
        return self.ra or self.cip

    @property
    def any_protection(self) -> bool:
        return (
            self.ra or self.fp or self.noncontrol
            or self.protect_spills or self.cip
        )

    # -- the paper's build matrix ---------------------------------------------

    @classmethod
    def baseline(cls, **kwargs) -> "KernelConfig":
        return cls(name="baseline", ra=False, fp=False, noncontrol=False,
                   protect_spills=False, cip=False, **kwargs)

    @classmethod
    def ra_only(cls, **kwargs) -> "KernelConfig":
        return cls(name="ra", ra=True, fp=False, noncontrol=False,
                   protect_spills=False, cip=False, **kwargs)

    @classmethod
    def fp_only(cls, **kwargs) -> "KernelConfig":
        return cls(name="fp", ra=False, fp=True, noncontrol=False,
                   protect_spills=False, cip=False, **kwargs)

    @classmethod
    def noncontrol_only(cls, **kwargs) -> "KernelConfig":
        return cls(name="noncontrol", ra=False, fp=False, noncontrol=True,
                   protect_spills=False, cip=False, **kwargs)

    @classmethod
    def full(cls, **kwargs) -> "KernelConfig":
        return cls(name="full", **kwargs)

    def with_clb(self, entries: int) -> "KernelConfig":
        return replace(self, clb_entries=entries)

    @classmethod
    def figure5_matrix(cls) -> list["KernelConfig"]:
        """The five builds evaluated in Figure 5."""
        return [
            cls.baseline(),
            cls.ra_only(),
            cls.fp_only(),
            cls.noncontrol_only(),
            cls.full(),
        ]

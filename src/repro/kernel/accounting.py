"""Syscall auditing and CPU-time accounting.

Real kernels spend substantial work on every trap besides the handler
itself: entry bookkeeping, audit hooks, seccomp-style policy walks and
per-task time accounting (Linux's syscall path is thousands of cycles
long even for ``getppid``).  This module reproduces a representative
slice of that work so the simulated kernel's trap-path length — and
therefore RegVault's *relative* overhead — is in a realistic regime
rather than being dominated by an unrealistically thin dispatcher.

The audit table also exercises protected non-control data in the hot
path: per-syscall counters live next to a policy word whose load/store
traffic mirrors how Linux consults credentials/policy state on entry.
"""

from __future__ import annotations

from repro.compiler.builder import IRBuilder
from repro.compiler.ir import Const, Function, GlobalVar, Module, Move
from repro.compiler.types import ArrayType, Field, FunctionType, I64, StructType, VOID
from repro.kernel.structs import NUM_SYSCALLS, THREAD_INFO

#: Per-syscall audit record.
AUDIT_RECORD = StructType("audit_record", (
    Field("count", I64),
    Field("total_cycles", I64),
    Field("last_arg", I64),
    Field("filter_word", I64),
))

#: Number of seccomp-style filter rules walked on every entry.
FILTER_RULES = 8


def build_accounting(module: Module) -> None:
    module.add_struct(AUDIT_RECORD)
    module.add_global(
        GlobalVar("audit_table", ArrayType(AUDIT_RECORD, NUM_SYSCALLS))
    )
    module.add_global(
        GlobalVar("seccomp_filter", ArrayType(I64, FILTER_RULES))
    )
    _build_audit_entry(module)
    _build_audit_exit(module)


def _build_audit_entry(module: Module) -> None:
    """audit_entry(nr, arg0) -> entry timestamp.

    Walks the seccomp-style filter (every rule compares the syscall
    number and argument against a pattern), then charges the audit
    record — the shape of Linux's syscall-entry work.
    """
    func = Function(
        "audit_entry", FunctionType(I64, (I64, I64)), ["nr", "arg0"]
    )
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    nr, arg0 = func.params

    # Filter walk: accumulate a decision word over all rules.
    filt = b.addr_of_global("seccomp_filter")
    decision = b.func.new_reg(I64, "decision")
    b._emit(Move(decision, Const(0)))
    i = b.func.new_reg(I64, "i")
    b._emit(Move(i, Const(0)))
    b.br("rules")

    b.block("rules")
    rule = b.raw_load(b.add(filt, b.shl(i, 3)))
    matches_nr = b.cmp("eq", b.and_(rule, 0xFF), nr)
    matches_arg = b.cmp("eq", b.shr(rule, 8), b.and_(arg0, 0xFF))
    hit = b.and_(matches_nr, matches_arg)
    b._emit(Move(decision, b.or_(decision, hit)))
    b._emit(Move(i, b.add(i, 1)))
    more = b.cmp("lt", i, FILTER_RULES)
    b.cond_br(more, "rules", "charge")

    b.block("charge")
    table = b.addr_of_global("audit_table")
    record = b.index_addr(table, nr, elem_type=AUDIT_RECORD)
    count = b.load_field(record, AUDIT_RECORD, "count")
    b.store_field(record, AUDIT_RECORD, "count", b.add(count, 1))
    b.store_field(record, AUDIT_RECORD, "last_arg", arg0)
    b.store_field(record, AUDIT_RECORD, "filter_word", decision)
    b.ret(b.intrinsic("read_cycle", returns=True))


def _build_audit_exit(module: Module) -> None:
    """audit_exit(nr, entry_stamp): cycle accounting on the way out."""
    func = Function(
        "audit_exit", FunctionType(VOID, (I64, I64)), ["nr", "stamp"]
    )
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    nr, stamp = func.params
    now = b.intrinsic("read_cycle", returns=True)
    spent = b.sub(now, stamp)

    table = b.addr_of_global("audit_table")
    record = b.index_addr(table, nr, elem_type=AUDIT_RECORD)
    total = b.load_field(record, AUDIT_RECORD, "total_cycles")
    b.store_field(record, AUDIT_RECORD, "total_cycles", b.add(total, spent))

    # Per-task accounting (utime/stime analogue).
    current = b.raw_load(b.addr_of_global("current"))
    count = b.load_field(current, THREAD_INFO, "syscall_count")
    b.store_field(current, THREAD_INFO, "syscall_count", b.add(count, 1))
    cycles = b.load_field(current, THREAD_INFO, "kernel_cycles")
    b.store_field(current, THREAD_INFO, "kernel_cycles", b.add(cycles, spent))
    b.ret()

"""Trap entry/exit assembly (context save/restore).

RegVault's chain-based protection targets the **interrupt context**
(§2.4.3): asynchronously interrupted threads have *all* live register
state dumped to memory, which [Azad, BlackHat'20] shows is the classic
window for leaking and corrupting register values.  System calls are a
voluntary, ABI-defined boundary; their save path stays plain (this is
also what makes the paper's syscall-heavy micro-benchmarks average only
~2.5% overhead).

So the trap vector inspects ``mcause`` before saving:

* **interrupt** (mcause bit 63 set) and CIP enabled → chain save: each
  register is encrypted in reverse dependency order so its tweak (the
  *previous* register's plaintext, Figure 4) is still live; the first
  element is tweaked by its storage address, a zero terminator is
  encrypted under the last register and verified with a partial-range
  ``crd`` on restore — corruption anywhere in the chain cascades into
  that check and traps.  Two pieces sit outside the chain and carry
  their own integrity:

  - the saved **user t6** (x31 doubles as the save-area pointer during
    the sequence; its user value parks in ``mscratch``) is sealed with
    the Figure-2c split scheme — two ciphertext halves with ranges
    [3:0]/[7:4], each zero-checked on restore;
  - the **context-kind marker** (slot 0) is ``enc(kind)`` with range
    [0:0] under the same per-thread key, so an attacker can neither
    corrupt it nor downgrade a CIP context to a plain one;

* **syscall/exception** → classic plain save (the kind marker is still
  sealed in CIP builds, so the routing itself stays unforgeable).

The per-thread interrupt key register ``c`` ("to defeat cross-thread
substitution attacks") and the per-thread RA key ``a`` are unwrapped
from ``thread_info`` (master-key wrapped, §3.1.1) by the exit path
whenever the scheduler switched threads.
"""

from __future__ import annotations

from repro.kernel.structs import (
    CTX_T6_HI_SLOT,
    CTX_T6_SLOT,
    CTX_TERMINATOR_SLOT,
)
from repro.kernel.layout import KERNEL_STACK_TOP

#: Key letters.
RA_KEY = "a"
CIP_KEY = "c"

#: Context kinds recorded (sealed, in CIP builds) in slot 0.
KIND_PLAIN = 0
KIND_CIP = 1


def _x(i: int) -> str:
    return f"x{i}"


def _plain_save_body(sealed_kind: bool) -> list[str]:
    """Save x1..x30 + user t6; assumes t6 = ctx base, user t6 in
    mscratch.  Marks the context as plain."""
    lines = []
    for i in range(1, 31):
        lines.append(f"    sd {_x(i)}, {8 * i}(t6)")
    lines += [
        "    csrr x1, mscratch",
        f"    sd x1, {8 * CTX_T6_SLOT}(t6)",
    ]
    if sealed_kind:
        # kind = enc(0) under the thread's interrupt key, tweak = &slot0.
        lines += [
            f"    cre{CIP_KEY}k x1, x0[0:0], t6",
            "    sd x1, 0(t6)",
        ]
    else:
        lines.append("    sd zero, 0(t6)")
    lines.append("    csrw mscratch, t6")
    return lines


def _cip_save_body() -> list[str]:
    """Chain-encrypt x1..x30 + terminator + split-sealed user t6 + the
    sealed kind marker (see module doc).

    Entry state: t6 = ctx base, user t6 parked in mscratch."""
    term_off = 8 * CTX_TERMINATOR_SLOT
    t6_lo_off = 8 * CTX_T6_SLOT
    t6_hi_off = 8 * CTX_T6_HI_SLOT
    lines = [
        "    csrw sscratch, t6",
        # Zero terminator first, while x30 (its tweak) is still live.
        f"    cre{CIP_KEY}k t6, x0[0:0], x30",
        "    csrrw t6, sscratch, t6",    # t6 = base; sscratch = term ct
    ]
    # x30 .. x2, each tweaked by its predecessor's live plaintext.
    for i in range(30, 1, -1):
        lines += [
            f"    cre{CIP_KEY}k {_x(i)}, {_x(i)}[7:0], {_x(i - 1)}",
            f"    sd {_x(i)}, {8 * i}(t6)",
        ]
    lines += [
        # x1: first chain element, tweaked by its storage address.
        "    addi x2, t6, 8",
        f"    cre{CIP_KEY}k x1, x1[7:0], x2",
        "    sd x1, 8(t6)",
        # Terminator ciphertext from sscratch into its slot.
        "    csrr x1, sscratch",
        f"    sd x1, {term_off}(t6)",
        # User t6 from mscratch: Figure-2c split with integrity, each
        # half tweaked by its own slot address.
        "    csrr x1, mscratch",
        f"    addi x2, t6, {t6_lo_off}",
        f"    cre{CIP_KEY}k x3, x1[3:0], x2",
        f"    sd x3, {t6_lo_off}(t6)",
        f"    addi x2, t6, {t6_hi_off}",
        f"    cre{CIP_KEY}k x3, x1[7:4], x2",
        f"    sd x3, {t6_hi_off}(t6)",
        # Sealed kind marker: enc(1) with range [0:0], tweak = &slot0.
        "    li x1, 1",
        f"    cre{CIP_KEY}k x1, x1[0:0], t6",
        "    sd x1, 0(t6)",
        "    csrw mscratch, t6",
    ]
    return lines


def generate_trap_entry(cip: bool) -> list[str]:
    """Assembly for the trap vector: save context, call the dispatcher."""
    lines = [
        "trap_vector:",
        "    csrrw t6, mscratch, t6",   # t6 = ctx base; user t6 parked
    ]
    if cip:
        lines += [
            # Route on mcause: interrupts (bit 63) take the CIP path.
            "    csrw sscratch, t6",
            "    csrr t6, mcause",
            "    bltz t6, trap_save_cip",
            "    csrr t6, sscratch",
        ]
        lines += _plain_save_body(sealed_kind=True)
        lines += ["    j trap_save_done"]
        lines += ["trap_save_cip:", "    csrr t6, sscratch"]
        lines += _cip_save_body()
        lines += ["trap_save_done:"]
    else:
        lines += _plain_save_body(sealed_kind=False)

    lines += [
        # Kernel environment: fresh stack, cause/epc to the dispatcher.
        f"    li sp, {KERNEL_STACK_TOP}",
        "    csrr a0, mcause",
        "    csrr a1, mepc",
        "    call trap_dispatch",
        "    j trap_exit",
    ]
    return lines


def _plain_restore_body() -> list[str]:
    """Restore a plain context; assumes t6 = ctx base."""
    lines = []
    for i in range(1, 31):
        lines.append(f"    ld {_x(i)}, {8 * i}(t6)")
    lines += [
        f"    ld t6, {8 * CTX_T6_SLOT}(t6)",
        "    mret",
    ]
    return lines


def _cip_restore_body() -> list[str]:
    """Chain-decrypt and verify a CIP context; t6 = ctx base.

    The split-sealed user t6 is recovered *first* (every x-register is
    still free) and parked in ``sscratch`` until the final swap."""
    term_off = 8 * CTX_TERMINATOR_SLOT
    t6_lo_off = 8 * CTX_T6_SLOT
    t6_hi_off = 8 * CTX_T6_HI_SLOT
    lines = [
        # User t6: two integrity-checked halves, then reassembled.
        f"    addi x1, t6, {t6_lo_off}",
        f"    ld x2, {t6_lo_off}(t6)",
        f"    crd{CIP_KEY}k x2, x2, x1, [3:0]",
        f"    addi x1, t6, {t6_hi_off}",
        f"    ld x3, {t6_hi_off}(t6)",
        f"    crd{CIP_KEY}k x3, x3, x1, [7:4]",
        "    or x2, x2, x3",
        "    csrw sscratch, x2",        # park user t6
        # x1: chain start, tweak = its slot address.
        "    addi x2, t6, 8",
        "    ld x1, 8(t6)",
        f"    crd{CIP_KEY}k x1, x1, x2, [7:0]",
    ]
    for i in range(2, 31):
        lines += [
            f"    ld {_x(i)}, {8 * i}(t6)",
            f"    crd{CIP_KEY}k {_x(i)}, {_x(i)}, {_x(i - 1)}, [7:0]",
        ]
    lines += [
        # Terminator check.  x1 is parked in the consumed kind slot
        # rather than in mscratch: the check below is the one restore
        # instruction that can trap, and a trap taken here must find
        # mscratch still pointing at the context area (otherwise the
        # re-entrant save would write through a garbage pointer).
        "    sd x1, 0(t6)",
        f"    ld x1, {term_off}(t6)",
        f"    crd{CIP_KEY}k x1, x1, x30, [0:0]",   # traps if corrupted
        "    ld x1, 0(t6)",              # x1 = user x1
        "    csrrw t6, sscratch, t6",    # t6 = user t6; sscratch = junk
        "    mret",
    ]
    return lines


def generate_trap_exit(cip: bool, reload_keys: bool) -> list[str]:
    """Assembly for the return path: reload keys if needed, restore by
    (integrity-checked) context kind, mret."""
    lines = ["trap_exit:"]

    if reload_keys:
        lines += [
            "    la t0, __need_key_reload",
            "    ld t1, 0(t0)",
            "    beqz t1, trap_exit_restore",
            "    sd zero, 0(t0)",
            "    la t0, current",
            "    ld t0, 0(t0)",
        ]
        for field_off_symbol, csr in (
            ("THREAD_WRAPPED_RA_LO", "krega_lo"),
            ("THREAD_WRAPPED_RA_HI", "krega_hi"),
            ("THREAD_WRAPPED_INT_LO", "kregc_lo"),
            ("THREAD_WRAPPED_INT_HI", "kregc_hi"),
        ):
            lines += [
                f"    addi t1, t0, {field_off_symbol}",
                "    ld t2, 0(t1)",
                "    crdmk t2, t2, t1, [7:0]",
                f"    csrw {csr}, t2",
            ]

    lines.append("trap_exit_restore:")
    lines.append("    csrr t6, mscratch")

    if cip:
        lines += [
            # Unseal the kind marker; forging or corrupting it traps.
            "    ld t0, 0(t6)",
            f"    crd{CIP_KEY}k t0, t0, t6, [0:0]",
            "    bnez t0, trap_restore_cip",
        ]
        lines += _plain_restore_body()
        lines += ["trap_restore_cip:"]
        lines += _cip_restore_body()
    else:
        lines += _plain_restore_body()
    return lines

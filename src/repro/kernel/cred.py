"""User credentials (§3.2.2).

The attacker's classic move is overwriting ``cred.uid`` to 0 to become
root.  Here the uid/gid family is ``__rand_integrity``-annotated, so
every load/store goes through ``crd``/``cre`` with the storage address
as tweak: an overwritten field raises an integrity exception on the
next credential check instead of granting root.
"""

from __future__ import annotations

from repro.compiler.builder import IRBuilder
from repro.compiler.ir import Const, Function, Module
from repro.compiler.types import FunctionType, I64, VOID
from repro.kernel.structs import CRED, THREAD_INFO, SYSCALL_FN


def current_cred(b: IRBuilder):
    """Address of the current thread's cred struct."""
    current_ptr = b.addr_of_global("current")
    thread = b.raw_load(current_ptr, name="current")
    return b.field_addr(thread, THREAD_INFO, "cred")


def build_cred(module: Module) -> None:
    _build_cred_init(module)
    _build_getuid(module)
    _build_setuid(module)
    _build_getgid(module)
    _build_setgid(module)


def _build_cred_init(module: Module) -> None:
    """cred_init(cred_ptr, uid, gid): installs initial credentials."""
    func = Function(
        "cred_init", FunctionType(VOID, (I64, I64, I64)),
        ["cred", "uid", "gid"],
    )
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    cred, uid, gid = func.params
    b.store_field(cred, CRED, "usage", Const(1))
    b.store_field(cred, CRED, "uid", uid)
    b.store_field(cred, CRED, "gid", gid)
    b.store_field(cred, CRED, "euid", uid)
    b.store_field(cred, CRED, "egid", gid)
    b.store_field(cred, CRED, "securebits", Const(0))
    b.ret()


def _build_getuid(module: Module) -> None:
    func = Function("sys_getuid", SYSCALL_FN, ["a0", "a1", "a2"])
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    cred = current_cred(b)
    b.ret(b.load_field(cred, CRED, "uid"))


def _build_getgid(module: Module) -> None:
    func = Function("sys_getgid", SYSCALL_FN, ["a0", "a1", "a2"])
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    cred = current_cred(b)
    b.ret(b.load_field(cred, CRED, "gid"))


def _build_setuid(module: Module) -> None:
    """setuid succeeds only for root (euid == 0), like the real thing."""
    func = Function("sys_setuid", SYSCALL_FN, ["uid", "a1", "a2"])
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    cred = current_cred(b)
    euid = b.load_field(cred, CRED, "euid")
    is_root = b.cmp("eq", euid, 0)
    b.cond_br(is_root, "allow", "deny")
    b.block("allow")
    b.store_field(cred, CRED, "uid", func.params[0])
    b.store_field(cred, CRED, "euid", func.params[0])
    b.ret(Const(0))
    b.block("deny")
    b.ret(Const(-1))


def _build_setgid(module: Module) -> None:
    func = Function("sys_setgid", SYSCALL_FN, ["gid", "a1", "a2"])
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    cred = current_cred(b)
    euid = b.load_field(cred, CRED, "euid")
    is_root = b.cmp("eq", euid, 0)
    b.cond_br(is_root, "allow", "deny")
    b.block("allow")
    b.store_field(cred, CRED, "gid", func.params[0])
    b.store_field(cred, CRED, "egid", func.params[0])
    b.ret(Const(0))
    b.block("deny")
    b.ret(Const(-1))

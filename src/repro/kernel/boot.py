"""Boot assembly: reset vector, key generation, first thread entry.

At reset the hardware holds the master key (installed by the session —
the kernel can never see it).  The boot path:

1. installs the trap vector and a kernel stack,
2. generates the general key registers from the entropy device and
   writes them through the write-only key CSRs (§2.3.1),
3. calls ``kernel_main`` (IR) which initializes every subsystem,
4. drops to user mode through the common ``trap_exit`` path, which
   unwraps thread 0's per-thread keys and unseals its context.
"""

from __future__ import annotations

from repro.kernel.layout import KERNEL_STACK_TOP
from repro.machine.devices import RNG_ADDR

#: Key CSRs initialized at boot (per-thread keys a/c are rewritten on
#: context switches; b/d/e/f/g are global class keys, Table 2).
BOOT_KEY_CSRS = (
    "krega_lo", "krega_hi",
    "kregb_lo", "kregb_hi",
    "kregc_lo", "kregc_hi",
    "kregd_lo", "kregd_hi",
    "krege_lo", "krege_hi",
    "kregf_lo", "kregf_hi",
    "kregg_lo", "kregg_hi",
)


def generate_boot(generate_keys: bool) -> list[str]:
    lines = [
        "_start:",
        "    la t0, trap_vector",
        "    csrw mtvec, t0",
        f"    li sp, {KERNEL_STACK_TOP}",
        "    li t0, 128",            # mie.MTIE: allow the machine timer
        "    csrw mie, t0",
    ]
    if generate_keys:
        lines.append(f"    li t1, {RNG_ADDR}")
        for csr in BOOT_KEY_CSRS:
            lines += [
                "    ld t2, 0(t1)",
                f"    csrw {csr}, t2",
            ]
        lines.append("    li t2, 0")   # do not leave key material behind
    lines += [
        "    call kernel_main",
        # Enter thread 0 in user mode: clear mstatus.MPP, then take the
        # common exit path (key reload + context restore + mret).
        "    csrr t0, mstatus",
        "    li t1, 0x1800",
        "    not t1, t1",
        "    and t0, t0, t1",
        "    csrw mstatus, t0",
        "    j trap_exit",
    ]
    return lines

"""Kernel data structures (the protected data of Table 2).

Annotations follow the paper:

* ``cred`` uid/gid family: ``__rand_integrity`` (§3.2.2) — corrupting
  them must raise an integrity exception, not yield garbage;
* ``selinux_state`` control fields: ``__rand_integrity`` except the
  lock (§3.2.3);
* ``mm_struct.pgd``: ``__rand`` with the dedicated PGD key ``f``
  (§3.2.4) — a corrupted pointer decrypts to garbage and faults;
* keyring payloads are *manually* instrumented (§3.2.1), so the struct
  carries no annotation — see :mod:`repro.kernel.keyring`.
"""

from __future__ import annotations

from repro.compiler.types import (
    Annotation,
    ArrayType,
    Field,
    FunctionType,
    I32,
    I64,
    PointerType,
    StructType,
)
from repro.crypto.keys import KeySelect

#: Context-save slots: kind marker (0), x1..x30 (1-30), the CIP zero
#: terminator (31), and user t6 saved as two integrity-checked
#: ciphertext halves (32/33, the Figure-2c split scheme).
NUM_CTX_SLOTS = 34
#: Slot index of the CIP zero terminator.
CTX_TERMINATOR_SLOT = 31
#: Slot indices of the saved user t6 (x31) halves.
CTX_T6_SLOT = 32
CTX_T6_HI_SLOT = 33

#: struct cred (§3.2.2) — uid/gid family integrity-protected.
CRED = StructType("cred", (
    Field("usage", I32),
    Field("uid", I32, Annotation.RAND_INTEGRITY),
    Field("gid", I32, Annotation.RAND_INTEGRITY),
    Field("euid", I32, Annotation.RAND_INTEGRITY),
    Field("egid", I32, Annotation.RAND_INTEGRITY),
    Field("securebits", I64),
))

#: struct selinux_state (§3.2.3) — all fields but the lock protected.
SELINUX_STATE = StructType("selinux_state", (
    Field("lock", I64),  # "except the lock fields"
    Field("disabled", I32, Annotation.RAND_INTEGRITY),
    Field("enforcing", I32, Annotation.RAND_INTEGRITY),
    Field("initialized", I32, Annotation.RAND_INTEGRITY),
    Field("policy_seq", I64),
))

#: struct mm_struct (§3.2.4) — the PGD pointer is randomized with the
#: dedicated key so spatial substitution across mms fails.
MM_STRUCT = StructType("mm_struct", (
    Field("pgd", PointerType(I64), Annotation.RAND, key=KeySelect.F),
    Field("page_count", I64),
))

#: One kernel keyring entry (§3.2.1).  The payload words hold QARMA
#: ciphertext produced by *manual* instrumentation with key ``e``.
KERNEL_KEY = StructType("kernel_key", (
    Field("id", I64),
    Field("in_use", I64),
    Field("payload_lo", I64),   # ciphertext at rest (manual cre/crd)
    Field("payload_hi", I64),
))

#: Size of the keyring table.
KEYRING_SLOTS = 4

#: struct thread_info — the per-thread kernel bookkeeping.  The paper
#: adds "a per thread key field to the thread_info, ... encrypted by
#: the master key in memory and written to key register on context
#: switches" (§3.1.1); CIP adds a per-thread interrupt key (§2.4.3).
#: The context array and key fields are deliberately placed before any
#: annotated member so their offsets are identical in every build.
THREAD_INFO = StructType("thread_info", (
    Field("tid", I64),
    Field("state", I64),            # 0 = dead, 1 = runnable
    Field("epc", I64),              # resume pc
    Field("ctx", ArrayType(I64, NUM_CTX_SLOTS)),
    Field("wrapped_ra_key_lo", I64),
    Field("wrapped_ra_key_hi", I64),
    Field("wrapped_int_key_lo", I64),
    Field("wrapped_int_key_hi", I64),
    Field("syscall_count", I64),
    Field("kernel_cycles", I64),
    Field("user_sp", I64),
    Field("user_entry", I64),
    Field("cred", CRED),
    Field("mm", MM_STRUCT),
))

#: Syscall handler signature: (a0, a1, a2) -> result.
SYSCALL_FN = FunctionType(I64, (I64, I64, I64))
SYSCALL_FN_PTR = PointerType(SYSCALL_FN)

#: The syscall table: an array of function pointers.  Loading an entry
#: goes through the function-pointer protection (§3.1.2) when enabled.
NUM_SYSCALLS = 20

#: Thread slots available in the thread table (spawn fills dead slots).
MAX_THREADS = 4

#: Syscall numbers.
SYS_NOP = 0
SYS_GETPID = 1
SYS_GETUID = 2
SYS_SETUID = 3
SYS_WRITE = 4
SYS_YIELD = 5
SYS_SELINUX_CHECK = 6
SYS_ADD_KEY = 7
SYS_ENCRYPT = 8
SYS_MAP_PAGE = 9
SYS_TRANSLATE = 10
SYS_EXIT = 11
SYS_GETGID = 12
SYS_SETGID = 13
SYS_READ_CYCLE = 14
SYS_GETPPID = 15
SYS_SPAWN = 16
SYS_TICKS = 17

ALL_STRUCTS = (CRED, SELINUX_STATE, MM_STRUCT, KERNEL_KEY, THREAD_INFO)

"""Saved-context accessors for the kernel.

The chain-based interrupt context protection itself lives in the trap
assembly (:mod:`repro.kernel.entry`).  The kernel-side accessors here
touch only **syscall** contexts, which are saved plain (CIP guards the
asynchronous-interrupt window — see the entry module's docstring), so
they compile to ordinary loads and stores in every configuration:

* ``cip_regs_get(ctx, index)`` — read saved ``x<index>``;
* ``cip_regs_set(ctx, index, value)`` — write saved ``x<index>``
  (syscall return values go to saved a0);
* ``cip_syscall_args(ctx, buf)`` — gather saved a0, a1, a2, a7;
* ``cip_seal(ctx, sp)`` — build a pristine plain context for a new
  thread (kind marker 0, zeros, x2 = initial user stack pointer).
"""

from __future__ import annotations

from repro.compiler.builder import IRBuilder
from repro.compiler.ir import Const, Function, Module
from repro.compiler.types import FunctionType, I64, VOID
from repro.crypto.keys import KeySelect

#: Key register dedicated to the interrupt context (per thread).
CIP_KEY = KeySelect.C

#: Number of chained registers (x1..x30).
CHAIN_LEN = 30


def build_cip_helpers(module: Module, cip: bool) -> None:
    """Add the saved-context accessors to the kernel module.

    The register accessors are identical in all configurations because
    syscall contexts are always plain (the differentiated save/restore
    lives in the trap assembly); only ``cip_seal`` differs — in CIP
    builds it must produce a *sealed* kind marker, since the exit path
    integrity-checks the marker before routing the restore.
    """
    _build_regs_get(module)
    _build_regs_set(module)
    _build_syscall_args(module)
    _build_seal(module, cip)


def _build_regs_get(module: Module) -> None:
    func = Function("cip_regs_get", FunctionType(I64, (I64, I64)),
                    ["ctx", "index"])
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    ctx, index = func.params
    addr = b.add(ctx, b.shl(index, 3))
    b.ret(b.raw_load(addr))


def _build_regs_set(module: Module) -> None:
    func = Function(
        "cip_regs_set", FunctionType(VOID, (I64, I64, I64)),
        ["ctx", "index", "value"],
    )
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    ctx, index, value = func.params
    addr = b.add(ctx, b.shl(index, 3))
    b.raw_store(addr, value)
    b.ret()


def _build_syscall_args(module: Module) -> None:
    """``cip_syscall_args(ctx, buf)``: copy saved a0,a1,a2,a7 to buf."""
    func = Function(
        "cip_syscall_args", FunctionType(VOID, (I64, I64)), ["ctx", "buf"]
    )
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    ctx, buf = func.params
    for out_index, reg_index in enumerate((10, 11, 12, 17)):
        value = b.raw_load(b.add(ctx, Const(8 * reg_index)))
        b.raw_store(b.add(buf, Const(8 * out_index)), value)
    b.ret()


def _build_seal(module: Module, cip: bool) -> None:
    """``cip_seal(ctx, sp)``: pristine plain context for thread entry.

    In CIP builds the kind marker is ``enc(0)`` under the interrupt key
    currently loaded in key register ``c`` — the caller (threads_init)
    loads the *owning thread's* key first, because the marker is
    unsealed with that thread's key on every trap exit.
    """
    from repro.kernel.structs import CTX_T6_HI_SLOT

    func = Function("cip_seal", FunctionType(VOID, (I64, I64)), ["ctx", "sp"])
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    ctx, sp = func.params
    if cip:
        sealed = b.crypto_enc(Const(0), ctx, CIP_KEY, (0, 0))
        b.raw_store(ctx, sealed)
    else:
        b.raw_store(ctx, Const(0))
    for i in range(1, CTX_T6_HI_SLOT + 1):
        addr = b.add(ctx, Const(8 * i))
        b.raw_store(addr, sp if i == 2 else Const(0))
    b.ret()

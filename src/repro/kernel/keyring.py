"""Kernel keyring (§3.2.1) — manually instrumented key protection.

Table 2 marks "Kernel Keys" as *manually* instrumented: the keyring
code itself places ``cre`` before the store during key setup and
``crd`` immediately after the load inside the crypto functions, using
the dedicated keyring key register ``e`` and the storage address as
tweak.  The payload therefore never exists in memory as plaintext —
an arbitrary-read attacker dumps ciphertext (see the disclosure attack
in :mod:`repro.attacks.leak`).
"""

from __future__ import annotations

from repro.compiler.builder import IRBuilder
from repro.compiler.ir import Const, Function, GlobalVar, Module, Move
from repro.compiler.types import ArrayType, FunctionType, I64
from repro.crypto.keys import KeySelect
from repro.kernel.structs import KERNEL_KEY, KEYRING_SLOTS, SYSCALL_FN

#: Dedicated key register for the keyring (Table 2 / KEY_ROLES).
KEYRING_KEY = KeySelect.E


def build_keyring(module: Module, protect: bool = True) -> None:
    """``protect=False`` builds the original kernel's keyring: payloads
    stored as plaintext (the state of affairs §3.2.1 sets out to fix)."""
    module.add_global(
        GlobalVar("keyring", ArrayType(KERNEL_KEY, KEYRING_SLOTS))
    )
    module.add_global(GlobalVar("keyring_next_id", I64, init=1))
    _build_slot_addr(module)
    _build_add_key(module, protect)
    _build_get_half(module, protect)
    _build_sys_add_key(module)
    _build_sys_encrypt(module)


def _build_slot_addr(module: Module) -> None:
    """keyring_slot(index) -> &keyring[index]."""
    func = Function("keyring_slot", FunctionType(I64, (I64,)), ["index"])
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    base = b.addr_of_global("keyring")
    addr = b.index_addr(base, func.params[0], elem_type=KERNEL_KEY)
    b.ret(addr)


def _build_add_key(module: Module, protect: bool) -> None:
    """keyring_add(lo, hi) -> slot index or -1.

    Key setup phase: the payload halves are encrypted *before* being
    stored (manual ``cre`` with the field addresses as tweaks).
    """
    func = Function("keyring_add", FunctionType(I64, (I64, I64)), ["lo", "hi"])
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    lo, hi = func.params
    index = b.func.new_reg(I64, "index")
    b._emit(Move(index, Const(0)))
    b.br("scan")

    b.block("scan")
    in_bounds = b.cmp("lt", index, KEYRING_SLOTS)
    b.cond_br(in_bounds, "probe", "fail")

    b.block("probe")
    slot = b.call("keyring_slot", [index])
    in_use = b.load_field(slot, KERNEL_KEY, "in_use")
    free = b.cmp("eq", in_use, 0)
    b.cond_br(free, "install", "next")

    b.block("next")
    b._emit(Move(index, b.add(index, 1)))
    b.br("scan")

    b.block("install")
    id_ptr = b.addr_of_global("keyring_next_id")
    key_id = b.raw_load(id_ptr)
    b.raw_store(id_ptr, b.add(key_id, 1))
    b.store_field(slot, KERNEL_KEY, "id", key_id)
    # Manual instrumentation: encrypt the payload with the storage
    # address as tweak, then store the ciphertext.
    lo_addr = b.field_addr(slot, KERNEL_KEY, "payload_lo")
    hi_addr = b.field_addr(slot, KERNEL_KEY, "payload_hi")
    if protect:
        lo_ct = b.crypto_enc(lo, lo_addr, KEYRING_KEY, (7, 0))
        hi_ct = b.crypto_enc(hi, hi_addr, KEYRING_KEY, (7, 0))
        b.raw_store(lo_addr, lo_ct)
        b.raw_store(hi_addr, hi_ct)
    else:
        b.raw_store(lo_addr, lo)
        b.raw_store(hi_addr, hi)
    b.store_field(slot, KERNEL_KEY, "in_use", Const(1))
    b.ret(index)

    b.block("fail")
    b.ret(Const(-1))


def _build_get_half(module: Module, protect: bool) -> None:
    """keyring_get_half(index, which) -> plaintext payload word.

    The decrypt happens immediately after the load — the plaintext key
    exists only in registers (and in protected spill slots).
    """
    func = Function(
        "keyring_get_half", FunctionType(I64, (I64, I64)),
        ["index", "which"],
    )
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    slot = b.call("keyring_slot", [func.params[0]])
    want_hi = b.cmp("ne", func.params[1], 0)
    b.cond_br(want_hi, "high", "low")

    b.block("low")
    lo_addr = b.field_addr(slot, KERNEL_KEY, "payload_lo")
    lo_ct = b.raw_load(lo_addr)
    if protect:
        b.ret(b.crypto_dec(lo_ct, lo_addr, KEYRING_KEY, (7, 0)))
    else:
        b.ret(lo_ct)

    b.block("high")
    hi_addr = b.field_addr(slot, KERNEL_KEY, "payload_hi")
    hi_ct = b.raw_load(hi_addr)
    if protect:
        b.ret(b.crypto_dec(hi_ct, hi_addr, KEYRING_KEY, (7, 0)))
    else:
        b.ret(hi_ct)


def _build_sys_add_key(module: Module) -> None:
    func = Function("sys_add_key", SYSCALL_FN, ["lo", "hi", "a2"])
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    b.ret(b.call("keyring_add", [func.params[0], func.params[1]]))


def _build_sys_encrypt(module: Module) -> None:
    """sys_encrypt(block, slot): XTEA-encrypt with a keyring key."""
    func = Function("sys_encrypt", SYSCALL_FN, ["block", "slot", "a2"])
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    block, slot = func.params[0], func.params[1]
    lo = b.call("keyring_get_half", [slot, Const(0)])
    hi = b.call("keyring_get_half", [slot, Const(1)])
    b.ret(b.call("xtea_encrypt", [block, lo, hi]))

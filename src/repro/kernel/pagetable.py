"""Page-table management with randomized PGD pointers (§3.2.4).

Page tables are globally writable kernel data; an attacker who can find
them can rewrite permissions ("Getting Physical").  RegVault hides
their location by randomizing every stored *PGD pointer* (the
``mm_struct.pgd`` field is ``__rand`` with the dedicated key ``f`` and
the storage address as tweak), and allocates the tables dynamically so
nothing static reveals them.

The model uses a two-level table: level 1 indexed by va[29:21], level 2
by va[20:12], 4 KiB pages, entry valid bit 0.
"""

from __future__ import annotations

from repro.compiler.builder import IRBuilder
from repro.compiler.ir import Const, Function, GlobalVar, Module
from repro.compiler.types import FunctionType, I64
from repro.kernel.layout import PAGE_POOL
from repro.kernel.structs import MM_STRUCT, SYSCALL_FN, THREAD_INFO

PAGE_SIZE = 4096
ENTRIES = 512
VALID = 1


def current_mm(b: IRBuilder):
    current_ptr = b.addr_of_global("current")
    thread = b.raw_load(current_ptr, name="current")
    return b.field_addr(thread, THREAD_INFO, "mm")


def build_pagetable(module: Module) -> None:
    module.add_global(GlobalVar("page_pool_next", I64, init=PAGE_POOL))
    _build_zero_page(module)
    _build_pt_alloc(module)
    _build_mm_init(module)
    _build_mm_map_page(module)
    _build_map_page(module)
    _build_translate(module)


def _build_zero_page(module: Module) -> None:
    """mm_zero_page(pa): scrub a freshly mapped page.

    Fresh pages handed to a new process must not leak prior contents;
    this is the classic (crypto-free) bulk of fork/page-fault work.
    """
    func = Function("mm_zero_page", FunctionType(I64, (I64,)), ["pa"])
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    from repro.compiler.ir import Move

    addr = b.func.new_reg(I64, "addr")
    b._emit(Move(addr, func.params[0]))
    end = b.add(func.params[0], Const(PAGE_SIZE))
    b.br("loop")
    b.block("loop")
    b.raw_store(addr, Const(0))
    b._emit(Move(addr, b.add(addr, 8)))
    more = b.cmp("ltu", addr, end)
    b.cond_br(more, "loop", "done")
    b.block("done")
    b.ret(Const(0))


def _build_pt_alloc(module: Module) -> None:
    """pt_alloc() -> physical address of a fresh zeroed page."""
    func = Function("pt_alloc", FunctionType(I64, ()))
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    next_ptr = b.addr_of_global("page_pool_next")
    page = b.raw_load(next_ptr)
    b.raw_store(next_ptr, b.add(page, PAGE_SIZE))
    b.ret(page)


def _build_mm_init(module: Module) -> None:
    """mm_init(mm): allocate the PGD; store its pointer randomized."""
    func = Function("mm_init", FunctionType(I64, (I64,)), ["mm"])
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    pgd = b.call("pt_alloc")
    # The annotated store: in memory, mm->pgd is QARMA ciphertext under
    # key f, tweaked by &mm->pgd.
    b.store_field(func.params[0], MM_STRUCT, "pgd", pgd)
    b.store_field(func.params[0], MM_STRUCT, "page_count", Const(0))
    b.ret(pgd)


def _build_mm_map_page(module: Module) -> None:
    """mm_map_page(mm, va, pa): install a 4 KiB translation in ``mm``.

    Shared by the syscall below and by fork's child address-space
    setup (sys_spawn)."""
    func = Function(
        "mm_map_page", FunctionType(I64, (I64, I64, I64)),
        ["mm", "va", "pa"],
    )
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    mm, va, pa = func.params
    pgd = b.load_field(mm, MM_STRUCT, "pgd")     # decrypts the pointer
    index1 = b.and_(b.shr(va, 21), ENTRIES - 1)
    l1_entry_addr = b.add(pgd, b.shl(index1, 3))
    l1_entry = b.raw_load(l1_entry_addr)
    present = b.and_(l1_entry, VALID)
    has_l2 = b.cmp("ne", present, 0)
    b.cond_br(has_l2, "have_l2", "alloc_l2")

    b.block("alloc_l2")
    new_l2 = b.call("pt_alloc")
    b.raw_store(l1_entry_addr, b.or_(new_l2, VALID))
    b.br("install")

    b.block("have_l2")
    b.br("install")

    b.block("install")
    l1_entry2 = b.raw_load(l1_entry_addr)
    l2_base = b.and_(l1_entry2, ~(PAGE_SIZE - 1) & 0xFFFFFFFFFFFFFFFF)
    index2 = b.and_(b.shr(va, 12), ENTRIES - 1)
    l2_entry_addr = b.add(l2_base, b.shl(index2, 3))
    page_base = b.and_(pa, ~(PAGE_SIZE - 1) & 0xFFFFFFFFFFFFFFFF)
    b.raw_store(l2_entry_addr, b.or_(page_base, VALID))
    count = b.load_field(mm, MM_STRUCT, "page_count")
    b.store_field(mm, MM_STRUCT, "page_count", b.add(count, 1))
    b.ret(Const(0))


def _build_map_page(module: Module) -> None:
    """sys_map_page(va, pa): install a translation in the current mm."""
    func = Function("sys_map_page", SYSCALL_FN, ["va", "pa", "a2"])
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    mm = current_mm(b)
    b.ret(b.call("mm_map_page", [mm, func.params[0], func.params[1]]))


def _build_translate(module: Module) -> None:
    """sys_translate(va) -> physical address or -1."""
    func = Function("sys_translate", SYSCALL_FN, ["va", "a1", "a2"])
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    va = func.params[0]
    mm = current_mm(b)
    pgd = b.load_field(mm, MM_STRUCT, "pgd")
    index1 = b.and_(b.shr(va, 21), ENTRIES - 1)
    l1_entry = b.raw_load(b.add(pgd, b.shl(index1, 3)))
    l1_valid = b.and_(l1_entry, VALID)
    ok1 = b.cmp("ne", l1_valid, 0)
    b.cond_br(ok1, "level2", "miss")

    b.block("level2")
    l2_base = b.and_(l1_entry, ~(PAGE_SIZE - 1) & 0xFFFFFFFFFFFFFFFF)
    index2 = b.and_(b.shr(va, 12), ENTRIES - 1)
    l2_entry = b.raw_load(b.add(l2_base, b.shl(index2, 3)))
    l2_valid = b.and_(l2_entry, VALID)
    ok2 = b.cmp("ne", l2_valid, 0)
    b.cond_br(ok2, "hit", "miss")

    b.block("hit")
    page = b.and_(l2_entry, ~(PAGE_SIZE - 1) & 0xFFFFFFFFFFFFFFFF)
    offset = b.and_(va, PAGE_SIZE - 1)
    b.ret(b.or_(page, offset))

    b.block("miss")
    b.ret(Const(-1))

"""Syscall table and trap dispatcher.

The syscall table is an array of function pointers living in kernel
data — exactly the kind of control data JOP attacks overwrite.  With
the ``fp`` option enabled the entries are stored encrypted (key ``b``,
storage-address tweak) and every dispatch decrypts them, so a planted
pointer decrypts to garbage and faults (§3.1.2).
"""

from __future__ import annotations

from repro.compiler.builder import IRBuilder
from repro.compiler.ir import Const, Function, GlobalVar, Module
from repro.compiler.types import ArrayType, FunctionType, I64, VOID
from repro.kernel.config import KernelConfig
from repro.kernel.irutil import csr_write, halt
from repro.kernel.structs import (
    NUM_SYSCALLS,
    SYS_ADD_KEY,
    SYS_ENCRYPT,
    SYS_EXIT,
    SYS_GETGID,
    SYS_GETPID,
    SYS_GETPPID,
    SYS_GETUID,
    SYS_MAP_PAGE,
    SYS_NOP,
    SYS_READ_CYCLE,
    SYS_SELINUX_CHECK,
    SYS_SPAWN,
    SYS_TICKS,
    SYS_SETGID,
    SYS_SETUID,
    SYS_TRANSLATE,
    SYS_WRITE,
    SYS_YIELD,
    SYSCALL_FN,
    SYSCALL_FN_PTR,
    THREAD_INFO,
)

#: mcause value of the machine timer interrupt.
TIMER_CAUSE = (1 << 63) | 7
#: mcause of an environment call from U-mode.
ECALL_U = 8
#: Exit-code base for kernel panics (0x100 | cause).
PANIC_BASE = 0x100

#: syscall number -> handler function name.
SYSCALL_HANDLERS = {
    SYS_NOP: "sys_nop",
    SYS_GETPID: "sys_getpid",
    SYS_GETUID: "sys_getuid",
    SYS_SETUID: "sys_setuid",
    SYS_WRITE: "sys_write",
    SYS_YIELD: "sys_yield",
    SYS_SELINUX_CHECK: "sys_selinux_check",
    SYS_ADD_KEY: "sys_add_key",
    SYS_ENCRYPT: "sys_encrypt",
    SYS_MAP_PAGE: "sys_map_page",
    SYS_TRANSLATE: "sys_translate",
    SYS_EXIT: "sys_exit",
    SYS_GETGID: "sys_getgid",
    SYS_SETGID: "sys_setgid",
    SYS_READ_CYCLE: "sys_read_cycle",
    SYS_GETPPID: "sys_getppid",
    SYS_SPAWN: "sys_spawn",
    SYS_TICKS: "sys_ticks",
}

#: Human-readable syscall names (handler names minus the ``sys_``
#: prefix), used by telemetry for ``syscall.<name>`` metric names.
SYSCALL_NAMES = {
    number: name[4:] if name.startswith("sys_") else name
    for number, name in SYSCALL_HANDLERS.items()
}


def build_syscalls(module: Module, config: KernelConfig) -> None:
    table_init = [
        ("func", SYSCALL_HANDLERS.get(i, "sys_nop"))
        for i in range(NUM_SYSCALLS)
    ]
    module.add_global(
        GlobalVar(
            "syscall_table",
            ArrayType(SYSCALL_FN_PTR, NUM_SYSCALLS),
            init=table_init,
        )
    )
    _build_misc_handlers(module)
    _build_dispatch(module, config)
    _build_kernel_main(module, config)


def _build_misc_handlers(module: Module) -> None:
    nop = Function("sys_nop", SYSCALL_FN, ["a0", "a1", "a2"])
    module.add_function(nop)
    b = IRBuilder(nop)
    b.block("entry")
    b.ret(Const(0))

    write = Function("sys_write", SYSCALL_FN, ["ch", "a1", "a2"])
    module.add_function(write)
    b = IRBuilder(write)
    b.block("entry")
    b.intrinsic("putc", [write.params[0]])
    b.ret(Const(1))

    cycles = Function("sys_read_cycle", SYSCALL_FN, ["a0", "a1", "a2"])
    module.add_function(cycles)
    b = IRBuilder(cycles)
    b.block("entry")
    b.ret(b.intrinsic("read_cycle", returns=True))


def _build_dispatch(module: Module, config: KernelConfig) -> None:
    """trap_dispatch(cause, epc) — called by the trap entry assembly."""
    func = Function(
        "trap_dispatch", FunctionType(VOID, (I64, I64)), ["cause", "epc"]
    )
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    cause, epc = func.params

    current = b.raw_load(b.addr_of_global("current"))
    ctx = b.field_addr(current, THREAD_INFO, "ctx")

    is_syscall = b.cmp("eq", cause, ECALL_U)
    b.cond_br(is_syscall, "syscall", "not_syscall")

    # ---- system call -------------------------------------------------------
    b.block("syscall")
    b.store_field(current, THREAD_INFO, "epc", b.add(epc, 4))
    b.local("argbuf", ArrayType(I64, 4))
    buf = b.addr_of_local("argbuf")
    b.call("cip_syscall_args", [ctx, buf], returns=False)
    number = b.raw_load(b.add(buf, 24))                    # saved a7
    in_range = b.cmp("ltu", number, NUM_SYSCALLS)
    b.cond_br(in_range, "do_syscall", "bad_syscall")

    b.block("bad_syscall")
    b.call("cip_regs_set", [ctx, Const(10), Const(-38)], returns=False)
    b.br("ret_to_user")

    b.block("do_syscall")
    arg0 = b.raw_load(buf)
    arg1 = b.raw_load(b.add(buf, 8))
    arg2 = b.raw_load(b.add(buf, 16))
    stamp = b.call("audit_entry", [number, arg0])
    table = b.addr_of_global("syscall_table")
    entry = b.index_addr(table, number, elem_type=SYSCALL_FN_PTR)
    handler = b.load(entry, SYSCALL_FN_PTR)   # fp-protected when enabled
    result = b.call_indirect(handler, [arg0, arg1, arg2])
    # `current` may have changed (yield/exit); the return value belongs
    # to the thread that made the syscall.
    b.call("cip_regs_set", [ctx, Const(10), result], returns=False)
    b.call("audit_exit", [number, stamp], returns=False)
    b.br("ret_to_user")

    # ---- not a syscall --------------------------------------------------------
    b.block("not_syscall")
    is_timer = b.cmp("eq", cause, Const(TIMER_CAUSE))
    b.cond_br(is_timer, "timer", "panic")

    b.block("timer")
    b.store_field(current, THREAD_INFO, "epc", epc)
    b.call("sched_tick", returns=False)
    b.br("ret_to_user")

    b.block("panic")
    # Unexpected trap (including RegVault integrity faults): halt with
    # a recognizable exit code so the attack framework observes it.
    code = b.or_(b.and_(cause, 0xFF), Const(PANIC_BASE))
    halt(b, code)
    b.ret()

    # ---- common return --------------------------------------------------------
    b.block("ret_to_user")
    now_current = b.raw_load(b.addr_of_global("current"))
    resume = b.load_field(now_current, THREAD_INFO, "epc")
    csr_write(b, "mepc", resume)
    b.ret()


def _build_kernel_main(module: Module, config: KernelConfig) -> None:
    """kernel_main(): subsystem bring-up, then back to boot assembly."""
    func = Function("kernel_main", FunctionType(VOID, ()))
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    b.call("__init_globals", returns=False)
    b.call("selinux_init", returns=False)
    user_entry = b.raw_load(b.addr_of_global("__user_entry"))
    b.call("threads_init", [user_entry], returns=False)
    if config.timer_interval:
        now = b.intrinsic("read_cycle", returns=True)
        b.intrinsic("set_timer", [b.add(now, Const(config.timer_interval))])
    current = b.raw_load(b.addr_of_global("current"))
    resume = b.load_field(current, THREAD_INFO, "epc")
    csr_write(b, "mepc", resume)
    b.ret()

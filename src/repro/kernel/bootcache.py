"""Boot-once, fork-per-scenario kernel session cache.

Every consumer of the simulator used to pay full kernel boot cost per
scenario: the Table-4 attack suite boots a fresh kernel for each of its
(attack, config) cells even though the post-boot state is identical
within a config.  :class:`BootCache` removes that cost:

1. the first request for a configuration boots a **template** machine —
   the kernel image loaded, user sections mapped as fixed-size regions
   but left empty, master key installed — single-stepped up to the
   first user instruction;
2. every request (including the first) **forks** the template
   copy-on-write (:func:`repro.snapshot.fork`) and writes the
   scenario's user program into the child, which copies only the pages
   it touches.

Kernel boot never reads user memory (the kernel jumps to the fixed user
entry address; ``run_until`` stops *before* the first user fetch), so a
fork-plus-program-write is bit-identical to a fresh boot with that
program going forward.

Templates are keyed by ``(KernelConfig, kernel image hash, master
key)`` — the config alone is not enough, because the kernel image also
depends on compiler internals; hashing the assembled image makes the
cache robust against any out-of-band variation.
"""

from __future__ import annotations

import hashlib

from repro.crypto.engine import CryptoEngine
from repro.crypto.keys import KeySelect
from repro.kernel import layout as kmap
from repro.machine.machine import Machine
from repro.snapshot import fork

#: Fixed span mapped for each user section in a template (64 KiB —
#: comfortably larger than any scenario program; a program that does
#: not fit falls back to an uncached boot).
TEMPLATE_USER_SPAN = 0x0001_0000


def program_digest(program) -> str:
    """Content hash of an assembled program (sections + entry point)."""
    digest = hashlib.sha256()
    for name in sorted(program.sections):
        section = program.sections[name]
        digest.update(name.encode("utf-8"))
        digest.update(section.base.to_bytes(8, "little"))
        digest.update(bytes(section.data))
    digest.update(program.entry.to_bytes(8, "little"))
    return digest.hexdigest()


class BootCache:
    """Caches booted template machines; hands out COW forks of them."""

    def __init__(self):
        self._templates: dict[tuple, Machine] = {}
        #: Template boots performed (the expensive operation saved).
        self.boots = 0
        #: Forks handed out.
        self.forks = 0
        #: Requests that could not be served from a template.
        self.fallbacks = 0

    def __len__(self) -> int:
        return len(self._templates)

    # -- public API --------------------------------------------------------------

    def machine_for(self, image, master_key: int) -> Machine | None:
        """A fresh machine parked at the user entry with ``image`` loaded.

        Returns ``None`` when the image cannot be served from a template
        (user program too large for the fixed spans, or the kernel
        never reached user space) — the caller then boots from reset.
        """
        user = image.user_program
        if not self._coverable(user):
            self.fallbacks += 1
            return None
        key = (
            image.config,
            program_digest(image.kernel_program),
            master_key,
        )
        template = self._templates.get(key)
        if template is None:
            template = self._boot_template(image, master_key)
            if template is None:
                self.fallbacks += 1
                return None
            self._templates[key] = template
        child = fork(template)
        for section in user.sections.values():
            if section.data:
                child.memory.write_bytes(section.base, bytes(section.data))
        # Match what a freshly constructed Machine would use right now
        # (the perf harness flips the default between measurement modes).
        child.fast_path = Machine.DEFAULT_FAST_PATH
        self.forks += 1
        return child

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _coverable(user_program) -> bool:
        """Does every user section fit inside the fixed template spans?"""
        for section in user_program.sections.values():
            if not section.data:
                continue
            base = kmap.USER_BASES.get(section.name)
            if base is None or section.base != base:
                return False
            if len(section.data) > TEMPLATE_USER_SPAN:
                return False
        return True

    def _boot_template(self, image, master_key: int) -> Machine | None:
        """Boot the kernel once with empty user regions mapped."""
        from repro.crypto.alternatives import CIPHER_MISS_CYCLES, make_cipher

        config = image.config
        engine = CryptoEngine(
            clb_entries=config.clb_entries,
            cipher=make_cipher(config.cipher),
            miss_cycles=CIPHER_MISS_CYCLES[config.cipher],
        )
        machine = Machine(engine=engine)
        machine.memory.load_program(image.kernel_program)
        for name, base in kmap.USER_BASES.items():
            machine.memory.map_region(
                f"user{name}", base, TEMPLATE_USER_SPAN
            )
        machine.memory.map_region(
            "stacks", kmap.STACK_REGION, kmap.STACK_REGION_SIZE
        )
        machine.memory.map_region(
            "page_pool", kmap.PAGE_POOL, kmap.PAGE_POOL_SIZE
        )
        engine.key_file.set_key(KeySelect.M, master_key)
        machine.hart.pc = image.kernel_program.entry
        self.boots += 1
        if not machine.run_until(image.user_program.entry, 20_000_000):
            return None
        return machine

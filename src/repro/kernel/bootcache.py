"""Boot-once, fork-per-scenario kernel session cache.

Every consumer of the simulator used to pay full kernel boot cost per
scenario: the Table-4 attack suite boots a fresh kernel for each of its
(attack, config) cells even though the post-boot state is identical
within a config.  :class:`BootCache` removes that cost:

1. the first request for a configuration boots a **template** machine —
   the kernel image loaded, user sections mapped as fixed-size regions
   but left empty, master key installed — single-stepped up to the
   first user instruction;
2. every request (including the first) **forks** the template
   copy-on-write (:func:`repro.snapshot.fork`) and writes the
   scenario's user program into the child, which copies only the pages
   it touches.

Kernel boot never reads user memory (the kernel jumps to the fixed user
entry address; ``run_until`` stops *before* the first user fetch), so a
fork-plus-program-write is bit-identical to a fresh boot with that
program going forward.

Templates are keyed by ``(KernelConfig, kernel image hash, master
key)`` — the config alone is not enough, because the kernel image also
depends on compiler internals; hashing the assembled image makes the
cache robust against any out-of-band variation.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

from repro.crypto.engine import CryptoEngine
from repro.crypto.keys import KeySelect
from repro.kernel import layout as kmap
from repro.machine.codecache import SharedCodeRegistry
from repro.machine.machine import Machine
from repro.snapshot import fork

#: Fixed span mapped for each user section in a template (64 KiB —
#: comfortably larger than any scenario program; a program that does
#: not fit falls back to an uncached boot).
TEMPLATE_USER_SPAN = 0x0001_0000


def program_digest(program) -> str:
    """Content hash of an assembled program (sections + entry point)."""
    digest = hashlib.sha256()
    for name in sorted(program.sections):
        section = program.sections[name]
        digest.update(name.encode("utf-8"))
        digest.update(section.base.to_bytes(8, "little"))
        digest.update(bytes(section.data))
    digest.update(program.entry.to_bytes(8, "little"))
    return digest.hexdigest()


#: Default template bound: large enough for the whole Figure-5 build
#: matrix plus a couple of ad-hoc configs, small enough that a
#: long-lived fleet worker cannot accumulate booted machines without
#: limit.
DEFAULT_MAX_TEMPLATES = 8

#: Layout/shared-code tables retained beyond the template bound.
#: Deliberately larger than ``DEFAULT_MAX_TEMPLATES``: a table must
#: outlive its template, because live forks keep publishing into it
#: after an eviction and a re-booted template's new forks must rejoin
#: the *same* table those siblings hold — dropping the dict entry at
#: eviction time would silently split one sharing domain into two.
MAX_LAYOUT_TABLES = 16


class BootCache:
    """Caches booted template machines; hands out COW forks of them.

    The cache is bounded: at most ``max_templates`` booted machines are
    retained, evicted least-recently-used (every hit refreshes the
    template's recency).  ``max_templates=None`` keeps the old
    unbounded behaviour.
    """

    def __init__(self, max_templates: int | None = DEFAULT_MAX_TEMPLATES):
        if max_templates is not None and max_templates < 1:
            raise ValueError(
                f"need at least one template slot, got {max_templates}"
            )
        self.max_templates = max_templates
        self._templates: OrderedDict[tuple, Machine] = OrderedDict()
        #: Per-template shared block layouts: every fork of a template
        #: contributes its translations and adopts its siblings'
        #: (validated byte-for-byte at adoption), so the hot kernel
        #: paths are predecoded once per template, not once per fork.
        #: Bounded by ``MAX_LAYOUT_TABLES``, *not* tied to template
        #: eviction (see :meth:`_trim_tables`).
        self._layouts: OrderedDict[tuple, dict] = OrderedDict()
        #: Per-template shared compiled code: the first fork to compile
        #: a block publishes its code object and every sibling rebinds
        #: it after the same byte-for-byte validation, so forks skip
        #: compilation exactly as shared layouts let them skip
        #: translation.
        self._shared_code: OrderedDict[tuple, SharedCodeRegistry] = (
            OrderedDict()
        )
        #: Template boots performed (the expensive operation saved).
        self.boots = 0
        #: Forks handed out.
        self.forks = 0
        #: Requests that could not be served from a template.
        self.fallbacks = 0
        #: Templates dropped to keep the cache within ``max_templates``.
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._templates)

    def stats(self) -> dict:
        """Counter snapshot (plus current size) for reporting."""
        return {
            "templates": len(self._templates),
            "max_templates": self.max_templates,
            "boots": self.boots,
            "forks": self.forks,
            "fallbacks": self.fallbacks,
            "evictions": self.evictions,
            "layout_tables": len(self._layouts),
            "shared_code_tables": len(self._shared_code),
            "shared_code_binds": sum(
                registry.binds for registry in self._shared_code.values()
            ),
        }

    def publish_metrics(self, registry, prefix: str = "bootcache") -> None:
        """Expose the cache counters as gauges on a metrics registry."""
        for name, value in self.stats().items():
            if name == "max_templates":
                continue
            registry.set(f"{prefix}.{name}", value)

    # -- public API --------------------------------------------------------------

    def machine_for(self, image, master_key: int) -> Machine | None:
        """A fresh machine parked at the user entry with ``image`` loaded.

        Returns ``None`` when the image cannot be served from a template
        (user program too large for the fixed spans, or the kernel
        never reached user space) — the caller then boots from reset.
        """
        user = image.user_program
        if not self._coverable(user):
            self.fallbacks += 1
            return None
        key = (
            image.config,
            program_digest(image.kernel_program),
            master_key,
        )
        template = self._templates.get(key)
        if template is None:
            template = self._boot_template(image, master_key)
            if template is None:
                self.fallbacks += 1
                return None
            self._templates[key] = template
            if (
                self.max_templates is not None
                and len(self._templates) > self.max_templates
            ):
                # Evicting a template must NOT drop its layout or
                # shared-code tables: live forks still publish into
                # them, and a re-boot of the same key has to rejoin the
                # table those siblings hold.  Tables have their own
                # (larger) bound; see _trim_tables.
                self._templates.popitem(last=False)
                self.evictions += 1
                self._trim_tables()
        else:
            self._templates.move_to_end(key)
        child = fork(template)
        child.hart.shared_layouts = self._layouts.setdefault(key, {})
        self._layouts.move_to_end(key)
        child.hart.shared_code = self._shared_code.setdefault(
            key, SharedCodeRegistry()
        )
        self._shared_code.move_to_end(key)
        for section in user.sections.values():
            if section.data:
                child.memory.write_bytes(section.base, bytes(section.data))
        # Match what a freshly constructed Machine would use right now
        # (the perf harness flips the default between measurement modes).
        child.fast_path = Machine.DEFAULT_FAST_PATH
        self.forks += 1
        return child

    def template_cache_keys(self) -> dict[tuple, str]:
        """Persistent code-cache key of each parked template.

        The key folds the template's compile-relevant configuration
        (:func:`repro.machine.codecache.config_signature`) with the
        kernel image digest it was booted from — the kernel-side
        namespace all of its forks share.  (A full ``CodeCache`` set
        key additionally folds the user program; this template-scope
        key is what fleet workers publish so siblings can tell they are
        drawing from the same compiled set.)
        """
        from repro.machine.codecache import cache_key, config_signature

        return {
            key: cache_key(key[1], config_signature(template.hart))
            for key, template in self._templates.items()
        }

    # -- internals ---------------------------------------------------------------

    def _trim_tables(self) -> None:
        """Bound the layout/shared-code tables, preferring to drop
        tables whose template is gone (a live template's table is only
        sacrificed when evicted keys alone cannot satisfy the bound)."""
        for tables in (self._layouts, self._shared_code):
            while len(tables) > MAX_LAYOUT_TABLES:
                victim = next(
                    (k for k in tables if k not in self._templates),
                    next(iter(tables)),
                )
                del tables[victim]

    @staticmethod
    def _coverable(user_program) -> bool:
        """Does every user section fit inside the fixed template spans?"""
        for section in user_program.sections.values():
            if not section.data:
                continue
            base = kmap.USER_BASES.get(section.name)
            if base is None or section.base != base:
                return False
            if len(section.data) > TEMPLATE_USER_SPAN:
                return False
        return True

    def _boot_template(self, image, master_key: int) -> Machine | None:
        """Boot the kernel once with empty user regions mapped."""
        from repro.crypto.alternatives import CIPHER_MISS_CYCLES, make_cipher

        config = image.config
        engine = CryptoEngine(
            clb_entries=config.clb_entries,
            cipher=make_cipher(config.cipher),
            miss_cycles=CIPHER_MISS_CYCLES[config.cipher],
        )
        machine = Machine(engine=engine)
        machine.memory.load_program(image.kernel_program)
        for name, base in kmap.USER_BASES.items():
            machine.memory.map_region(
                f"user{name}", base, TEMPLATE_USER_SPAN
            )
        machine.memory.map_region(
            "stacks", kmap.STACK_REGION, kmap.STACK_REGION_SIZE
        )
        machine.memory.map_region(
            "page_pool", kmap.PAGE_POOL, kmap.PAGE_POOL_SIZE
        )
        engine.key_file.set_key(KeySelect.M, master_key)
        machine.hart.pc = image.kernel_program.entry
        self.boots += 1
        if not machine.run_until(image.user_program.entry, 20_000_000):
            return None
        return machine

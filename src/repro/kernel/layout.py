"""Kernel and user memory map.

All addresses stay below 2^31 so ``la`` materializes them with a
lui/addi pair (see :mod:`repro.isa.assembler`).
"""

from __future__ import annotations

#: Kernel sections use the assembler defaults:
KERNEL_TEXT = 0x0001_0000
KERNEL_RODATA = 0x0300_0000
KERNEL_DATA = 0x0400_0000
KERNEL_BSS = 0x0600_0000

#: User program sections.
USER_TEXT = 0x0100_0000
USER_DATA = 0x0500_0000
USER_BSS = 0x0700_0000

USER_BASES = {
    ".text": USER_TEXT,
    ".rodata": USER_DATA + 0x0008_0000,
    ".data": USER_DATA,
    ".bss": USER_BSS,
}

#: Stack region (mapped by the session).
STACK_REGION = 0x0800_0000
STACK_REGION_SIZE = 0x0010_0000

#: Kernel stack occupies the top of the stack region.
KERNEL_STACK_TOP = STACK_REGION + STACK_REGION_SIZE

#: Per-thread user stacks, 64 KiB apart, below the kernel stack.
USER_STACK_STRIDE = 0x0001_0000


def user_stack_top(tid: int) -> int:
    return STACK_REGION + USER_STACK_STRIDE * (tid + 1)


#: Page-table pool (the kernel "re-allocates page tables" here, §3.2.4).
PAGE_POOL = 0x0900_0000
PAGE_POOL_SIZE = 0x0080_0000

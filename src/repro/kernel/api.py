"""KernelSession — boot, run and inspect a RegVault-protected kernel.

The session owns the simulated machine, plays the hardware's part
(installing the master key at reset — the kernel never sees it), loads
the kernel and user images and exposes the inspection/attack surface
used by :mod:`repro.attacks` and the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.ir import Module
from repro.crypto.engine import CryptoEngine
from repro.crypto.keys import KeySelect
from repro.kernel.build import KernelImage, build_kernel
from repro.kernel.config import KernelConfig
from repro.kernel import layout as kmap
from repro.kernel.syscalls import PANIC_BASE
from repro.machine.machine import HaltReason, Machine
from repro.machine.trap import Cause

#: Deterministic "hardware" master key installed at reset.
DEFAULT_MASTER_KEY = 0x6D61737465726B65795F68772F726567


@dataclass
class RunResult:
    """Outcome of a kernel run."""

    halt_reason: HaltReason | None
    exit_code: int
    console: str
    cycles: int
    instructions: int

    @property
    def panicked(self) -> bool:
        return (
            self.halt_reason is HaltReason.SHUTDOWN
            and PANIC_BASE <= self.exit_code < PANIC_BASE + 0x100
        )

    @property
    def panic_cause(self) -> int | None:
        return (self.exit_code - PANIC_BASE) if self.panicked else None

    @property
    def integrity_fault(self) -> bool:
        return self.panic_cause == int(Cause.REGVAULT_INTEGRITY_FAULT)

    @property
    def access_fault(self) -> bool:
        return self.panic_cause in (
            int(Cause.INSTRUCTION_ACCESS_FAULT),
            int(Cause.LOAD_ACCESS_FAULT),
            int(Cause.STORE_ACCESS_FAULT),
            int(Cause.INSTRUCTION_MISALIGNED),
            int(Cause.ILLEGAL_INSTRUCTION),
        )


class KernelSession:
    """One booted machine + kernel + user program.

    With ``boot_cache`` (a :class:`repro.kernel.bootcache.BootCache`),
    the session machine is a copy-on-write fork of a template that
    already booted this configuration, parked at the first user
    instruction — bit-identical going forward to a machine booted from
    reset, minus the repeated boot cost.
    """

    def __init__(
        self,
        config: KernelConfig | None = None,
        user_module: Module | None = None,
        master_key: int = DEFAULT_MASTER_KEY,
        image: KernelImage | None = None,
        boot_cache=None,
    ):
        self.config = config or KernelConfig.full()
        self.image = image if image is not None else build_kernel(
            self.config, user_module
        )
        machine = (
            boot_cache.machine_for(self.image, master_key)
            if boot_cache is not None
            else None
        )
        if machine is not None:
            self.machine = machine
            return
        from repro.crypto.alternatives import CIPHER_MISS_CYCLES, make_cipher

        engine = CryptoEngine(
            clb_entries=self.config.clb_entries,
            cipher=make_cipher(self.config.cipher),
            miss_cycles=CIPHER_MISS_CYCLES[self.config.cipher],
        )
        self.machine = Machine(engine=engine)
        self.machine.memory.load_program(self.image.kernel_program)
        self.machine.memory.load_program(self.image.user_program)
        self.machine.memory.map_region(
            "stacks", kmap.STACK_REGION, kmap.STACK_REGION_SIZE
        )
        self.machine.memory.map_region(
            "page_pool", kmap.PAGE_POOL, kmap.PAGE_POOL_SIZE
        )
        # Hardware installs the master key at reset; the kernel can use
        # it through cremk/crdmk but can never read or write it.
        engine.key_file.set_key(KeySelect.M, master_key)
        self.machine.hart.pc = self.image.kernel_program.entry

    # -- execution ---------------------------------------------------------------

    def run(self, max_steps: int = 20_000_000) -> RunResult:
        reason = self.machine.run(max_steps)
        return self._result(reason)

    def run_until(self, symbol_or_pc, max_steps: int = 20_000_000) -> bool:
        """Run until a pc (or named symbol) is about to execute."""
        pc = (
            symbol_or_pc
            if isinstance(symbol_or_pc, int)
            else self.image.symbol(symbol_or_pc)
        )
        return self.machine.run_until(pc, max_steps)

    def resume(self, max_steps: int = 20_000_000) -> RunResult:
        return self.run(max_steps)

    def _result(self, reason) -> RunResult:
        return RunResult(
            halt_reason=reason,
            exit_code=self.machine.exit_code,
            console=self.machine.console,
            cycles=self.machine.hart.cycles,
            instructions=self.machine.hart.instret,
        )

    # -- inspection / attack primitives ---------------------------------------------

    def symbol(self, name: str) -> int:
        return self.image.symbol(name)

    def read_u64(self, address: int) -> int:
        """Arbitrary kernel memory read (the threat model's primitive)."""
        return self.machine.memory.read_u64(address)

    def write_u64(self, address: int, value: int) -> None:
        """Arbitrary kernel memory write (the threat model's primitive)."""
        self.machine.memory.write_u64(address, value)

    def read_u32(self, address: int) -> int:
        return self.machine.memory.read_u32(address)

    def write_u32(self, address: int, value: int) -> None:
        self.machine.memory.write_u32(address, value)

    def field_addr(self, symbol: str, struct, field_name: str) -> int:
        return self.image.global_field_addr(symbol, struct, field_name)

    def thread_field_addr(self, tid: int, field_name: str) -> int:
        return self.image.thread_field_addr(tid, field_name)

    def context_kind(self, tid: int) -> int:
        """Decode a thread's saved-context kind marker (0 plain, 1 CIP).

        In CIP builds the marker is sealed under the thread's interrupt
        key; this debug helper unseals it through the engine (something
        an attacker cannot do — the key is not CSR-readable).
        """
        from repro.crypto.keys import KeySelect
        from repro.crypto.primitives import ByteRange, crd

        ctx = self.thread_field_addr(tid, "ctx")
        raw = self.read_u64(ctx)
        if not self.config.cip:
            return raw
        key = self.thread_interrupt_key(tid)
        return crd(raw, ByteRange(0, 0), ctx, key,
                   cipher=self.machine.engine.cipher)

    def thread_interrupt_key(self, tid: int) -> int:
        """Unwrap a thread's interrupt key (debug view).

        The key sits in thread_info wrapped under the master key
        (§3.1.1); the session plays the hardware, so it may use the
        master key — the attacker cannot.
        """
        from repro.crypto.keys import KeySelect
        from repro.crypto.primitives import FULL_RANGE, crd

        master = self.machine.engine.key_file.key(KeySelect.M)
        halves = []
        for field in ("wrapped_int_key_lo", "wrapped_int_key_hi"):
            addr = self.thread_field_addr(tid, field)
            wrapped = self.read_u64(addr)
            halves.append(
                crd(wrapped, FULL_RANGE, addr, master,
                    cipher=self.machine.engine.cipher)
            )
        return (halves[1] << 64) | halves[0]

    @property
    def stats(self):
        return self.machine.engine.stats

    @property
    def clb_stats(self):
        return self.machine.engine.clb.stats


def boot_and_run(
    config: KernelConfig | None = None,
    user_module: Module | None = None,
    max_steps: int = 20_000_000,
) -> RunResult:
    """Convenience one-shot: build, boot, run to completion."""
    return KernelSession(config, user_module).run(max_steps)

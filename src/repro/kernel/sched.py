"""Threads, per-thread keys and the round-robin scheduler.

Implements the paper's per-thread key discipline (§3.1.1, §2.4.3):

* at thread creation, fresh RA and interrupt keys are drawn from the
  entropy device, **wrapped with the master key** (``cremk`` with the
  storage address as tweak) and stored in ``thread_info``;
* on a context switch the scheduler flips ``__need_key_reload``; the
  trap exit path unwraps the incoming thread's keys (``crdmk``) and
  writes them to key registers ``a`` and ``c``, so every thread's
  return addresses and interrupt contexts are encrypted under its own
  keys — this is what defeats cross-thread substitution.
"""

from __future__ import annotations

from repro.compiler.builder import IRBuilder
from repro.compiler.ir import Const, Function, GlobalVar, Module, Move
from repro.compiler.types import ArrayType, FunctionType, I64, VOID
from repro.crypto.keys import KeySelect
from repro.kernel.config import KernelConfig
from repro.kernel.irutil import csr_write, halt, rng_read
from repro.kernel.layout import user_stack_top
from repro.kernel.structs import MAX_THREADS, SYSCALL_FN, THREAD_INFO


def _num_slots(config: KernelConfig) -> int:
    return max(config.num_threads, MAX_THREADS)


def build_sched(module: Module, config: KernelConfig) -> None:
    module.add_global(
        GlobalVar("threads", ArrayType(THREAD_INFO, _num_slots(config)))
    )
    module.add_global(GlobalVar("current", I64))
    module.add_global(GlobalVar("__need_key_reload", I64))
    module.add_global(GlobalVar("tick_count", I64))
    _build_thread_at(module)
    _build_threads_init(module, config)
    _build_pick_next(module, config)
    _build_switch_to(module)
    _build_tick(module, config)
    _build_sys_yield(module)
    _build_sys_exit(module, config)
    _build_sys_getpid(module)
    _build_sys_getppid(module)
    _build_sys_spawn(module, config)
    _build_sys_ticks(module)


def _build_thread_at(module: Module) -> None:
    """thread_at(index) -> &threads[index]."""
    func = Function("thread_at", FunctionType(I64, (I64,)), ["index"])
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    base = b.addr_of_global("threads")
    b.ret(b.index_addr(base, func.params[0], elem_type=THREAD_INFO))


def _wrap_key_half(b: IRBuilder, thread, field: str, value) -> None:
    """Wrap a fresh key word under the master key; store the ciphertext."""
    addr = b.field_addr(thread, THREAD_INFO, field)
    wrapped = b.crypto_enc(value, addr, KeySelect.M, (7, 0))
    b.raw_store(addr, wrapped)


def _build_threads_init(module: Module, config: KernelConfig) -> None:
    """threads_init(user_entry): create every thread, seal contexts."""
    func = Function(
        "threads_init", FunctionType(VOID, (I64,)), ["user_entry"]
    )
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    user_entry = func.params[0]

    for tid in range(_num_slots(config)):
        thread = b.call("thread_at", [Const(tid)])
        b.store_field(thread, THREAD_INFO, "tid", Const(tid))
        if tid >= config.num_threads:
            # Spare slot for sys_spawn: dead until claimed.
            b.store_field(thread, THREAD_INFO, "state", Const(0))
            continue
        b.store_field(thread, THREAD_INFO, "state", Const(1))
        b.store_field(thread, THREAD_INFO, "epc", user_entry)
        b.store_field(
            thread, THREAD_INFO, "user_sp", Const(user_stack_top(tid))
        )
        b.store_field(thread, THREAD_INFO, "user_entry", user_entry)

        if config.uses_keys:
            # Fresh per-thread keys, wrapped for storage (§3.1.1).
            ra_lo, ra_hi = rng_read(b), rng_read(b)
            _wrap_key_half(b, thread, "wrapped_ra_key_lo", ra_lo)
            _wrap_key_half(b, thread, "wrapped_ra_key_hi", ra_hi)
            int_lo, int_hi = rng_read(b), rng_read(b)
            _wrap_key_half(b, thread, "wrapped_int_key_lo", int_lo)
            _wrap_key_half(b, thread, "wrapped_int_key_hi", int_hi)
            if config.cip:
                # cip_seal encrypts the kind marker under key c; it
                # must be THIS thread's key (the exit path unseals with
                # the owning thread's key after the reload).
                csr_write(b, "kregc_lo", int_lo)
                csr_write(b, "kregc_hi", int_hi)

        ctx = b.field_addr(thread, THREAD_INFO, "ctx")
        b.call(
            "cip_seal", [ctx, Const(user_stack_top(tid))], returns=False
        )

        cred = b.field_addr(thread, THREAD_INFO, "cred")
        initial_id = 0 if (config.root_thread and tid == 0) else 1000
        b.call(
            "cred_init", [cred, Const(initial_id), Const(initial_id)],
            returns=False,
        )
        mm = b.field_addr(thread, THREAD_INFO, "mm")
        b.call("mm_init", [mm])

    # Thread 0 runs first: expose its context and request a key reload.
    first = b.call("thread_at", [Const(0)])
    current_ptr = b.addr_of_global("current")
    b.raw_store(current_ptr, first)
    ctx0 = b.field_addr(first, THREAD_INFO, "ctx")
    csr_write(b, "mscratch", ctx0)
    flag = b.addr_of_global("__need_key_reload")
    b.raw_store(flag, Const(1))
    b.ret()


def _build_pick_next(module: Module, config: KernelConfig) -> None:
    """sched_pick_next() -> next runnable thread (or current if none)."""
    func = Function("sched_pick_next", FunctionType(I64, ()))
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    current_ptr = b.addr_of_global("current")
    current = b.raw_load(current_ptr)
    tid = b.load_field(current, THREAD_INFO, "tid")
    offset = b.func.new_reg(I64, "offset")
    b._emit(Move(offset, Const(1)))
    b.br("scan")

    b.block("scan")
    in_range = b.cmp("le", offset, _num_slots(config))
    b.cond_br(in_range, "probe", "none")

    b.block("probe")
    index = b.remu(b.add(tid, offset), _num_slots(config))
    candidate = b.call("thread_at", [index])
    state = b.load_field(candidate, THREAD_INFO, "state")
    runnable = b.cmp("ne", state, 0)
    b.cond_br(runnable, "found", "advance")

    b.block("advance")
    b._emit(Move(offset, b.add(offset, 1)))
    b.br("scan")

    b.block("found")
    b.ret(candidate)
    b.block("none")
    b.ret(current)


def _build_switch_to(module: Module) -> None:
    """sched_switch_to(thread): make it current; exit path reloads keys."""
    func = Function("sched_switch_to", FunctionType(VOID, (I64,)), ["next"])
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    next_thread = func.params[0]
    current_ptr = b.addr_of_global("current")
    b.raw_store(current_ptr, next_thread)
    ctx = b.field_addr(next_thread, THREAD_INFO, "ctx")
    csr_write(b, "mscratch", ctx)
    flag = b.addr_of_global("__need_key_reload")
    b.raw_store(flag, Const(1))
    b.ret()


def _build_tick(module: Module, config: KernelConfig) -> None:
    """sched_tick(): timer interrupt body — re-arm, maybe switch."""
    func = Function("sched_tick", FunctionType(VOID, ()))
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    ticks = b.addr_of_global("tick_count")
    b.raw_store(ticks, b.add(b.raw_load(ticks), 1))
    if config.timer_interval:
        now = b.intrinsic("read_cycle", returns=True)
        b.intrinsic("set_timer", [b.add(now, Const(config.timer_interval))])
    nxt = b.call("sched_pick_next")
    current = b.raw_load(b.addr_of_global("current"))
    same = b.cmp("eq", nxt, current)
    b.cond_br(same, "out", "switch")
    b.block("switch")
    b.call("sched_switch_to", [nxt], returns=False)
    b.br("out")
    b.block("out")
    b.ret()


def _build_sys_yield(module: Module) -> None:
    func = Function("sys_yield", SYSCALL_FN, ["a0", "a1", "a2"])
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    nxt = b.call("sched_pick_next")
    current = b.raw_load(b.addr_of_global("current"))
    same = b.cmp("eq", nxt, current)
    b.cond_br(same, "out", "switch")
    b.block("switch")
    b.call("sched_switch_to", [nxt], returns=False)
    b.br("out")
    b.block("out")
    b.ret(Const(0))


def _build_sys_exit(module: Module, config: KernelConfig) -> None:
    func = Function("sys_exit", SYSCALL_FN, ["code", "a1", "a2"])
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    current = b.raw_load(b.addr_of_global("current"))
    b.store_field(current, THREAD_INFO, "state", Const(0))
    nxt = b.call("sched_pick_next")
    state = b.load_field(nxt, THREAD_INFO, "state")
    alive = b.cmp("ne", state, 0)
    b.cond_br(alive, "switch", "shutdown")
    b.block("switch")
    b.call("sched_switch_to", [nxt], returns=False)
    b.ret(Const(0))
    b.block("shutdown")
    halt(b, func.params[0])
    b.ret(Const(0))


def _build_sys_getpid(module: Module) -> None:
    func = Function("sys_getpid", SYSCALL_FN, ["a0", "a1", "a2"])
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    current = b.raw_load(b.addr_of_global("current"))
    b.ret(b.load_field(current, THREAD_INFO, "tid"))


def _build_sys_getppid(module: Module) -> None:
    func = Function("sys_getppid", SYSCALL_FN, ["a0", "a1", "a2"])
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    b.ret(Const(0))


def _build_sys_spawn(module: Module, config: KernelConfig) -> None:
    """sys_spawn(entry) -> child tid, or -1 when no slot is free.

    The fork-lite path: claims a dead thread slot, **copies the
    caller's credentials through the typed copy** (the paper's memcpy
    handling, §2.4.2 — annotated fields are re-encrypted under the
    child's storage addresses), gives the child a fresh address space,
    fresh wrapped per-thread keys and a sealed context, and makes it
    runnable at ``entry``.
    """
    func = Function("sys_spawn", SYSCALL_FN, ["entry", "a1", "a2"])
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry_block")
    entry = func.params[0]
    index = b.func.new_reg(I64, "index")
    b._emit(Move(index, Const(0)))
    b.br("scan")

    b.block("scan")
    in_range = b.cmp("lt", index, _num_slots(config))
    b.cond_br(in_range, "probe", "fail")

    b.block("probe")
    child = b.call("thread_at", [index])
    state = b.load_field(child, THREAD_INFO, "state")
    free = b.cmp("eq", state, 0)
    b.cond_br(free, "claim", "next")

    b.block("next")
    b._emit(Move(index, b.add(index, 1)))
    b.br("scan")

    b.block("claim")
    b.store_field(child, THREAD_INFO, "epc", entry)
    b.store_field(child, THREAD_INFO, "user_entry", entry)
    sp = b.add(Const(user_stack_top(0)), b.mul(index, Const(0x1_0000)))
    b.store_field(child, THREAD_INFO, "user_sp", sp)
    b.store_field(child, THREAD_INFO, "syscall_count", Const(0))
    b.store_field(child, THREAD_INFO, "kernel_cycles", Const(0))

    if config.uses_keys:
        ra_lo, ra_hi = rng_read(b), rng_read(b)
        _wrap_key_half(b, child, "wrapped_ra_key_lo", ra_lo)
        _wrap_key_half(b, child, "wrapped_ra_key_hi", ra_hi)
        int_lo, int_hi = rng_read(b), rng_read(b)
        _wrap_key_half(b, child, "wrapped_int_key_lo", int_lo)
        _wrap_key_half(b, child, "wrapped_int_key_hi", int_hi)
        if config.cip:
            # Seal the child's context under ITS interrupt key...
            csr_write(b, "kregc_lo", int_lo)
            csr_write(b, "kregc_hi", int_hi)

    ctx = b.field_addr(child, THREAD_INFO, "ctx")
    b.call("cip_seal", [ctx, sp], returns=False)

    if config.uses_keys and config.cip:
        # ...then restore the caller's interrupt key (write-only CSRs:
        # re-derive it by unwrapping the stored copy, §3.1.1).
        current = b.raw_load(b.addr_of_global("current"))
        for field_name, csr in (
            ("wrapped_int_key_lo", "kregc_lo"),
            ("wrapped_int_key_hi", "kregc_hi"),
        ):
            addr = b.field_addr(current, THREAD_INFO, field_name)
            wrapped = b.raw_load(addr)
            plain = b.crypto_dec(wrapped, addr, KeySelect.M, (7, 0))
            csr_write(b, csr, plain)

    # Fork semantics: the child inherits the caller's credentials —
    # via the typed copy, so every annotated field is re-encrypted
    # with the child's field addresses as tweaks.
    current = b.raw_load(b.addr_of_global("current"))
    src_cred = b.field_addr(current, THREAD_INFO, "cred")
    dst_cred = b.field_addr(child, THREAD_INFO, "cred")
    b.call("copy_cred", [dst_cred, src_cred], returns=False)

    mm = b.field_addr(child, THREAD_INFO, "mm")
    b.call("mm_init", [mm])
    # Fork builds the child's initial address space: back its stack
    # with fresh, scrubbed pages — the page-table population and page
    # zeroing are real fork's dominant (crypto-free) cost.
    for page in range(8):
        va = b.sub(sp, Const(0x1000 * (page + 1)))
        backing = b.call("pt_alloc")
        b.call("mm_map_page", [mm, va, backing])
        b.call("mm_zero_page", [backing], returns=False)

    b.store_field(child, THREAD_INFO, "state", Const(1))
    b.ret(index)

    b.block("fail")
    b.ret(Const(-1))


def _build_sys_ticks(module: Module) -> None:
    func = Function("sys_ticks", SYSCALL_FN, ["a0", "a1", "a2"])
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    b.ret(b.raw_load(b.addr_of_global("tick_count")))


# -- host-side inspection ---------------------------------------------------------


def read_current_tid(memory, image) -> int | None:
    """Read the running thread's tid straight from guest memory.

    Used by telemetry's kernel probe to attribute syscalls and detect
    context switches without executing any guest code.  Returns None
    before the scheduler has set ``current`` (or if the kernel data
    section is not mapped yet).
    """
    from repro.errors import KernelError, MemoryFault

    try:
        pointer = memory.read_u64(image.symbol("current"))
        if pointer == 0:
            return None
        return memory.read_u64(
            pointer + image.field_offset(THREAD_INFO, "tid")
        )
    except (KernelError, MemoryFault):
        return None

"""In-kernel XTEA cipher (the crypto-subsystem consumer of keyring keys).

The paper's proof of concept protects the AES engine of the Linux
crypto subsystem (§3.2.1).  AES needs table lookups that would bloat
this mini kernel, so the in-kernel cipher here is XTEA — the protected
property is identical: the *keyring key material* feeding the cipher is
ciphertext at rest and is decrypted by RegVault primitives immediately
after being loaded (see :mod:`repro.kernel.keyring`); the cipher itself
only ever sees plaintext key words in registers.

This substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

from repro.compiler.builder import IRBuilder
from repro.compiler.ir import Const, Function, Module, Move
from repro.compiler.types import FunctionType, I64

DELTA = 0x9E3779B9
ROUNDS = 32
MASK32 = 0xFFFFFFFF


def build_xtea(module: Module) -> None:
    _build(module, encrypt=True)
    _build(module, encrypt=False)


def _mask32(b: IRBuilder, value):
    return b.and_(value, Const(MASK32))


def _key_word(b: IRBuilder, key_base, index):
    """k[index & 3] from a 4-word key array on the stack."""
    masked = b.and_(index, 3)
    addr = b.add(key_base, b.shl(masked, 3))
    return b.raw_load(addr)


def _build(module: Module, encrypt: bool) -> None:
    """xtea_{en,de}crypt(block, key_lo, key_hi) -> block'.

    ``key_lo``/``key_hi`` carry k0|k1<<32 and k2|k3<<32 (the 128-bit
    XTEA key), arriving in registers straight from the keyring decrypt.
    """
    name = "xtea_encrypt" if encrypt else "xtea_decrypt"
    func = Function(
        name, FunctionType(I64, (I64, I64, I64)),
        ["block", "key_lo", "key_hi"],
    )
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    block, key_lo, key_hi = func.params

    # Spill the four 32-bit key words to a small stack array so the
    # round function can index k[sum & 3].
    from repro.compiler.types import ArrayType

    b.local("keywords", ArrayType(I64, 4))
    key_base = b.addr_of_local("keywords")
    b.raw_store(key_base, _mask32(b, key_lo))
    b.raw_store(b.add(key_base, 8), b.shr(key_lo, 32))
    b.raw_store(b.add(key_base, 16), _mask32(b, key_hi))
    b.raw_store(b.add(key_base, 24), b.shr(key_hi, 32))

    v0 = b.func.new_reg(I64, "v0")
    v1 = b.func.new_reg(I64, "v1")
    total = b.func.new_reg(I64, "sum")
    i = b.func.new_reg(I64, "i")
    b._emit(Move(v0, _mask32(b, block)))
    b._emit(Move(v1, b.shr(block, 32)))
    initial_sum = 0 if encrypt else (DELTA * ROUNDS) & 0xFFFFFFFFFFFFFFFF
    b._emit(Move(total, Const(initial_sum & MASK32)))
    b._emit(Move(i, Const(0)))
    b.br("loop")

    b.block("loop")

    def feistel(v, sum_value, key_index_source):
        shifted_l = b.shl(v, 4)
        shifted_r = b.shr(v, 5)
        mixed = b.add(b.xor(shifted_l, shifted_r), v)
        key = _key_word(b, key_base, key_index_source)
        return _mask32(b, b.xor(mixed, b.add(sum_value, key)))

    if encrypt:
        delta0 = feistel(v1, total, total)
        b._emit(Move(v0, _mask32(b, b.add(v0, delta0))))
        new_sum = _mask32(b, b.add(total, Const(DELTA)))
        b._emit(Move(total, new_sum))
        delta1 = feistel(v0, total, b.shr(total, 11))
        b._emit(Move(v1, _mask32(b, b.add(v1, delta1))))
    else:
        delta1 = feistel(v0, total, b.shr(total, 11))
        b._emit(Move(v1, _mask32(b, b.sub(v1, delta1))))
        new_sum = _mask32(b, b.sub(total, Const(DELTA)))
        b._emit(Move(total, new_sum))
        delta0 = feistel(v1, total, total)
        b._emit(Move(v0, _mask32(b, b.sub(v0, delta0))))

    b._emit(Move(i, b.add(i, 1)))
    more = b.cmp("lt", i, ROUNDS)
    b.cond_br(more, "loop", "done")

    b.block("done")
    b.ret(b.or_(v0, b.shl(v1, 32)))

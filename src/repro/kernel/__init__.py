"""Miniature operating-system kernel protected by RegVault.

This package plays the role of the paper's modified Linux v5.8.18: a
small event-driven kernel, written in the project's IR and compiled by
the RegVault-instrumenting compiler, that runs on the simulated RV64
machine.  It implements the six protected data classes of Table 2:

==================  =======================  ==========================
Data                Tweak                    Mechanism
==================  =======================  ==========================
Return addresses    stack pointer            compiler option (``ra``)
Function pointers   storage address          compiler option (``fp``)
Kernel keys         storage address          manual ``cre``/``crd``
Cred struct         storage address          ``__rand_integrity``
SELinux state       storage address          ``__rand_integrity``
PGD pointers        storage address          annotation + key ``f``
==================  =======================  ==========================

plus the chain-based interrupt context protection (CIP, §2.4.3) in the
trap entry/exit path and protected register spilling (§2.4.4) in the
compiler backend.
"""

from repro.kernel.config import KernelConfig
from repro.kernel.api import KernelSession
from repro.kernel.bootcache import BootCache

__all__ = ["BootCache", "KernelConfig", "KernelSession"]

"""Small helpers shared by the kernel's IR builders."""

from __future__ import annotations

from repro.compiler.builder import IRBuilder
from repro.compiler.ir import Const, VReg
from repro.isa.csrdefs import CSR_NAMES
from repro.machine.devices import RNG_ADDR


def csr_write(b: IRBuilder, name: str, value) -> None:
    """Emit a CSR write by name."""
    b.intrinsic("csrw", [Const(CSR_NAMES[name]), value])


def csr_read(b: IRBuilder, name: str) -> VReg:
    """Emit a CSR read by name."""
    return b.intrinsic("csrr", [Const(CSR_NAMES[name])], returns=True)


def rng_read(b: IRBuilder) -> VReg:
    """Read a 64-bit word from the hardware entropy device."""
    addr = b.move(Const(RNG_ADDR))
    return b.raw_load(addr, name="entropy")


def halt(b: IRBuilder, code) -> None:
    b.intrinsic("halt", [code if not isinstance(code, int) else Const(code)])

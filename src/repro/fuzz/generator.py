"""Valid-by-construction case generation plus word-level mutation.

The generator emits :class:`~repro.isa.instructions.Instruction`
objects drawn from the whole implemented ISA — RV64IM ALU ops, loads
and stores against the harness scratch region, forward-only branches
and jumps, CSR traffic (including key-register writes that invalidate
CLB entries, sealed key-register reads and read-only-counter writes
that must trap), ``cre``/``crd`` over the full ksel × byte-range space,
and the occasional ``ecall``/``ebreak`` — then encodes them to words.

"Valid by construction" buys termination, not tameness: every generated
control transfer is forward, so a fresh case always reaches the harness
epilogue.  Mutation then deliberately breaks that guarantee (bit flips,
slice shuffles, cross-case splices); mutated cases may loop, trap
repeatedly or execute garbage, all of which the harness bounds with its
per-case step budget and trap handler.

Everything is driven by a caller-supplied ``random.Random`` so a
campaign is a pure function of its seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from random import Random

from repro.crypto.keys import KeySelect
from repro.crypto.primitives import ByteRange
from repro.isa import instructions as tab
from repro.isa.encoder import encode
from repro.isa.instructions import (
    ACCESS_SIZE,
    Instruction,
    InstrFormat,
    crypto_mnemonic,
)
from repro.fuzz.harness import RESERVED_REGS, SCRATCH_BYTES
from repro.utils.bits import sign_extend

__all__ = ["FuzzCase", "Generator", "mutate"]

#: CSRs a generated case may write without wedging the harness
#: (mtvec is deliberately absent — clobbering the trap vector turns
#: every later fault into an unhandled-trap error).
_SAFE_CSR_WRITES = (0x340, 0x341, 0x342, 0x343)  # mscratch/mepc/mcause/mtval
_SAFE_CSR_READS = _SAFE_CSR_WRITES + (
    0x300,  # mstatus
    0x304,  # mie
    0x305,  # mtvec
    0xF14,  # mhartid
    0xC00,  # cycle
    0xC01,  # time
    0xC02,  # instret
)
#: Key CSRs (write-only; reads trap).  A..G, low and high halves.
_KEY_CSRS = tuple(range(0x5C0, 0x5CE))

_LOADS = tuple(sorted(tab.LOADS))
_STORES = tuple(sorted(tab.STORES))
_BRANCHES = tuple(sorted(tab.BRANCHES))
_ALU_RR = tuple(sorted(tab.R_TYPE)) + tuple(sorted(tab.R_TYPE_32))
_ALU_IMM = tuple(sorted(tab.I_TYPE_ALU)) + tuple(sorted(tab.I_TYPE_ALU_32))
_SHIFTS = tuple(sorted(tab.I_TYPE_SHIFT)) + tuple(sorted(tab.I_TYPE_SHIFT_32))
_CSR_OPS = tuple(sorted(tab.CSR_OPS))


@dataclass(frozen=True)
class FuzzCase:
    """One self-contained fuzz input."""

    name: str
    body_words: tuple[int, ...]
    reg_seed: int = 0
    origin: str = "generated"

    def with_body(self, words, origin: str | None = None) -> "FuzzCase":
        return replace(
            self,
            body_words=tuple(w & 0xFFFFFFFF for w in words),
            origin=origin if origin is not None else self.origin,
        )


@dataclass
class Generator:
    """Weighted instruction-sequence generator."""

    min_len: int = 8
    max_len: int = 48
    _weights: list = field(default_factory=list, repr=False)

    def __post_init__(self):
        self._weights = [
            (20, self._alu_rr),
            (16, self._alu_imm),
            (6, self._shift),
            (12, self._load),
            (12, self._store),
            (7, self._branch),
            (2, self._jal),
            (4, self._lui_auipc),
            (5, self._crypto_pair),
            (5, self._crypto_single),
            (7, self._csr),
            (3, self._trapper),
            (1, self._system),
        ]
        self._total_weight = sum(w for w, _ in self._weights)

    # -- public ----------------------------------------------------------------

    def generate(self, rng: Random, name: str) -> FuzzCase:
        length = rng.randint(self.min_len, self.max_len)
        instrs: list[Instruction] = []
        while len(instrs) < length:
            instrs.extend(self._pick(rng)(rng, len(instrs), length))
        words = tuple(encode(ins) for ins in instrs[:length + 1])
        return FuzzCase(
            name=name,
            body_words=words,
            reg_seed=rng.getrandbits(64),
        )

    # -- helpers ---------------------------------------------------------------

    def _pick(self, rng: Random):
        roll = rng.randrange(self._total_weight)
        for weight, producer in self._weights:
            roll -= weight
            if roll < 0:
                return producer
        raise AssertionError("unreachable")

    @staticmethod
    def _reg(rng: Random) -> int:
        while True:
            index = rng.randrange(32)
            if index not in RESERVED_REGS:
                return index

    @staticmethod
    def _src(rng: Random) -> int:
        # Sources may be any register, including x0 and the bases.
        return rng.randrange(32)

    # -- producers: each returns a list of Instructions ------------------------

    def _alu_rr(self, rng, at, length):
        m = rng.choice(_ALU_RR)
        fmt = InstrFormat.R
        return [Instruction(m, fmt, rd=self._reg(rng),
                            rs1=self._src(rng), rs2=self._src(rng))]

    def _alu_imm(self, rng, at, length):
        m = rng.choice(_ALU_IMM)
        return [Instruction(m, InstrFormat.I, rd=self._reg(rng),
                            rs1=self._src(rng),
                            imm=rng.randint(-2048, 2047))]

    def _shift(self, rng, at, length):
        m = rng.choice(_SHIFTS)
        limit = 31 if m.endswith("w") else 63
        return [Instruction(m, InstrFormat.I, rd=self._reg(rng),
                            rs1=self._src(rng),
                            imm=rng.randint(0, limit))]

    def _load(self, rng, at, length):
        m = rng.choice(_LOADS)
        return [Instruction(m, InstrFormat.I, rd=self._reg(rng),
                            rs1=rng.choice((8, 9)),
                            imm=self._offset(rng, ACCESS_SIZE[m]))]

    def _store(self, rng, at, length):
        m = rng.choice(_STORES)
        return [Instruction(m, InstrFormat.S, rs2=self._src(rng),
                            rs1=rng.choice((8, 9)),
                            imm=self._offset(rng, ACCESS_SIZE[m]))]

    @staticmethod
    def _offset(rng: Random, size: int) -> int:
        roll = rng.random()
        aligned = rng.randrange(0, SCRATCH_BYTES - 8, size)
        if roll < 0.82:
            return aligned
        if roll < 0.92:
            # Misaligned (this machine allows it; it must behave
            # identically in every mode).
            return min(aligned + rng.randint(1, size - 1), 2047) if size > 1 \
                else aligned
        # Past the end of the scratch region from s1: access fault.
        return 2047

    def _branch(self, rng, at, length):
        m = rng.choice(_BRANCHES)
        skip = rng.randint(1, max(1, min(8, length - at)))
        return [Instruction(m, InstrFormat.B, rs1=self._src(rng),
                            rs2=self._src(rng), imm=4 * skip)]

    def _jal(self, rng, at, length):
        skip = rng.randint(1, max(1, min(8, length - at)))
        return [Instruction("jal", InstrFormat.J, rd=self._reg(rng),
                            imm=4 * skip)]

    def _lui_auipc(self, rng, at, length):
        m = rng.choice(("lui", "auipc"))
        raw = rng.randint(-(1 << 19), (1 << 19) - 1)
        return [Instruction(m, InstrFormat.U, rd=self._reg(rng),
                            imm=sign_extend((raw << 12) & 0xFFFFFFFF, 32))]

    def _byte_range(self, rng) -> ByteRange:
        start = rng.randint(0, 7)
        end = rng.randint(start, 7)
        return ByteRange(end, start)

    def _crypto_single(self, rng, at, length):
        ksel = KeySelect(rng.randrange(8))
        is_enc = rng.random() < 0.5
        return [Instruction(
            crypto_mnemonic(is_enc, ksel), InstrFormat.CRYPTO,
            rd=self._reg(rng), rs1=self._src(rng), rs2=self._src(rng),
            ksel=ksel, byte_range=self._byte_range(rng),
        )]

    def _crypto_pair(self, rng, at, length):
        # Encrypt then immediately decrypt the result with the same
        # key/tweak/range: a clean round trip and a CLB decrypt hit.
        ksel = KeySelect(rng.randrange(8))
        rng_range = self._byte_range(rng)
        tweak = self._src(rng)
        mid = self._reg(rng)
        out = self._reg(rng)
        return [
            Instruction(crypto_mnemonic(True, ksel), InstrFormat.CRYPTO,
                        rd=mid, rs1=self._src(rng), rs2=tweak,
                        ksel=ksel, byte_range=rng_range),
            Instruction(crypto_mnemonic(False, ksel), InstrFormat.CRYPTO,
                        rd=out, rs1=mid, rs2=tweak,
                        ksel=ksel, byte_range=rng_range),
        ]

    def _csr(self, rng, at, length):
        m = rng.choice(_CSR_OPS)
        roll = rng.random()
        if roll < 0.25:
            csr = rng.choice(_KEY_CSRS)  # write-only: invalidates CLB keys
        elif roll < 0.55:
            csr = rng.choice(_SAFE_CSR_WRITES)
        else:
            csr = rng.choice(_SAFE_CSR_READS)
            # Force a pure read so read-only CSRs do not trap here.
            if m in ("csrrs", "csrrc"):
                return [Instruction(m, InstrFormat.CSR, rd=self._reg(rng),
                                    rs1=0, csr=csr)]
            if m in ("csrrsi", "csrrci"):
                return [Instruction(m, InstrFormat.CSRI, rd=self._reg(rng),
                                    rs1=0, csr=csr)]
            csr = rng.choice(_SAFE_CSR_WRITES)
        if m.endswith("i"):
            return [Instruction(m, InstrFormat.CSRI, rd=self._reg(rng),
                                rs1=rng.randint(0, 31), csr=csr)]
        return [Instruction(m, InstrFormat.CSR, rd=self._reg(rng),
                            rs1=self._src(rng), csr=csr)]

    def _trapper(self, rng, at, length):
        """Instructions whose architectural outcome is a trap."""
        roll = rng.random()
        if roll < 0.4:
            # Sealed: reading a key CSR always traps.
            return [Instruction("csrrs", InstrFormat.CSR, rd=self._reg(rng),
                                rs1=0, csr=rng.choice(_KEY_CSRS))]
        if roll < 0.7:
            # Writing a read-only counter traps.
            return [Instruction("csrrw", InstrFormat.CSR, rd=self._reg(rng),
                                rs1=self._src(rng),
                                csr=rng.choice((0xC00, 0xC01, 0xC02)))]
        # Unimplemented CSR.
        return [Instruction("csrrs", InstrFormat.CSR, rd=self._reg(rng),
                            rs1=0, csr=0x123)]

    def _system(self, rng, at, length):
        m = rng.choice(("ecall", "ebreak", "fence"))
        if m == "fence":
            return [Instruction(m, InstrFormat.I)]
        return [Instruction(m, InstrFormat.SYSTEM)]


# -- mutation ------------------------------------------------------------------


def mutate(
    rng: Random,
    case: FuzzCase,
    name: str,
    generator: Generator,
    donors: list[FuzzCase] | None = None,
) -> FuzzCase:
    """One mutated child of ``case`` (word-level, validity not preserved)."""
    words = list(case.body_words)
    if not words:
        return generator.generate(rng, name)
    roll = rng.random()
    if roll < 0.30:  # flip 1..4 bits of one word
        index = rng.randrange(len(words))
        for _ in range(rng.randint(1, 4)):
            words[index] ^= 1 << rng.randrange(32)
    elif roll < 0.50:  # replace a word with a fresh valid instruction
        index = rng.randrange(len(words))
        fresh = generator.generate(rng, "tmp").body_words
        words[index] = rng.choice(fresh)
    elif roll < 0.65:  # perturb an immediate-ish field
        index = rng.randrange(len(words))
        words[index] ^= rng.getrandbits(12) << 20
    elif roll < 0.78:  # delete a slice
        lo = rng.randrange(len(words))
        hi = min(len(words), lo + rng.randint(1, 4))
        del words[lo:hi]
    elif roll < 0.90:  # duplicate a slice (may create backward flow)
        lo = rng.randrange(len(words))
        hi = min(len(words), lo + rng.randint(1, 4))
        words[lo:lo] = words[lo:hi]
    else:  # splice with a donor body
        donor = rng.choice(donors) if donors else case
        cut_a = rng.randrange(len(words) + 1)
        donor_words = list(donor.body_words) or [0x13]
        cut_b = rng.randrange(len(donor_words) + 1)
        words = words[:cut_a] + donor_words[cut_b:]
    if not words:
        words = [0x13]  # nop
    words = words[:96]
    return FuzzCase(
        name=name,
        body_words=tuple(w & 0xFFFFFFFF for w in words),
        reg_seed=case.reg_seed if rng.random() < 0.5 else rng.getrandbits(64),
        origin=f"mutated:{case.name}",
    )

"""Corpus and repro-file handling.

Two JSON file schemas live side by side:

* **seed files** (``tests/fuzz/corpus/*.json``, schema
  ``repro.fuzz/seed-1``) — human-written interesting bodies, given as
  assembly lines (which may reference the harness labels
  ``__fuzz_data``, ``__fuzz_body`` ...) or raw words;
* **repro files** (schema ``repro.fuzz/repro-1``) — self-contained
  failing cases the campaign emits after minimization: the exact body
  words, a disassembly for humans, the register seed, the oracle that
  fired and its detail.  Dropping one into
  ``tests/fuzz/regressions/`` turns it into a permanent pytest case.

Assembly-line bodies are canonicalized to words by assembling the full
harness around them and slicing ``__fuzz_body .. __fuzz_body_end`` out
of the text image, so seeds and generated cases flow through the exact
same pipeline afterwards.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.fuzz.generator import FuzzCase
from repro.fuzz.harness import harness_source
from repro.isa import assemble
from repro.isa.decoder import DecodeError, decode
from repro.isa.disassembler import disassemble

__all__ = [
    "SEED_SCHEMA",
    "REPRO_SCHEMA",
    "assemble_body_lines",
    "case_digest",
    "case_from_file",
    "load_corpus",
    "write_repro",
]

SEED_SCHEMA = "repro.fuzz/seed-1"
REPRO_SCHEMA = "repro.fuzz/repro-1"


def case_digest(case: FuzzCase) -> str:
    """Stable content digest of a case's behaviour-defining inputs.

    Two cases with the same body words and register seed execute
    identically regardless of name or origin, so this is the dedup key
    when sharded campaigns merge their corpora.
    """
    digest = hashlib.sha256()
    digest.update((case.reg_seed & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little"))
    for word in case.body_words:
        digest.update((word & 0xFFFFFFFF).to_bytes(4, "little"))
    return digest.hexdigest()


def assemble_body_lines(lines, reg_seed: int = 0) -> tuple[int, ...]:
    """Canonical body words for an assembly-line body."""
    program = assemble(harness_source(list(lines), reg_seed))
    text = program.sections[".text"]
    start = program.symbol("__fuzz_body") - text.base
    end = program.symbol("__fuzz_body_end") - text.base
    data = text.data[start:end]
    return tuple(
        int.from_bytes(data[offset:offset + 4], "little")
        for offset in range(0, len(data), 4)
    )


def body_disassembly(words) -> list[str]:
    """Best-effort human view of a word body (for repro files)."""
    lines = []
    for word in words:
        try:
            lines.append(disassemble(decode(word)))
        except DecodeError:
            lines.append(f".word {word:#010x}  # undecodable")
    return lines


def case_from_file(path) -> FuzzCase:
    """Load a seed or repro JSON file as a FuzzCase."""
    path = Path(path)
    doc = json.loads(path.read_text())
    schema = doc.get("schema")
    if schema not in (SEED_SCHEMA, REPRO_SCHEMA):
        raise ValueError(f"{path}: unknown fuzz file schema {schema!r}")
    reg_seed = int(doc.get("reg_seed", 0))
    if "body_words" in doc:
        words = tuple(int(w) & 0xFFFFFFFF for w in doc["body_words"])
    else:
        words = assemble_body_lines(doc["body_asm"], reg_seed)
    return FuzzCase(
        name=path.stem,
        body_words=words,
        reg_seed=reg_seed,
        origin=f"corpus:{path.name}",
    )


def load_corpus(directory) -> list[FuzzCase]:
    """Every seed in a directory, in stable (sorted-name) order."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [
        case_from_file(path)
        for path in sorted(directory.glob("*.json"))
    ]


def write_repro(
    case: FuzzCase,
    outcome,
    directory,
    minimize_checks: int = 0,
) -> Path:
    """Emit a self-contained repro file; returns its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{case.name}.json"
    doc = {
        "schema": REPRO_SCHEMA,
        "oracle": outcome.oracle,
        "detail": outcome.detail,
        "diffs": list(outcome.diffs),
        "origin": case.origin,
        "reg_seed": case.reg_seed,
        "body_words": list(case.body_words),
        "body_asm": body_disassembly(case.body_words),
        "minimize_checks": minimize_checks,
        "how_to_run": (
            "python -m repro.fuzz --replay "
            f"{path.name} (from the directory holding this file)"
        ),
    }
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path

"""Delta-debugging minimizer for failing fuzz cases.

Classic ddmin over the body word list: try dropping ever-finer chunks,
keeping any reduction that still makes the predicate fail, then a final
per-word pass that additionally tries rewriting each remaining word to
a ``nop``.  The predicate is the failing oracle itself, so the minimized
case is guaranteed to still reproduce the divergence.

The search is bounded by ``max_checks`` predicate evaluations — a
divergence found with a 96-word mutant must not stall the campaign —
and fully deterministic (no randomness: chunk order is fixed).
"""

from __future__ import annotations

from typing import Callable

from repro.fuzz.generator import FuzzCase

__all__ = ["minimize", "ddmin_list"]

_NOP = 0x00000013


def ddmin_list(items: list, fails: Callable[[list], bool]) -> list:
    """Generic ddmin: smallest sublist (by chunk removal) still failing.

    ``fails`` must already embed any evaluation budget it needs.
    """
    items = list(items)
    chunk = max(1, len(items) // 2)
    while len(items) > 1:
        start = 0
        while start < len(items):
            candidate = items[:start] + items[start + chunk:]
            if candidate and fails(candidate):
                items = candidate
            else:
                start += chunk
        if chunk == 1:
            break
        chunk = max(1, chunk // 2)
    return items


def minimize(
    case: FuzzCase,
    still_fails: Callable[[FuzzCase], bool],
    max_checks: int = 300,
) -> tuple[FuzzCase, int]:
    """Shrink ``case``; returns (minimized case, predicate evaluations).

    ``still_fails(candidate)`` must return True when the candidate still
    triggers the original divergence.
    """
    words = list(case.body_words)
    checks = 0

    def fails(candidate_words: list[int]) -> bool:
        nonlocal checks
        if checks >= max_checks:
            return False
        checks += 1
        return still_fails(
            case.with_body(candidate_words, origin=f"minimized:{case.name}")
        )

    # ddmin: remove chunks at decreasing granularity.
    words = ddmin_list(words, fails)

    # Final pass: neutralize surviving words one at a time.
    for index in range(len(words)):
        if checks >= max_checks:
            break
        if words[index] == _NOP:
            continue
        candidate = list(words)
        candidate[index] = _NOP
        if fails(candidate):
            words = candidate

    return (
        case.with_body(words, origin=f"minimized:{case.name}"),
        checks,
    )

"""The execution harness wrapped around every fuzzed instruction body.

A fuzz case is just a list of 32-bit instruction words.  The harness
turns it into a complete bare-metal program:

* a prologue that installs a trap vector, points ``s0``/``s1`` at a
  4 KiB scratch region and seeds every other register from the case's
  register seed (so ALU results are not all-zero noise);
* the body itself, emitted verbatim as ``.word`` directives between the
  ``__fuzz_body`` / ``__fuzz_body_end`` labels — mutated cases may
  contain arbitrary (even undecodable) words, which must fault
  identically in every execution mode;
* an epilogue that powers the machine off via SYSCON;
* a trap handler that counts traps, skips the faulting instruction for
  synchronous causes and disarms the timer for interrupts, so any
  single bad instruction cannot wedge the case.

The harness deliberately leaves ``s0``/``s1`` out of the generator's
destination registers: a body can clobber any other register (including
``sp``) and still make progress, because only the scratch-region bases
and the trap path need to stay intact — and the trap handler re-derives
everything it uses.
"""

from __future__ import annotations

from repro.crypto.keys import KeySelect
from repro.machine import Machine
from repro.utils.bits import MASK64

__all__ = [
    "FUZZ_KEYS",
    "RESERVED_REGS",
    "SCRATCH_BYTES",
    "harness_source",
    "build_machine",
]

#: Registers the generator must not write: zero, the scratch bases.
RESERVED_REGS = frozenset({0, 8, 9})

#: Bytes of zeroed scratch memory addressed from each of s0 and s1.
SCRATCH_BYTES = 2048

#: Deterministic 128-bit keys, distinct per register (mirrors the
#: pattern the test suite uses, without importing from tests/).
FUZZ_KEYS = {
    ksel: (0x0F1E2D3C4B5A6978 << 64 | 0x1122334455667788)
    ^ (int(ksel) * 0x9E3779B97F4A7C15)
    for ksel in KeySelect
}

_GAMMA = 0x9E3779B97F4A7C15


def _splitmix64(state: int) -> tuple[int, int]:
    state = (state + _GAMMA) & MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & MASK64
    return state, z ^ (z >> 31)


def seed_values(reg_seed: int) -> dict[int, int]:
    """Deterministic initial values for every seedable register."""
    state = reg_seed & MASK64
    values = {}
    for index in range(1, 32):
        if index in RESERVED_REGS:
            continue
        state, value = _splitmix64(state)
        # Signed 32-bit constants keep the prologue short (one or two
        # instructions per li) while still exercising sign extension.
        values[index] = value & 0xFFFFFFFF
    return values


def harness_source(body, reg_seed: int = 0) -> str:
    """Complete assembly source around a body.

    ``body`` is either a list of 32-bit instruction words (emitted as
    ``.word``) or a list of assembly source lines (used by the
    human-written corpus/regression seeds, which may reference the
    harness labels).
    """
    lines = [
        "_start:",
        "    la t0, __fuzz_trap",
        "    csrw mtvec, t0",
        "    la s0, __fuzz_data",
        "    la s1, __fuzz_data2",
    ]
    for index, value in sorted(seed_values(reg_seed).items()):
        signed = value - (1 << 32) if value >= (1 << 31) else value
        lines.append(f"    li x{index}, {signed}")
    lines.append("__fuzz_body:")
    for item in body:
        if isinstance(item, int):
            lines.append(f"    .word {item & 0xFFFFFFFF:#010x}")
        else:
            lines.append(f"    {item}")
    lines += [
        "__fuzz_body_end:",
        "    li t0, 0x5555",
        "    li t1, 0x02010000",
        "    sw t0, 0(t1)",
        "__fuzz_idle:",
        "    j __fuzz_idle",
        "",
        "__fuzz_trap:",
        "    la t0, __fuzz_trapcount",
        "    ld t1, 0(t0)",
        "    addi t1, t1, 1",
        "    sd t1, 0(t0)",
        "    csrr t0, mcause",
        "    bltz t0, __fuzz_trap_intr",
        "    csrr t0, mepc",
        "    addi t0, t0, 4",
        "    csrw mepc, t0",
        "    mret",
        "__fuzz_trap_intr:",
        "    li t0, 128",
        "    csrc mie, t0",
        "    mret",
        "",
        ".data",
        ".align 3",
        "__fuzz_data:",
        f"    .zero {SCRATCH_BYTES}",
        "__fuzz_data2:",
        f"    .zero {SCRATCH_BYTES}",
        "__fuzz_trapcount:",
        "    .zero 8",
    ]
    return "\n".join(lines) + "\n"


def build_machine(program, fast: bool | None = None) -> Machine:
    """A keyed Machine for one harnessed program."""
    machine = Machine.from_program(program)
    if fast is not None:
        machine.fast_path = fast
    for ksel, key in FUZZ_KEYS.items():
        machine.engine.key_file.set_key(ksel, key)
    return machine

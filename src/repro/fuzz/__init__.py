"""Coverage-guided differential fuzzing for the whole reproduction.

``python -m repro.fuzz --seed N --budget M --json`` runs a deterministic
campaign whose cases cross-check the three execution paths (single-step
interpreter, block fast path, snapshot/restore/resume) and the compiler
pipeline against each other.  See ``docs/fuzzing.md``.
"""

from repro.fuzz.campaign import Campaign, FuzzConfig, run_campaign
from repro.fuzz.corpus import (
    case_digest,
    case_from_file,
    load_corpus,
    write_repro,
)
from repro.fuzz.coverage import CoverageMap
from repro.fuzz.dist import (
    DistConfig,
    canonical_json,
    run_distributed,
    run_shard,
    shard_budgets,
    shard_seed,
)
from repro.fuzz.generator import FuzzCase, Generator, mutate
from repro.fuzz.harness import FUZZ_KEYS, build_machine, harness_source
from repro.fuzz.minimize import ddmin_list, minimize
from repro.fuzz.oracles import (
    OracleOutcome,
    run_compiler,
    run_differential,
    run_snapshot,
    run_spec_convergence,
)

__all__ = [
    "Campaign",
    "FuzzConfig",
    "run_campaign",
    "DistConfig",
    "canonical_json",
    "run_distributed",
    "run_shard",
    "shard_budgets",
    "shard_seed",
    "case_digest",
    "case_from_file",
    "load_corpus",
    "write_repro",
    "CoverageMap",
    "FuzzCase",
    "Generator",
    "mutate",
    "FUZZ_KEYS",
    "build_machine",
    "harness_source",
    "ddmin_list",
    "minimize",
    "OracleOutcome",
    "run_differential",
    "run_snapshot",
    "run_spec_convergence",
    "run_compiler",
]

"""RNG-driven mini-IR program generation for the compiler oracle.

Builds the same shape of program the hand-written differential tests
use — a ``vault`` struct mixing integrity-protected, randomized and
plain fields, a helper function, and a ``main`` that runs a random
sequence of arithmetic/load/store/call/branch steps over them — but
driven by a ``random.Random`` instead of hypothesis, so the fuzzing
campaign stays reproducible from a single seed.
"""

from __future__ import annotations

from random import Random

from repro.compiler import (
    Annotation,
    Field,
    Function,
    FunctionType,
    I32,
    I64,
    IRBuilder,
    Module,
    StructType,
)
from repro.compiler.ir import Const, GlobalVar, Move

__all__ = ["STARTUP", "random_steps", "build_module"]

#: Boot shim: call main, then spin (main halts via the halt intrinsic).
STARTUP = "_start:\n    call main\nhang:\n    j hang\n"

_OPS = (
    "add", "mul", "xor", "store32", "store64", "load32", "load64",
    "call", "branch",
)


def random_steps(rng: Random, min_len: int = 2, max_len: int = 24):
    """A random step program for :func:`build_module`."""
    return [
        (rng.choice(_OPS), rng.getrandbits(31))
        for _ in range(rng.randint(min_len, max_len))
    ]


def build_module(steps) -> tuple[Module, StructType]:
    """Build the module; returns it plus the vault struct for layout."""
    module = Module("fuzz")
    vault = module.add_struct(StructType("vault", (
        Field("a", I32, Annotation.RAND_INTEGRITY),
        Field("b", I64, Annotation.RAND_INTEGRITY),
        Field("c", I64, Annotation.RAND),
        Field("d", I64),
    )))
    module.add_global(GlobalVar("vault", vault))

    helper = Function("helper", FunctionType(I64, (I64,)), ["x"])
    module.add_function(helper)
    hb = IRBuilder(helper)
    hb.block("entry")
    hb.ret(hb.add(hb.mul(helper.params[0], 3), 1))

    main = Function("main", FunctionType(I64, ()))
    module.add_function(main)
    b = IRBuilder(main)
    b.block("entry")
    base = b.addr_of_global("vault")
    b.store_field(base, vault, "a", Const(11))
    b.store_field(base, vault, "b", Const(22))
    b.store_field(base, vault, "c", Const(33))
    b.store_field(base, vault, "d", Const(44))

    acc = b.func.new_reg(I64, "acc")
    b._emit(Move(acc, Const(1)))
    label_counter = 0

    for op, value in steps:
        masked = value & 0xFFFF
        if op == "add":
            b._emit(Move(acc, b.add(acc, masked)))
        elif op == "mul":
            b._emit(Move(acc, b.mul(acc, (masked | 1) & 0xFF)))
        elif op == "xor":
            b._emit(Move(acc, b.xor(acc, masked)))
        elif op == "store32":
            b.store_field(base, vault, "a", b.and_(acc, 0x7FFFFFFF))
        elif op == "store64":
            which = "b" if value & 1 else "c"
            b.store_field(base, vault, which, acc)
        elif op == "load32":
            b._emit(Move(acc, b.add(acc, b.load_field(base, vault, "a"))))
        elif op == "load64":
            which = "b" if value & 1 else "c"
            b._emit(Move(acc, b.xor(acc, b.load_field(base, vault, which))))
        elif op == "call":
            b._emit(Move(acc, b.call("helper", [acc])))
        elif op == "branch":
            label_counter += 1
            then_label = f"then_{label_counter}"
            join_label = f"join_{label_counter}"
            cond = b.cmp("ltu", b.and_(acc, 0xF), masked & 0xF)
            b.cond_br(cond, then_label, join_label)
            b.block(then_label)
            b._emit(Move(acc, b.add(acc, 5)))
            b.br(join_label)
            b.block(join_label)
        b._emit(Move(acc, b.and_(acc, Const(0xFFFFFFFF))))

    plain = b.load_field(base, vault, "d")
    b.intrinsic("halt", [b.and_(b.add(acc, plain), Const(0xFFFF))])
    b.ret(Const(0))
    return module, vault

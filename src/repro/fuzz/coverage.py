"""Coverage feedback for the fuzzing campaign.

Coverage is counted over three spaces:

* **instruction pairs** — the architectural ``(opcode, funct3, funct7)``
  triple of every retired instruction (for ``cre``/``crd`` the funct
  fields encode ksel and byte range, so the crypto space is counted at
  full resolution);
* **trap edges** — ``(cause, interrupt?)`` of every trap taken;
* **CLB/engine events** — which cache behaviours (hits, misses,
  invalidations, evictions, integrity faults) a case provoked.

A case is *interesting* — and enters the in-memory corpus — when it
contributes any key not seen before.  All counters are plain dicts with
deterministic iteration, so two campaigns with the same seed report
byte-identical coverage.
"""

from __future__ import annotations

from repro.isa import instructions as tab
from repro.isa.instructions import Instruction, InstrFormat

__all__ = ["CoverageMap"]

# opcode constants (mirror the encoder's)
_OP = 0b0110011
_OP_32 = 0b0111011
_OP_IMM = 0b0010011
_OP_IMM_32 = 0b0011011
_LOAD = 0b0000011
_STORE = 0b0100011
_BRANCH = 0b1100011
_SYSTEM = 0b1110011
_MISC_MEM = 0b0001111
_CRE = 0b0001011
_CRD = 0b0101011

#: mnemonic -> (opcode, funct3, funct7) for everything non-crypto.
_STATIC_KEYS: dict[str, tuple[int, int, int]] = {}
for _m, (_f7, _f3) in tab.R_TYPE.items():
    _STATIC_KEYS[_m] = (_OP, _f3, _f7)
for _m, (_f7, _f3) in tab.R_TYPE_32.items():
    _STATIC_KEYS[_m] = (_OP_32, _f3, _f7)
for _m, _f3 in tab.I_TYPE_ALU.items():
    _STATIC_KEYS[_m] = (_OP_IMM, _f3, 0)
for _m, (_f6, _f3) in tab.I_TYPE_SHIFT.items():
    _STATIC_KEYS[_m] = (_OP_IMM, _f3, _f6 << 1)
for _m, _f3 in tab.I_TYPE_ALU_32.items():
    _STATIC_KEYS[_m] = (_OP_IMM_32, _f3, 0)
for _m, (_f7, _f3) in tab.I_TYPE_SHIFT_32.items():
    _STATIC_KEYS[_m] = (_OP_IMM_32, _f3, _f7)
for _m, _f3 in tab.LOADS.items():
    _STATIC_KEYS[_m] = (_LOAD, _f3, 0)
for _m, _f3 in tab.STORES.items():
    _STATIC_KEYS[_m] = (_STORE, _f3, 0)
for _m, _f3 in tab.BRANCHES.items():
    _STATIC_KEYS[_m] = (_BRANCH, _f3, 0)
for _m, _f3 in tab.CSR_OPS.items():
    _STATIC_KEYS[_m] = (_SYSTEM, _f3, 0)
_STATIC_KEYS["lui"] = (0b0110111, 0, 0)
_STATIC_KEYS["auipc"] = (0b0010111, 0, 0)
_STATIC_KEYS["jal"] = (0b1101111, 0, 0)
_STATIC_KEYS["jalr"] = (0b1100111, 0, 0)
_STATIC_KEYS["fence"] = (_MISC_MEM, 0, 0)
for _i, _m in enumerate(sorted(tab.SYSTEM_OPS)):
    # SYSTEM ops share funct3=0; give each a stable synthetic funct7.
    _STATIC_KEYS.setdefault(_m, (_SYSTEM, 0, 0x80 + _i))


class CoverageMap:
    """Accumulates executed-pair and edge counters."""

    def __init__(self):
        self.pairs: dict[tuple[int, int, int], int] = {}
        self.trap_edges: dict[tuple[int, bool], int] = {}
        self.clb_events: dict[str, int] = {}

    # -- hart callbacks --------------------------------------------------------

    def record_instruction(self, ins: Instruction, pc: int = 0) -> None:
        if ins.fmt is InstrFormat.CRYPTO:
            opcode = _CRE if ins.mnemonic.startswith("cre") else _CRD
            br = ins.byte_range
            key = (opcode, int(ins.ksel), (br.end << 3) | br.start)
        else:
            key = _STATIC_KEYS.get(ins.mnemonic)
            if key is None:
                key = (0, 0, 0)
        self.pairs[key] = self.pairs.get(key, 0) + 1

    def record_trap(self, trap, pc: int) -> None:
        key = (int(trap.cause), bool(trap.interrupt))
        self.trap_edges[key] = self.trap_edges.get(key, 0) + 1

    def record_trap_event(self, event) -> None:
        """Trace-bus form of :meth:`record_trap` (a ``trap.enter`` event)."""
        data = event.data
        key = (data["cause"], data["interrupt"])
        self.trap_edges[key] = self.trap_edges.get(key, 0) + 1

    # -- engine events ---------------------------------------------------------

    def record_engine(self, machine) -> None:
        """Fold one finished case's engine/CLB activity into coverage."""
        clb = machine.engine.clb.stats
        engine = machine.engine.stats
        for event, count in (
            ("clb_enc_hit", clb.enc_hits),
            ("clb_enc_miss", clb.enc_misses),
            ("clb_dec_hit", clb.dec_hits),
            ("clb_dec_miss", clb.dec_misses),
            ("clb_invalidation", clb.invalidations),
            ("clb_eviction", clb.evictions),
            ("integrity_fault", engine.integrity_faults),
        ):
            if count:
                self.clb_events[event] = self.clb_events.get(event, 0) + count

    # -- corpus feedback -------------------------------------------------------

    def keys(self) -> set:
        return (
            set(self.pairs)
            | {("trap",) + k for k in self.trap_edges}
            | {("clb", k) for k in self.clb_events}
        )

    def merge(self, other: "CoverageMap") -> int:
        """Fold ``other`` in; return how many keys were new."""
        new = 0
        for key, count in other.pairs.items():
            if key not in self.pairs:
                new += 1
            self.pairs[key] = self.pairs.get(key, 0) + count
        for key, count in other.trap_edges.items():
            if key not in self.trap_edges:
                new += 1
            self.trap_edges[key] = self.trap_edges.get(key, 0) + count
        for key, count in other.clb_events.items():
            if key not in self.clb_events:
                new += 1
            self.clb_events[key] = self.clb_events.get(key, 0) + count
        return new

    # -- reporting -------------------------------------------------------------

    @property
    def executed(self) -> int:
        return sum(self.pairs.values())

    def report(self) -> dict:
        return {
            "instruction_pairs": len(self.pairs),
            "instructions_executed": self.executed,
            "trap_edges": len(self.trap_edges),
            "traps_taken": sum(self.trap_edges.values()),
            "clb_events": len(self.clb_events),
            "pairs": {
                f"{op:#04x}/{f3}/{f7}": count
                for (op, f3, f7), count in sorted(self.pairs.items())
            },
            "traps": {
                f"{cause}{'i' if interrupt else ''}": count
                for (cause, interrupt), count in sorted(self.trap_edges.items())
            },
            "clb": dict(sorted(self.clb_events.items())),
        }

"""Validators for the fuzz report formats.

Mirrors :mod:`repro.telemetry.schema`: each validator returns a list of
problem strings — empty means valid.  CI runs these over the uploaded
campaign reports so a malformed artifact fails the job instead of
shipping.
"""

from __future__ import annotations

from repro.fuzz.campaign import REPORT_SCHEMA
from repro.fuzz.dist import DIST_REPORT_SCHEMA

__all__ = ["validate_report", "validate_dist_report"]

_ORACLE_NAMES = ("step_vs_block", "snapshot", "compiler")
_COVERAGE_COUNTS = (
    "instruction_pairs",
    "instructions_executed",
    "trap_edges",
    "traps_taken",
    "clb_events",
)
_SHARD_STATUSES = ("ok", "timeout", "crashed")


def _check_int(document, key, problems, where="") -> None:
    value = document.get(key)
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        problems.append(
            f"{where}{key!r} is not a non-negative integer: {value!r}"
        )


def _check_coverage(coverage, problems, where="coverage",
                    tables=True) -> None:
    if not isinstance(coverage, dict):
        problems.append(f"'{where}' is not an object")
        return
    for key in _COVERAGE_COUNTS:
        _check_int(coverage, key, problems, where=f"{where}.")
    if not tables:
        # Per-shard summaries carry the counts only.
        return
    for table in ("pairs", "traps", "clb"):
        if not isinstance(coverage.get(table), dict):
            problems.append(f"{where}.{table} is not an object")


def _check_oracles(oracles, problems) -> None:
    if not isinstance(oracles, dict):
        problems.append("'oracles' is not an object")
        return
    for name in _ORACLE_NAMES:
        stats = oracles.get(name)
        if not isinstance(stats, dict):
            problems.append(f"oracles.{name} missing or not an object")
            continue
        for key in ("cases", "divergences"):
            _check_int(stats, key, problems, where=f"oracles.{name}.")


def _check_spec(document, problems) -> None:
    """The ``spec`` marker and the ``spec_convergence`` oracle block
    travel together — one without the other is a malformed report."""
    oracles = document.get("oracles")
    stats = oracles.get("spec_convergence") if isinstance(oracles, dict) \
        else None
    if not document.get("spec"):
        if stats is not None:
            problems.append(
                "oracles.spec_convergence present without 'spec': true"
            )
        return
    if document.get("spec") is not True:
        problems.append(f"'spec' is not true: {document.get('spec')!r}")
    if not isinstance(stats, dict):
        problems.append(
            "'spec': true but oracles.spec_convergence missing"
        )
        return
    for key in ("cases", "divergences", "windows",
                "transient_instructions"):
        _check_int(stats, key, problems, where="oracles.spec_convergence.")


def _check_codecache(document, problems) -> None:
    """The ``codecache`` marker and the ``cached_vs_fresh`` oracle
    block travel together — one without the other is malformed."""
    oracles = document.get("oracles")
    stats = oracles.get("cached_vs_fresh") if isinstance(oracles, dict) \
        else None
    if not document.get("codecache"):
        if stats is not None:
            problems.append(
                "oracles.cached_vs_fresh present without 'codecache': true"
            )
        return
    if document.get("codecache") is not True:
        problems.append(
            f"'codecache' is not true: {document.get('codecache')!r}"
        )
    if not isinstance(stats, dict):
        problems.append(
            "'codecache': true but oracles.cached_vs_fresh missing"
        )
        return
    for key in ("cases", "divergences", "entries", "installed",
                "rejected"):
        _check_int(stats, key, problems, where="oracles.cached_vs_fresh.")


def _check_failures(failures, problems) -> None:
    if not isinstance(failures, list):
        problems.append("'failures' is not a list")
        return
    for index, failure in enumerate(failures):
        where = f"failures[{index}]"
        if not isinstance(failure, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "oracle", "detail"):
            if not isinstance(failure.get(key), str):
                problems.append(f"{where}: missing string {key!r}")


def validate_report(document: dict) -> list[str]:
    """Validate a single-process campaign report."""
    problems: list[str] = []
    if document.get("schema") != REPORT_SCHEMA:
        problems.append(f"bad schema id {document.get('schema')!r}")
    _check_int(document, "schema_version", problems)
    for key in ("seed", "budget", "divergences"):
        _check_int(document, key, problems)
    _check_oracles(document.get("oracles"), problems)
    _check_spec(document, problems)
    _check_codecache(document, problems)
    _check_coverage(document.get("coverage"), problems)
    _check_failures(document.get("failures"), problems)
    return problems


def validate_dist_report(document: dict) -> list[str]:
    """Validate a merged sharded-campaign report."""
    problems: list[str] = []
    if document.get("schema") != DIST_REPORT_SCHEMA:
        problems.append(f"bad schema id {document.get('schema')!r}")
    _check_int(document, "schema_version", problems)
    for key in ("seed", "budget", "shards", "rounds", "divergences",
                "shards_ok", "shards_failed"):
        _check_int(document, key, problems)
    _check_oracles(document.get("oracles"), problems)
    _check_spec(document, problems)
    _check_codecache(document, problems)
    _check_coverage(document.get("coverage"), problems)
    _check_failures(document.get("failures"), problems)

    shard_reports = document.get("shard_reports")
    if not isinstance(shard_reports, list) or not shard_reports:
        problems.append("'shard_reports' missing or empty")
        return problems
    expected = None
    shards = document.get("shards")
    rounds = document.get("rounds")
    if isinstance(shards, int) and isinstance(rounds, int):
        expected = shards * rounds
        if len(shard_reports) != expected:
            problems.append(
                f"shard_reports has {len(shard_reports)} entries, "
                f"expected shards*rounds = {expected}"
            )
    for index, row in enumerate(shard_reports):
        where = f"shard_reports[{index}]"
        if not isinstance(row, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("round", "shard_id", "shard_seed", "budget"):
            _check_int(row, key, problems, where=f"{where}.")
        status = row.get("status")
        if status not in _SHARD_STATUSES:
            problems.append(f"{where}: unknown status {status!r}")
        elif status == "ok":
            _check_coverage(
                row.get("coverage"), problems,
                where=f"{where}.coverage", tables=False,
            )
    if all(
        isinstance(row, dict) and row.get("status") != "ok"
        for row in shard_reports
    ):
        problems.append("every shard failed: no results were merged")
    return problems

"""Campaign orchestration: the seeded, budgeted fuzzing loop.

One :class:`Campaign` spends its case budget across the three oracles:

* most cases go to the step-vs-block differential oracle (every such
  case also feeds the coverage map, and every 4th additionally runs the
  snapshot oracle on the same body);
* a slice of the budget (1 in 40, at least one) goes to the compiler
  round-trip oracle with freshly generated IR programs.

Case generation alternates between mutating the corpus (checked-in
seeds plus bodies that earned new coverage this campaign) and
generating fresh valid-by-construction sequences.  Any divergence is
delta-debugged down to a minimal reproducer and written out as a
self-contained repro file.

Everything observable — case bodies, coverage counters, the JSON
report — is a pure function of ``(seed, budget, corpus)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random

from repro.fuzz.corpus import write_repro
from repro.fuzz.coverage import CoverageMap
from repro.fuzz.generator import FuzzCase, Generator, mutate
from repro.fuzz.irgen import random_steps
from repro.fuzz.minimize import ddmin_list, minimize
from repro.fuzz.oracles import (
    CASE_STEP_BUDGET,
    run_cached_vs_fresh,
    run_compiler,
    run_differential,
    run_snapshot,
    run_spec_convergence,
)

__all__ = ["FuzzConfig", "Campaign", "run_campaign"]

REPORT_SCHEMA = "repro.fuzz/report-1"
#: Bumped whenever a key is added/renamed; consumers (BENCH_history,
#: CI artifact diffs) key off this rather than guessing from shape.
REPORT_SCHEMA_VERSION = 1


@dataclass
class FuzzConfig:
    seed: int = 0
    budget: int = 200
    max_steps: int = CASE_STEP_BUDGET
    #: Fraction of exec cases that mutate the corpus (when non-empty).
    mutation_rate: float = 0.45
    #: One in this many cases goes to the compiler oracle.
    compiler_share: int = 40
    #: One in this many exec cases also runs the snapshot oracle.
    snapshot_share: int = 4
    #: Where minimized failing cases are written (None: don't write).
    emit_dir: str | None = "fuzz-failures"
    #: Count campaign-level trace-bus events (insns observed, traps)
    #: and add a ``telemetry`` block to the report.  Off by default;
    #: enabling it changes no other report key.
    telemetry: bool = False
    #: Re-run every exec case under the speculative front-end and
    #: require bit-identical post-squash architectural state.  Off by
    #: default; enabling it adds a ``spec_convergence`` oracle block
    #: and a ``spec: true`` marker to the report, nothing else.
    spec: bool = False
    #: Re-run every exec case through a persisted-code round trip: the
    #: case's compiled set is recorded, saved to disk, imported into a
    #: pristine machine, and the cached run must be bit-identical to
    #: the fresh compiled run.  Off by default; enabling it adds a
    #: ``cached_vs_fresh`` oracle block and a ``codecache: true``
    #: marker to the report, nothing else.
    codecache: bool = False


@dataclass
class Failure:
    case: FuzzCase
    outcome: object
    minimized_len: int
    repro_path: str | None = None


@dataclass
class Campaign:
    config: FuzzConfig
    corpus: list = field(default_factory=list)
    #: Test hook: receives the fast-path hart of every differential
    #: case (mutation testing plants interpreter bugs through this).
    mutate_hart: object = None

    def __post_init__(self):
        self.coverage = CoverageMap()
        self.failures: list[Failure] = []
        self.stats = {
            "step_vs_block": {"cases": 0, "divergences": 0},
            "snapshot": {"cases": 0, "divergences": 0, "skipped": 0},
            "compiler": {"cases": 0, "divergences": 0, "words": 0},
        }
        if self.config.spec:
            self.stats["spec_convergence"] = {
                "cases": 0,
                "divergences": 0,
                "windows": 0,
                "transient_instructions": 0,
            }
        if self.config.codecache:
            self.stats["cached_vs_fresh"] = {
                "cases": 0,
                "divergences": 0,
                "entries": 0,
                "installed": 0,
                "rejected": 0,
            }
        #: Scratch directory for the cached_vs_fresh oracle's disk
        #: round trips; created for the duration of :meth:`run`.
        self._codecache_root = None
        self._interesting = 0
        #: ``(case, new_coverage_keys)`` for every case that earned new
        #: coverage — the raw material for cross-shard corpus merging
        #: and coverage-guided scheduling in :mod:`repro.fuzz.dist`.
        self.interesting_cases: list[tuple[FuzzCase, int]] = []
        self._telemetry = None
        self._observers = None
        if self.config.telemetry:
            from repro.telemetry.events import (
                INSN_RETIRE,
                TRAP_ENTER,
                TRAP_EXIT,
            )

            counters = {
                "insns_observed": 0,
                "traps_entered": 0,
                "traps_exited": 0,
                "interrupts": 0,
            }

            def on_insn(ins, pc):
                counters["insns_observed"] += 1

            def on_trap_enter(event):
                counters["traps_entered"] += 1
                if event.data["interrupt"]:
                    counters["interrupts"] += 1

            def on_trap_exit(event):
                counters["traps_exited"] += 1

            self._telemetry = counters
            self._observers = (
                (INSN_RETIRE, on_insn),
                (TRAP_ENTER, on_trap_enter),
                (TRAP_EXIT, on_trap_exit),
            )

    # -- main loop -------------------------------------------------------------

    def run(self) -> dict:
        config = self.config
        rng = Random(config.seed)
        generator = Generator()
        pool = list(self.corpus)

        n_compiler = max(1, config.budget // config.compiler_share)
        n_exec = max(0, config.budget - n_compiler)

        scratch = None
        if config.codecache:
            import tempfile

            scratch = tempfile.TemporaryDirectory(
                prefix="repro-fuzz-codecache-"
            )
            self._codecache_root = scratch.name
        try:
            for index in range(n_exec):
                case = self._next_case(rng, generator, pool, index)
                self._run_exec_case(case, rng, pool, index)

            for index in range(n_compiler):
                self._run_compiler_case(rng, index)
        finally:
            if scratch is not None:
                self._codecache_root = None
                scratch.cleanup()

        return self.report()

    # -- case scheduling -------------------------------------------------------

    def _next_case(self, rng, generator, pool, index) -> FuzzCase:
        name = f"case{self.config.seed:04d}_{index:06d}"
        if pool and rng.random() < self.config.mutation_rate:
            parent = rng.choice(pool)
            return mutate(rng, parent, name, generator, donors=pool)
        return generator.generate(rng, name)

    # -- oracle runners --------------------------------------------------------

    def _run_exec_case(self, case, rng, pool, index) -> None:
        config = self.config
        before = len(self.coverage.keys())
        outcome = run_differential(
            case,
            coverage=self.coverage,
            mutate_hart=self.mutate_hart,
            max_steps=config.max_steps,
            observers=self._observers,
        )
        self.stats["step_vs_block"]["cases"] += 1
        if not outcome:
            self.stats["step_vs_block"]["divergences"] += 1
            self._record_failure(
                case, outcome,
                lambda c: not run_differential(
                    c, mutate_hart=self.mutate_hart,
                    max_steps=config.max_steps,
                ).ok,
            )
        gained = len(self.coverage.keys()) - before
        if gained > 0:
            self._interesting += 1
            pool.append(case)
            self.interesting_cases.append((case, gained))

        if config.spec:
            spec_outcome = run_spec_convergence(
                case, max_steps=config.max_steps
            )
            spec_stats = self.stats["spec_convergence"]
            spec_stats["cases"] += 1
            spec_stats["windows"] += getattr(spec_outcome, "windows", 0)
            spec_stats["transient_instructions"] += getattr(
                spec_outcome, "transient_instructions", 0
            )
            if not spec_outcome:
                spec_stats["divergences"] += 1
                self._record_failure(
                    case, spec_outcome,
                    lambda c: not run_spec_convergence(
                        c, max_steps=config.max_steps
                    ).ok,
                )

        if config.codecache:
            cache_outcome = run_cached_vs_fresh(
                case, self._codecache_root, max_steps=config.max_steps
            )
            cache_stats = self.stats["cached_vs_fresh"]
            cache_stats["cases"] += 1
            cache_stats["entries"] += getattr(cache_outcome, "entries", 0)
            cache_stats["installed"] += getattr(
                cache_outcome, "installed", 0
            )
            cache_stats["rejected"] += getattr(cache_outcome, "rejected", 0)
            if not cache_outcome:
                cache_stats["divergences"] += 1
                self._record_failure(
                    case, cache_outcome,
                    lambda c: not run_cached_vs_fresh(
                        c, self._codecache_root,
                        max_steps=config.max_steps,
                    ).ok,
                )

        if index % config.snapshot_share == 0:
            cut_seed = rng.getrandbits(64)
            snap_outcome = run_snapshot(
                case, Random(cut_seed), max_steps=config.max_steps
            )
            self.stats["snapshot"]["cases"] += 1
            if snap_outcome.detail.startswith("skipped"):
                self.stats["snapshot"]["skipped"] += 1
            elif not snap_outcome:
                self.stats["snapshot"]["divergences"] += 1
                self._record_failure(
                    case, snap_outcome,
                    lambda c: not run_snapshot(
                        c, Random(cut_seed), max_steps=config.max_steps
                    ).ok,
                )

    def _run_compiler_case(self, rng, index) -> None:
        steps = random_steps(rng)
        outcome = run_compiler(steps)
        self.stats["compiler"]["cases"] += 1
        self.stats["compiler"]["words"] += getattr(outcome, "words", 0)
        if outcome:
            return
        self.stats["compiler"]["divergences"] += 1
        # Minimize the IR step list (bounded evaluations).
        checks = [0]

        def fails(candidate) -> bool:
            if checks[0] >= 60:
                return False
            checks[0] += 1
            return not run_compiler(candidate).ok

        reduced = ddmin_list(list(steps), fails)
        name = f"compiler{self.config.seed:04d}_{index:06d}"
        failure = Failure(
            case=FuzzCase(name=name, body_words=(), origin="compiler"),
            outcome=outcome,
            minimized_len=len(reduced),
        )
        if self.config.emit_dir:
            import json
            from pathlib import Path

            directory = Path(self.config.emit_dir)
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / f"{name}.json"
            path.write_text(json.dumps({
                "schema": "repro.fuzz/compiler-repro-1",
                "oracle": outcome.oracle,
                "detail": outcome.detail,
                "diffs": list(outcome.diffs),
                "steps": [list(s) for s in reduced],
            }, indent=2) + "\n")
            failure.repro_path = str(path)
        self.failures.append(failure)

    def _record_failure(self, case, outcome, still_fails) -> None:
        minimized, checks = minimize(case, still_fails)
        failure = Failure(
            case=minimized,
            outcome=outcome,
            minimized_len=len(minimized.body_words),
        )
        if self.config.emit_dir:
            failure.repro_path = str(write_repro(
                minimized, outcome, self.config.emit_dir,
                minimize_checks=checks,
            ))
        self.failures.append(failure)

    # -- reporting -------------------------------------------------------------

    @property
    def divergences(self) -> int:
        return (
            self.stats["step_vs_block"]["divergences"]
            + self.stats["snapshot"]["divergences"]
            + self.stats["compiler"]["divergences"]
            + self.stats.get("spec_convergence", {}).get("divergences", 0)
            + self.stats.get("cached_vs_fresh", {}).get("divergences", 0)
        )

    def report(self) -> dict:
        report = {
            "schema": REPORT_SCHEMA,
            "schema_version": REPORT_SCHEMA_VERSION,
            "seed": self.config.seed,
            "budget": self.config.budget,
            "max_steps": self.config.max_steps,
            "oracles": self.stats,
            "coverage": self.coverage.report(),
            "corpus": {
                "seeds": len(self.corpus),
                "interesting": self._interesting,
            },
            "divergences": self.divergences,
            "failures": [
                {
                    "name": f.case.name,
                    "oracle": f.outcome.oracle,
                    "detail": f.outcome.detail,
                    "origin": f.case.origin,
                    "minimized_len": f.minimized_len,
                    "repro": f.repro_path,
                }
                for f in self.failures
            ],
        }
        if self._telemetry is not None:
            report["telemetry"] = dict(self._telemetry)
        if self.config.spec:
            # Marker key so downstream consumers (perf trend baselines,
            # report diffing) can tell spec-mode campaigns apart; absent
            # entirely when speculation is off, keeping default reports
            # bit-identical.
            report["spec"] = True
        if self.config.codecache:
            # Same contract as the spec marker: travels with the
            # cached_vs_fresh oracle block, absent otherwise.
            report["codecache"] = True
        return report


def run_campaign(
    config: FuzzConfig,
    corpus=None,
    mutate_hart=None,
) -> dict:
    """Convenience wrapper: build, run, report."""
    campaign = Campaign(
        config, corpus=list(corpus or []), mutate_hart=mutate_hart
    )
    return campaign.run()

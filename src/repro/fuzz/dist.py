"""Sharded multi-process fuzz campaigns: partition, run, merge.

A distributed campaign splits one ``(seed, budget)`` across ``shards``
worker processes (optionally over several ``rounds``).  Each shard runs
an ordinary :class:`~repro.fuzz.campaign.Campaign` whose seed is a pure
function of ``(campaign seed, round, shard_id)`` — so any shard can be
re-run alone, bit-identically, without the rest of the fleet
(:func:`run_shard`).

After every round the driver merges the shard results:

* **coverage** — the per-shard :class:`CoverageMap`\\ s (fed from the
  telemetry trace bus during each shard's differential cases) are folded
  into one campaign-wide map;
* **corpus** — each shard's interesting cases are deduplicated on their
  content digests (:func:`~repro.fuzz.corpus.case_digest`) before
  joining the merged corpus;
* **scheduling** — the next round's shards are seeded coverage-guided:
  merged cases are ranked by how many new coverage keys they earned and
  the top :data:`SCHEDULE_CAP` become extra seeds for every shard.

A crashed or hung worker never loses the campaign: each shard has a
wall-clock timeout, and the driver marks the shard ``timeout`` or
``crashed`` in the merged report and carries on with a partial merge.
With ``DistConfig.flightrec`` each worker additionally keeps a bounded
:class:`~repro.telemetry.flightrec.FlightRecorder` of its recent events
and dumps it — on crash, or via the SIGTERM handler when the driver
terminates a hung shard — so the failed shard's row carries a
``repro.telemetry/flightrec-1`` post-mortem under ``flightrec``.

Everything in the merged report except the ``timing`` section is a pure
function of ``(seed, budget, shards, rounds, corpus)``;
:func:`canonical_json` strips ``timing`` so two runs of the same
campaign serialize bit-identically.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import signal
import time
from dataclasses import dataclass

from repro.fuzz.campaign import Campaign, FuzzConfig
from repro.fuzz.corpus import case_digest
from repro.fuzz.coverage import CoverageMap
from repro.fuzz.oracles import CASE_STEP_BUDGET

__all__ = [
    "DIST_REPORT_SCHEMA",
    "MAX_SHARDS",
    "DistConfig",
    "canonical_json",
    "resolve_shards",
    "run_distributed",
    "run_shard",
    "shard_budgets",
    "shard_seed",
]

DIST_REPORT_SCHEMA = "repro.fuzz/dist-report-1"
DIST_REPORT_SCHEMA_VERSION = 1

#: Upper bound on worker shards: beyond this the per-shard budgets get
#: too small to be useful and process overhead dominates.
MAX_SHARDS = 64


def resolve_shards(requested: int | None) -> int:
    """Worker count for a campaign, clamped to ``[1, MAX_SHARDS]``.

    ``requested`` of ``None`` or ``<= 0`` auto-detects from
    ``os.cpu_count()`` — which may legitimately return ``None`` (the
    platform cannot tell), in which case one shard is used.
    """
    if requested is None or requested <= 0:
        requested = os.cpu_count() or 1
    return max(1, min(requested, MAX_SHARDS))

#: How many merged interesting cases (ranked by new coverage keys) seed
#: the next round's shards on top of the base corpus.
SCHEDULE_CAP = 64

#: Test hook: comma-separated shard ids whose workers hang forever,
#: exercising the timeout + partial-merge path without a real deadlock.
HANG_ENV = "REPRO_FUZZ_TEST_HANG_SHARDS"

_SHARD_SUMMARY_KEYS = (
    "instruction_pairs",
    "instructions_executed",
    "trap_edges",
    "traps_taken",
    "clb_events",
)


@dataclass
class DistConfig:
    """Knobs for one distributed campaign."""

    seed: int = 0
    #: Total case budget, split across every shard of every round.
    budget: int = 2000
    shards: int = 2
    rounds: int = 1
    max_steps: int = CASE_STEP_BUDGET
    emit_dir: str | None = "fuzz-failures"
    telemetry: bool = False
    #: Run the ``spec_convergence`` oracle in every shard (see
    #: :class:`repro.fuzz.campaign.FuzzConfig`).
    spec: bool = False
    #: Run the ``cached_vs_fresh`` persisted-code oracle in every
    #: shard (see :class:`repro.fuzz.campaign.FuzzConfig`).
    codecache: bool = False
    #: Per-round wall-clock limit (seconds) a shard may take before it
    #: is terminated and merged as ``timeout``.  ``None``: wait forever.
    shard_timeout: float | None = 600.0
    #: ``False`` runs every shard sequentially in this process (useful
    #: for debugging and tests); merged results are identical.
    parallel: bool = True
    #: Attach a flight recorder to every worker shard; a crashed or
    #: terminated shard's dump is merged into its failed report row.
    #: Only meaningful with ``parallel`` (in-process shards cannot die).
    flightrec: bool = False


def shard_seed(seed: int, round_index: int, shard_id: int) -> int:
    """The worker campaign seed: pure function of (seed, round, shard)."""
    blob = f"repro.fuzz.shard:{seed}:{round_index}:{shard_id}".encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "little")


def shard_budgets(total: int, parts: int) -> list[int]:
    """Split ``total`` into ``parts`` near-equal deterministic slices."""
    if parts <= 0:
        raise ValueError(f"need at least one part, got {parts}")
    base, extra = divmod(total, parts)
    return [base + (1 if index < extra else 0) for index in range(parts)]


def run_shard(
    config: DistConfig,
    round_index: int,
    shard_id: int,
    budget: int,
    corpus,
) -> dict:
    """Run one shard in-process.

    The result — report, coverage map, interesting cases — is
    reproducible from ``(config.seed, round_index, shard_id)`` alone
    (plus the corpus, itself deterministic), which is what makes the
    multi-process campaign's merged report deterministic.
    """
    emit_dir = None
    if config.emit_dir:
        emit_dir = os.path.join(
            config.emit_dir, f"round{round_index}-shard{shard_id}"
        )
    fuzz_config = FuzzConfig(
        seed=shard_seed(config.seed, round_index, shard_id),
        budget=budget,
        max_steps=config.max_steps,
        emit_dir=emit_dir,
        telemetry=config.telemetry,
        spec=config.spec,
        codecache=config.codecache,
    )
    campaign = Campaign(fuzz_config, corpus=list(corpus))
    start = time.perf_counter()
    report = campaign.run()
    return {
        "round": round_index,
        "shard_id": shard_id,
        "shard_seed": fuzz_config.seed,
        "budget": budget,
        "status": "ok",
        "wall_seconds": time.perf_counter() - start,
        "report": report,
        "coverage": campaign.coverage,
        "interesting": campaign.interesting_cases,
    }


def _worker(conn, config, round_index, shard_id, budget, corpus,
            flight_path=None):
    """Child-process entry: run one shard, ship the result, exit."""
    recorder = None
    if flight_path is not None:
        from repro.telemetry.flightrec import (
            FlightRecorder,
            install_sigterm_dump,
        )

        recorder = FlightRecorder(f"fuzz-shard-{round_index}-{shard_id}")
        # The driver terminates a hung shard with SIGTERM; the handler
        # turns that kill into a post-mortem before the process dies.
        install_sigterm_dump(recorder, flight_path)
        recorder.note(
            "shard.start",
            round=round_index,
            shard=shard_id,
            budget=budget,
            corpus=len(corpus),
        )
    hang = os.environ.get(HANG_ENV, "")
    if str(shard_id) in [part for part in hang.split(",") if part]:
        time.sleep(3600)
    try:
        try:
            result = run_shard(config, round_index, shard_id, budget, corpus)
        except BaseException as error:
            if recorder is not None:
                # Disarm the SIGTERM handler first, then die on the
                # spot: the driver terminates a worker as soon as its
                # pipe closes, and that signal must not overwrite the
                # crash dump with a generic sigterm one.
                signal.signal(signal.SIGTERM, signal.SIG_IGN)
                recorder.note(
                    "shard.error",
                    error=f"{type(error).__name__}: {error}",
                )
                recorder.write(flight_path, "crash")
                conn.close()
                os._exit(1)
            raise
        conn.send(result)
    finally:
        conn.close()


def _failed_shard(config, round_index, shard_id, budget, status, wall,
                  flightrec=None):
    return {
        "round": round_index,
        "shard_id": shard_id,
        "shard_seed": shard_seed(config.seed, round_index, shard_id),
        "budget": budget,
        "status": status,
        "wall_seconds": wall,
        "report": None,
        "coverage": None,
        "interesting": [],
        "flightrec": flightrec,
    }


def _run_round_parallel(config, round_index, budgets, corpus) -> list[dict]:
    """One round of worker processes; hung/crashed shards degrade
    to ``timeout``/``crashed`` placeholder results instead of wedging
    or losing the campaign."""
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )
    flight_dir = None
    if config.flightrec:
        import tempfile

        flight_dir = tempfile.mkdtemp(prefix="repro-fuzz-flightrec-")

    def flight_path(shard_id):
        if flight_dir is None:
            return None
        return os.path.join(
            flight_dir, f"round{round_index}-shard{shard_id}.json"
        )

    try:
        workers = []
        for shard_id, budget in enumerate(budgets):
            recv_end, send_end = ctx.Pipe(duplex=False)
            process = ctx.Process(
                target=_worker,
                args=(send_end, config, round_index, shard_id, budget,
                      corpus, flight_path(shard_id)),
                name=f"fuzz-shard-{round_index}-{shard_id}",
            )
            process.start()
            # The parent must drop its copy of the send end so a dead
            # child reads as EOF rather than a pipe that might still be
            # written.
            send_end.close()
            workers.append((process, recv_end, budget))

        start = time.monotonic()
        deadline = (
            start + config.shard_timeout
            if config.shard_timeout is not None else None
        )
        results = []
        for shard_id, (process, recv_end, budget) in enumerate(workers):
            result = None
            status = "ok"
            try:
                timeout = (
                    None if deadline is None
                    else max(0.0, deadline - time.monotonic())
                )
                if recv_end.poll(timeout):
                    result = recv_end.recv()
                else:
                    status = "timeout"
            except (EOFError, OSError):
                status = "crashed"
            recv_end.close()
            if result is None:
                if process.is_alive():
                    process.terminate()
                process.join(10)
                dump = None
                if flight_dir is not None:
                    from repro.telemetry.flightrec import read_dump

                    # SIGTERM (timeout) or the crash handler wrote the
                    # post-mortem just before the worker died; a hard
                    # kill may leave nothing, and that is fine too.
                    dump = read_dump(flight_path(shard_id))
                results.append(_failed_shard(
                    config, round_index, shard_id, budget, status,
                    time.monotonic() - start,
                    flightrec=dump,
                ))
            else:
                process.join()
                results.append(result)
        return results
    finally:
        if flight_dir is not None:
            import shutil

            shutil.rmtree(flight_dir, ignore_errors=True)


def _merge_oracles(totals: dict, stats: dict) -> None:
    for name, counters in stats.items():
        bucket = totals.setdefault(name, {})
        for key, value in counters.items():
            bucket[key] = bucket.get(key, 0) + value


def run_distributed(config: DistConfig, corpus=None) -> dict:
    """Run the whole sharded campaign; return the merged report."""
    if config.shards <= 0:
        raise ValueError(f"need at least one shard, got {config.shards}")
    if config.rounds <= 0:
        raise ValueError(f"need at least one round, got {config.rounds}")
    base_corpus = list(corpus or [])

    coverage = CoverageMap()
    oracle_totals: dict = {}
    telemetry_totals: dict = {}
    shard_rows: list[dict] = []
    timing_rows: list[dict] = []
    failures: list[dict] = []
    #: (new_keys, digest, case) for every unique interesting case seen.
    merged_cases: list[tuple[int, str, object]] = []
    seen_digests = {case_digest(case) for case in base_corpus}
    duplicates_dropped = 0
    scheduled_per_round: list[int] = []
    divergences = 0

    wall_start = time.perf_counter()
    extra_seeds: list = []
    for round_index, round_budget in enumerate(
        shard_budgets(config.budget, config.rounds)
    ):
        budgets = shard_budgets(round_budget, config.shards)
        round_corpus = base_corpus + extra_seeds
        scheduled_per_round.append(len(extra_seeds))
        if config.parallel:
            results = _run_round_parallel(
                config, round_index, budgets, round_corpus
            )
        else:
            results = [
                run_shard(config, round_index, shard_id, budget, round_corpus)
                for shard_id, budget in enumerate(budgets)
            ]

        for result in results:
            row = {
                "round": result["round"],
                "shard_id": result["shard_id"],
                "shard_seed": result["shard_seed"],
                "budget": result["budget"],
                "status": result["status"],
            }
            timing_rows.append({
                "round": result["round"],
                "shard_id": result["shard_id"],
                "wall_seconds": result["wall_seconds"],
            })
            report = result["report"]
            if report is None:
                row.update({
                    "divergences": None,
                    "coverage": None,
                    "interesting": 0,
                    "new_coverage_keys": 0,
                })
                if result.get("flightrec") is not None:
                    row["flightrec"] = result["flightrec"]
                shard_rows.append(row)
                continue
            row["new_coverage_keys"] = coverage.merge(result["coverage"])
            row["divergences"] = report["divergences"]
            row["coverage"] = {
                key: report["coverage"][key] for key in _SHARD_SUMMARY_KEYS
            }
            row["interesting"] = report["corpus"]["interesting"]
            shard_rows.append(row)
            divergences += report["divergences"]
            _merge_oracles(oracle_totals, report["oracles"])
            for key, value in report.get("telemetry", {}).items():
                telemetry_totals[key] = telemetry_totals.get(key, 0) + value
            for failure in report["failures"]:
                failures.append({
                    **failure,
                    "round": result["round"],
                    "shard": result["shard_id"],
                })
            for case, gained in result["interesting"]:
                digest = case_digest(case)
                if digest in seen_digests:
                    duplicates_dropped += 1
                    continue
                seen_digests.add(digest)
                merged_cases.append((gained, digest, case))

        # Coverage-guided scheduling: the merged cases that earned the
        # most new keys (digest breaks ties, for determinism) seed every
        # shard of the next round.
        ranked = sorted(merged_cases, key=lambda item: (-item[0], item[1]))
        extra_seeds = [case for _, _, case in ranked[:SCHEDULE_CAP]]

    shards_failed = sum(
        1 for row in shard_rows if row["status"] != "ok"
    )
    report = {
        "schema": DIST_REPORT_SCHEMA,
        "schema_version": DIST_REPORT_SCHEMA_VERSION,
        "seed": config.seed,
        "budget": config.budget,
        "shards": config.shards,
        "rounds": config.rounds,
        "max_steps": config.max_steps,
        "shard_reports": shard_rows,
        "shards_ok": len(shard_rows) - shards_failed,
        "shards_failed": shards_failed,
        "oracles": oracle_totals,
        "coverage": coverage.report(),
        "corpus": {
            "seeds": len(base_corpus),
            "interesting": len(merged_cases),
            "duplicates_dropped": duplicates_dropped,
            "scheduled": scheduled_per_round,
        },
        "divergences": divergences,
        "failures": failures,
        "timing": {
            "wall_seconds": time.perf_counter() - wall_start,
            "shards": timing_rows,
        },
    }
    if config.telemetry:
        report["telemetry"] = telemetry_totals
    if config.spec:
        report["spec"] = True
    if config.codecache:
        report["codecache"] = True
    return report


def canonical_json(report: dict, include_timing: bool = False) -> str:
    """Deterministic serialized form: sorted keys, timing stripped.

    Wall-clock numbers are the only non-deterministic values in a
    merged report, so dropping the ``timing`` section makes two runs of
    the same campaign bit-identical.
    """
    import json

    document = report if include_timing else {
        key: value for key, value in report.items() if key != "timing"
    }
    return json.dumps(document, indent=2, sort_keys=True)

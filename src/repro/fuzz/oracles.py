"""The three differential oracles.

Every oracle returns an :class:`OracleOutcome`; ``ok=False`` means a
*divergence* — two execution paths that must agree did not — never
merely "the program trapped" (traps are legal behaviour both paths must
reproduce identically).

1. :func:`run_differential` — the same program on two machines, one
   single-stepping, one through the block translation cache; full
   architectural state must match, including cycle/instret counters,
   trap side effects and crypto-engine/CLB state.
2. :func:`run_snapshot` — one uninterrupted fast-path run vs. run k
   steps → capture → serialize → deserialize → restore → resume; the
   serialized form must also be stable (capture∘restore = identity).
3. :func:`run_compiler` — a random mini-IR program compiled with
   protection off and on: both binaries round-trip through the
   disassembler word-by-word, both runs halt with identical observable
   results, and the protected build's sensitive field is not stored in
   plaintext.

Two more oracles are opt-in: :func:`run_spec_convergence` (speculation
must be architecturally invisible) and :func:`run_cached_vs_fresh`
(code persisted through the on-disk code cache must be architecturally
invisible when imported into a fresh machine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random

from repro.errors import ReproError
from repro.fuzz.generator import FuzzCase
from repro.fuzz.harness import build_machine, harness_source
from repro.isa import assemble
from repro.isa.decoder import DecodeError, decode
from repro.isa.disassembler import disassemble
from repro.isa.encoder import encode
from repro.machine import HaltReason, architectural_state, diff_states
from repro.machine.spec import SpecConfig, SpeculativeEngine
from repro.snapshot import capture, from_bytes, restore, to_bytes
from repro.telemetry.bus import TraceBus
from repro.telemetry.events import INSN_RETIRE, TRAP_ENTER

__all__ = [
    "OracleOutcome",
    "run_differential",
    "run_snapshot",
    "run_spec_convergence",
    "run_cached_vs_fresh",
    "run_compiler",
    "roundtrip_words",
]

#: Per-case step budget: generous enough for every generated case,
#: small enough that a mutated infinite loop costs milliseconds.
CASE_STEP_BUDGET = 4000


@dataclass
class OracleOutcome:
    ok: bool
    oracle: str
    detail: str = ""
    diffs: list = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok


def _run_guarded(machine, max_steps: int, fast: bool):
    """Run; a Python-level error (e.g. trap with mtvec=0) is an outcome."""
    try:
        machine.run(max_steps, fast=fast)
        return None
    except ReproError as error:
        return f"{type(error).__name__}: {error}"


def _compare(ref, dut, oracle: str, context: str) -> OracleOutcome:
    left = architectural_state(ref)
    right = architectural_state(dut)
    if left == right:
        return OracleOutcome(True, oracle)
    diffs = diff_states(left, right)
    return OracleOutcome(
        False, oracle,
        detail=f"{context}: {len(diffs)} field(s) diverged",
        diffs=diffs[:40],
    )


# -- oracle 1: step vs run_block vs compiled ----------------------------------


def run_differential(
    case: FuzzCase,
    coverage=None,
    mutate_hart=None,
    max_steps: int = CASE_STEP_BUDGET,
    observers=None,
) -> OracleOutcome:
    """All three execution tiers must be bit-identical.

    One reference machine single-steps; one DUT runs the block
    interpreter with the compiled tier pinned off; a second DUT runs
    with the compiled tier forced on (threshold 1, so every translated
    block is compiled and chained).  Full architectural state must
    match pairwise.

    ``coverage`` (a CoverageMap) observes the reference run through the
    telemetry trace bus (``insn.retire`` + ``trap.enter``); ``observers``
    is an optional iterable of extra ``(kind, callback)`` subscriptions
    for the same bus (the campaign's ``--telemetry`` counters).
    ``mutate_hart`` is a test hook: it receives both fast-path harts so
    mutation tests can plant a bug and watch the oracle catch it.
    """
    program = assemble(harness_source(list(case.body_words), case.reg_seed))
    ref = build_machine(program)
    dut_block = build_machine(program)
    dut_block.hart.compile_enabled = False
    dut_compiled = build_machine(program)
    dut_compiled.hart.compile_threshold = 1
    if coverage is not None or observers:
        bus = TraceBus()
        if coverage is not None:
            bus.subscribe(INSN_RETIRE, coverage.record_instruction)
            bus.subscribe(TRAP_ENTER, coverage.record_trap_event)
        for kind, callback in observers or ():
            bus.subscribe(kind, callback)
        ref.hart.attach_tracer(bus)
    if mutate_hart is not None:
        mutate_hart(dut_block.hart)
        mutate_hart(dut_compiled.hart)
    error_ref = _run_guarded(ref, max_steps, fast=False)
    error_block = _run_guarded(dut_block, max_steps, fast=True)
    error_compiled = _run_guarded(dut_compiled, max_steps, fast=True)
    if coverage is not None:
        coverage.record_engine(ref)
    if not (error_ref == error_block == error_compiled):
        return OracleOutcome(
            False, "step_vs_block",
            detail=(
                f"errors diverged: step={error_ref!r} "
                f"block={error_block!r} compiled={error_compiled!r}"
            ),
        )
    outcome = _compare(ref, dut_block, "step_vs_block", case.name)
    if not outcome:
        return outcome
    return _compare(
        ref, dut_compiled, "step_vs_block", f"{case.name}[compiled]"
    )


# -- oracle 2: snapshot/restore/resume ----------------------------------------


def run_snapshot(
    case: FuzzCase,
    rng: Random,
    max_steps: int = CASE_STEP_BUDGET,
) -> OracleOutcome:
    """Interrupting a run with a serialized snapshot must be invisible."""
    program = assemble(harness_source(list(case.body_words), case.reg_seed))
    straight = build_machine(program)
    if _run_guarded(straight, max_steps, fast=True) is not None:
        # Unharnessable case (e.g. clobbered trap vector): oracle 1
        # already checks those; nothing to snapshot here.
        return OracleOutcome(True, "snapshot", detail="skipped: run errored")

    retired = max(1, straight.hart.instret)
    cut = rng.randint(1, retired)
    first = build_machine(program)
    first.run(cut, fast=True)

    snapshot = capture(first)
    blob = to_bytes(snapshot)
    resumed = restore(from_bytes(blob))
    reblob = to_bytes(capture(resumed))
    if reblob != blob:
        return OracleOutcome(
            False, "snapshot",
            detail=f"{case.name}: serialization not stable across "
            f"restore ({len(blob)} vs {len(reblob)} bytes)",
        )
    resumed.run(max_steps - cut, fast=True)
    return _compare(
        straight, resumed, "snapshot", f"{case.name} cut@{cut}"
    )


# -- oracle 3: compiler round-trip --------------------------------------------


def roundtrip_words(program) -> tuple[int, list[str]]:
    """Every .text word: decode → re-encode and disassemble → re-assemble.

    Returns (words checked, mismatch descriptions).
    """
    section = program.sections[".text"]
    data = section.data
    mismatches = []
    count = 0
    for offset in range(0, len(data) - len(data) % 4, 4):
        word = int.from_bytes(data[offset:offset + 4], "little")
        count += 1
        try:
            ins = decode(word)
        except DecodeError:
            mismatches.append(f"+{offset:#x}: {word:#010x} does not decode")
            continue
        reencoded = encode(ins)
        if reencoded != word:
            mismatches.append(
                f"+{offset:#x}: {word:#010x} re-encodes to {reencoded:#010x}"
            )
            continue
        text = disassemble(ins)
        try:
            single = assemble(f"_start:\n    {text}\n")
            word2 = int.from_bytes(
                single.sections[".text"].data[:4], "little"
            )
        except ReproError as error:
            mismatches.append(
                f"+{offset:#x}: {text!r} does not re-assemble: {error}"
            )
            continue
        if word2 != word:
            mismatches.append(
                f"+{offset:#x}: {text!r} re-assembles to "
                f"{word2:#010x}, expected {word:#010x}"
            )
    return count, mismatches


def run_compiler(steps, max_steps: int = 3_000_000) -> OracleOutcome:
    """Protection on vs off: same observable behaviour, different bytes."""
    from repro.compiler.pipeline import CompileOptions, compile_module
    from repro.fuzz.irgen import STARTUP, build_module

    module, vault = build_module(steps)
    runs = {}
    total_words = 0
    for options in (CompileOptions.baseline(), CompileOptions.full()):
        compiled = compile_module(module, options)
        program = assemble(STARTUP + compiled.asm)
        words, mismatches = roundtrip_words(program)
        total_words += words
        if mismatches:
            return OracleOutcome(
                False, "compiler",
                detail=f"{options.name}: {len(mismatches)} round-trip "
                "mismatch(es)",
                diffs=mismatches[:20],
            )
        machine = build_machine(program)
        reason = machine.run(max_steps)
        if reason is not HaltReason.SHUTDOWN:
            return OracleOutcome(
                False, "compiler",
                detail=f"{options.name}: did not halt ({reason})",
            )
        slot = compiled.layout.struct_layout(vault).slot("b")
        address = program.symbol("vault") + slot.offset
        runs[options.name] = {
            "exit_code": machine.exit_code,
            "console": machine.console,
            "b_cell": machine.read_u64(address),
        }
    base, full = runs["baseline"], runs["full"]
    if base["exit_code"] != full["exit_code"]:
        return OracleOutcome(
            False, "compiler",
            detail=f"exit codes diverge: baseline={base['exit_code']} "
            f"full={full['exit_code']}",
        )
    if base["console"] != full["console"]:
        return OracleOutcome(False, "compiler", detail="console diverges")
    if base["b_cell"] == full["b_cell"]:
        return OracleOutcome(
            False, "compiler",
            detail="protected field 'vault.b' is stored in plaintext "
            f"({base['b_cell']:#x}) in the full build",
        )
    outcome = OracleOutcome(True, "compiler")
    outcome.words = total_words
    return outcome


# -- oracle 4: speculative convergence ----------------------------------------


def run_spec_convergence(
    case: FuzzCase,
    max_steps: int = CASE_STEP_BUDGET,
    spec_config: SpecConfig | None = None,
) -> OracleOutcome:
    """Speculation must be architecturally invisible.

    The same harnessed case runs twice on the fast path: once plain,
    once with a :class:`SpeculativeEngine` attached — every transient
    window the predictor opens (down mispredicted paths, through SMC'd
    regions, into faulting loads) must squash without a trace.  Full
    architectural state, cycle/instret counters and crypto-engine state
    must be bit-identical afterwards.
    """
    program = assemble(harness_source(list(case.body_words), case.reg_seed))
    ref = build_machine(program)
    dut = build_machine(program)
    spec = SpeculativeEngine(spec_config or SpecConfig())
    dut.hart.attach_speculation(spec)
    try:
        error_ref = _run_guarded(ref, max_steps, fast=True)
        error_dut = _run_guarded(dut, max_steps, fast=True)
    finally:
        dut.hart.detach_speculation()
    if error_ref != error_dut:
        outcome = OracleOutcome(
            False, "spec_convergence",
            detail=f"errors diverged: plain={error_ref!r} "
            f"spec={error_dut!r}",
        )
    else:
        outcome = _compare(ref, dut, "spec_convergence", case.name)
    outcome.windows = spec.stats.windows
    outcome.transient_instructions = spec.stats.transient_instructions
    return outcome


# -- oracle 5: persisted code cache -------------------------------------------


def run_cached_vs_fresh(
    case: FuzzCase,
    cache_root: str,
    max_steps: int = CASE_STEP_BUDGET,
) -> OracleOutcome:
    """Persisted compiled code must be architecturally invisible.

    The case runs once on a fresh machine with the compile threshold
    pinned to 1 while a :class:`~repro.machine.codecache.CodeRecorder`
    captures every compiled block; the set then makes a real disk
    round trip through ``cache_root`` (manifest + generated module +
    bytecode sidecar) and is installed into a second, pristine machine,
    which runs the same case.  Both runs must be bit-identical.

    Rejected installs are legal — a case that stored over its own text
    before a block was recorded fails the byte validation on the
    pristine machine, which simply recompiles the block — but a
    save → load miss of the key just written is a persistence failure
    in its own right.  The cache is bounded tightly (``max_sets=8``)
    so a long campaign also exercises LRU eviction.
    """
    from repro.kernel.bootcache import program_digest
    from repro.machine.codecache import (
        CodeCache,
        CodeRecorder,
        cache_key,
        config_signature,
    )

    program = assemble(harness_source(list(case.body_words), case.reg_seed))
    fresh = build_machine(program)
    fresh.hart.compile_threshold = 1
    recorder = CodeRecorder()
    fresh.hart.code_collector = recorder
    try:
        error_fresh = _run_guarded(fresh, max_steps, fast=True)
    finally:
        fresh.hart.code_collector = None

    text_digest = program_digest(program)
    signature = config_signature(fresh.hart)
    key = cache_key(text_digest, signature)
    cache = CodeCache(root=cache_root, max_sets=8)
    cache.save(key, recorder, signature, text_digest)

    cached = build_machine(program)
    cached.hart.compile_threshold = 1
    loaded = cache.load(
        key,
        signature=config_signature(cached.hart),
        text_digest=text_digest,
    )
    if loaded is None:
        return OracleOutcome(
            False, "cached_vs_fresh",
            detail=f"{case.name}: save -> load round trip missed the "
            f"key just written ({cache.stats()})",
        )
    installed, rejected = cache.install(cached.hart, loaded)
    error_cached = _run_guarded(cached, max_steps, fast=True)

    if error_fresh != error_cached:
        outcome = OracleOutcome(
            False, "cached_vs_fresh",
            detail=f"errors diverged: fresh={error_fresh!r} "
            f"cached={error_cached!r}",
        )
    else:
        outcome = _compare(fresh, cached, "cached_vs_fresh", case.name)
    outcome.entries = len(recorder)
    outcome.installed = installed
    outcome.rejected = rejected
    return outcome

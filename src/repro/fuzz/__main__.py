"""CLI: ``python -m repro.fuzz --seed N --budget M --json``.

Exit status is non-zero when any oracle reported a divergence, so CI
can gate on it directly.  ``--replay file.json`` re-runs a single seed
or emitted repro file through the differential and snapshot oracles.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from random import Random

from repro.fuzz.campaign import FuzzConfig, run_campaign
from repro.fuzz.corpus import case_from_file, load_corpus
from repro.fuzz.oracles import run_differential, run_snapshot

#: Default checked-in seed corpus, resolved relative to the repo root.
DEFAULT_CORPUS = Path(__file__).resolve().parents[3] / "tests/fuzz/corpus"


def _replay(path: str, max_steps: int) -> int:
    case = case_from_file(path)
    failures = 0
    for label, outcome in (
        ("step_vs_block", run_differential(case, max_steps=max_steps)),
        ("snapshot", run_snapshot(case, Random(0), max_steps=max_steps)),
    ):
        status = "ok" if outcome.ok else "DIVERGENCE"
        print(f"{label:14s} {status}  {outcome.detail}")
        for diff in outcome.diffs:
            print(f"    {diff}")
        failures += 0 if outcome.ok else 1
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Deterministic differential fuzzing campaign.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--budget", type=int, default=200,
                        help="total number of fuzz cases")
    parser.add_argument("--max-steps", type=int, default=None,
                        help="per-case step budget")
    parser.add_argument("--json", action="store_true",
                        help="print the full JSON report to stdout")
    parser.add_argument("--output", type=Path, default=None,
                        help="also write the JSON report to this file")
    parser.add_argument("--corpus", type=Path, default=None,
                        help=f"seed corpus directory (default: "
                        f"{DEFAULT_CORPUS} when present)")
    parser.add_argument("--emit-dir", default="fuzz-failures",
                        help="directory for minimized repro files")
    parser.add_argument("--telemetry", action="store_true",
                        help="count trace-bus events campaign-wide and "
                        "add a telemetry block to the report")
    parser.add_argument("--replay", metavar="FILE", default=None,
                        help="re-run one seed/repro JSON file and exit")
    args = parser.parse_args(argv)

    config = FuzzConfig(seed=args.seed, budget=args.budget,
                        emit_dir=args.emit_dir,
                        telemetry=args.telemetry)
    if args.max_steps:
        config.max_steps = args.max_steps

    if args.replay:
        return _replay(args.replay, config.max_steps)

    corpus_dir = args.corpus if args.corpus is not None else DEFAULT_CORPUS
    corpus = load_corpus(corpus_dir)

    report = run_campaign(config, corpus=corpus)

    if args.output:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        oracles = report["oracles"]
        coverage = report["coverage"]
        print(f"seed {report['seed']}  budget {report['budget']}  "
              f"corpus seeds {report['corpus']['seeds']}  "
              f"interesting {report['corpus']['interesting']}")
        for name, stats in oracles.items():
            extra = "".join(
                f"  {k} {v}" for k, v in stats.items()
                if k not in ("cases", "divergences")
            )
            print(f"  {name:14s} cases {stats['cases']:6d}  "
                  f"divergences {stats['divergences']}{extra}")
        print(f"  coverage: {coverage['instruction_pairs']} instruction "
              f"pairs, {coverage['trap_edges']} trap edges, "
              f"{coverage['clb_events']} CLB events "
              f"({coverage['instructions_executed']} instructions, "
              f"{coverage['traps_taken']} traps)")
        if "telemetry" in report:
            telemetry = report["telemetry"]
            print("  telemetry: " + "  ".join(
                f"{key} {value}" for key, value in telemetry.items()
            ))
        for failure in report["failures"]:
            print(f"  FAILURE {failure['name']} [{failure['oracle']}] "
                  f"{failure['detail']} -> {failure['repro']}")
    return 1 if report["divergences"] else 0


if __name__ == "__main__":
    sys.exit(main())

"""CLI: ``python -m repro.fuzz --seed N --budget M [--shards K] --json``.

Exit status is non-zero when any oracle reported a divergence (or, for
sharded campaigns, when a worker shard crashed or timed out), so CI can
gate on it directly.  ``--replay file.json`` re-runs a single seed or
emitted repro file through the differential and snapshot oracles.

JSON output (``--json`` / ``--output``) is canonical: sorted keys, an
explicit ``schema_version``, and — for sharded campaigns — no
wall-clock section unless ``--with-timing`` is given, so the same
campaign always serializes bit-identically.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from random import Random

from repro.fuzz.campaign import FuzzConfig, run_campaign
from repro.fuzz.corpus import case_from_file, load_corpus
from repro.fuzz.dist import (
    DistConfig,
    canonical_json,
    resolve_shards,
    run_distributed,
)
from repro.fuzz.oracles import (
    run_cached_vs_fresh,
    run_differential,
    run_snapshot,
    run_spec_convergence,
)

#: Default checked-in seed corpus, resolved relative to the repo root.
DEFAULT_CORPUS = Path(__file__).resolve().parents[3] / "tests/fuzz/corpus"


def _replay(path: str, max_steps: int) -> int:
    import tempfile

    case = case_from_file(path)
    failures = 0
    with tempfile.TemporaryDirectory(
        prefix="repro-fuzz-codecache-"
    ) as scratch:
        cached = run_cached_vs_fresh(case, scratch, max_steps=max_steps)
    for label, outcome in (
        ("step_vs_block", run_differential(case, max_steps=max_steps)),
        ("snapshot", run_snapshot(case, Random(0), max_steps=max_steps)),
        ("spec", run_spec_convergence(case, max_steps=max_steps)),
        ("codecache", cached),
    ):
        status = "ok" if outcome.ok else "DIVERGENCE"
        print(f"{label:14s} {status}  {outcome.detail}")
        for diff in outcome.diffs:
            print(f"    {diff}")
        failures += 0 if outcome.ok else 1
    return 1 if failures else 0


def _print_oracle_summary(report: dict) -> None:
    for name, stats in report["oracles"].items():
        extra = "".join(
            f"  {k} {v}" for k, v in stats.items()
            if k not in ("cases", "divergences")
        )
        print(f"  {name:14s} cases {stats['cases']:6d}  "
              f"divergences {stats['divergences']}{extra}")
    coverage = report["coverage"]
    print(f"  coverage: {coverage['instruction_pairs']} instruction "
          f"pairs, {coverage['trap_edges']} trap edges, "
          f"{coverage['clb_events']} CLB events "
          f"({coverage['instructions_executed']} instructions, "
          f"{coverage['traps_taken']} traps)")
    if "telemetry" in report:
        print("  telemetry: " + "  ".join(
            f"{key} {value}" for key, value in report["telemetry"].items()
        ))
    for failure in report["failures"]:
        shard = (
            f" shard {failure['shard']}" if "shard" in failure else ""
        )
        print(f"  FAILURE{shard} {failure['name']} [{failure['oracle']}] "
              f"{failure['detail']} -> {failure['repro']}")


def _print_single(report: dict) -> None:
    print(f"seed {report['seed']}  budget {report['budget']}  "
          f"corpus seeds {report['corpus']['seeds']}  "
          f"interesting {report['corpus']['interesting']}")
    _print_oracle_summary(report)


def _print_dist(report: dict) -> None:
    corpus = report["corpus"]
    print(f"seed {report['seed']}  budget {report['budget']}  "
          f"shards {report['shards']}  rounds {report['rounds']}  "
          f"corpus seeds {corpus['seeds']}  "
          f"merged interesting {corpus['interesting']}  "
          f"duplicates dropped {corpus['duplicates_dropped']}")
    walls = {
        (row["round"], row["shard_id"]): row["wall_seconds"]
        for row in report["timing"]["shards"]
    }
    for row in report["shard_reports"]:
        wall = walls.get((row["round"], row["shard_id"]), 0.0)
        if row["status"] == "ok":
            detail = (f"divergences {row['divergences']}  "
                      f"+{row['new_coverage_keys']} new keys  "
                      f"interesting {row['interesting']}")
        else:
            detail = row["status"].upper()
            dump = row.get("flightrec")
            if dump is not None:
                detail += (f"  flight dump: {len(dump['events'])} events "
                           f"({dump['reason']})")
        print(f"  round {row['round']} shard {row['shard_id']}  "
              f"seed {row['shard_seed']:#018x}  budget {row['budget']:6d}  "
              f"{detail}  ({wall:.1f}s)")
    _print_oracle_summary(report)
    print(f"  shards ok {report['shards_ok']}  "
          f"failed {report['shards_failed']}  "
          f"wall {report['timing']['wall_seconds']:.1f}s")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Deterministic differential fuzzing campaign.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--budget", type=int, default=200,
                        help="total number of fuzz cases (split across "
                        "shards and rounds when --shards is given)")
    parser.add_argument("--max-steps", type=int, default=None,
                        help="per-case step budget")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="run a sharded multi-process campaign with "
                        "N worker shards and merge the results; 0 "
                        "auto-detects from the CPU count (clamped to "
                        "64 shards either way)")
    parser.add_argument("--rounds", type=int, default=1,
                        help="rounds per sharded campaign; later rounds "
                        "are seeded coverage-guided from earlier ones")
    parser.add_argument("--shard-timeout", type=float, default=600.0,
                        metavar="SECONDS",
                        help="wall-clock limit per shard per round; a "
                        "late worker is terminated and merged as a "
                        "timeout (0 disables)")
    parser.add_argument("--sequential", action="store_true",
                        help="run shards in-process instead of forking "
                        "workers (identical merged results)")
    parser.add_argument("--flightrec", action="store_true",
                        help="attach a flight recorder to every worker "
                        "shard; crashed/hung shards carry their dump "
                        "in the merged report")
    parser.add_argument("--with-timing", action="store_true",
                        help="include the (non-deterministic) timing "
                        "section in JSON output")
    parser.add_argument("--json", action="store_true",
                        help="print the full JSON report to stdout")
    parser.add_argument("--output", type=Path, default=None,
                        help="also write the JSON report to this file")
    parser.add_argument("--corpus", type=Path, default=None,
                        help=f"seed corpus directory (default: "
                        f"{DEFAULT_CORPUS} when present)")
    parser.add_argument("--emit-dir", default="fuzz-failures",
                        help="directory for minimized repro files")
    parser.add_argument("--telemetry", action="store_true",
                        help="count trace-bus events campaign-wide and "
                        "add a telemetry block to the report")
    parser.add_argument("--spec", action="store_true",
                        help="run every exec case a second time under "
                        "the speculative front-end and require "
                        "bit-identical post-squash state "
                        "(spec_convergence oracle)")
    parser.add_argument("--codecache", action="store_true",
                        help="round-trip every exec case's compiled set "
                        "through the on-disk code cache and require the "
                        "cached re-run to be bit-identical "
                        "(cached_vs_fresh oracle)")
    parser.add_argument("--replay", metavar="FILE", default=None,
                        help="re-run one seed/repro JSON file and exit")
    args = parser.parse_args(argv)

    max_steps = args.max_steps or FuzzConfig.max_steps

    if args.replay:
        return _replay(args.replay, max_steps)

    corpus_dir = args.corpus if args.corpus is not None else DEFAULT_CORPUS
    corpus = load_corpus(corpus_dir)

    if args.shards is not None:
        config = DistConfig(
            seed=args.seed,
            budget=args.budget,
            shards=resolve_shards(args.shards),
            rounds=args.rounds,
            max_steps=max_steps,
            emit_dir=args.emit_dir,
            telemetry=args.telemetry,
            spec=args.spec,
            codecache=args.codecache,
            shard_timeout=args.shard_timeout or None,
            parallel=not args.sequential,
            flightrec=args.flightrec,
        )
        report = run_distributed(config, corpus=corpus)
        text = canonical_json(report, include_timing=args.with_timing)
        if args.output:
            args.output.write_text(text + "\n")
        if args.json:
            print(text)
        else:
            _print_dist(report)
        if report["shards_failed"]:
            return 2
        return 1 if report["divergences"] else 0

    config = FuzzConfig(seed=args.seed, budget=args.budget,
                        max_steps=max_steps,
                        emit_dir=args.emit_dir,
                        telemetry=args.telemetry,
                        spec=args.spec,
                        codecache=args.codecache)
    report = run_campaign(config, corpus=corpus)
    text = json.dumps(report, indent=2, sort_keys=True)

    if args.output:
        args.output.write_text(text + "\n")
    if args.json:
        print(text)
    else:
        _print_single(report)
    return 1 if report["divergences"] else 0


if __name__ == "__main__":
    sys.exit(main())

"""QARMA-64 tweakable block cipher (Avanzi, ToSC 2017).

RegVault (§2.3.1) uses QARMA as its underlying cryptographic algorithm:
a 128-bit key, a 64-bit tweak and a 64-bit plaintext produce a 64-bit
ciphertext.  This module implements the full QARMA-64 family:

* all three S-boxes sigma0 / sigma1 / sigma2,
* any number of forward rounds ``r`` (the paper's hardware runs the
  recommended configuration; we default to ``r = 7``),
* encryption and decryption.

The implementation follows the reference structure: a forward track of
``r`` rounds keyed with ``k0`` and the round constants, a central
non-involutory reflector keyed with ``k1``/``w1``, and a backward track
keyed with ``k0 ^ alpha``.  The state is 16 nibbles ("cells"); cell 0 is
the most-significant nibble of the 64-bit word, matching the paper.

Validation status
-----------------
The cipher structure is cross-validated component-by-component against the
ARMv8.3 Pointer Authentication algorithm (a QARMA-64 derivative whose
reference implementation ships in QEMU): the cell ordering (cell 0 = MSB
nibble), the state shuffle ``tau``, the almost-MDS MixColumns
``circ(0, rho, rho^2, rho)`` with left nibble rotation, the S-box
``sigma2``, the central reflector sequence
``tau . M . (+k1) . tau^-1`` fused with the surrounding whitening rounds,
and the key orbit ``o(x) = (x >>> 1) ^ (x >> 63)`` all agree exactly.
Round-trip, bijectivity, avalanche and tweak-sensitivity properties are
enforced by tests (``tests/crypto/test_qarma.py``).

This offline environment cannot fetch Avanzi's paper to confirm the
published known-answer table; the values recorded in
:data:`CANDIDATE_PUBLISHED_VECTORS` are carried from memory and kept in an
``xfail`` test so anyone with the paper at hand can check in seconds.
Regression safety is instead anchored on :data:`FROZEN_VECTORS`, generated
once from this implementation and locked.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CryptoError
from repro.utils.bits import MASK64

#: Reflection constant alpha (QARMA-64).
ALPHA = 0xC0AC29B7C97C50DD

#: Round constants c0..c7 (digits of pi).
ROUND_CONSTANTS = (
    0x0000000000000000,
    0x13198A2E03707344,
    0xA4093822299F31D0,
    0x082EFA98EC4E6C89,
    0x452821E638D01377,
    0xBE5466CF34E90C6C,
    0x3F84D5B5B5470917,
    0x9216D5D98979FB1B,
)

#: The three QARMA S-boxes.
SBOXES = {
    0: (0, 14, 2, 10, 9, 15, 8, 11, 6, 4, 3, 7, 13, 12, 1, 5),
    1: (10, 13, 14, 6, 15, 7, 3, 5, 9, 8, 0, 12, 11, 1, 2, 4),
    2: (11, 6, 8, 15, 12, 0, 9, 14, 3, 7, 4, 5, 13, 2, 1, 10),
}


def _invert_permutation(perm: tuple[int, ...]) -> tuple[int, ...]:
    inverse = [0] * len(perm)
    for i, p in enumerate(perm):
        inverse[p] = i
    return tuple(inverse)


SBOXES_INV = {idx: _invert_permutation(box) for idx, box in SBOXES.items()}

#: Tweak cell permutation h.
TWEAK_PERM = (6, 5, 14, 15, 0, 1, 2, 3, 7, 12, 13, 4, 8, 9, 10, 11)
TWEAK_PERM_INV = _invert_permutation(TWEAK_PERM)

#: State cell permutation tau (the MIDORI permutation).
CELL_PERM = (0, 11, 6, 13, 10, 1, 12, 7, 5, 14, 3, 8, 15, 2, 9, 4)
CELL_PERM_INV = _invert_permutation(CELL_PERM)

#: Cells of the tweak refreshed by the omega LFSR between rounds.
LFSR_CELLS = (0, 1, 3, 4, 8, 11, 13)

#: MixColumns matrix M = Q = circ(0, rho^1, rho^2, rho^1); entries are the
#: rotation amounts, 0 meaning "no contribution".
MIX_MATRIX = (
    (0, 1, 2, 1),
    (1, 0, 1, 2),
    (2, 1, 0, 1),
    (1, 2, 1, 0),
)


def _text_to_cells(word: int) -> list[int]:
    """Split a 64-bit word into 16 nibbles; cell 0 is the MSB nibble."""
    return [(word >> (4 * (15 - i))) & 0xF for i in range(16)]


def _cells_to_text(cells: list[int]) -> int:
    word = 0
    for i in range(16):
        word |= (cells[i] & 0xF) << (4 * (15 - i))
    return word


def _rot4(nibble: int, amount: int) -> int:
    """Rotate a 4-bit nibble left by ``amount``."""
    amount &= 3
    return ((nibble << amount) | (nibble >> (4 - amount))) & 0xF if amount else nibble


def _lfsr(nibble: int) -> int:
    """omega: (b3, b2, b1, b0) -> (b0 ^ b3, b3, b2, b1)."""
    b0 = nibble & 1
    b3 = (nibble >> 3) & 1
    return (((b0 ^ b3) << 3) | (nibble >> 1)) & 0xF


def _lfsr_inv(nibble: int) -> int:
    """omega^-1: (a3, a2, a1, a0) -> (a2, a1, a0, a3 ^ a2)."""
    a3 = (nibble >> 3) & 1
    a2 = (nibble >> 2) & 1
    return (((nibble << 1) & 0xF) | (a3 ^ a2)) & 0xF


def _permute(cells: list[int], perm: tuple[int, ...]) -> list[int]:
    return [cells[perm[i]] for i in range(16)]


def _mix(cells: list[int]) -> list[int]:
    """MixColumns with the involutory almost-MDS matrix M."""
    out = [0] * 16
    for row in range(4):
        for col in range(4):
            acc = 0
            for j in range(4):
                amount = MIX_MATRIX[row][j]
                if amount:
                    acc ^= _rot4(cells[4 * j + col], amount)
            out[4 * row + col] = acc
    return out


# -- host fast path ----------------------------------------------------------
#
# The reference layers above manipulate 16-element cell lists; the fast
# path instead works on the packed 64-bit word with byte-indexed lookup
# tables.  Every diffusion layer used by the cipher (tau, M, the tweak
# schedule h + omega, and their fused compositions) is linear over XOR,
# so the image of a full word is the XOR of the images of its eight
# bytes: one 8x256 table per fused layer turns a layer into 8 lookups
# and 7 XORs.  The S-box layer is nibble-local, so it is a byte-wise
# table as well (pre-shifted per byte position).  The tables are built
# lazily from the reference helpers, which keeps them correct by
# construction; `tests/crypto/test_qarma_fast.py` sweeps the fast path
# against the reference methods for every S-box.

_BYTE_SHIFTS = tuple(56 - 8 * i for i in range(8))
_LFSR_SET = frozenset(LFSR_CELLS)


def _linear_table(transform) -> tuple:
    """Per-byte tables for a GF(2)-linear transform on the cell state."""
    tables = []
    for shift in _BYTE_SHIFTS:
        tables.append(tuple(
            _cells_to_text(transform(_text_to_cells(value << shift)))
            for value in range(256)
        ))
    return tuple(tables)


def _sbox_table(box) -> tuple:
    """Pre-shifted per-byte tables for the nibble-wise S-box layer."""
    tables = []
    for shift in _BYTE_SHIFTS:
        tables.append(tuple(
            ((box[value >> 4] << 4) | box[value & 0xF]) << shift
            for value in range(256)
        ))
    return tuple(tables)


def _tweak_fwd_cells(cells: list[int]) -> list[int]:
    cells = _permute(cells, TWEAK_PERM)
    return [
        _lfsr(c) if i in _LFSR_SET else c for i, c in enumerate(cells)
    ]


def _tweak_inv_cells(cells: list[int]) -> list[int]:
    cells = [
        _lfsr_inv(c) if i in _LFSR_SET else c for i, c in enumerate(cells)
    ]
    return _permute(cells, TWEAK_PERM_INV)


#: Sbox-independent fused linear layers, built on first use:
#: (M.tau, tau^-1.M, tau^-1.M.tau, tweak-forward, tweak-inverse).
_LINEAR_TABLES = None
#: sbox index -> (sbox layer, inverse sbox layer) byte tables.
_SBOX_TABLES: dict[int, tuple] = {}


def _linear_tables():
    global _LINEAR_TABLES
    if _LINEAR_TABLES is None:
        _LINEAR_TABLES = (
            _linear_table(lambda c: _mix(_permute(c, CELL_PERM))),
            _linear_table(lambda c: _permute(_mix(c), CELL_PERM_INV)),
            _linear_table(
                lambda c: _permute(_mix(_permute(c, CELL_PERM)), CELL_PERM_INV)
            ),
            _linear_table(_tweak_fwd_cells),
            _linear_table(_tweak_inv_cells),
        )
    return _LINEAR_TABLES


def _sbox_tables(index: int) -> tuple:
    tables = _SBOX_TABLES.get(index)
    if tables is None:
        tables = (_sbox_table(SBOXES[index]), _sbox_table(SBOXES_INV[index]))
        _SBOX_TABLES[index] = tables
    return tables


def _apply8(t, w: int) -> int:
    """Apply one fused byte-table layer to a 64-bit word."""
    return (
        t[0][w >> 56] ^ t[1][(w >> 48) & 255] ^ t[2][(w >> 40) & 255]
        ^ t[3][(w >> 32) & 255] ^ t[4][(w >> 24) & 255]
        ^ t[5][(w >> 16) & 255] ^ t[6][(w >> 8) & 255] ^ t[7][w & 255]
    )


#: key128 -> precomputed whitening/round/reflector key material.  Keyed
#: per 128-bit key (not per cipher instance): the schedule does not
#: depend on the S-box or round count, so every engine sharing a key
#: file shares the entries.  Bounded FIFO — key churn simply recomputes.
_SCHEDULE_CACHE: dict[int, tuple] = {}
_SCHEDULE_CACHE_BOUND = 256


def _schedule(key128: int) -> tuple:
    sched = _SCHEDULE_CACHE.get(key128)
    if sched is None:
        w0 = (key128 >> 64) & MASK64
        k0 = key128 & MASK64
        w1 = Qarma64._orbit(w0)
        k1 = _cells_to_text(_mix(_text_to_cells(k0)))
        # The reflector key addition sits between M and tau^-1; pushing
        # it through the permutation lets the fast path use the fused
        # tau^-1.M.tau table plus one XOR with this constant.
        refl_enc = _cells_to_text(_permute(_text_to_cells(k0), CELL_PERM_INV))
        refl_dec = _cells_to_text(_permute(_text_to_cells(k1), CELL_PERM_INV))
        rk_a = tuple(k0 ^ rc for rc in ROUND_CONSTANTS)
        rk_b = tuple(k0 ^ ALPHA ^ rc for rc in ROUND_CONSTANTS)
        if len(_SCHEDULE_CACHE) >= _SCHEDULE_CACHE_BOUND:
            _SCHEDULE_CACHE.pop(next(iter(_SCHEDULE_CACHE)))
        sched = (w0, w1, rk_a, rk_b, refl_enc, refl_dec)
        _SCHEDULE_CACHE[key128] = sched
    return sched


def clear_schedule_cache() -> None:
    """Drop every cached key schedule (test hook)."""
    _SCHEDULE_CACHE.clear()


class Qarma64:
    """QARMA-64 cipher instance with a fixed S-box and round count.

    Parameters
    ----------
    rounds:
        Number of forward rounds ``r`` (the cipher runs ``2r + 2`` S-box
        layers in total).  Avanzi recommends r = 7 with sigma2 for
        64-bit blocks; RegVault's 3-cycle engine corresponds to a fully
        unrolled short-latency variant.
    sbox:
        Which of the three published S-boxes to use (0, 1 or 2).
    """

    def __init__(self, rounds: int = 7, sbox: int = 2):
        if sbox not in SBOXES:
            raise CryptoError(f"unknown QARMA sbox index {sbox}")
        if not 1 <= rounds <= len(ROUND_CONSTANTS):
            raise CryptoError(
                f"rounds must be in 1..{len(ROUND_CONSTANTS)}, got {rounds}"
            )
        self.rounds = rounds
        self.sbox_index = sbox
        self._sbox = SBOXES[sbox]
        self._sbox_inv = SBOXES_INV[sbox]
        self._sb, self._sbi = _sbox_tables(sbox)
        (self._fwd, self._bwd, self._ref,
         self._twu, self._twui) = _linear_tables()

    # -- key specialization -------------------------------------------------

    @staticmethod
    def split_key(key128: int) -> tuple[int, int]:
        """Split a 128-bit key into (w0, k0); w0 is the high 64 bits."""
        if not 0 <= key128 < (1 << 128):
            raise CryptoError("key must be a 128-bit integer")
        return (key128 >> 64) & MASK64, key128 & MASK64

    @staticmethod
    def _orbit(w0: int) -> int:
        """o(x) = (x >>> 1) ^ (x >> 63) — derives w1 from w0."""
        return (((w0 >> 1) | (w0 << 63)) ^ (w0 >> 63)) & MASK64

    # -- layer helpers ------------------------------------------------------

    def _sub_cells(self, cells: list[int]) -> list[int]:
        box = self._sbox
        return [box[c] for c in cells]

    def _sub_cells_inv(self, cells: list[int]) -> list[int]:
        box = self._sbox_inv
        return [box[c] for c in cells]

    def _forward(self, state: int, tweakey: int, full: bool) -> int:
        state ^= tweakey
        cells = _text_to_cells(state)
        if full:
            cells = _permute(cells, CELL_PERM)
            cells = _mix(cells)
        cells = self._sub_cells(cells)
        return _cells_to_text(cells)

    def _backward(self, state: int, tweakey: int, full: bool) -> int:
        cells = _text_to_cells(state)
        cells = self._sub_cells_inv(cells)
        if full:
            cells = _mix(cells)
            cells = _permute(cells, CELL_PERM_INV)
        return _cells_to_text(cells) ^ tweakey

    @staticmethod
    def _update_tweak(tweak: int) -> int:
        cells = _permute(_text_to_cells(tweak), TWEAK_PERM)
        for i in LFSR_CELLS:
            cells[i] = _lfsr(cells[i])
        return _cells_to_text(cells)

    @staticmethod
    def _update_tweak_inv(tweak: int) -> int:
        cells = _text_to_cells(tweak)
        for i in LFSR_CELLS:
            cells[i] = _lfsr_inv(cells[i])
        cells = _permute(cells, TWEAK_PERM_INV)
        return _cells_to_text(cells)

    @staticmethod
    def _reflect(state: int, key: int) -> int:
        """Central pseudo-reflector: tau, Q-mix + key, tau^-1."""
        cells = _permute(_text_to_cells(state), CELL_PERM)
        cells = _mix(cells)
        key_cells = _text_to_cells(key)
        cells = [c ^ k for c, k in zip(cells, key_cells)]
        cells = _permute(cells, CELL_PERM_INV)
        return _cells_to_text(cells)

    # -- public API ----------------------------------------------------------

    def encrypt(self, plaintext: int, tweak: int, key128: int) -> int:
        """Encrypt a 64-bit ``plaintext`` under ``tweak`` and a 128-bit key."""
        self._check_inputs(plaintext, tweak)
        if not 0 <= key128 < (1 << 128):
            raise CryptoError("key must be a 128-bit integer")
        w0, w1, rk_a, rk_b, refl_enc, _ = _schedule(key128)
        return self._fast_crypt(plaintext, tweak, w0, w1, rk_a, refl_enc, rk_b)

    def decrypt(self, ciphertext: int, tweak: int, key128: int) -> int:
        """Decrypt a 64-bit ``ciphertext`` under ``tweak`` and a 128-bit key."""
        self._check_inputs(ciphertext, tweak)
        if not 0 <= key128 < (1 << 128):
            raise CryptoError("key must be a 128-bit integer")
        # Decryption is encryption with swapped whitening keys, the round
        # key folded with alpha, and the reflector key pushed through Q:
        # under that folding the backward round keys of one direction are
        # the forward round keys of the other, so one schedule serves both.
        w0, w1, rk_a, rk_b, _, refl_dec = _schedule(key128)
        return self._fast_crypt(ciphertext, tweak, w1, w0, rk_b, refl_dec, rk_a)

    def encrypt_reference(self, plaintext: int, tweak: int, key128: int) -> int:
        """Reference (cell-list) encryption; the fast path must match it."""
        self._check_inputs(plaintext, tweak)
        w0, k0 = self.split_key(key128)
        return self._crypt(plaintext, tweak, w0, self._orbit(w0), k0, k0, k0)

    def decrypt_reference(self, ciphertext: int, tweak: int, key128: int) -> int:
        """Reference (cell-list) decryption; the fast path must match it."""
        self._check_inputs(ciphertext, tweak)
        w0, k0 = self.split_key(key128)
        k1 = _cells_to_text(_mix(_text_to_cells(k0)))
        return self._crypt(
            ciphertext, tweak, self._orbit(w0), w0, k0 ^ ALPHA, k1, k0 ^ ALPHA
        )

    def _fast_crypt(
        self,
        text: int,
        tweak: int,
        wa: int,
        wb: int,
        fwd_rk: tuple,
        refl_const: int,
        bwd_rk: tuple,
    ) -> int:
        """Table-fused mirror of :meth:`_crypt`.

        ``wa``/``wb`` are the in/out whitening keys, ``fwd_rk[i]`` the
        forward-track round key (``k0 ^ c_i`` folded at schedule time),
        ``bwd_rk[i]`` the backward-track one (``k0_back ^ c_i ^ alpha``)
        and ``refl_const`` the reflector key already pushed through
        ``tau^-1``.
        """
        sb, sbi = self._sb, self._sbi
        fwd, bwd, ref = self._fwd, self._bwd, self._ref
        twu, twui = self._twu, self._twui
        state = text ^ wa
        # Round 0 has no diffusion layer (the `full=False` round).
        state = _apply8(sb, state ^ fwd_rk[0] ^ tweak)
        tweak = _apply8(twu, tweak)
        for i in range(1, self.rounds):
            state = _apply8(sb, _apply8(fwd, state ^ fwd_rk[i] ^ tweak))
            tweak = _apply8(twu, tweak)

        state = _apply8(sb, _apply8(fwd, state ^ wb ^ tweak))
        state = _apply8(ref, state) ^ refl_const
        state = _apply8(bwd, _apply8(sbi, state)) ^ wa ^ tweak

        for i in range(self.rounds - 1, 0, -1):
            tweak = _apply8(twui, tweak)
            state = _apply8(bwd, _apply8(sbi, state)) ^ bwd_rk[i] ^ tweak
        tweak = _apply8(twui, tweak)
        state = _apply8(sbi, state) ^ bwd_rk[0] ^ tweak
        return state ^ wb

    def _crypt(
        self,
        text: int,
        tweak: int,
        w0: int,
        w1: int,
        k0: int,
        k1: int,
        k0_back: int,
    ) -> int:
        state = text ^ w0
        for i in range(self.rounds):
            state = self._forward(state, k0 ^ tweak ^ ROUND_CONSTANTS[i], i != 0)
            tweak = self._update_tweak(tweak)

        state = self._forward(state, w1 ^ tweak, True)
        state = self._reflect(state, k1)
        state = self._backward(state, w0 ^ tweak, True)

        for i in reversed(range(self.rounds)):
            tweak = self._update_tweak_inv(tweak)
            state = self._backward(
                state, k0_back ^ tweak ^ ROUND_CONSTANTS[i] ^ ALPHA, i != 0
            )

        return state ^ w1

    @staticmethod
    def _check_inputs(text: int, tweak: int) -> None:
        if not 0 <= text <= MASK64:
            raise CryptoError("block must be a 64-bit integer")
        if not 0 <= tweak <= MASK64:
            raise CryptoError("tweak must be a 64-bit integer")


_DEFAULT = Qarma64()


def qarma64_encrypt(
    plaintext: int, tweak: int, key128: int, rounds: int = 7, sbox: int = 2
) -> int:
    """Module-level convenience wrapper around :meth:`Qarma64.encrypt`."""
    if rounds == _DEFAULT.rounds and sbox == _DEFAULT.sbox_index:
        return _DEFAULT.encrypt(plaintext, tweak, key128)
    return Qarma64(rounds, sbox).encrypt(plaintext, tweak, key128)


def qarma64_decrypt(
    ciphertext: int, tweak: int, key128: int, rounds: int = 7, sbox: int = 2
) -> int:
    """Module-level convenience wrapper around :meth:`Qarma64.decrypt`."""
    if rounds == _DEFAULT.rounds and sbox == _DEFAULT.sbox_index:
        return _DEFAULT.decrypt(ciphertext, tweak, key128)
    return Qarma64(rounds, sbox).decrypt(ciphertext, tweak, key128)


@dataclass(frozen=True)
class QarmaTestVector:
    """A published known-answer test vector for QARMA-64."""

    sbox: int
    rounds: int
    w0: int
    k0: int
    tweak: int
    plaintext: int
    ciphertext: int

    @property
    def key128(self) -> int:
        return (self.w0 << 64) | self.k0


#: Candidate known-answer vectors (Avanzi 2017), carried from memory and
#: NOT verifiable in this offline environment — see module docstring.
CANDIDATE_PUBLISHED_VECTORS = (
    QarmaTestVector(
        sbox=0,
        rounds=5,
        w0=0x84BE85CE9804E94B,
        k0=0xEC2802D4E0A488E9,
        tweak=0x477D469DEC0B8762,
        plaintext=0xFB623599DA6E8127,
        ciphertext=0x544B0AB95BDA7C3A,
    ),
    QarmaTestVector(
        sbox=1,
        rounds=6,
        w0=0x84BE85CE9804E94B,
        k0=0xEC2802D4E0A488E9,
        tweak=0x477D469DEC0B8762,
        plaintext=0xFB623599DA6E8127,
        ciphertext=0xA512DD1E4E3EC582,
    ),
    QarmaTestVector(
        sbox=2,
        rounds=7,
        w0=0x84BE85CE9804E94B,
        k0=0xEC2802D4E0A488E9,
        tweak=0x477D469DEC0B8762,
        plaintext=0xFB623599DA6E8127,
        ciphertext=0xEDF67FF370A483F2,
    ),
)


#: Frozen known-answer vectors generated from this implementation
#: (regression lock: any future change to the cipher must reproduce these).
FROZEN_VECTORS = (
    QarmaTestVector(
        sbox=2, rounds=7,
        w0=0x0123456789ABCDEF, k0=0x0123456789ABCDEF,
        tweak=0x0000000000000000, plaintext=0x0000000000000000,
        ciphertext=0xCCB0EB5D5EA637BC,
    ),
    QarmaTestVector(
        sbox=2, rounds=7,
        w0=0x84BE85CE9804E94B, k0=0xEC2802D4E0A488E9,
        tweak=0x477D469DEC0B8762, plaintext=0xFB623599DA6E8127,
        ciphertext=0x507C892B5730A6EA,
    ),
    QarmaTestVector(
        sbox=1, rounds=6,
        w0=0x84BE85CE9804E94B, k0=0xEC2802D4E0A488E9,
        tweak=0x477D469DEC0B8762, plaintext=0xFB623599DA6E8127,
        ciphertext=0x62270DB2518E0535,
    ),
    QarmaTestVector(
        sbox=0, rounds=5,
        w0=0x84BE85CE9804E94B, k0=0xEC2802D4E0A488E9,
        tweak=0x477D469DEC0B8762, plaintext=0xFB623599DA6E8127,
        ciphertext=0x681699A27881FFCC,
    ),
    QarmaTestVector(
        sbox=2, rounds=7,
        w0=0xFEDCBA9876543210, k0=0xFEDCBA9876543210,
        tweak=0x1111111111111111, plaintext=0xDEADBEEFCAFEBABE,
        ciphertext=0x693F9126EA7E18C8,
    ),
    QarmaTestVector(
        sbox=2, rounds=7,
        w0=0x0000000000000000, k0=0x0000000000000001,
        tweak=0xFFFFFFFFFFFFFFFF, plaintext=0x8000000000000000,
        ciphertext=0x667F58F17A378028,
    ),
)

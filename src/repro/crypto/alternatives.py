"""Alternative randomization ciphers for ablation studies (§5).

The paper positions QARMA against two alternatives:

* **XOR-based DSR** (Bhatkar & Sekar; HARD; CoDaRR): data XORed with a
  per-class mask.  "All of these works suffer memory disclosures, due
  to the weak XOR-based encryption" — one known plaintext/ciphertext
  pair recovers the mask, after which the attacker forges arbitrary
  valid ciphertexts.  :class:`XorDsrCipher` reproduces that weakness
  verbatim so the ablation benchmark can demonstrate it.

* **Other lightweight tweakable block ciphers** ("like CRAFT, are
  compatible with RegVault architecture").  :class:`XexXteaCipher` is
  such a drop-in: the standard XEX construction over the XTEA block
  cipher — a genuine tweakable strong cipher with a different
  cost point (two block operations per primitive).

Both expose the ``encrypt(block, tweak, key128)`` /
``decrypt(block, tweak, key128)`` interface of
:class:`repro.crypto.qarma.Qarma64`, so the crypto-engine, the ISA and
the whole kernel stack run unmodified on top of either.
"""

from __future__ import annotations

from repro.errors import CryptoError
from repro.utils.bits import MASK64

#: Nominal engine latencies (cycles on a CLB miss) per cipher, used by
#: the ablation benchmarks.  QARMA completes in 3 cycles (§4.2); XOR is
#: a single gate delay; XEX needs two serial block operations.
CIPHER_MISS_CYCLES = {"qarma": 3, "xor": 1, "xex": 7}


class XorDsrCipher:
    """Data-space-randomization-style XOR masking (intentionally weak).

    ``c = p ^ fold(key) ^ tweak`` — involutive, keyed, tweakable in the
    trivial sense.  Integrity ranges still "work" mechanically (an
    uninformed corruption garbles the zero bytes), but anyone holding a
    single (p, c, tweak) triple recovers ``fold(key)`` exactly and can
    then forge ciphertexts that decrypt to chosen values with valid
    zero-checks.
    """

    rounds = 1
    sbox_index = -1

    @staticmethod
    def _mask(key128: int) -> int:
        if not 0 <= key128 < (1 << 128):
            raise CryptoError("key must be a 128-bit integer")
        return ((key128 >> 64) ^ key128) & MASK64

    def encrypt(self, plaintext: int, tweak: int, key128: int) -> int:
        self._check(plaintext, tweak)
        return (plaintext ^ self._mask(key128) ^ tweak) & MASK64

    def decrypt(self, ciphertext: int, tweak: int, key128: int) -> int:
        return self.encrypt(ciphertext, tweak, key128)  # involution

    @staticmethod
    def _check(block: int, tweak: int) -> None:
        if not 0 <= block <= MASK64 or not 0 <= tweak <= MASK64:
            raise CryptoError("block and tweak must be 64-bit integers")


class XexXteaCipher:
    """XEX-mode tweakable cipher over the XTEA block cipher.

    ``delta = E_k(tweak)``; ``c = E_k(p ^ delta) ^ delta``.  A classic
    construction giving a secure tweakable cipher from any strong block
    cipher — standing in for the paper's CRAFT compatibility claim.
    """

    DELTA = 0x9E3779B9
    ROUNDS = 32
    MASK32 = 0xFFFFFFFF

    rounds = ROUNDS
    sbox_index = -1

    def _block_encrypt(self, block: int, key128: int) -> int:
        k = [(key128 >> (32 * i)) & self.MASK32 for i in range(4)]
        v0 = block & self.MASK32
        v1 = (block >> 32) & self.MASK32
        total = 0
        for _ in range(self.ROUNDS):
            v0 = (v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1)
                        ^ (total + k[total & 3]))) & self.MASK32
            total = (total + self.DELTA) & self.MASK32
            v1 = (v1 + ((((v0 << 4) ^ (v0 >> 5)) + v0)
                        ^ (total + k[(total >> 11) & 3]))) & self.MASK32
        return (v1 << 32) | v0

    def _block_decrypt(self, block: int, key128: int) -> int:
        k = [(key128 >> (32 * i)) & self.MASK32 for i in range(4)]
        v0 = block & self.MASK32
        v1 = (block >> 32) & self.MASK32
        total = (self.DELTA * self.ROUNDS) & self.MASK32
        for _ in range(self.ROUNDS):
            v1 = (v1 - ((((v0 << 4) ^ (v0 >> 5)) + v0)
                        ^ (total + k[(total >> 11) & 3]))) & self.MASK32
            total = (total - self.DELTA) & self.MASK32
            v0 = (v0 - ((((v1 << 4) ^ (v1 >> 5)) + v1)
                        ^ (total + k[total & 3]))) & self.MASK32
        return (v1 << 32) | v0

    def encrypt(self, plaintext: int, tweak: int, key128: int) -> int:
        self._check(plaintext, tweak, key128)
        delta = self._block_encrypt(tweak, key128)
        return self._block_encrypt(plaintext ^ delta, key128) ^ delta

    def decrypt(self, ciphertext: int, tweak: int, key128: int) -> int:
        self._check(ciphertext, tweak, key128)
        delta = self._block_encrypt(tweak, key128)
        return self._block_decrypt(ciphertext ^ delta, key128) ^ delta

    @staticmethod
    def _check(block: int, tweak: int, key128: int) -> None:
        if not 0 <= block <= MASK64 or not 0 <= tweak <= MASK64:
            raise CryptoError("block and tweak must be 64-bit integers")
        if not 0 <= key128 < (1 << 128):
            raise CryptoError("key must be a 128-bit integer")


def make_cipher(name: str):
    """Cipher factory for :class:`repro.kernel.config.KernelConfig`."""
    from repro.crypto.qarma import Qarma64

    if name == "qarma":
        return Qarma64()
    if name == "xor":
        return XorDsrCipher()
    if name == "xex":
        return XexXteaCipher()
    raise CryptoError(f"unknown cipher {name!r}")

"""RegVault key registers.

The paper (§2.3.1) extends the CSR space with dedicated key registers:
a master key ``m`` and seven general keys ``a``–``g``.  Each key is
128 bits (the QARMA key size).  Access rules:

* user space has **no access** to any key register;
* the kernel may **write** general key registers but never read them;
* the kernel may neither read nor write the **master** key — it can only
  *use* it through ``cre``/``crd`` instructions (e.g. to wrap per-thread
  keys stored in memory).

This module holds the storage and naming; the privilege enforcement
lives in :mod:`repro.machine.csr` (CSR access) and
:mod:`repro.crypto.engine` (instruction executability).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import CryptoError
from repro.utils.bits import MASK64


class KeySelect(enum.IntEnum):
    """3-bit key selection index, as stored in CLB entries (§2.3.3)."""

    A = 0
    B = 1
    C = 2
    D = 3
    E = 4
    F = 5
    G = 6
    M = 7  # master key

    @classmethod
    def from_letter(cls, letter: str) -> "KeySelect":
        """Map the mnemonic letter in ``cre[x]k`` to a selector."""
        try:
            return cls[letter.upper()]
        except KeyError:
            raise CryptoError(f"unknown key register letter {letter!r}") from None

    @property
    def letter(self) -> str:
        return self.name.lower()

    @property
    def is_master(self) -> bool:
        return self is KeySelect.M


#: Conventional key assignment used by our kernel build (Table 2 requires
#: dedicated keys per protected class to defeat cross-data-type
#: substitution).
KEY_ROLES = {
    KeySelect.A: "return addresses (per-thread)",
    KeySelect.B: "function pointers",
    KeySelect.C: "interrupt context (CIP, per-thread)",
    KeySelect.D: "annotated non-control data",
    KeySelect.E: "kernel keyring",
    KeySelect.F: "PGD pointers",
    KeySelect.G: "register spill slots",
    KeySelect.M: "master key (wraps per-thread keys in memory)",
}


@dataclass
class KeyRegister:
    """A single 128-bit key register, stored as (hi, lo) 64-bit words."""

    hi: int = 0
    lo: int = 0

    def __post_init__(self) -> None:
        self._check(self.hi)
        self._check(self.lo)

    @staticmethod
    def _check(word: int) -> None:
        if not 0 <= word <= MASK64:
            raise CryptoError("key words must be 64-bit integers")

    @property
    def value(self) -> int:
        """The full 128-bit key."""
        return (self.hi << 64) | self.lo

    @value.setter
    def value(self, key128: int) -> None:
        if not 0 <= key128 < (1 << 128):
            raise CryptoError("key must be a 128-bit integer")
        self.hi = (key128 >> 64) & MASK64
        self.lo = key128 & MASK64


@dataclass
class KeyFile:
    """The eight RegVault key registers.

    Reads and writes here are *raw* — privilege rules are enforced by the
    CSR layer.  The key file notifies a listener (the CLB) whenever a key
    changes, so stale cached results are invalidated (§2.3.3).
    """

    registers: dict[KeySelect, KeyRegister] = field(
        default_factory=lambda: {sel: KeyRegister() for sel in KeySelect}
    )

    def __post_init__(self) -> None:
        self._listeners: list = []

    def key(self, ksel: KeySelect) -> int:
        """Return the 128-bit key for selector ``ksel``."""
        return self.registers[ksel].value

    def set_key(self, ksel: KeySelect, key128: int) -> None:
        """Install a full 128-bit key and invalidate dependent CLB entries."""
        self.registers[ksel].value = key128
        self._notify(ksel)

    def set_word(self, ksel: KeySelect, *, hi: int | None = None,
                 lo: int | None = None) -> None:
        """Write one 64-bit half of a key register (the CSR write shape)."""
        reg = self.registers[ksel]
        if hi is not None:
            reg._check(hi)
            reg.hi = hi
        if lo is not None:
            reg._check(lo)
            reg.lo = lo
        self._notify(ksel)

    def add_listener(self, callback) -> None:
        """Register ``callback(ksel)`` to run on every key update."""
        self._listeners.append(callback)

    def _notify(self, ksel: KeySelect) -> None:
        for callback in self._listeners:
            callback(ksel)

"""Bounded host-side memo for pure cipher computations.

QARMA-64 is a pure function of ``(key, tweak, text)``, so repeating a
computation the architectural CLB no longer holds (capacity-evicted, or
invalidated by an unrelated key write) wastes host time without any
architectural meaning.  :class:`CipherMemo` caches those results *below*
the CLB: the engine consults it only after a CLB miss, still charges the
full miss latency, still updates the CLB and every statistic exactly as
before — only the Python-level cipher call is skipped.  Nothing in
:func:`repro.machine.compare.architectural_state` can observe it.

The bound uses a two-generation clock: entries insert into the current
generation; when it fills, the previous generation is dropped and the
generations rotate.  Hits promote entries into the current generation,
so the working set survives rotation while cold entries age out after
at most two rotations.  Both directions of one computation are seeded
at once (an encryption's result is also the answer to the matching
decryption), which serves the seal-then-unseal pattern of register
spills and function returns.
"""

from __future__ import annotations

__all__ = ["CipherMemo", "DEFAULT_MEMO_ENTRIES"]

#: Default per-generation capacity; two generations may be live at once.
DEFAULT_MEMO_ENTRIES = 8192


class CipherMemo:
    """Two-generation memo on ``(direction, key, tweak, text)``."""

    __slots__ = ("capacity", "_current", "_previous", "hits", "misses")

    def __init__(self, capacity: int = DEFAULT_MEMO_ENTRIES):
        self.capacity = capacity
        self._current: dict = {}
        self._previous: dict = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._current) + len(self._previous)

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def lookup(self, direction: bool, key128: int, tweak: int,
               text: int) -> int | None:
        """Return the memoized result, promoting it, or None."""
        memo_key = (direction, key128, tweak, text)
        result = self._current.get(memo_key)
        if result is None:
            result = self._previous.get(memo_key)
            if result is not None:
                self._store(memo_key, result)
        if result is None:
            self.misses += 1
            return None
        self.hits += 1
        return result

    def insert(self, direction: bool, key128: int, tweak: int,
               text: int, result: int) -> None:
        """Record one computation, seeding both directions."""
        self._store((direction, key128, tweak, text), result)
        self._store((not direction, key128, tweak, result), text)

    def _store(self, memo_key: tuple, result: int) -> None:
        current = self._current
        if len(current) >= self.capacity:
            self._previous = current
            self._current = current = {}
        current[memo_key] = result

    def clear(self) -> None:
        self._current.clear()
        self._previous.clear()

    def snapshot(self) -> dict:
        """Host-side counters (never part of architectural state)."""
        return {
            "capacity": self.capacity,
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
        }

"""Cryptographic lookaside buffer (CLB), §2.3.3.

A fully-associative cache inside the crypto-engine that holds
recently-computed QARMA results.  Each entry stores:

* replacement metadata (an LRU timestamp here),
* a valid bit,
* the 3-bit key selection index ``ksel`` (not the key itself — so a key
  register update invalidates all entries with that ``ksel``),
* the tweak, the plaintext and the ciphertext.

Because an entry records a full (tweak, plaintext, ciphertext) relation
under one key, it can serve **both directions**: an encryption request
matches on (ksel, tweak, plaintext), a decryption request matches on
(ksel, tweak, ciphertext).  This is what makes a function epilogue's
``crd`` hit the entry installed by the prologue's ``cre`` and yields the
paper's ~50% hit ratio with just 8 entries on call-heavy kernel code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keys import KeySelect
from repro.telemetry.events import (
    CLB_DEC_HIT,
    CLB_DEC_MISS,
    CLB_ENC_HIT,
    CLB_ENC_MISS,
    CLB_EVICT,
    CLB_INVALIDATE,
)


@dataclass
class CLBEntry:
    """One CLB line."""

    valid: bool = False
    ksel: KeySelect = KeySelect.A
    tweak: int = 0
    plaintext: int = 0
    ciphertext: int = 0
    last_use: int = 0  # replacement metadata


@dataclass
class CLBStats:
    """Hit/miss counters, split by operation direction."""

    enc_hits: int = 0
    enc_misses: int = 0
    dec_hits: int = 0
    dec_misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    @property
    def hits(self) -> int:
        return self.enc_hits + self.dec_hits

    @property
    def misses(self) -> int:
        return self.enc_misses + self.dec_misses

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Overall hit ratio in [0, 1]; 0.0 when the CLB was never used."""
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.enc_hits = self.enc_misses = 0
        self.dec_hits = self.dec_misses = 0
        self.invalidations = self.evictions = 0

    def snapshot(self) -> dict:
        """JSON-ready view, consumed by the ``repro.perf`` runner."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "accesses": self.accesses,
            "hit_ratio": self.hit_ratio,
            "enc_hits": self.enc_hits,
            "enc_misses": self.enc_misses,
            "dec_hits": self.dec_hits,
            "dec_misses": self.dec_misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
        }


class CLB:
    """Fully-associative LRU cache of QARMA computations.

    ``num_entries == 0`` models the CLB-less hardware configuration
    (Table 3's first group): every access misses and nothing is stored.
    """

    def __init__(self, num_entries: int = 8):
        if num_entries < 0:
            raise ValueError("num_entries must be >= 0")
        self.num_entries = num_entries
        self.entries = [CLBEntry() for _ in range(num_entries)]
        self.stats = CLBStats()
        self._clock = 0
        #: Telemetry sink (``hook(kind, **fields)``) or None.
        self.trace_hook = None

    @property
    def enabled(self) -> bool:
        return self.num_entries > 0

    # -- lookups -------------------------------------------------------------

    def lookup_encrypt(
        self, ksel: KeySelect, tweak: int, plaintext: int
    ) -> int | None:
        """Return the cached ciphertext for an encryption, or ``None``."""
        entry = self._find(ksel, tweak, plaintext=plaintext)
        hook = self.trace_hook
        if entry is None:
            self.stats.enc_misses += 1
            if hook is not None:
                hook(CLB_ENC_MISS, ksel=int(ksel))
            return None
        self.stats.enc_hits += 1
        if hook is not None:
            hook(CLB_ENC_HIT, ksel=int(ksel))
        self._touch(entry)
        return entry.ciphertext

    def lookup_decrypt(
        self, ksel: KeySelect, tweak: int, ciphertext: int
    ) -> int | None:
        """Return the cached plaintext for a decryption, or ``None``."""
        entry = self._find(ksel, tweak, ciphertext=ciphertext)
        hook = self.trace_hook
        if entry is None:
            self.stats.dec_misses += 1
            if hook is not None:
                hook(CLB_DEC_MISS, ksel=int(ksel))
            return None
        self.stats.dec_hits += 1
        if hook is not None:
            hook(CLB_DEC_HIT, ksel=int(ksel))
        self._touch(entry)
        return entry.plaintext

    # -- updates ---------------------------------------------------------------

    def insert(
        self, ksel: KeySelect, tweak: int, plaintext: int, ciphertext: int
    ) -> None:
        """Record a freshly computed result, evicting LRU if needed."""
        if not self.enabled:
            return
        victim = None
        for entry in self.entries:
            if not entry.valid:
                victim = entry
                break
        if victim is None:
            victim = min(self.entries, key=lambda e: e.last_use)
            self.stats.evictions += 1
            hook = self.trace_hook
            if hook is not None:
                hook(CLB_EVICT, ksel=int(victim.ksel))
        victim.valid = True
        victim.ksel = ksel
        victim.tweak = tweak
        victim.plaintext = plaintext
        victim.ciphertext = ciphertext
        self._touch(victim)

    def invalidate_ksel(self, ksel: KeySelect) -> int:
        """Invalidate all entries cached under ``ksel`` (key update).

        Returns the number of entries dropped.
        """
        dropped = 0
        for entry in self.entries:
            if entry.valid and entry.ksel == ksel:
                entry.valid = False
                dropped += 1
        self.stats.invalidations += dropped
        hook = self.trace_hook
        if hook is not None:
            hook(CLB_INVALIDATE, ksel=int(ksel), dropped=dropped)
        return dropped

    def invalidate_all(self) -> None:
        for entry in self.entries:
            entry.valid = False

    # -- internals ----------------------------------------------------------

    def _find(
        self,
        ksel: KeySelect,
        tweak: int,
        plaintext: int | None = None,
        ciphertext: int | None = None,
    ) -> CLBEntry | None:
        for entry in self.entries:
            if not entry.valid or entry.ksel != ksel or entry.tweak != tweak:
                continue
            if plaintext is not None and entry.plaintext == plaintext:
                return entry
            if ciphertext is not None and entry.ciphertext == ciphertext:
                return entry
        return None

    def _touch(self, entry: CLBEntry) -> None:
        self._clock += 1
        entry.last_use = self._clock

    def occupancy(self) -> int:
        """Number of currently valid entries."""
        return sum(1 for entry in self.entries if entry.valid)

"""RegVault crypto-engine (§2.3.2).

The engine sits in the simulated pipeline and executes the context-aware
cryptographic instructions:

1. check executability for the current privilege level (the primitives
   are not executable in user mode);
2. for ``cre``: construct the plaintext from the source register and the
   selected range, then encrypt;
3. for ``crd``: decrypt, then verify that bytes outside the selected
   range are zero — a failure raises an integrity exception;
4. consult the CLB first and fall back to the multi-cycle QARMA
   computation on a miss (§2.3.3).

Timing (§4.2): the hardware completes QARMA in 3 cycles; a CLB hit
returns in a single cycle.  Both costs are configurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.clb import CLB
from repro.crypto.keys import KeyFile, KeySelect
from repro.crypto.memo import DEFAULT_MEMO_ENTRIES, CipherMemo
from repro.crypto.primitives import ByteRange
from repro.crypto.qarma import Qarma64
from repro.errors import IntegrityViolation, PrivilegeError
from repro.telemetry.events import CRYPTO_FAULT, CRYPTO_OP
from repro.utils.bits import MASK64


@dataclass
class EngineStats:
    """Operation counters for the crypto-engine.

    ``per_key`` attributes every operation to its key register, which
    maps operations onto the protected data classes of Table 2 (key a =
    return addresses, b = function pointers, c = interrupt contexts,
    d = annotated data, e = keyring, f = PGDs, g = spills, m = wraps).
    """

    encryptions: int = 0
    decryptions: int = 0
    integrity_faults: int = 0
    cycles: int = 0
    per_key: dict = field(default_factory=dict)

    @property
    def operations(self) -> int:
        return self.encryptions + self.decryptions

    def count_key(self, ksel) -> None:
        self.per_key[ksel] = self.per_key.get(ksel, 0) + 1

    def reset(self) -> None:
        self.encryptions = self.decryptions = 0
        self.integrity_faults = self.cycles = 0
        self.per_key = {}

    def snapshot(self) -> dict:
        """JSON-ready view, consumed by the ``repro.perf`` runner."""
        return {
            "encryptions": self.encryptions,
            "decryptions": self.decryptions,
            "operations": self.operations,
            "integrity_faults": self.integrity_faults,
            "cycles": self.cycles,
            "per_key": {
                getattr(ksel, "letter", str(ksel)): count
                for ksel, count in sorted(
                    self.per_key.items(), key=lambda kv: int(kv[0])
                )
            },
        }


class CryptoEngine:
    """Executes ``cre``/``crd`` with privilege checks, CLB and timing.

    Parameters
    ----------
    key_file:
        The RegVault key registers; defaults to a fresh zeroed file.
    clb_entries:
        Number of CLB entries; ``0`` disables the CLB.
    cipher:
        The underlying tweakable block cipher (QARMA-64 by default).
    miss_cycles / hit_cycles:
        Latency of a full cryptographic operation vs. a CLB hit.
    memo_entries:
        Per-generation capacity of the host-side cipher memo consulted
        on CLB misses (``0`` disables it).  The memo is invisible
        architecturally: a memo hit still charges ``miss_cycles``,
        still counts as a CLB miss and still refills the CLB — only the
        Python QARMA computation is skipped.
    """

    #: Privilege levels mirroring RISC-V encoding (see machine.hart).
    USER, SUPERVISOR, MACHINE = 0, 1, 3

    def __init__(
        self,
        key_file: KeyFile | None = None,
        clb_entries: int = 8,
        cipher: Qarma64 | None = None,
        miss_cycles: int = 3,
        hit_cycles: int = 1,
        memo_entries: int = DEFAULT_MEMO_ENTRIES,
    ):
        self.key_file = key_file if key_file is not None else KeyFile()
        self.clb = CLB(clb_entries)
        self.cipher = cipher or Qarma64()
        self.memo = CipherMemo(memo_entries)
        self.miss_cycles = miss_cycles
        self.hit_cycles = hit_cycles
        self.stats = EngineStats()
        #: Telemetry sink (``hook(kind, **fields)``) or None.
        self.trace_hook = None
        # A key register update invalidates dependent CLB entries (§2.3.3).
        self.key_file.add_listener(self.clb.invalidate_ksel)

    # -- privilege ---------------------------------------------------------

    def check_executable(self, privilege: int) -> None:
        """The primitives are dedicated to kernel data randomization and
        are not executable in user mode (§2.3.1)."""
        if privilege == self.USER:
            raise PrivilegeError(
                "RegVault cryptographic instructions are not executable "
                "in user mode"
            )

    # -- instruction semantics ----------------------------------------------

    def encrypt(
        self,
        ksel: KeySelect,
        value: int,
        byte_range: ByteRange,
        tweak: int,
        privilege: int = MACHINE,
    ) -> tuple[int, int]:
        """Execute ``cre[ksel]k``; return ``(ciphertext, cycles)``."""
        self.check_executable(privilege)
        value &= MASK64
        tweak &= MASK64
        plaintext = byte_range.select(value)
        self.stats.encryptions += 1
        self.stats.count_key(ksel)

        cached = (
            self.clb.lookup_encrypt(ksel, tweak, plaintext)
            if self.clb.enabled
            else None
        )
        if cached is not None:
            cycles = self.hit_cycles
            result = cached
        else:
            key128 = self.key_file.key(ksel)
            memo = self.memo
            result = (
                memo.lookup(True, key128, tweak, plaintext)
                if memo.enabled
                else None
            )
            if result is None:
                result = self.cipher.encrypt(plaintext, tweak, key128)
                if memo.enabled:
                    memo.insert(True, key128, tweak, plaintext, result)
            if self.clb.enabled:
                self.clb.insert(ksel, tweak, plaintext, result)
            cycles = self.miss_cycles
        self.stats.cycles += cycles
        hook = self.trace_hook
        if hook is not None:
            hook(
                CRYPTO_OP,
                op="enc",
                ksel=int(ksel),
                cycles=cycles,
                hit=cached is not None,
            )
        return result, cycles

    def decrypt(
        self,
        ksel: KeySelect,
        value: int,
        byte_range: ByteRange,
        tweak: int,
        privilege: int = MACHINE,
    ) -> tuple[int, int]:
        """Execute ``crd[ksel]k``; return ``(plaintext, cycles)``.

        Raises :class:`IntegrityViolation` on a failed zero-byte check.
        The check runs on CLB hits too — the buffer caches the cipher
        computation, not the range validation.
        """
        self.check_executable(privilege)
        value &= MASK64
        tweak &= MASK64
        self.stats.decryptions += 1
        self.stats.count_key(ksel)

        cached = (
            self.clb.lookup_decrypt(ksel, tweak, value)
            if self.clb.enabled
            else None
        )
        if cached is not None:
            plaintext = cached
            cycles = self.hit_cycles
        else:
            key128 = self.key_file.key(ksel)
            memo = self.memo
            plaintext = (
                memo.lookup(False, key128, tweak, value)
                if memo.enabled
                else None
            )
            if plaintext is None:
                plaintext = self.cipher.decrypt(value, tweak, key128)
                if memo.enabled:
                    memo.insert(False, key128, tweak, value, plaintext)
            if self.clb.enabled:
                self.clb.insert(ksel, tweak, plaintext, value)
            cycles = self.miss_cycles
        self.stats.cycles += cycles
        hook = self.trace_hook
        if hook is not None:
            hook(
                CRYPTO_OP,
                op="dec",
                ksel=int(ksel),
                cycles=cycles,
                hit=cached is not None,
            )

        outside = plaintext & ~byte_range.mask & MASK64
        if outside:
            self.stats.integrity_faults += 1
            if hook is not None:
                hook(CRYPTO_FAULT, ksel=int(ksel))
            raise IntegrityViolation(
                f"crd{ksel.letter}k integrity check failed for range "
                f"{byte_range}: plaintext {plaintext:#018x}"
            )
        return plaintext, cycles

    # -- maintenance -------------------------------------------------------

    def reset_stats(self) -> None:
        self.stats.reset()
        self.clb.stats.reset()

"""Semantics of the RegVault cryptographic primitives (Table 1, §2.3.1).

``cre[x]k rd, rs[e:s], rt`` — context-aware register encrypt: select
bytes ``[e:s]`` of ``rs`` (zeroing all others), encrypt under key ``x``
with the tweak in ``rt``, put the 64-bit ciphertext in ``rd``.

``crd[x]k rd, rs, rt, [e:s]`` — context-aware register decrypt: decrypt
``rs`` under key ``x`` and tweak ``rt``; if any byte *outside* ``[e:s]``
of the plaintext is non-zero, the integrity check fails and an exception
is raised; otherwise put the plaintext in ``rd``.

These functions are the pure semantics used by both the crypto-engine
(instruction execution) and higher-level tooling (kernel build helpers,
attack analysis).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.qarma import Qarma64
from repro.errors import CryptoError, IntegrityViolation
from repro.utils.bits import MASK64


@dataclass(frozen=True)
class ByteRange:
    """An inclusive byte range ``[end:start]`` within a 64-bit register.

    Byte 0 is the least-significant byte.  ``ByteRange(7, 0)`` selects the
    whole register (pointer randomization, Figure 2a); ``ByteRange(3, 0)``
    selects the low 32 bits (Figure 2b); ``ByteRange(7, 4)`` the high 32
    bits (Figure 2c).
    """

    end: int
    start: int

    def __post_init__(self) -> None:
        if not (0 <= self.start <= self.end <= 7):
            raise CryptoError(
                f"invalid byte range [{self.end}:{self.start}] "
                "(need 0 <= start <= end <= 7)"
            )

    @property
    def mask(self) -> int:
        """64-bit mask with ones over the selected bytes."""
        width = (self.end - self.start + 1) * 8
        return ((1 << width) - 1) << (self.start * 8)

    @property
    def num_bytes(self) -> int:
        return self.end - self.start + 1

    @property
    def is_full(self) -> bool:
        """True when the range covers the whole register.

        A full range leaves no zero bytes for the integrity check, so the
        primitive provides confidentiality only (used for pointers).
        """
        return self.end == 7 and self.start == 0

    def select(self, value: int) -> int:
        """Keep the selected bytes of ``value`` in place, zero the rest."""
        return value & self.mask

    def __str__(self) -> str:
        return f"[{self.end}:{self.start}]"

    @classmethod
    def parse(cls, text: str) -> "ByteRange":
        """Parse the assembly syntax ``[e:s]``."""
        text = text.strip()
        if not (text.startswith("[") and text.endswith("]")):
            raise CryptoError(f"malformed byte range {text!r}")
        body = text[1:-1]
        parts = body.split(":")
        if len(parts) != 2:
            raise CryptoError(f"malformed byte range {text!r}")
        try:
            end, start = int(parts[0]), int(parts[1])
        except ValueError:
            raise CryptoError(f"malformed byte range {text!r}") from None
        return cls(end, start)


#: The three canonical ranges from Figure 2.
FULL_RANGE = ByteRange(7, 0)
LOW_HALF = ByteRange(3, 0)
HIGH_HALF = ByteRange(7, 4)


def cre(
    value: int,
    byte_range: ByteRange,
    tweak: int,
    key128: int,
    cipher: Qarma64 | None = None,
) -> int:
    """Pure semantics of ``cre[x]k``: range-select then encrypt.

    Bytes outside ``byte_range`` are forced to zero before encryption
    (Table 1: "for integrity checking purpose").
    """
    cipher = cipher or _default_cipher()
    plaintext = byte_range.select(value & MASK64)
    return cipher.encrypt(plaintext, tweak & MASK64, key128)


def crd(
    value: int,
    byte_range: ByteRange,
    tweak: int,
    key128: int,
    cipher: Qarma64 | None = None,
) -> int:
    """Pure semantics of ``crd[x]k``: decrypt then integrity-check.

    Raises :class:`IntegrityViolation` when any plaintext byte outside
    ``byte_range`` is non-zero.  For the full range the check is vacuous
    (confidentiality-only protection, as for pointers).
    """
    cipher = cipher or _default_cipher()
    plaintext = cipher.decrypt(value & MASK64, tweak & MASK64, key128)
    outside = plaintext & ~byte_range.mask & MASK64
    if outside:
        raise IntegrityViolation(
            f"crd integrity check failed: plaintext {plaintext:#018x} has "
            f"non-zero bytes outside {byte_range}"
        )
    return plaintext


_CIPHER: Qarma64 | None = None


def _default_cipher() -> Qarma64:
    global _CIPHER
    if _CIPHER is None:
        _CIPHER = Qarma64()
    return _CIPHER

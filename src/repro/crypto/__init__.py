"""RegVault cryptographic layer.

Contains the QARMA-64 tweakable block cipher (the randomization primitive
chosen by the paper, §2.3.1), the `cre`/`crd` instruction semantics, the
key-register file and the cryptographic lookaside buffer (CLB).
"""

from repro.crypto.qarma import Qarma64, qarma64_decrypt, qarma64_encrypt
from repro.crypto.keys import KeyRegister, KeySelect
from repro.crypto.primitives import ByteRange, cre, crd
from repro.crypto.clb import CLB, CLBStats
from repro.crypto.engine import CryptoEngine, EngineStats

__all__ = [
    "Qarma64",
    "qarma64_encrypt",
    "qarma64_decrypt",
    "KeyRegister",
    "KeySelect",
    "ByteRange",
    "cre",
    "crd",
    "CLB",
    "CLBStats",
    "CryptoEngine",
    "EngineStats",
]

"""Ablation studies: cipher choice and protection mechanisms.

Backs the paper's §5 arguments with experiments:

* **XOR-DSR succumbs to memory disclosure.**  The informed attacker
  reads one known field (their own uid), recovers the XOR mask, and
  forges a ciphertext that decrypts to uid 0 *and passes the integrity
  check*.  The same playbook against QARMA (or XEX) produces garbage
  and an integrity fault — "cryptographically strong" is measurable.

* **Tweakable-cipher compatibility.**  The whole stack runs unmodified
  on a CRAFT-style alternative (XEX over XTEA); only the engine latency
  changes.

* **Mechanism ablation.**  Dropping CIP (everything else on) re-opens
  the interrupt-context window; dropping spill protection leaves
  plaintext spill slots.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.attacks.interrupt import InterruptCorruptionAttack
from repro.bench.runner import run_workload
from repro.bench.workloads import lmbench
from repro.compiler import Function, FunctionType, I64, IRBuilder, Module
from repro.compiler.ir import Const
from repro.kernel import KernelConfig, KernelSession
from repro.kernel.structs import CRED, SYS_EXIT, SYS_GETUID

CIPHERS = ("qarma", "xor", "xex")


@dataclass(frozen=True)
class DisclosureOutcome:
    cipher: str
    mask_recovered: bool
    forged_root: bool
    outcome: str


def _getuid_program() -> Module:
    module = Module("user")
    main = Function("main", FunctionType(I64, ()))
    module.add_function(main)
    b = IRBuilder(main)
    b.block("entry")
    uid = b.intrinsic("ecall", [Const(SYS_GETUID)], returns=True)
    b.intrinsic("ecall", [Const(SYS_EXIT), uid], returns=True)
    b.ret(Const(0))
    return module


def informed_disclosure_attack(cipher: str) -> DisclosureOutcome:
    """Known-plaintext mask recovery + ciphertext forgery (§5).

    The attacker knows their own uid (1000), reads its ciphertext and
    storage address, computes ``mask = ct ^ uid ^ addr`` as if the
    scheme were XOR-DSR, and plants ``0 ^ mask ^ addr`` to become root.
    """
    config = dataclasses.replace(KernelConfig.noncontrol_only(), cipher=cipher)
    session = KernelSession(config, _getuid_program())
    assert session.run_until(session.image.user_program.entry)

    uid_addr = session.thread_field_addr(0, "cred") + (
        session.image.field_offset(CRED, "uid")
    )
    ciphertext = session.read_u64(uid_addr)

    # Step 1: mask recovery hypothesis (exact for XOR-DSR).
    mask = ciphertext ^ 1000 ^ uid_addr
    # Step 2: verify the hypothesis against a second known field (gid,
    # also 1000) — a real attacker's sanity check.
    gid_addr = session.thread_field_addr(0, "cred") + (
        session.image.field_offset(CRED, "gid")
    )
    gid_ct = session.read_u64(gid_addr)
    mask_recovered = (gid_ct ^ 1000 ^ gid_addr) == mask

    # Step 3: forge uid = 0 under the recovered mask.
    session.write_u64(uid_addr, 0 ^ mask ^ uid_addr)
    result = session.resume()

    forged_root = result.exit_code == 0 and not result.panicked
    if forged_root:
        outcome = "mask recovered; forged uid=0 accepted (attacker is root)"
    elif result.integrity_fault:
        outcome = "forgery tripped the integrity check (trap cause 24)"
    else:
        outcome = f"forgery rejected (exit {result.exit_code:#x})"
    return DisclosureOutcome(cipher, mask_recovered, forged_root, outcome)


@dataclass(frozen=True)
class CipherCost:
    cipher: str
    null_call_cycles: int
    overhead_vs_baseline_pct: float
    miss_cycles: int


def cipher_cost_comparison(scale: float = 0.4) -> list[CipherCost]:
    """Null-syscall cost of full protection under each cipher."""
    from repro.crypto.alternatives import CIPHER_MISS_CYCLES

    workload = lmbench.SUITE[0]   # null_call
    base = run_workload(workload, KernelConfig.baseline(), scale).cycles
    rows = []
    for cipher in CIPHERS:
        config = dataclasses.replace(KernelConfig.full(), cipher=cipher)
        cycles = run_workload(workload, config, scale).cycles
        rows.append(CipherCost(
            cipher=cipher,
            null_call_cycles=cycles,
            overhead_vs_baseline_pct=100.0 * (cycles - base) / base,
            miss_cycles=CIPHER_MISS_CYCLES[cipher],
        ))
    return rows


@dataclass(frozen=True)
class MechanismAblation:
    mechanism: str
    attack: str
    with_mechanism_blocked: bool
    without_mechanism_blocked: bool


def cip_ablation() -> MechanismAblation:
    """Interrupt-context corruption with and without CIP (all other
    protections stay on)."""
    attack = InterruptCorruptionAttack()
    with_cip = attack.run(KernelConfig.full())
    without_cip = attack.run(dataclasses.replace(
        KernelConfig.full(), name="no-cip", cip=False
    ))
    return MechanismAblation(
        mechanism="chain-based interrupt protection",
        attack=attack.name,
        with_mechanism_blocked=with_cip.blocked,
        without_mechanism_blocked=without_cip.blocked,
    )


def format_ablations(
    disclosure: list[DisclosureOutcome],
    costs: list[CipherCost],
    cip: MechanismAblation,
) -> str:
    lines = [
        "Ablation study — cipher choice and mechanisms (§5)",
        "",
        "1. Informed disclosure attack (known-plaintext mask recovery):",
    ]
    for row in disclosure:
        verdict = "ATTACKER WINS" if row.forged_root else "defended"
        lines.append(
            f"   {row.cipher:6s}  mask recovered: "
            f"{'yes' if row.mask_recovered else 'no ':3s}  -> "
            f"{verdict}: {row.outcome}"
        )
    lines += [
        "",
        "2. Full-protection null-syscall cost per cipher:",
        f"   {'cipher':8s} {'engine miss':>11s} {'cycles':>8s} {'overhead':>9s}",
    ]
    for row in costs:
        lines.append(
            f"   {row.cipher:8s} {row.miss_cycles:>9d}cy "
            f"{row.null_call_cycles:>8d} "
            f"{row.overhead_vs_baseline_pct:>8.2f}%"
        )
    lines += [
        "",
        "3. Mechanism ablation:",
        f"   {cip.attack} with {cip.mechanism}: "
        f"{'blocked' if cip.with_mechanism_blocked else 'SUCCEEDS'}",
        f"   {cip.attack} without it:          "
        f"{'blocked' if cip.without_mechanism_blocked else 'SUCCEEDS'}",
    ]
    return "\n".join(lines)

"""Analysis utilities: the CLB sizing study and shared table rendering."""

from repro.analysis.breakdown import crypto_breakdown, format_breakdown
from repro.analysis.clb_study import ClbPoint, clb_study, format_clb_study

__all__ = [
    "ClbPoint",
    "clb_study",
    "format_clb_study",
    "crypto_breakdown",
    "format_breakdown",
]

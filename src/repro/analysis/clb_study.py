"""CLB performance study (§4.4.1).

The paper collects run-time information from UnixBench and reports:

* an 8-entry CLB achieves a 51.7% hit ratio ("most decryption
  instructions can find the corresponding plaintext result in the CLB");
* the CLB cuts the full-protection UnixBench overhead from 4.5% to
  2.6%.

This study sweeps the CLB entry count over the UnixBench-shaped suite
under full protection and reports the aggregate hit ratio and the
overhead against the unprotected baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.runner import run_workload
from repro.bench.workloads import unixbench
from repro.kernel import KernelConfig

DEFAULT_ENTRY_SWEEP = (0, 1, 2, 4, 8, 16, 32)

#: Paper reference points.
PAPER_HIT_RATIO_8 = 51.7
PAPER_OVERHEAD_NO_CLB = 4.5
PAPER_OVERHEAD_CLB8 = 2.6


@dataclass(frozen=True)
class ClbPoint:
    """One CLB size: aggregate behavior over the whole suite.

    ``dec_hit_ratio_pct`` is the paper's headline metric ("most
    decryption instructions can find the corresponding plaintext result
    from the CLB"); ``hit_ratio_pct`` covers both directions.
    """

    entries: int
    hit_ratio_pct: float
    dec_hit_ratio_pct: float
    overhead_pct: float
    crypto_ops: int


def clb_study(
    entries_sweep=DEFAULT_ENTRY_SWEEP,
    workloads=None,
    scale: float = 0.5,
) -> list[ClbPoint]:
    workloads = workloads if workloads is not None else unixbench.SUITE
    baseline_cycles = {}
    for workload in workloads:
        measurement = run_workload(
            workload, KernelConfig.baseline(), scale
        )
        baseline_cycles[workload.name] = measurement.cycles

    points = []
    for entries in entries_sweep:
        config = KernelConfig.full(clb_entries=entries)
        total_hits = 0
        total_accesses = 0
        dec_ratios = []
        total_ops = 0
        overheads = []
        for workload in workloads:
            measurement = run_workload(workload, config, scale)
            base = baseline_cycles[workload.name]
            overheads.append(
                100.0 * (measurement.cycles - base) / base
            )
            total_ops += measurement.crypto_ops
            total_accesses += measurement.crypto_ops
            total_hits += round(
                measurement.clb_hit_ratio * measurement.crypto_ops
            )
            dec_ratios.append(measurement.clb_dec_hit_ratio)
        points.append(ClbPoint(
            entries=entries,
            hit_ratio_pct=(
                100.0 * total_hits / total_accesses if total_accesses else 0.0
            ),
            dec_hit_ratio_pct=100.0 * sum(dec_ratios) / len(dec_ratios),
            overhead_pct=sum(overheads) / len(overheads),
            crypto_ops=total_ops,
        ))
    return points


def format_clb_study(points: list[ClbPoint]) -> str:
    lines = [
        "CLB study (UnixBench-shaped suite, full protection)  [§4.4.1]",
        "",
        f"{'entries':>8} {'hit ratio':>10} {'dec hits':>9} {'overhead':>9}",
        "-" * 41,
    ]
    for point in points:
        lines.append(
            f"{point.entries:>8} {point.hit_ratio_pct:9.1f}% "
            f"{point.dec_hit_ratio_pct:8.1f}% "
            f"{point.overhead_pct:8.2f}%"
        )
    by_entries = {p.entries: p for p in points}
    if 0 in by_entries and 8 in by_entries:
        lines += [
            "",
            f"paper:    8 entries -> {PAPER_HIT_RATIO_8:.1f}% decryption "
            f"hit ratio; overhead {PAPER_OVERHEAD_NO_CLB:.1f}% -> "
            f"{PAPER_OVERHEAD_CLB8:.1f}% with the CLB",
            f"measured: 8 entries -> "
            f"{by_entries[8].dec_hit_ratio_pct:.1f}% decryption hit "
            f"ratio; overhead "
            f"{by_entries[0].overhead_pct:.2f}% -> "
            f"{by_entries[8].overhead_pct:.2f}% with the CLB",
        ]
    return "\n".join(lines)

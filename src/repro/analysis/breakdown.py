"""Per-protected-class crypto-operation breakdown.

Attributes every executed ``cre``/``crd`` to its Table-2 data class via
the key register it used, answering "where do RegVault's cycles go?" —
an analysis the paper implies (per-class keys) but does not plot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler import Function, FunctionType, I64, IRBuilder, Module
from repro.compiler.ir import Const
from repro.crypto.keys import KEY_ROLES, KeySelect
from repro.kernel import KernelConfig, KernelSession
from repro.kernel.structs import (
    SYS_ADD_KEY,
    SYS_ENCRYPT,
    SYS_EXIT,
    SYS_GETUID,
    SYS_MAP_PAGE,
    SYS_SELINUX_CHECK,
    SYS_SPAWN,
    SYS_TRANSLATE,
    SYS_YIELD,
)


@dataclass(frozen=True)
class ClassUsage:
    key: KeySelect
    role: str
    operations: int
    share_pct: float


def representative_workload() -> Module:
    """A user program touching every protected class once or twice."""
    module = Module("user")

    child = Function("child_main", FunctionType(I64, ()))
    module.add_function(child)
    cb = IRBuilder(child)
    cb.block("entry")
    cb.intrinsic("ecall", [Const(SYS_EXIT), Const(0)], returns=True)
    cb.ret(Const(0))

    main = Function("main", FunctionType(I64, ()))
    module.add_function(main)
    b = IRBuilder(main)
    b.block("entry")

    def sc(number, *args):
        return b.intrinsic("ecall", [Const(number), *args], returns=True)

    sc(SYS_GETUID)
    sc(SYS_SELINUX_CHECK, Const(1))
    slot = sc(SYS_ADD_KEY, Const(0x1111), Const(0x2222))
    sc(SYS_ENCRYPT, Const(0x42), slot)
    sc(SYS_MAP_PAGE, Const(0x4000_0000), Const(0x0900_8000))
    sc(SYS_TRANSLATE, Const(0x4000_0000))
    sc(SYS_SPAWN, b.addr_of_func("child_main"))
    sc(SYS_YIELD)
    sc(SYS_EXIT, Const(0))
    b.ret(Const(0))
    return module


def crypto_breakdown(
    config: KernelConfig | None = None,
    user_module: Module | None = None,
) -> list[ClassUsage]:
    """Run a workload and attribute crypto operations to data classes."""
    config = config or KernelConfig.full()
    session = KernelSession(
        config, user_module if user_module is not None
        else representative_workload()
    )
    session.run()
    per_key = session.stats.per_key
    total = sum(per_key.values()) or 1
    return [
        ClassUsage(
            key=ksel,
            role=KEY_ROLES[ksel],
            operations=count,
            share_pct=100.0 * count / total,
        )
        for ksel, count in sorted(per_key.items())
    ]


def format_breakdown(usages: list[ClassUsage]) -> str:
    lines = [
        "Crypto-operation breakdown by protected data class (Table 2)",
        "",
        f"{'key':>4} {'ops':>6} {'share':>7}  class",
        "-" * 60,
    ]
    for usage in usages:
        lines.append(
            f"{usage.key.letter:>4} {usage.operations:>6} "
            f"{usage.share_pct:6.1f}%  {usage.role}"
        )
    return "\n".join(lines)

"""Opt-in speculative front-end: branch prediction + transient windows.

The hart itself is strictly in-order and non-speculative — that is what
makes the three execution tiers provably equivalent.  This module adds
a *model* of speculation on top of it, without ever touching
architectural state:

* a :class:`BranchPredictor` (2-bit saturating BHT, a bounded return
  address stack, a small BTB for indirect jumps) observes every retired
  branch/jal/jalr;
* on a misprediction, a bounded **transient window** executes down the
  wrong path against :class:`_Shadow` register/memory overlays — loads
  read through to committed memory, stores land in the overlay only;
* the window is **squashed** on its first fault, serializing
  instruction, device access or when the window budget is exhausted;
  nothing the window did survives, by construction: the shadow object
  is simply dropped.

Attachment reuses the hart's tracer stack (`Hart._tracer_stack`), which
buys two guarantees for free: the compiled tier stands down while
speculation is attached (wrapped handlers must run), and detach
restores the exact pre-attach dispatch table.  When no engine is
attached the hart is bit-identical to a build without this module —
the neutrality tests prove it on state digests.

Taint tracking rides along in the shadow state: values loaded from a
configured secret range, forwarded key-CSR halves and crypto inputs
are tainted, and taint propagates through ALU ops, loads and stores.
A tainted transient load/store *address* or branch *condition* is a
secret-dependent access sequence — exactly what the leakage analyzer
(:mod:`repro.telemetry.leakage`) flags.

Key CSRs deserve a note: RegVault's key registers are write-only, and
this model extends that to the transient domain by default — a
transient read of a key CSR squashes the window before any data is
forwarded (``forward_key_csrs=False``).  Setting
``forward_key_csrs=True`` models naive hardware that forwards the key
value and only traps at retirement (the Meltdown-style behaviour the
transient attack family measures RegVault against).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DecodeError, MemoryFault
from repro.isa import csrdefs
from repro.isa import instructions as tab
from repro.isa.decoder import decode_cached
from repro.machine.hart import Hart
from repro.machine.trap import Trap
from repro.telemetry.events import (
    SPEC_BRANCH,
    SPEC_CRYPTO,
    SPEC_CSR_READ,
    SPEC_LOAD,
    SPEC_SQUASH,
    SPEC_STORE,
    SPEC_WINDOW,
)
from repro.utils.bits import MASK64, sign_extend, to_signed64, to_unsigned64

__all__ = ["SpecConfig", "SpecStats", "BranchPredictor", "SpeculativeEngine"]

#: Registers the RISC-V calling convention designates as link registers;
#: writes through them are treated as calls, ``jalr x0`` through them as
#: returns (the standard RAS push/pop hint discipline).
LINK_REGS = frozenset({1, 5})


@dataclass(frozen=True)
class SpecConfig:
    """Shape of the modeled front-end.  All fields have safe defaults."""

    #: Maximum transient instructions per window.
    window: int = 32
    #: Direct-mapped 2-bit-counter branch history table entries.
    bht_size: int = 256
    #: Return address stack depth (overflow drops the oldest entry).
    ras_depth: int = 8
    #: Branch target buffer entries for indirect jumps.
    btb_size: int = 64
    #: False (RegVault): a transient key-CSR read squashes before any
    #: data is forwarded.  True: model insecure hardware that forwards
    #: the key value transiently and only traps at retirement.
    forward_key_csrs: bool = False
    #: Half-open ``(lo, hi)`` address ranges whose bytes are secret:
    #: loading from them taints the loaded value.
    secret_ranges: tuple = ()


@dataclass
class SpecStats:
    """Counters for one attached engine (never architectural state)."""

    branches: int = 0
    indirects: int = 0
    predicted: int = 0
    mispredictions: int = 0
    ras_underflows: int = 0
    windows: int = 0
    transient_instructions: int = 0
    key_csr_reads: int = 0
    #: squash cause -> count ("window_full", "trap", "serializing",
    #: "device", "key_csr").
    squashes: dict = field(default_factory=dict)

    def count_squash(self, cause: str) -> None:
        self.squashes[cause] = self.squashes.get(cause, 0) + 1

    def to_json(self) -> dict:
        return {
            "branches": self.branches,
            "indirects": self.indirects,
            "predicted": self.predicted,
            "mispredictions": self.mispredictions,
            "ras_underflows": self.ras_underflows,
            "windows": self.windows,
            "transient_instructions": self.transient_instructions,
            "key_csr_reads": self.key_csr_reads,
            "squashes": dict(sorted(self.squashes.items())),
        }


class BranchPredictor:
    """2-bit BHT + bounded RAS + small BTB.

    Counters start weakly not-taken (1); >= 2 predicts taken.  The RAS
    drops its *oldest* entry on overflow (hardware-style circular
    behaviour) and reports underflow as ``None`` — an empty stack makes
    no prediction rather than a wild one.
    """

    _INIT = 1  # weakly not-taken

    def __init__(self, config: SpecConfig):
        self.bht: dict[int, int] = {}
        self.bht_size = max(1, config.bht_size)
        self.ras: list[int] = []
        self.ras_depth = max(1, config.ras_depth)
        self.btb: dict[int, int] = {}
        self.btb_size = max(1, config.btb_size)

    # -- conditional branches ---------------------------------------------

    def predict_branch(self, pc: int) -> bool:
        return self.bht.get((pc >> 2) % self.bht_size, self._INIT) >= 2

    def update_branch(self, pc: int, taken: bool) -> None:
        index = (pc >> 2) % self.bht_size
        counter = self.bht.get(index, self._INIT)
        self.bht[index] = min(3, counter + 1) if taken else max(0, counter - 1)

    # -- return address stack ---------------------------------------------

    def push_return(self, address: int) -> None:
        if len(self.ras) >= self.ras_depth:
            del self.ras[0]
        self.ras.append(address)

    def pop_return(self) -> int | None:
        """Predicted return target, or None on underflow."""
        if not self.ras:
            return None
        return self.ras.pop()

    # -- indirect jumps ----------------------------------------------------

    def predict_indirect(self, pc: int) -> int | None:
        return self.btb.get(pc)

    def train_indirect(self, pc: int, target: int) -> None:
        if pc not in self.btb and len(self.btb) >= self.btb_size:
            self.btb.clear()
        self.btb[pc] = target


class _DeviceAccess(Exception):
    """Transient access hit MMIO: the window must stop (no side effects)."""


class _Shadow:
    """Register/memory overlays plus byte-level taint for one window."""

    __slots__ = ("hart", "secret_ranges", "regs", "reg_taint", "mem",
                 "mem_taint", "_bus", "_mem")

    def __init__(self, hart: Hart, config: SpecConfig):
        self.hart = hart
        self.secret_ranges = config.secret_ranges
        self.regs: dict[int, int] = {}
        self.reg_taint: set[int] = set()
        self.mem: dict[int, int] = {}       # address -> byte
        self.mem_taint: set[int] = set()    # tainted byte addresses
        self._bus = hart.bus
        self._mem = hart._code_mem

    # -- registers ---------------------------------------------------------

    def read_reg(self, index: int) -> tuple[int, bool]:
        if index == 0:
            return 0, False
        if index in self.regs:
            return self.regs[index], index in self.reg_taint
        return self.hart.regs[index], False

    def write_reg(self, index: int, value: int, tainted: bool) -> None:
        if index == 0:
            return
        self.regs[index] = value & MASK64
        if tainted:
            self.reg_taint.add(index)
        else:
            self.reg_taint.discard(index)

    # -- memory ------------------------------------------------------------

    def _secret(self, address: int) -> bool:
        for lo, hi in self.secret_ranges:
            if lo <= address < hi:
                return True
        return False

    def load(self, address: int, size: int) -> tuple[int, bool]:
        """Overlay-through load; raises MemoryFault/_DeviceAccess."""
        bus = self._bus
        if hasattr(bus, "_device_for") and \
                bus._device_for(address, size) is not None:
            raise _DeviceAccess
        value = 0
        tainted = False
        mem = self._mem
        overlay = self.mem
        for offset in range(size):
            byte_address = (address + offset) & MASK64
            if byte_address in overlay:
                byte = overlay[byte_address]
                tainted |= byte_address in self.mem_taint
            else:
                byte = mem.read_u8(byte_address)
                tainted |= self._secret(byte_address)
            value |= byte << (8 * offset)
        return value, tainted

    def store(self, address: int, size: int, value: int,
              tainted: bool) -> None:
        """Overlay-only store: committed memory is never written."""
        bus = self._bus
        if hasattr(bus, "_device_for") and \
                bus._device_for(address, size) is not None:
            raise _DeviceAccess
        overlay = self.mem
        taint = self.mem_taint
        for offset in range(size):
            byte_address = (address + offset) & MASK64
            overlay[byte_address] = (value >> (8 * offset)) & 0xFF
            if tainted:
                taint.add(byte_address)
            else:
                taint.discard(byte_address)


# -- pure instruction semantics (mirror the hart's handler lambdas) ---------

_ALU_RR = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "sll": lambda a, b: a << (b & 63),
    "slt": lambda a, b: int(to_signed64(a) < to_signed64(b)),
    "sltu": lambda a, b: int(a < b),
    "xor": lambda a, b: a ^ b,
    "srl": lambda a, b: a >> (b & 63),
    "sra": lambda a, b: to_signed64(a) >> (b & 63),
    "or": lambda a, b: a | b,
    "and": lambda a, b: a & b,
    "mul": lambda a, b: a * b,
    "mulh": lambda a, b: (to_signed64(a) * to_signed64(b)) >> 64,
    "mulhsu": lambda a, b: (to_signed64(a) * b) >> 64,
    "mulhu": lambda a, b: (a * b) >> 64,
    "div": Hart._div,
    "divu": Hart._divu,
    "rem": Hart._rem,
    "remu": Hart._remu,
}

_ALU_RR_W = {
    "addw": lambda a, b: a + b,
    "subw": lambda a, b: a - b,
    "sllw": lambda a, b: a << (b & 31),
    "srlw": lambda a, b: (a & 0xFFFFFFFF) >> (b & 31),
    "sraw": lambda a, b: sign_extend(a & 0xFFFFFFFF, 32) >> (b & 31),
    "mulw": lambda a, b: a * b,
    "divw": Hart._div32,
    "divuw": Hart._divu32,
    "remw": Hart._rem32,
    "remuw": Hart._remu32,
}

_ALU_RI = {
    "addi": lambda a, i: a + i,
    "slti": lambda a, i: int(to_signed64(a) < i),
    "sltiu": lambda a, i: int(a < to_unsigned64(i)),
    "xori": lambda a, i: a ^ to_unsigned64(i),
    "ori": lambda a, i: a | to_unsigned64(i),
    "andi": lambda a, i: a & to_unsigned64(i),
    "slli": lambda a, i: a << i,
    "srli": lambda a, i: a >> i,
    "srai": lambda a, i: to_signed64(a) >> i,
}

_ALU_RI_W = {
    "addiw": lambda a, i: a + i,
    "slliw": lambda a, i: a << i,
    "srliw": lambda a, i: (a & 0xFFFFFFFF) >> i,
    "sraiw": lambda a, i: sign_extend(a & 0xFFFFFFFF, 32) >> i,
}

_BRANCH_CONDS = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: to_signed64(a) < to_signed64(b),
    "bge": lambda a, b: to_signed64(a) >= to_signed64(b),
    "bltu": lambda a, b: a < b,
    "bgeu": lambda a, b: a >= b,
}

#: Instructions that end a transient window without executing: they can
#: move privilege, pending interrupts or the idle flag, none of which
#: have shadow equivalents worth modeling.
_SERIALIZING = frozenset({"ecall", "ebreak", "mret", "sret", "wfi"})


class SpeculativeEngine:
    """The attachable speculative front-end for one hart.

    ``attach_to``/``detach`` follow the tracer-stack LIFO discipline:
    an engine attached after a telemetry tracer must be detached before
    it.  ``trace_hook`` (``hook(kind, **fields)``, usually
    ``TraceBus.make_hook``) is optional — stats are always counted,
    events only emitted while a hook is installed.
    """

    def __init__(self, config: SpecConfig | None = None):
        self.config = config or SpecConfig()
        self.predictor = BranchPredictor(self.config)
        self.stats = SpecStats()
        self.trace_hook = None
        self.hart: Hart | None = None
        self._frame: dict | None = None

    # -- lifecycle ---------------------------------------------------------

    def attach_to(self, hart: Hart) -> "SpeculativeEngine":
        if self.hart is not None:
            raise RuntimeError("speculative engine is already attached")
        if hart.spec is not None:
            raise RuntimeError("hart already has a speculative engine")
        frame = {"dispatch": hart._dispatch, "enter_trap": hart._enter_trap}
        hart._tracer_stack.append(frame)
        self._frame = frame
        dispatch = dict(hart._dispatch)
        for mnemonic in _BRANCH_CONDS:
            dispatch[mnemonic] = self._wrap(
                dispatch[mnemonic], self.on_branch
            )
        dispatch["jal"] = self._wrap(dispatch["jal"], self.on_jal)
        dispatch["jalr"] = self._wrap(dispatch["jalr"], self.on_jalr)
        hart._dispatch = dispatch
        hart.spec = self
        self.hart = hart
        # Translated blocks capture handler references: flush so the
        # block interpreter picks up the wrapped control-flow handlers.
        hart.blocks.flush()
        return self

    def detach(self) -> None:
        hart = self.hart
        if hart is None:
            return
        if not hart._tracer_stack or hart._tracer_stack[-1] is not self._frame:
            raise RuntimeError(
                "speculation must be detached LIFO with respect to tracers"
            )
        frame = hart._tracer_stack.pop()
        hart._dispatch = frame["dispatch"]
        hart._enter_trap = frame["enter_trap"]
        hart.spec = None
        self.hart = None
        self._frame = None
        hart.blocks.flush()

    @staticmethod
    def _wrap(handler, observe):
        def wrapped(ins, pc, _handler=handler, _observe=observe):
            next_pc = _handler(ins, pc)
            _observe(ins, pc, next_pc)
            return next_pc

        return wrapped

    def _emit(self, kind: str, **fields) -> None:
        hook = self.trace_hook
        if hook is not None:
            hook(kind, **fields)

    # -- retirement observers ----------------------------------------------
    #
    # These run *after* the architectural handler, which for this model
    # is equivalent to predicting at fetch: branches write no registers,
    # and a jalr's link write belongs to both paths.

    def on_branch(self, ins, pc: int, next_pc) -> None:
        taken = next_pc is not None
        predictor = self.predictor
        predicted = predictor.predict_branch(pc)
        predictor.update_branch(pc, taken)
        self.stats.branches += 1
        if predicted == taken:
            self.stats.predicted += 1
            return
        self.stats.mispredictions += 1
        if predicted:
            wrong = (pc + ins.imm) & MASK64
        else:
            wrong = (pc + 4) & MASK64
        self._window(pc, wrong, "branch")

    def on_jal(self, ins, pc: int, next_pc) -> None:
        # Direct target: always predicted correctly; calls push the RAS.
        if ins.rd in LINK_REGS:
            self.predictor.push_return((pc + 4) & MASK64)

    def on_jalr(self, ins, pc: int, next_pc) -> None:
        predictor = self.predictor
        actual = next_pc
        is_return = ins.rd == 0 and ins.rs1 in LINK_REGS
        self.stats.indirects += 1
        if is_return:
            predicted = predictor.pop_return()
            if predicted is None:
                self.stats.ras_underflows += 1
                return  # an empty RAS makes no prediction
            kind = "return"
        else:
            if ins.rd in LINK_REGS:
                predictor.push_return((pc + 4) & MASK64)
            predicted = predictor.predict_indirect(pc)
            predictor.train_indirect(pc, actual)
            if predicted is None:
                return  # cold BTB: no prediction, no window
            kind = "indirect"
        if predicted == actual:
            self.stats.predicted += 1
            return
        self.stats.mispredictions += 1
        self._window(pc, predicted, kind)

    # -- the transient window ----------------------------------------------

    def _window(self, branch_pc: int, start_pc: int, kind: str) -> None:
        stats = self.stats
        window_id = stats.windows
        stats.windows += 1
        self._emit(
            SPEC_WINDOW, window=window_id, pc=branch_pc,
            target=start_pc, reason=kind,
        )
        hart = self.hart
        shadow = _Shadow(hart, self.config)
        mem = hart._code_mem
        pc = start_pc
        executed = 0
        cause = "window_full"
        for _ in range(self.config.window):
            if pc % 4:
                cause = "trap"
                break
            try:
                word = mem.read_u32(pc)
            except MemoryFault:
                cause = "trap"
                break
            try:
                ins = decode_cached(word)
            except DecodeError:
                cause = "trap"
                break
            try:
                next_pc, stop = self._texec(shadow, ins, pc, window_id)
            except _DeviceAccess:
                executed += 1
                cause = "device"
                break
            except MemoryFault:
                cause = "trap"
                break
            if stop is not None:
                cause = stop
                break
            executed += 1
            pc = (pc + 4) & MASK64 if next_pc is None else next_pc
        stats.transient_instructions += executed
        stats.count_squash(cause)
        self._emit(
            SPEC_SQUASH, window=window_id, pc=branch_pc,
            executed=executed, cause=cause,
        )
        # The shadow object is dropped here: nothing a transient
        # instruction wrote can reach architectural state.

    def _texec(self, shadow: _Shadow, ins, pc: int,
               window_id: int):
        """One transient instruction; returns ``(next_pc, stop_cause)``."""
        mnemonic = ins.mnemonic

        op = _ALU_RI.get(mnemonic)
        if op is not None:
            a, ta = shadow.read_reg(ins.rs1)
            shadow.write_reg(ins.rd, op(a, ins.imm) & MASK64, ta)
            return None, None
        op = _ALU_RR.get(mnemonic)
        if op is not None:
            a, ta = shadow.read_reg(ins.rs1)
            b, tb = shadow.read_reg(ins.rs2)
            shadow.write_reg(ins.rd, op(a, b) & MASK64, ta or tb)
            return None, None
        op = _ALU_RI_W.get(mnemonic)
        if op is not None:
            a, ta = shadow.read_reg(ins.rs1)
            result = to_unsigned64(sign_extend(op(a, ins.imm) & MASK64, 32))
            shadow.write_reg(ins.rd, result, ta)
            return None, None
        op = _ALU_RR_W.get(mnemonic)
        if op is not None:
            a, ta = shadow.read_reg(ins.rs1)
            b, tb = shadow.read_reg(ins.rs2)
            result = to_unsigned64(sign_extend(op(a, b) & MASK64, 32))
            shadow.write_reg(ins.rd, result, ta or tb)
            return None, None

        if mnemonic in tab.LOADS:
            base, tb = shadow.read_reg(ins.rs1)
            address = (base + ins.imm) & MASK64
            self._emit(
                SPEC_LOAD, window=window_id, pc=pc,
                address=address, tainted=tb,
            )
            size = tab.ACCESS_SIZE[mnemonic]
            value, tv = shadow.load(address, size)
            if not mnemonic.endswith("u") and mnemonic != "ld":
                value = to_unsigned64(sign_extend(value, size * 8))
            shadow.write_reg(ins.rd, value, tb or tv)
            return None, None
        if mnemonic in tab.STORES:
            base, tb = shadow.read_reg(ins.rs1)
            address = (base + ins.imm) & MASK64
            value, tv = shadow.read_reg(ins.rs2)
            self._emit(
                SPEC_STORE, window=window_id, pc=pc,
                address=address, tainted=tb,
            )
            shadow.store(address, tab.ACCESS_SIZE[mnemonic], value, tv)
            return None, None

        cond = _BRANCH_CONDS.get(mnemonic)
        if cond is not None:
            a, ta = shadow.read_reg(ins.rs1)
            b, tb = shadow.read_reg(ins.rs2)
            taken = bool(cond(a, b))
            self._emit(
                SPEC_BRANCH, window=window_id, pc=pc,
                taken=taken, tainted=ta or tb,
            )
            return ((pc + ins.imm) & MASK64) if taken else None, None
        if mnemonic == "jal":
            shadow.write_reg(ins.rd, (pc + 4) & MASK64, False)
            return (pc + ins.imm) & MASK64, None
        if mnemonic == "jalr":
            base, tb = shadow.read_reg(ins.rs1)
            target = (base + ins.imm) & MASK64 & ~1
            self._emit(
                SPEC_BRANCH, window=window_id, pc=pc,
                taken=True, tainted=tb,
            )
            shadow.write_reg(ins.rd, (pc + 4) & MASK64, False)
            return target, None
        if mnemonic == "lui":
            shadow.write_reg(ins.rd, to_unsigned64(ins.imm), False)
            return None, None
        if mnemonic == "auipc":
            shadow.write_reg(ins.rd, (pc + ins.imm) & MASK64, False)
            return None, None
        if mnemonic == "fence":
            return None, None
        if mnemonic in _SERIALIZING:
            return None, "serializing"
        if mnemonic in tab.CSR_OPS:
            return self._texec_csr(shadow, ins, pc, window_id)
        if ins.ksel is not None and ins.byte_range is not None:
            return self._texec_crypto(shadow, ins, pc, window_id)
        # Decodable but unmodeled: treat as a transient illegal op.
        return None, "trap"

    def _texec_csr(self, shadow: _Shadow, ins, pc: int, window_id: int):
        mnemonic = ins.mnemonic
        write_op = mnemonic in ("csrrw", "csrrwi")
        writes = write_op or ins.rs1 != 0
        if writes:
            # CSR writes are serializing: the window stops *before*
            # applying anything (keys, mtvec, mie must never move).
            return None, "serializing"
        hart = self.hart
        if ins.csr in csrdefs.KEY_CSR_LOOKUP:
            self.stats.key_csr_reads += 1
            forward = self.config.forward_key_csrs
            self._emit(
                SPEC_CSR_READ, window=window_id, pc=pc, csr=ins.csr,
                key=True, forwarded=forward,
            )
            if not forward:
                # RegVault hardware gates the read before any forward:
                # the window squashes and the key never leaves the file.
                return None, "key_csr"
            ksel, half = csrdefs.KEY_CSR_LOOKUP[ins.csr]
            key128 = hart.engine.key_file.key(ksel)
            value = (key128 >> 64) if half else key128 & MASK64
            shadow.write_reg(ins.rd, value & MASK64, True)
            return None, None
        try:
            value = hart.csrs.read(ins.csr, hart.privilege)
        except Trap:
            return None, "trap"
        shadow.write_reg(ins.rd, value, False)
        return None, None

    def _texec_crypto(self, shadow: _Shadow, ins, pc: int, window_id: int):
        hart = self.hart
        if int(hart.privilege) == hart.engine.USER:
            return None, "trap"
        engine = hart.engine
        value, tv = shadow.read_reg(ins.rs1)
        tweak, tt = shadow.read_reg(ins.rs2)
        is_encrypt = ins.mnemonic[2] == "e"
        # Probe the CLB without mutating stats or LRU metadata: the
        # engine's lookup_* helpers are architectural, this is not.
        hit = False
        if is_encrypt:
            plaintext = ins.byte_range.select(value)
            for entry in engine.clb.entries:
                if (entry.valid and entry.ksel == ins.ksel
                        and entry.tweak == tweak
                        and entry.plaintext == plaintext):
                    hit = True
                    break
            key128 = engine.key_file.key(ins.ksel)
            result = engine.cipher.encrypt(plaintext, tweak, key128)
        else:
            for entry in engine.clb.entries:
                if (entry.valid and entry.ksel == ins.ksel
                        and entry.tweak == tweak
                        and entry.ciphertext == value):
                    hit = True
                    break
            key128 = engine.key_file.key(ins.ksel)
            result = engine.cipher.decrypt(value, tweak, key128)
        self._emit(
            SPEC_CRYPTO, window=window_id, pc=pc,
            op="enc" if is_encrypt else "dec", ksel=int(ins.ksel),
            tainted=tv or tt, hit=hit,
        )
        if not is_encrypt and result & ~ins.byte_range.mask & MASK64:
            return None, "trap"  # transient integrity fault squashes
        shadow.write_reg(ins.rd, result & MASK64, tv or tt)
        return None, None

"""Basic-block translation cache for the hart's fast path.

A :class:`TranslatedBlock` is a straight-line instruction sequence
predecoded into ``(handler, instruction)`` pairs, keyed by its entry PC
and the privilege level it was translated under.  Executing a cached
block skips the per-instruction fetch -> decode -> dispatch-lookup cost
— the dominant share of interpreter time — while reusing the *same*
handler closures as :meth:`repro.machine.hart.Hart.step`, so
architectural state and cycle accounting stay bit-identical.  Hot
blocks are additionally compiled into specialized Python functions and
direct-chained (see :mod:`repro.machine.blockcompile`).

Invalidation rules (see ``docs/perf.md``):

* a memory write that lands on a page containing translated code drops
  every block overlapping that page (self-modifying code);
* privilege transitions never reuse a block translated under another
  privilege level, because blocks are keyed by ``(pc, privilege)``;
* CSR instructions terminate blocks at translation time, so CSR-driven
  state changes take effect before any later predecoded instruction.

Every removal — page invalidation, explicit flush, or LRU eviction —
bumps :attr:`BlockCache.epoch`.  Direct chain links between compiled
blocks are stamped with the epoch they were created under and are
ignored once it moves on, so a stale link can never resurrect a dropped
translation.
"""

from __future__ import annotations

from repro.machine.memory import PAGE_SHIFT
from repro.telemetry.events import (
    BLOCK_EVICT,
    BLOCK_FLUSH,
    BLOCK_HIT,
    BLOCK_INVALIDATE,
)

#: Longest straight-line sequence one block may hold.
MAX_BLOCK_INSTRUCTIONS = 64

#: Blocks cached before least-recently-used eviction kicks in.  Kernel
#: images here translate to a few hundred blocks; the cap only guards
#: degenerate workloads (e.g. JIT-like self-modifying loops) from
#: unbounded growth, and LRU keeps their hot working set translated
#: instead of retranslating everything after a full flush.
DEFAULT_CAPACITY = 4096

#: Capacity of the per-hart superblock cache (tier 4).  Profiles select
#: at most a handful of traces per workload; the bound only guards a
#: pathological profile from caching without limit.
SUPERBLOCK_CAPACITY = 1024


class TranslatedBlock:
    """One predecoded straight-line sequence.

    ``ops`` is split into ``body`` and ``last`` so the executor can run
    the body with architectural counters (``pc``/``instret``) held in
    locals and sync them exactly once before the final op — the only
    instruction that may observe them, since CSR reads terminate blocks.
    """

    __slots__ = (
        "entry_pc", "ops", "body", "last", "cycle_bound", "pages",
        "privilege", "exec_count", "compiled", "compile_failed", "links",
    )

    def __init__(
        self,
        entry_pc: int,
        ops: tuple,
        cycle_bound: int,
        pages: frozenset[int],
        privilege: int = 3,
    ):
        self.entry_pc = entry_pc
        #: ``(handler, instruction)`` pairs, in program order.
        self.ops = ops
        self.body = ops[:-1]
        self.last = ops[-1]
        #: Upper bound on cycles one execution of this block can
        #: consume (worst case per instruction, plus one trap entry).
        #: Used to prove no timer interrupt can become deliverable
        #: mid-block.
        self.cycle_bound = cycle_bound
        #: Physical page indices the block's code occupies.
        self.pages = pages
        #: Privilege level the block was translated (and keyed) under;
        #: the compiled tier folds it into the generated code.
        self.privilege = privilege
        # -- compiled tier ------------------------------------------------
        #: Executions through the block interpreter; once this crosses
        #: the hart's compile threshold the block is compiled.
        self.exec_count = 0
        #: ``fn(hart) -> +steps`` (chainable exit) / ``-steps``
        #: (trap, device store, CSR/system last op), or None.
        self.compiled = None
        #: Codegen refused this block; don't retry every execution.
        self.compile_failed = False
        #: Direct chain links: ``next_pc -> (epoch, TranslatedBlock)``.
        self.links: dict = {}

    def __len__(self) -> int:
        return len(self.ops)


class BlockLayout:
    """The hart-independent part of a translation, shareable via
    :attr:`repro.machine.hart.Hart.shared_layouts`.

    Handlers are closures over one hart, so a :class:`TranslatedBlock`
    cannot cross machines — but the predecoded instruction sequence,
    cycle bound and page set are pure functions of the code bytes.  A
    layout carries those plus the exact ``raw`` bytes it was derived
    from; an adopting hart bulk-reads the same span and only rebinds
    handlers when the bytes still match, so a stale layout (different
    user program at the same address, self-modified code) is rejected
    by comparison instead of by an invalidation protocol.

    Sharing is scoped by the boot cache to forks of one template, which
    all carry the same cost model and crypto engine — the cycle bound
    transfers unchanged.
    """

    __slots__ = ("raw", "instructions", "cycle_bound", "pages")

    def __init__(self, raw: bytes, instructions: tuple, cycle_bound: int,
                 pages: frozenset[int]):
        self.raw = raw
        self.instructions = instructions
        self.cycle_bound = cycle_bound
        self.pages = pages


#: Entries one shared-layout dict may hold (bounded by code footprint
#: in practice; the cap only guards degenerate self-modifying guests).
MAX_SHARED_LAYOUTS = 8192


class BlockCache:
    """``(entry_pc, privilege) -> TranslatedBlock`` with page index.

    The mapping doubles as the LRU order (Python dicts preserve
    insertion order): a lookup re-inserts the entry, and eviction pops
    the oldest one.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = capacity
        self._blocks: dict[tuple[int, int], TranslatedBlock] = {}
        self._by_page: dict[int, set[tuple[int, int]]] = {}
        self.translations = 0
        self.invalidated_blocks = 0
        self.flushes = 0
        self.evictions = 0
        self.hits = 0
        self.misses = 0
        #: Bumped whenever any block leaves the cache; chain links
        #: carry the epoch they were minted under and one integer
        #: compare validates them (QEMU-style lazy unlinking).
        self.epoch = 0
        #: Telemetry sink (``hook(kind, **fields)``) or None; compile
        #: events are emitted by the hart, which owns the timing.
        self.trace_hook = None

    def __len__(self) -> int:
        return len(self._blocks)

    def lookup(self, key: tuple[int, int]) -> TranslatedBlock | None:
        blocks = self._blocks
        block = blocks.pop(key, None)
        if block is None:
            self.misses += 1
            return None
        blocks[key] = block  # refresh LRU position
        self.hits += 1
        hook = self.trace_hook
        if hook is not None:
            hook(BLOCK_HIT, pc=key[0], instructions=len(block.ops))
        return block

    def peek(self, key: tuple[int, int]) -> TranslatedBlock | None:
        """Lookup without statistics or LRU refresh (chain resolution)."""
        return self._blocks.get(key)

    def insert(self, key: tuple[int, int], block: TranslatedBlock) -> None:
        if len(self._blocks) >= self.capacity:
            self._evict_oldest()
        self._blocks[key] = block
        for page in block.pages:
            self._by_page.setdefault(page, set()).add(key)
        self.translations += 1

    def _evict_oldest(self) -> None:
        key, block = next(iter(self._blocks.items()))
        self._remove(key, block)
        self.evictions += 1
        self.epoch += 1
        hook = self.trace_hook
        if hook is not None:
            hook(BLOCK_EVICT, pc=key[0], instructions=len(block.ops))

    def _remove(self, key: tuple[int, int], block: TranslatedBlock) -> None:
        del self._blocks[key]
        for page in block.pages:
            siblings = self._by_page.get(page)
            if siblings is not None:
                siblings.discard(key)
                if not siblings:
                    del self._by_page[page]

    def invalidate_page(self, page_index: int) -> int:
        """Drop every block overlapping ``page_index``; return the count."""
        keys = self._by_page.pop(page_index, None)
        if not keys:
            return 0
        dropped = 0
        for key in keys:
            block = self._blocks.pop(key, None)
            if block is None:
                continue
            dropped += 1
            for page in block.pages:
                if page != page_index:
                    siblings = self._by_page.get(page)
                    if siblings is not None:
                        siblings.discard(key)
        self.invalidated_blocks += dropped
        if dropped:
            self.epoch += 1
        hook = self.trace_hook
        if hook is not None and dropped:
            hook(BLOCK_INVALIDATE, page=page_index, blocks=dropped)
        return dropped

    def flush(self) -> None:
        hook = self.trace_hook
        if hook is not None:
            hook(BLOCK_FLUSH, blocks=len(self._blocks))
        self.invalidated_blocks += len(self._blocks)
        self._blocks.clear()
        self._by_page.clear()
        self.flushes += 1
        self.epoch += 1

    @staticmethod
    def pages_of(entry_pc: int, num_instructions: int) -> frozenset[int]:
        """Page indices covered by ``num_instructions`` words at ``entry_pc``."""
        last_byte = entry_pc + 4 * num_instructions - 1
        return frozenset(range(entry_pc >> PAGE_SHIFT,
                               (last_byte >> PAGE_SHIFT) + 1))

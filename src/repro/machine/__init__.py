"""Simulated RV64 machine with the RegVault extension.

The machine models what the paper prototypes on a Rocket core: an
in-order RV64IM hart with M/S/U privilege levels, a trap unit, a
CLINT-style timer, MMIO console/power devices, a cycle-cost timing model
and the RegVault crypto-engine wired into the pipeline.
"""

from repro.machine.memory import Memory, MemoryRegion
from repro.machine.regfile import RegisterFile
from repro.machine.csr import CSRFile
from repro.machine.trap import Cause, Trap
from repro.machine.timing import CostModel
from repro.machine.hart import Hart, PrivilegeLevel
from repro.machine.machine import Machine, HaltReason
from repro.machine.compare import architectural_state, state_digest, diff_states
from repro.machine.spec import BranchPredictor, SpecConfig, SpeculativeEngine

__all__ = [
    "BranchPredictor",
    "SpecConfig",
    "SpeculativeEngine",
    "Memory",
    "MemoryRegion",
    "RegisterFile",
    "CSRFile",
    "Cause",
    "Trap",
    "CostModel",
    "Hart",
    "PrivilegeLevel",
    "Machine",
    "HaltReason",
    "architectural_state",
    "state_digest",
    "diff_states",
]

"""General-purpose register file (x0..x31, x0 hardwired to zero)."""

from __future__ import annotations

from repro.isa.instructions import ABI_NAMES
from repro.utils.bits import MASK64


class RegisterFile:
    """32 64-bit registers; writes to x0 are discarded."""

    __slots__ = ("_regs",)

    def __init__(self):
        self._regs = [0] * 32

    def read(self, index: int) -> int:
        return self._regs[index]

    def write(self, index: int, value: int) -> None:
        if index:
            self._regs[index] = value & MASK64

    def __getitem__(self, index: int) -> int:
        return self._regs[index]

    def __setitem__(self, index: int, value: int) -> None:
        self.write(index, value)

    def by_name(self, name: str) -> int:
        return self._regs[ABI_NAMES.index(name)]

    def set_by_name(self, name: str, value: int) -> None:
        self.write(ABI_NAMES.index(name), value)

    def snapshot(self) -> dict[str, int]:
        """Named register dump (handy for debugging and attack forensics)."""
        return {name: self._regs[i] for i, name in enumerate(ABI_NAMES)}

    def reset(self) -> None:
        self._regs = [0] * 32

"""Top-level simulated SoC: hart + memory + devices.

:class:`Machine` is the main entry point for running programs:

>>> from repro.isa import assemble
>>> from repro.machine import Machine
>>> program = assemble('''
... _start:
...     li a0, 7
...     li t0, 0x5555
...     li t1, 0x02010000
...     sw t0, 0(t1)        # SYSCON poweroff
... ''')
>>> machine = Machine.from_program(program)
>>> machine.run()
<HaltReason.SHUTDOWN: 'shutdown'>
>>> machine.hart.regs.by_name('a0')
7
"""

from __future__ import annotations

import enum

from repro.crypto.engine import CryptoEngine
from repro.errors import ReproError
from repro.machine.csr import MIP_MTIP
from repro.machine.devices import Clint, Device, Rng, Syscon, Uart
from repro.machine.hart import Hart
from repro.machine.memory import Memory
from repro.machine.timing import CostModel
from repro.machine.trap import Trap


class HaltReason(enum.Enum):
    SHUTDOWN = "shutdown"
    BREAKPOINT = "breakpoint"
    STEP_LIMIT = "step_limit"
    WFI_NO_WAKEUP = "wfi_no_wakeup"
    DOUBLE_TRAP = "double_trap"


class SystemBus:
    """Routes hart memory accesses to devices or RAM."""

    def __init__(self, memory: Memory, devices: list[Device]):
        self.memory = memory
        self.devices = devices

    def _device_for(self, address: int, length: int) -> Device | None:
        for device in self.devices:
            if device.contains(address, length):
                return device
        return None

    def read_u8(self, address: int) -> int:
        device = self._device_for(address, 1)
        if device:
            return device.read(address, 1) & 0xFF
        return self.memory.read_u8(address)

    def read_u16(self, address: int) -> int:
        device = self._device_for(address, 2)
        if device:
            return device.read(address, 2) & 0xFFFF
        return self.memory.read_u16(address)

    def read_u32(self, address: int) -> int:
        device = self._device_for(address, 4)
        if device:
            return device.read(address, 4) & 0xFFFFFFFF
        return self.memory.read_u32(address)

    def read_u64(self, address: int) -> int:
        device = self._device_for(address, 8)
        if device:
            return device.read(address, 8)
        return self.memory.read_u64(address)

    # Writes report whether a device (rather than RAM) absorbed them:
    # the hart's block fast path ends a translated block after a device
    # store so machine-loop-visible state (shutdown requests, timer
    # reprogramming) is observed at the same instruction boundary as
    # under single-stepping.

    def write_u8(self, address: int, value: int) -> bool:
        device = self._device_for(address, 1)
        if device:
            device.write(address, 1, value)
            return True
        self.memory.write_u8(address, value)
        return False

    def write_u16(self, address: int, value: int) -> bool:
        device = self._device_for(address, 2)
        if device:
            device.write(address, 2, value)
            return True
        self.memory.write_u16(address, value)
        return False

    def write_u32(self, address: int, value: int) -> bool:
        device = self._device_for(address, 4)
        if device:
            device.write(address, 4, value)
            return True
        self.memory.write_u32(address, value)
        return False

    def write_u64(self, address: int, value: int) -> bool:
        device = self._device_for(address, 8)
        if device:
            device.write(address, 8, value)
            return True
        self.memory.write_u64(address, value)
        return False


#: Default RAM layout for stacks and heaps (kept clear of section bases).
STACK_BASE = 0x0800_0000
STACK_SIZE = 0x0010_0000
HEAP_BASE = 0x0900_0000
HEAP_SIZE = 0x0040_0000


class Machine:
    """A complete simulated SoC."""

    #: Process-wide default for new machines; the perf harness flips it
    #: to measure the single-step baseline through code paths that
    #: construct machines internally (attack suite, benchmarks).
    DEFAULT_FAST_PATH = True

    def __init__(
        self,
        memory: Memory | None = None,
        engine: CryptoEngine | None = None,
        cost_model: CostModel | None = None,
    ):
        self.memory = memory if memory is not None else Memory()
        self.clint = Clint()
        self.syscon = Syscon()
        self.uart = Uart()
        self.rng = Rng()
        self.bus = SystemBus(
            self.memory, [self.clint, self.syscon, self.uart, self.rng]
        )
        self.engine = engine if engine is not None else CryptoEngine()
        self.hart = Hart(self.bus, self.engine, cost_model)
        # mtime mirrors the hart's cycle counter at every instruction
        # boundary — exact even in the middle of a translated block.
        self.clint.attach_cycle_source(lambda: self.hart.cycles)
        self.halt_reason: HaltReason | None = None
        #: Run via the basic-block fast path by default; ``run(fast=...)``
        #: overrides per call (the perf harness measures both).
        self.fast_path = Machine.DEFAULT_FAST_PATH

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_program(
        cls,
        program,
        engine: CryptoEngine | None = None,
        cost_model: CostModel | None = None,
        stack: bool = True,
        heap: bool = False,
    ) -> "Machine":
        """Build a machine with ``program`` loaded and the PC at its entry."""
        machine = cls(engine=engine, cost_model=cost_model)
        machine.memory.load_program(program)
        if stack:
            machine.memory.map_region("stack", STACK_BASE, STACK_SIZE)
            machine.hart.regs.set_by_name("sp", STACK_BASE + STACK_SIZE)
        if heap:
            machine.memory.map_region("heap", HEAP_BASE, HEAP_SIZE)
        machine.hart.pc = program.entry
        return machine

    # -- execution ---------------------------------------------------------------

    def run(
        self, max_steps: int = 10_000_000, fast: bool | None = None
    ) -> HaltReason:
        """Run until shutdown, breakpoint, a stuck WFI or the step limit.

        ``fast`` selects the basic-block fast path (default: the
        machine's ``fast_path`` attribute).  Both modes produce
        identical architectural state and cycle counts; the fast path
        retires whole translated blocks per loop iteration instead of
        one instruction.
        """
        if fast is None:
            fast = self.fast_path
        hart = self.hart
        clint = self.clint
        syscon = self.syscon
        remaining = max_steps
        while remaining > 0:
            if syscon.shutdown_requested:
                self.halt_reason = HaltReason.SHUTDOWN
                return self.halt_reason
            if hart.waiting_for_interrupt:
                if clint.mtimecmp <= (1 << 62):
                    # Fast-forward the idle time to the next timer event.
                    hart.cycles = max(hart.cycles, clint.mtimecmp)
                    hart.waiting_for_interrupt = False
                else:
                    self.halt_reason = HaltReason.WFI_NO_WAKEUP
                    return self.halt_reason
            hart.csrs.set_mip_bit(MIP_MTIP, clint.timer_pending)
            try:
                if fast:
                    remaining -= hart.run_block(remaining, clint.mtimecmp)
                else:
                    hart.step()
                    remaining -= 1
            except Trap as trap:
                # A trap escaping the hart means mtvec was not installed.
                raise ReproError(
                    f"unhandled trap with no trap vector: {trap}"
                ) from trap
        self.halt_reason = HaltReason.STEP_LIMIT
        return self.halt_reason

    def run_until(self, pc: int, max_steps: int = 10_000_000) -> bool:
        """Run until the hart is about to execute ``pc``.

        Returns True when the breakpoint address was reached, False when
        the machine halted or hit the step limit first.  Used by the
        attack framework to pause execution at a victim location.
        """
        # Deliberately single-stepped: the breakpoint comparison must
        # run before every instruction, which a block fast path would
        # skip past.
        hart = self.hart
        clint = self.clint
        for _ in range(max_steps):
            if hart.pc == pc:
                return True
            if self.syscon.shutdown_requested:
                self.halt_reason = HaltReason.SHUTDOWN
                return False
            hart.csrs.set_mip_bit(MIP_MTIP, clint.timer_pending)
            hart.step()
        return False

    # -- convenience -------------------------------------------------------------

    @property
    def exit_code(self) -> int:
        return self.syscon.exit_code

    @property
    def console(self) -> str:
        return self.uart.text

    def read_u64(self, address: int) -> int:
        """Debug/attack view of physical memory (bypasses devices)."""
        return self.memory.read_u64(address)

    def write_u64(self, address: int, value: int) -> None:
        """Debug/attack poke of physical memory (bypasses devices)."""
        self.memory.write_u64(address, value)

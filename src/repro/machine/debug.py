"""Execution tracing and symbolization.

Development tooling for the simulated machine: an instruction tracer
that records (pc, disassembly, register writes) per step and resolves
addresses against program symbol tables.  Used by the examples and
invaluable when extending the kernel.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.isa.decoder import decode
from repro.isa.disassembler import disassemble
from repro.isa.instructions import ABI_NAMES
from repro.machine.csr import MIP_MTIP


class SymbolTable:
    """Address → nearest preceding symbol resolution."""

    def __init__(self, symbols: dict[str, int] | None = None):
        self._sorted: list[tuple[int, str]] = []
        if symbols:
            self.add_all(symbols)

    def add_all(self, symbols: dict[str, int]) -> None:
        for name, address in symbols.items():
            self._sorted.append((address, name))
        self._sorted.sort()

    def nearest(self, address: int) -> tuple[str, int] | None:
        """``(name, base)`` of the nearest preceding symbol, or None."""
        index = bisect.bisect_right(self._sorted, (address, "\xff")) - 1
        if index < 0:
            return None
        base, name = self._sorted[index]
        return name, base

    def resolve(self, address: int) -> str:
        """``symbol+offset`` for the nearest preceding symbol."""
        found = self.nearest(address)
        if found is None:
            return f"{address:#x}"
        name, base = found
        offset = address - base
        return name if offset == 0 else f"{name}+{offset:#x}"


@dataclass
class TraceEntry:
    """One executed instruction."""

    pc: int
    text: str
    location: str
    written: dict[str, int] = field(default_factory=dict)

    def __str__(self) -> str:
        writes = ", ".join(
            f"{reg}={value:#x}" for reg, value in self.written.items()
        )
        suffix = f"   # {writes}" if writes else ""
        return f"{self.pc:#010x} <{self.location}>: {self.text}{suffix}"


class Tracer:
    """Steps a machine while recording an instruction trace.

    >>> tracer = Tracer(machine, symbols=program.symbols)  # doctest: +SKIP
    >>> tracer.step(100)                                   # doctest: +SKIP
    >>> print(tracer.format_tail(5))                       # doctest: +SKIP
    """

    def __init__(
        self,
        machine,
        symbols: dict[str, int] | None = None,
        max_entries: int = 10_000,
    ):
        self.machine = machine
        self.symbols = SymbolTable(symbols)
        self.max_entries = max_entries
        self.entries: list[TraceEntry] = []

    def step(self, count: int = 1, until_pc: int | None = None) -> int:
        """Execute up to ``count`` instructions, tracing each.

        Stops early at ``until_pc`` or machine shutdown; returns the
        number of instructions traced.
        """
        machine = self.machine
        hart = machine.hart
        executed = 0
        for _ in range(count):
            if machine.syscon.shutdown_requested:
                break
            pc = hart.pc
            if until_pc is not None and pc == until_pc:
                break
            try:
                word = machine.bus.read_u32(pc)
                text = disassemble(decode(word))
            except Exception:
                text = "<unfetchable>"
            before = list(hart.regs._regs)
            hart.csrs.set_mip_bit(MIP_MTIP, machine.clint.timer_pending)
            hart.step()
            written = {
                ABI_NAMES[i]: after
                for i, (prev, after) in enumerate(
                    zip(before, hart.regs._regs)
                )
                if prev != after
            }
            self._record(TraceEntry(
                pc=pc,
                text=text,
                location=self.symbols.resolve(pc),
                written=written,
            ))
            executed += 1
        return executed

    def _record(self, entry: TraceEntry) -> None:
        self.entries.append(entry)
        if len(self.entries) > self.max_entries:
            del self.entries[: len(self.entries) - self.max_entries]

    # -- reporting ---------------------------------------------------------

    def format_tail(self, count: int = 20) -> str:
        return "\n".join(str(entry) for entry in self.entries[-count:])

    def calls(self) -> list[str]:
        """Locations of function entries observed (offset 0 hits)."""
        return [
            entry.location
            for entry in self.entries
            if "+" not in entry.location and ":" not in entry.location
        ]

    def crypto_instructions(self) -> list[TraceEntry]:
        """All RegVault primitives executed."""
        return [
            entry for entry in self.entries
            if entry.text.startswith(("cre", "crd"))
        ]

"""Sparse simulated physical memory.

Memory is organized as explicitly mapped regions backed by 4 KiB pages
allocated on demand.  Accesses outside any mapped region raise
:class:`MemoryFault`, which the hart converts into access-fault traps —
this is what makes a garbage-decrypted pointer *observable* as a crash,
exactly the paper's argument for pointer randomization.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MemoryFault

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT


@dataclass(frozen=True)
class MemoryRegion:
    """A mapped address range [base, base + size)."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int, length: int = 1) -> bool:
        return self.base <= address and address + length <= self.end


class Memory:
    """Sparse byte-addressable memory with region mapping.

    ``strict=False`` turns the whole address space into one implicit
    region (useful for small unit tests); the kernel and benchmarks run
    with ``strict=True``.
    """

    def __init__(self, strict: bool = True):
        self.strict = strict
        self.regions: list[MemoryRegion] = []
        self._pages: dict[int, bytearray] = {}
        #: Pages holding translated code: a write that lands on one of
        #: these notifies every registered hook so block caches can
        #: invalidate stale translations (self-modifying code).
        self._watched_pages: set[int] = set()
        self._code_write_hooks: list = []
        #: Pages shared copy-on-write with a forked Memory; the first
        #: write to one replaces it with a private copy.
        self._cow_pages: set[int] = set()
        #: Number of COW page copies this instance has performed.
        self.cow_copies = 0

    # -- code-write tracking -----------------------------------------------------

    def watch_code_page(self, page_index: int) -> None:
        """Report future writes to ``page_index`` to the code-write hooks."""
        self._watched_pages.add(page_index)

    def unwatch_all_code_pages(self) -> None:
        self._watched_pages.clear()

    def add_code_write_hook(self, hook) -> None:
        """Register ``hook(page_index)`` to run on writes to watched pages."""
        self._code_write_hooks.append(hook)

    # -- copy-on-write forking ---------------------------------------------------

    def fork(self) -> "Memory":
        """Return a child sharing every current page copy-on-write.

        Parent and child each mark today's pages as shared; whichever
        side writes a shared page first replaces it with a private copy,
        so neither can observe the other's subsequent writes.  Region
        mapping and the watched-code-page set are copied; code-write
        hooks are *not* — they bind to the parent's hart, and the
        child's consumers must register their own.
        """
        child = Memory(strict=self.strict)
        child.regions = list(self.regions)
        shared = set(self._pages)
        child._pages = dict(self._pages)
        child._cow_pages = set(shared)
        self._cow_pages |= shared
        child._watched_pages = set(self._watched_pages)
        return child

    def shared_page_count(self) -> int:
        """Pages still shared with a fork (not yet privately copied)."""
        return len(self._cow_pages)

    # -- mapping ---------------------------------------------------------------

    def map_region(self, name: str, base: int, size: int) -> MemoryRegion:
        """Map [base, base+size); overlapping an existing region is an error."""
        if size <= 0:
            raise ValueError(f"region {name!r} must have positive size")
        region = MemoryRegion(name, base, size)
        for existing in self.regions:
            if base < existing.end and existing.base < region.end:
                raise ValueError(
                    f"region {name!r} overlaps {existing.name!r}"
                )
        self.regions.append(region)
        return region

    def is_mapped(self, address: int, length: int = 1) -> bool:
        if not self.strict:
            return True
        return any(r.contains(address, length) for r in self.regions)

    def region_at(self, address: int) -> MemoryRegion | None:
        for region in self.regions:
            if region.contains(address):
                return region
        return None

    def _check(self, address: int, length: int) -> None:
        if address < 0:
            raise MemoryFault(address, "negative address")
        if not self.is_mapped(address, length):
            raise MemoryFault(address, "access to unmapped memory")

    # -- raw byte access -------------------------------------------------------

    def read_bytes(self, address: int, length: int) -> bytes:
        self._check(address, length)
        out = bytearray(length)
        offset = 0
        while offset < length:
            page_index = (address + offset) >> PAGE_SHIFT
            page_offset = (address + offset) & (PAGE_SIZE - 1)
            chunk = min(length - offset, PAGE_SIZE - page_offset)
            page = self._pages.get(page_index)
            if page is not None:
                out[offset:offset + chunk] = page[
                    page_offset:page_offset + chunk
                ]
            offset += chunk
        return bytes(out)

    def write_bytes(self, address: int, data: bytes) -> None:
        """Write ``data``; code-write hooks fire after the full write.

        Hooks run at most once per watched page per call (a multi-page
        write used to fire them once per written chunk), and only after
        every byte has landed, so a block-invalidation hook observes the
        fully-written page.
        """
        self._check(address, len(data))
        offset = 0
        length = len(data)
        watched = self._watched_pages
        touched: list[int] = []
        while offset < length:
            page_index = (address + offset) >> PAGE_SHIFT
            page_offset = (address + offset) & (PAGE_SIZE - 1)
            chunk = min(length - offset, PAGE_SIZE - page_offset)
            page = self._pages.get(page_index)
            if page is None:
                page = bytearray(PAGE_SIZE)
                self._pages[page_index] = page
            elif self._cow_pages and page_index in self._cow_pages:
                # First write to a page shared with a fork: go private.
                page = bytearray(page)
                self._pages[page_index] = page
                self._cow_pages.discard(page_index)
                self.cow_copies += 1
            page[page_offset:page_offset + chunk] = data[
                offset:offset + chunk
            ]
            if watched and page_index in watched and (
                not touched or touched[-1] != page_index
            ):
                touched.append(page_index)
            offset += chunk
        for page_index in touched:
            for hook in self._code_write_hooks:
                hook(page_index)

    # -- typed access -----------------------------------------------------------

    def read_u8(self, address: int) -> int:
        return self.read_bytes(address, 1)[0]

    def read_u16(self, address: int) -> int:
        return int.from_bytes(self.read_bytes(address, 2), "little")

    def read_u32(self, address: int) -> int:
        return int.from_bytes(self.read_bytes(address, 4), "little")

    def read_u64(self, address: int) -> int:
        return int.from_bytes(self.read_bytes(address, 8), "little")

    def write_u8(self, address: int, value: int) -> None:
        self.write_bytes(address, bytes([value & 0xFF]))

    def write_u16(self, address: int, value: int) -> None:
        self.write_bytes(address, (value & 0xFFFF).to_bytes(2, "little"))

    def write_u32(self, address: int, value: int) -> None:
        self.write_bytes(address, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def write_u64(self, address: int, value: int) -> None:
        self.write_bytes(
            address, (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
        )

    # -- program loading ---------------------------------------------------------

    def load_program(self, program) -> None:
        """Map and copy every section of an assembled Program.

        A section already fully inside a mapped region reuses it; one
        entirely in unmapped space gets a fresh page-rounded region.  A
        section *partially* overlapping an existing region is reported
        explicitly — the page-rounded mapping would otherwise fail with
        an unhelpful generic region-overlap error.
        """
        for section in program.sections.values():
            if not section.data:
                continue
            length = len(section.data)
            size = (length + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
            if not self.is_mapped(section.base, length):
                end = section.base + size
                clash = next(
                    (r for r in self.regions
                     if section.base < r.end and r.base < end),
                    None,
                )
                if clash is not None:
                    raise ValueError(
                        f"section {section.name!r} "
                        f"[{section.base:#x}, {section.base + length:#x}) "
                        f"partially overlaps region {clash.name!r} "
                        f"[{clash.base:#x}, {clash.end:#x}): a section "
                        "must lie fully inside one mapped region or in "
                        "unmapped space (its mapping is page-rounded to "
                        f"{size:#x} bytes)"
                    )
                self.map_region(section.name, section.base, size)
            self.write_bytes(section.base, bytes(section.data))

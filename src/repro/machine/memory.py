"""Sparse simulated physical memory.

Memory is organized as explicitly mapped regions backed by 4 KiB pages
allocated on demand.  Accesses outside any mapped region raise
:class:`MemoryFault`, which the hart converts into access-fault traps —
this is what makes a garbage-decrypted pointer *observable* as a crash,
exactly the paper's argument for pointer randomization.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MemoryFault

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT


@dataclass(frozen=True)
class MemoryRegion:
    """A mapped address range [base, base + size)."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int, length: int = 1) -> bool:
        return self.base <= address and address + length <= self.end


class Memory:
    """Sparse byte-addressable memory with region mapping.

    ``strict=False`` turns the whole address space into one implicit
    region (useful for small unit tests); the kernel and benchmarks run
    with ``strict=True``.
    """

    def __init__(self, strict: bool = True):
        self.strict = strict
        self.regions: list[MemoryRegion] = []
        self._pages: dict[int, bytearray] = {}
        #: Pages holding translated code: a write that lands on one of
        #: these notifies every registered hook so block caches can
        #: invalidate stale translations (self-modifying code).
        self._watched_pages: set[int] = set()
        self._code_write_hooks: list = []

    # -- code-write tracking -----------------------------------------------------

    def watch_code_page(self, page_index: int) -> None:
        """Report future writes to ``page_index`` to the code-write hooks."""
        self._watched_pages.add(page_index)

    def unwatch_all_code_pages(self) -> None:
        self._watched_pages.clear()

    def add_code_write_hook(self, hook) -> None:
        """Register ``hook(page_index)`` to run on writes to watched pages."""
        self._code_write_hooks.append(hook)

    # -- mapping ---------------------------------------------------------------

    def map_region(self, name: str, base: int, size: int) -> MemoryRegion:
        """Map [base, base+size); overlapping an existing region is an error."""
        if size <= 0:
            raise ValueError(f"region {name!r} must have positive size")
        region = MemoryRegion(name, base, size)
        for existing in self.regions:
            if base < existing.end and existing.base < region.end:
                raise ValueError(
                    f"region {name!r} overlaps {existing.name!r}"
                )
        self.regions.append(region)
        return region

    def is_mapped(self, address: int, length: int = 1) -> bool:
        if not self.strict:
            return True
        return any(r.contains(address, length) for r in self.regions)

    def region_at(self, address: int) -> MemoryRegion | None:
        for region in self.regions:
            if region.contains(address):
                return region
        return None

    def _check(self, address: int, length: int) -> None:
        if address < 0:
            raise MemoryFault(address, "negative address")
        if not self.is_mapped(address, length):
            raise MemoryFault(address, "access to unmapped memory")

    # -- raw byte access -------------------------------------------------------

    def read_bytes(self, address: int, length: int) -> bytes:
        self._check(address, length)
        out = bytearray(length)
        offset = 0
        while offset < length:
            page_index = (address + offset) >> PAGE_SHIFT
            page_offset = (address + offset) & (PAGE_SIZE - 1)
            chunk = min(length - offset, PAGE_SIZE - page_offset)
            page = self._pages.get(page_index)
            if page is not None:
                out[offset:offset + chunk] = page[
                    page_offset:page_offset + chunk
                ]
            offset += chunk
        return bytes(out)

    def write_bytes(self, address: int, data: bytes) -> None:
        self._check(address, len(data))
        offset = 0
        length = len(data)
        watched = self._watched_pages
        while offset < length:
            page_index = (address + offset) >> PAGE_SHIFT
            page_offset = (address + offset) & (PAGE_SIZE - 1)
            chunk = min(length - offset, PAGE_SIZE - page_offset)
            page = self._pages.get(page_index)
            if page is None:
                page = bytearray(PAGE_SIZE)
                self._pages[page_index] = page
            page[page_offset:page_offset + chunk] = data[
                offset:offset + chunk
            ]
            if watched and page_index in watched:
                for hook in self._code_write_hooks:
                    hook(page_index)
            offset += chunk

    # -- typed access -----------------------------------------------------------

    def read_u8(self, address: int) -> int:
        return self.read_bytes(address, 1)[0]

    def read_u16(self, address: int) -> int:
        return int.from_bytes(self.read_bytes(address, 2), "little")

    def read_u32(self, address: int) -> int:
        return int.from_bytes(self.read_bytes(address, 4), "little")

    def read_u64(self, address: int) -> int:
        return int.from_bytes(self.read_bytes(address, 8), "little")

    def write_u8(self, address: int, value: int) -> None:
        self.write_bytes(address, bytes([value & 0xFF]))

    def write_u16(self, address: int, value: int) -> None:
        self.write_bytes(address, (value & 0xFFFF).to_bytes(2, "little"))

    def write_u32(self, address: int, value: int) -> None:
        self.write_bytes(address, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def write_u64(self, address: int, value: int) -> None:
        self.write_bytes(
            address, (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
        )

    # -- program loading ---------------------------------------------------------

    def load_program(self, program) -> None:
        """Map and copy every section of an assembled Program."""
        for section in program.sections.values():
            if not section.data:
                continue
            size = (len(section.data) + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
            if not self.is_mapped(section.base, len(section.data)):
                self.map_region(section.name, section.base, size)
            self.write_bytes(section.base, bytes(section.data))

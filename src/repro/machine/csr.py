"""Control and status register file, including RegVault key CSRs.

Privilege rules (standard RISC-V):
* CSR address bits [9:8] encode the minimum privilege level;
* addresses with bits [11:10] == 0b11 are read-only.

RegVault rules (§2.3.1):
* the key CSRs (``krega_lo`` .. ``kregg_hi``) are **write-only**: kernel
  writes install key material, but any read attempt traps, so key bits
  can never be exfiltrated through a CSR read — even by kernel code;
* the master key has no CSR address at all; it is initialized by
  "hardware" at reset (see :class:`repro.machine.hart.Hart`).
"""

from __future__ import annotations

from repro.crypto.keys import KeyFile
from repro.isa import csrdefs
from repro.machine.trap import Cause, Trap
from repro.utils.bits import MASK64

#: mstatus bit positions used by this model.
MSTATUS_MIE = 1 << 3
MSTATUS_MPIE = 1 << 7
MSTATUS_MPP_SHIFT = 11
MSTATUS_MPP_MASK = 0b11 << MSTATUS_MPP_SHIFT

#: mie/mip bit for the machine timer interrupt.
MIE_MTIE = 1 << 7
MIP_MTIP = 1 << 7


class CSRFile:
    """CSR storage with privilege and RegVault access enforcement."""

    def __init__(self, key_file: KeyFile):
        self.key_file = key_file
        self._storage: dict[int, int] = {
            csrdefs.MSTATUS: 0,
            csrdefs.MISA: (2 << 62) | (1 << 8) | (1 << 12) | (1 << 20),
            csrdefs.MEDELEG: 0,
            csrdefs.MIDELEG: 0,
            csrdefs.MIE: 0,
            csrdefs.MTVEC: 0,
            csrdefs.MSCRATCH: 0,
            csrdefs.MEPC: 0,
            csrdefs.MCAUSE: 0,
            csrdefs.MTVAL: 0,
            csrdefs.MIP: 0,
            csrdefs.MHARTID: 0,
            csrdefs.SSTATUS: 0,
            csrdefs.SIE: 0,
            csrdefs.STVEC: 0,
            csrdefs.SSCRATCH: 0,
            csrdefs.SEPC: 0,
            csrdefs.SCAUSE: 0,
            csrdefs.STVAL: 0,
            csrdefs.SIP: 0,
            csrdefs.SATP: 0,
        }
        #: Hooked counters, set by the hart (cycle/instret reads).
        self.counter_hooks: dict[int, callable] = {}
        #: Telemetry sink (``hook(ksel, half)``) fired on key-CSR
        #: writes, or None.  Observes only the write's occurrence —
        #: never the key material.
        self.key_write_hook = None

    @staticmethod
    def _min_privilege(csr: int) -> int:
        return (csr >> 8) & 0b11

    @staticmethod
    def _is_read_only(csr: int) -> bool:
        return (csr >> 10) & 0b11 == 0b11

    def _check_privilege(self, csr: int, privilege: int) -> None:
        if privilege < self._min_privilege(csr):
            raise Trap(Cause.ILLEGAL_INSTRUCTION, tval=csr)

    # -- read/write -------------------------------------------------------------

    def read(self, csr: int, privilege: int) -> int:
        self._check_privilege(csr, privilege)
        if csr in csrdefs.KEY_CSR_LOOKUP:
            # Paper: kernels "can write general key registers, but are
            # not allowed to read them".
            raise Trap(Cause.ILLEGAL_INSTRUCTION, tval=csr)
        if csr in self.counter_hooks:
            return self.counter_hooks[csr]() & MASK64
        if csr not in self._storage:
            raise Trap(Cause.ILLEGAL_INSTRUCTION, tval=csr)
        return self._storage[csr]

    def write(self, csr: int, value: int, privilege: int) -> None:
        self._check_privilege(csr, privilege)
        if self._is_read_only(csr):
            raise Trap(Cause.ILLEGAL_INSTRUCTION, tval=csr)
        value &= MASK64
        if csr in csrdefs.KEY_CSR_LOOKUP:
            ksel, half = csrdefs.KEY_CSR_LOOKUP[csr]
            if half:
                self.key_file.set_word(ksel, hi=value)
            else:
                self.key_file.set_word(ksel, lo=value)
            hook = self.key_write_hook
            if hook is not None:
                hook(ksel, half)
            return
        if csr not in self._storage:
            raise Trap(Cause.ILLEGAL_INSTRUCTION, tval=csr)
        self._storage[csr] = value

    # -- raw access for the trap unit (no privilege checks) ---------------------

    def raw_read(self, csr: int) -> int:
        return self._storage[csr]

    def raw_write(self, csr: int, value: int) -> None:
        self._storage[csr] = value & MASK64

    # -- mstatus helpers ---------------------------------------------------------

    @property
    def mstatus(self) -> int:
        return self._storage[csrdefs.MSTATUS]

    @mstatus.setter
    def mstatus(self, value: int) -> None:
        self._storage[csrdefs.MSTATUS] = value & MASK64

    def set_mip_bit(self, bit: int, asserted: bool) -> None:
        if asserted:
            self._storage[csrdefs.MIP] |= bit
        else:
            self._storage[csrdefs.MIP] &= ~bit & MASK64

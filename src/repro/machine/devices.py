"""Memory-mapped devices: CLINT timer, UART console, SYSCON power.

Addresses follow common RISC-V platform conventions (QEMU ``virt``):

* CLINT at ``0x0200_0000`` — ``mtimecmp`` at +0x4000, ``mtime`` at
  +0xBFF8; ``mtime`` advances with the hart's cycle counter.
* SYSCON at ``0x0201_0000`` — writing ``0x5555`` powers off (tests and
  workloads use this to halt the machine with an exit code in the upper
  bits).
* UART at ``0x1000_0000`` — write-only byte register collecting console
  output.
"""

from __future__ import annotations

from repro.utils.bits import MASK64

CLINT_BASE = 0x0200_0000
CLINT_MTIMECMP = CLINT_BASE + 0x4000
CLINT_MTIME = CLINT_BASE + 0xBFF8
CLINT_SIZE = 0x10000

SYSCON_ADDR = 0x0201_0000
SYSCON_POWEROFF = 0x5555

UART_BASE = 0x1000_0000
UART_SIZE = 0x100

RNG_ADDR = 0x0202_0000


class Device:
    """Protocol for a memory-mapped device."""

    base = 0
    size = 0

    def contains(self, address: int, length: int) -> bool:
        return self.base <= address and address + length <= self.base + self.size

    def read(self, address: int, size: int) -> int:
        raise NotImplementedError

    def write(self, address: int, size: int, value: int) -> None:
        raise NotImplementedError


class Clint(Device):
    """Core-local interruptor: machine timer.

    ``mtime`` can either be driven explicitly (bare-device tests) or
    track a live cycle source installed with :meth:`attach_cycle_source`
    — the Machine wires the hart's cycle counter in, so a guest load of
    ``mtime`` is exact at any instruction boundary, including in the
    middle of a translated basic block.
    """

    base = CLINT_BASE
    size = CLINT_SIZE

    def __init__(self):
        self._mtime = 0
        self._cycle_source = None
        self.mtimecmp = MASK64  # never fires until programmed

    def attach_cycle_source(self, source) -> None:
        """Make ``mtime`` mirror ``source()`` (e.g. the hart's cycles)."""
        self._cycle_source = source

    @property
    def mtime(self) -> int:
        if self._cycle_source is not None:
            return self._cycle_source() & MASK64
        return self._mtime

    @mtime.setter
    def mtime(self, value: int) -> None:
        # With a live source attached the timer tracks the hart; an
        # explicit store is accepted but has no lasting effect.
        self._mtime = value & MASK64

    def read(self, address: int, size: int) -> int:
        if address == CLINT_MTIME:
            return self.mtime
        if address == CLINT_MTIMECMP:
            return self.mtimecmp
        return 0

    def write(self, address: int, size: int, value: int) -> None:
        if address == CLINT_MTIME:
            self.mtime = value & MASK64
        elif address == CLINT_MTIMECMP:
            self.mtimecmp = value & MASK64

    @property
    def timer_pending(self) -> bool:
        return self.mtime >= self.mtimecmp


class Syscon(Device):
    """Power controller; a write requests shutdown."""

    base = SYSCON_ADDR
    size = 8

    def __init__(self):
        self.shutdown_requested = False
        self.exit_code = 0

    def read(self, address: int, size: int) -> int:
        return 0

    def write(self, address: int, size: int, value: int) -> None:
        if (value & 0xFFFF) == SYSCON_POWEROFF:
            self.shutdown_requested = True
            self.exit_code = (value >> 16) & 0xFFFF


class Uart(Device):
    """Write-only console."""

    base = UART_BASE
    size = UART_SIZE

    def __init__(self):
        self.output = bytearray()

    def read(self, address: int, size: int) -> int:
        return 0

    def write(self, address: int, size: int, value: int) -> None:
        if address == self.base:
            self.output.append(value & 0xFF)

    @property
    def text(self) -> str:
        return self.output.decode("utf-8", errors="replace")


class Rng(Device):
    """Hardware entropy source (deterministic in simulation).

    The kernel reads 64-bit words from this device to generate the
    general key registers at boot — the paper's kernel "can write
    general key registers" but never sees the master key, which is
    installed by hardware at reset (see KernelSession).
    """

    base = RNG_ADDR
    size = 8

    #: splitmix64 constants.
    _GAMMA = 0x9E3779B97F4A7C15

    def __init__(self, seed: int = 0x243F6A8885A308D3):
        self.state = seed & MASK64

    def read(self, address: int, size: int) -> int:
        self.state = (self.state + self._GAMMA) & MASK64
        z = self.state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & MASK64
        return z ^ (z >> 31)

    def write(self, address: int, size: int, value: int) -> None:
        self.state = value & MASK64  # reseed

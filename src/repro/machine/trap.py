"""Trap causes and the Trap control-flow exception.

Exception causes follow the RISC-V privileged specification; the
RegVault integrity fault uses cause 24, the first cause number the spec
reserves for custom use — the paper says a failed ``crd`` integrity
check "raises an exception" (§2.3.1), and this is that exception.
"""

from __future__ import annotations

import enum


class Cause(enum.IntEnum):
    """Synchronous exception and interrupt cause codes."""

    # Synchronous exceptions.
    INSTRUCTION_MISALIGNED = 0
    INSTRUCTION_ACCESS_FAULT = 1
    ILLEGAL_INSTRUCTION = 2
    BREAKPOINT = 3
    LOAD_MISALIGNED = 4
    LOAD_ACCESS_FAULT = 5
    STORE_MISALIGNED = 6
    STORE_ACCESS_FAULT = 7
    ECALL_FROM_U = 8
    ECALL_FROM_S = 9
    ECALL_FROM_M = 11
    #: Custom cause: RegVault crd integrity check failed (§2.3.1).
    REGVAULT_INTEGRITY_FAULT = 24

    # Interrupts (reported with the interrupt bit set in mcause).
    SUPERVISOR_TIMER_INTERRUPT = 5
    MACHINE_TIMER_INTERRUPT = 7


#: Bit 63 of mcause marks interrupts.
INTERRUPT_BIT = 1 << 63


def mcause_value(cause: Cause, interrupt: bool) -> int:
    return (INTERRUPT_BIT | int(cause)) if interrupt else int(cause)


class Trap(Exception):
    """Control-flow exception raised during execute; caught by the hart."""

    def __init__(self, cause: Cause, tval: int = 0, interrupt: bool = False):
        self.cause = cause
        self.tval = tval
        self.interrupt = interrupt
        kind = "interrupt" if interrupt else "exception"
        super().__init__(f"{kind} {cause.name} (tval={tval:#x})")

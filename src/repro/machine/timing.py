"""Cycle-cost model for the simulated hart.

The paper's prototype is an in-order Rocket core at 100 MHz where the
crypto-engine "completes the QARMA cipher in 3 cycles" (§4.2) and a CLB
hit returns the cached result immediately (§2.3.3).  This model assigns
a fixed cycle cost per instruction class; the crypto instructions are
charged by the engine itself (1 cycle on a CLB hit, 3 on a miss), so the
relative overhead of instrumented code emerges from execution rather
than being assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa import instructions as tab


@dataclass
class CostModel:
    """Per-instruction-class cycle costs (in-order, single-issue)."""

    default: int = 1
    load: int = 2
    store: int = 1
    mul: int = 3
    div: int = 20
    branch_taken: int = 2
    branch_not_taken: int = 1
    jump: int = 2
    csr: int = 1
    system: int = 3
    trap_entry: int = 4
    trap_return: int = 4
    #: Crypto costs live in the engine (hit/miss); kept here for reports.
    crypto_hit: int = 1
    crypto_miss: int = 3

    _class_cache: dict[str, str] = field(default_factory=dict, repr=False)

    def classify(self, mnemonic: str) -> str:
        cached = self._class_cache.get(mnemonic)
        if cached is not None:
            return cached
        if mnemonic in tab.LOADS:
            kind = "load"
        elif mnemonic in tab.STORES:
            kind = "store"
        elif mnemonic in ("mul", "mulh", "mulhsu", "mulhu", "mulw"):
            kind = "mul"
        elif mnemonic in (
            "div", "divu", "rem", "remu", "divw", "divuw", "remw", "remuw"
        ):
            kind = "div"
        elif mnemonic in tab.BRANCHES:
            kind = "branch"
        elif mnemonic in ("jal", "jalr"):
            kind = "jump"
        elif mnemonic in tab.CSR_OPS:
            kind = "csr"
        elif mnemonic in tab.SYSTEM_OPS:
            kind = "system"
        elif mnemonic.startswith(("cre", "crd")) and mnemonic.endswith("k"):
            kind = "crypto"
        else:
            kind = "alu"
        self._class_cache[mnemonic] = kind
        return kind

    def cost(self, mnemonic: str, branch_taken: bool = False) -> int:
        """Cycle cost for one instruction (crypto is charged by the engine)."""
        kind = self.classify(mnemonic)
        if kind == "load":
            return self.load
        if kind == "store":
            return self.store
        if kind == "mul":
            return self.mul
        if kind == "div":
            return self.div
        if kind == "branch":
            return self.branch_taken if branch_taken else self.branch_not_taken
        if kind == "jump":
            return self.jump
        if kind == "csr":
            return self.csr
        if kind == "system":
            return self.system
        if kind == "crypto":
            return 0  # engine adds 1 (hit) or 3 (miss)
        return self.default

    def worst_case(self, mnemonic: str) -> int:
        """Most cycles one execution of ``mnemonic`` can charge here.

        Used by the block translator to bound a block's cycle footprint
        (crypto engine latency is added by the caller, which knows the
        engine's hit/miss costs).
        """
        if self.classify(mnemonic) == "branch":
            return max(self.branch_taken, self.branch_not_taken)
        return self.cost(mnemonic)

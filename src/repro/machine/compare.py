"""Architectural state capture, digests and diffing.

The differential oracles (``repro.fuzz``) and the equivalence tests all
need the same thing: a complete, canonical view of a machine's
architecturally visible state that two executions can be compared on.
"Architectural" here deliberately excludes anything that is allowed to
differ between the single-step interpreter, the block fast path and a
snapshot-resumed run — the ``fast_path`` mode flag, block/decode cache
contents and their statistics — and includes everything that is not:
registers, pc, privilege, cycle/instret counters, CSR storage, RAM,
device state (timer, console, power, RNG) and the crypto engine's key
file, CLB array and operation counters.

Memory pages are folded to per-page blake2b hashes so a state dict stays
small enough to diff and serialize; :func:`state_digest` hashes the
whole canonical JSON form into a short hex fingerprint.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = ["architectural_state", "state_digest", "diff_states"]


def _page_hash(page) -> str:
    return hashlib.blake2b(bytes(page), digest_size=16).hexdigest()


def architectural_state(machine, include_engine: bool = True) -> dict:
    """A canonical, JSON-serializable dump of everything that must match.

    ``include_engine=False`` drops the crypto-engine section (key file,
    CLB, stats) for comparisons where engine *statistics* legitimately
    differ (e.g. runs that reset stats at different points).
    """
    hart = machine.hart
    state: dict[str, Any] = {
        "regs": list(hart.regs._regs),
        "pc": hart.pc,
        "privilege": int(hart.privilege),
        "cycles": hart.cycles,
        "instret": hart.instret,
        "wfi": hart.waiting_for_interrupt,
        "csrs": {
            f"{num:#x}": value
            for num, value in sorted(hart.csrs._storage.items())
        },
        "memory": {
            f"{index:#x}": _page_hash(page)
            for index, page in sorted(machine.memory._pages.items())
        },
        "clint": {
            "mtime_latch": machine.clint._mtime,
            "mtimecmp": machine.clint.mtimecmp,
        },
        "syscon": {
            "shutdown": machine.syscon.shutdown_requested,
            "exit_code": machine.syscon.exit_code,
        },
        "console": machine.uart.output.hex(),
        "rng": machine.rng.state,
        "halt": machine.halt_reason.value if machine.halt_reason else None,
    }
    if include_engine:
        engine = machine.engine
        state["engine"] = {
            "keys": [
                [int(ksel), reg.hi, reg.lo]
                for ksel, reg in sorted(
                    engine.key_file.registers.items(),
                    key=lambda item: int(item[0]),
                )
            ],
            "stats": engine.stats.snapshot(),
            "clb": {
                "entries": [
                    [
                        entry.valid,
                        int(entry.ksel) if entry.valid else -1,
                        entry.tweak,
                        entry.plaintext,
                        entry.ciphertext,
                        entry.last_use,
                    ]
                    for entry in engine.clb.entries
                ],
                "clock": engine.clb._clock,
                "stats": engine.clb.stats.snapshot(),
            },
        }
    return state


def state_digest(machine, include_engine: bool = True) -> str:
    """Short hex fingerprint of :func:`architectural_state`."""
    blob = json.dumps(
        architectural_state(machine, include_engine=include_engine),
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.blake2b(blob.encode(), digest_size=16).hexdigest()


def diff_states(left: dict, right: dict, prefix: str = "") -> list[str]:
    """Human-readable list of paths where two state dicts differ."""
    diffs: list[str] = []
    if isinstance(left, dict) and isinstance(right, dict):
        for key in sorted(set(left) | set(right)):
            path = f"{prefix}.{key}" if prefix else str(key)
            if key not in left:
                diffs.append(f"{path}: missing on left")
            elif key not in right:
                diffs.append(f"{path}: missing on right")
            else:
                diffs.extend(diff_states(left[key], right[key], path))
        return diffs
    if isinstance(left, list) and isinstance(right, list):
        if len(left) != len(right):
            diffs.append(f"{prefix}: length {len(left)} != {len(right)}")
            return diffs
        for i, (a, b) in enumerate(zip(left, right)):
            diffs.extend(diff_states(a, b, f"{prefix}[{i}]"))
        return diffs
    if left != right:
        if isinstance(left, int) and isinstance(right, int):
            diffs.append(f"{prefix}: {left:#x} != {right:#x}")
        else:
            diffs.append(f"{prefix}: {left!r} != {right!r}")
    return diffs

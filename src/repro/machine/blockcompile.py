"""Compile translated blocks into specialized Python functions (tier 3).

The block interpreter (:meth:`repro.machine.hart.Hart.run_block`) still
pays one dict-dispatch call, one closure frame and several attribute
reads per instruction.  This module removes those by synthesizing one
Python function per :class:`~repro.machine.blockcache.TranslatedBlock`:
instruction semantics are inlined as straight-line source, immediates
and per-instruction PCs are folded to literals at compile time, the
registers the block touches live in locals, and ``instret``/``cycles``
are accumulated as constants between the points where something could
observe them.

The generated function's contract with the hart (``fn(hart) -> int``):

* a **positive** return ``n`` means ``n`` instructions retired and the
  block exited through its terminal branch/jump/fallthrough with
  ``hart.pc`` set — the caller may chain directly into the next
  compiled block;
* a **negative** return ``-n`` means ``n`` steps were consumed but the
  exit is not chainable: a trap was entered, a device store or
  code-page write ended the block, or the final op was a CSR/system
  instruction (which can change interrupt enables, keys or privilege);
* in both cases every piece of architectural state — registers, pc,
  privilege, cycles, instret, CSRs, memory, devices, engine — is
  bit-identical to what a :meth:`Hart.step` loop would have produced.

Exactness rules mirrored from the interpreter, in codegen form:

* ``hart.cycles`` is flushed *before* every load, store and crypto op:
  a load from the CLINT reads ``mtime`` (a live view of the cycle
  counter), and the engine's fault path charges ``miss_cycles``
  against an up-to-date counter;
* memory faults re-raise as the same access-fault traps, with the
  computed address in ``tval`` and the faulting instruction's pc;
* a truthy store return (device write) or a code-page write hook sets
  ``hart._block_break`` — the generated store site checks it and exits
  with pc at the *next* instruction, exactly like the interpreter;
* a CSR/system final op falls back to the original handler closure
  after syncing pc/instret/cycles/registers, so CSR counter reads and
  ``mret`` observe the same architectural view as under ``step()``;
* crypto ops fold the block's privilege level into the call (blocks
  are keyed by ``(pc, privilege)``, so it cannot change mid-block).
"""

from __future__ import annotations

import time

from repro.errors import IntegrityViolation, MemoryFault, PrivilegeError
from repro.isa import instructions as tab
from repro.isa.decoder import BLOCK_TERMINATORS
from repro.machine.trap import Cause, Trap
from repro.telemetry.events import BLOCK_JIT
from repro.utils.bits import MASK64, to_signed64

__all__ = ["compile_block", "compile_trace"]

_H = 1 << 63


class _Unsupported(Exception):
    """An op the code generator cannot inline exactly."""


# -- inline helpers shipped to every generated function -----------------------


def _wx(v):
    """to_unsigned64(sign_extend(v, 32)) for W-op results."""
    v &= 0xFFFFFFFF
    return v | 0xFFFFFFFF00000000 if v & 0x80000000 else v


def _s32(v):
    """sign_extend(v & 0xFFFFFFFF, 32) (signed Python int)."""
    v &= 0xFFFFFFFF
    return v - 0x100000000 if v & 0x80000000 else v


def _sx8(v):
    return v | 0xFFFFFFFFFFFFFF00 if v & 0x80 else v


def _sx16(v):
    return v | 0xFFFFFFFFFFFF0000 if v & 0x8000 else v


def _sx32(v):
    return v | 0xFFFFFFFF00000000 if v & 0x80000000 else v


# -- expression templates ------------------------------------------------------
# Each template receives operand *source strings* (a register local such
# as ``r5``, or the literal ``0`` for x0) plus folded immediates, and
# returns an expression whose value is already masked to 64 bits — the
# generated code assigns it straight into the register-file list.

_ALU_RR = {
    "add": lambda a, b: f"({a} + {b}) & M",
    "sub": lambda a, b: f"({a} - {b}) & M",
    "sll": lambda a, b: f"({a} << ({b} & 63)) & M",
    "slt": lambda a, b: f"(({a} ^ H) < ({b} ^ H)) + 0",
    "sltu": lambda a, b: f"({a} < {b}) + 0",
    "xor": lambda a, b: f"{a} ^ {b}",
    "srl": lambda a, b: f"{a} >> ({b} & 63)",
    "sra": lambda a, b: f"(_ts({a}) >> ({b} & 63)) & M",
    "or": lambda a, b: f"{a} | {b}",
    "and": lambda a, b: f"{a} & {b}",
    "mul": lambda a, b: f"({a} * {b}) & M",
    "mulh": lambda a, b: f"((_ts({a}) * _ts({b})) >> 64) & M",
    "mulhsu": lambda a, b: f"((_ts({a}) * {b}) >> 64) & M",
    "mulhu": lambda a, b: f"({a} * {b}) >> 64",
    "div": lambda a, b: f"_div({a}, {b}) & M",
    "divu": lambda a, b: f"_divu({a}, {b})",
    "rem": lambda a, b: f"_rem({a}, {b}) & M",
    "remu": lambda a, b: f"_remu({a}, {b})",
    "addw": lambda a, b: f"_wx({a} + {b})",
    "subw": lambda a, b: f"_wx({a} - {b})",
    "sllw": lambda a, b: f"_wx({a} << ({b} & 31))",
    "srlw": lambda a, b: f"_wx(({a} & 0xFFFFFFFF) >> ({b} & 31))",
    "sraw": lambda a, b: f"_wx(_s32({a}) >> ({b} & 31))",
    "mulw": lambda a, b: f"_wx({a} * {b})",
    "divw": lambda a, b: f"_wx(_div32({a}, {b}))",
    "divuw": lambda a, b: f"_wx(_divu32({a}, {b}))",
    "remw": lambda a, b: f"_wx(_rem32({a}, {b}))",
    "remuw": lambda a, b: f"_wx(_remu32({a}, {b}))",
}

_ALU_IMM = {
    "addi": lambda a, i: f"({a} + {i}) & M",
    "slti": lambda a, i: f"(({a} ^ H) < {((i & MASK64) ^ _H)}) + 0",
    "sltiu": lambda a, i: f"({a} < {i & MASK64}) + 0",
    "xori": lambda a, i: f"{a} ^ {i & MASK64}",
    "ori": lambda a, i: f"{a} | {i & MASK64}",
    "andi": lambda a, i: f"{a} & {i & MASK64}",
    "slli": lambda a, i: f"({a} << {i}) & M",
    "srli": lambda a, i: f"{a} >> {i}",
    "srai": lambda a, i: f"(_ts({a}) >> {i}) & M",
    "addiw": lambda a, i: f"_wx({a} + {i})",
    "slliw": lambda a, i: f"_wx({a} << {i})",
    "srliw": lambda a, i: f"_wx(({a} & 0xFFFFFFFF) >> {i})",
    "sraiw": lambda a, i: f"_wx(_s32({a}) >> {i})",
}

_BRANCH_COND = {
    "beq": lambda a, b: f"{a} == {b}",
    "bne": lambda a, b: f"{a} != {b}",
    "blt": lambda a, b: f"({a} ^ H) < ({b} ^ H)",
    "bge": lambda a, b: f"({a} ^ H) >= ({b} ^ H)",
    "bltu": lambda a, b: f"{a} < {b}",
    "bgeu": lambda a, b: f"{a} >= {b}",
}

#: Final ops handled by calling the original handler closure after a
#: full state sync (CSR reads need exact counters; mret/wfi/ecall/...
#: change machine-loop-visible state, so their exit is never chainable).
_HANDLER_FALLBACK = frozenset(tab.CSR_OPS) | frozenset(tab.SYSTEM_OPS)


class _Codegen:
    def __init__(self, hart, block):
        self.hart = hart
        self.block = block
        self.lines: list[str] = []
        self.env: dict = {}
        #: Cycle cost accumulated since the last flush (a literal).
        self.pending = 0
        self.written: set[int] = set()
        self.loaded: set[int] = set()

    # -- small emission helpers -------------------------------------------

    def emit(self, line: str, indent: int = 1) -> None:
        self.lines.append("    " * indent + line)

    def flush_cycles(self, indent: int = 1) -> None:
        if self.pending:
            self.emit(f"hart.cycles += {self.pending}", indent)
            self.pending = 0

    def reg(self, number: int) -> str:
        """Operand string for register ``number`` (x0 folds to 0)."""
        if number == 0:
            return "0"
        self.loaded.add(number)
        return f"r{number}"

    def dest(self, number: int) -> str | None:
        if number == 0:
            return None
        self.loaded.add(number)
        self.written.add(number)
        return f"r{number}"

    def writeback(self, indent: int) -> None:
        for number in sorted(self.written):
            self.emit(f"regs[{number}] = r{number}", indent)

    def exit_trap(self, index: int, trap_expr: str, pc: int,
                  indent: int) -> None:
        """Shared tail of every in-block trap path."""
        self.writeback(indent)
        if index:
            self.emit(f"hart.instret += {index}", indent)
        self.emit(f"hart._enter_trap({trap_expr}, {pc})", indent)
        self.emit(f"return {-(index + 1)}", indent)

    # -- per-op emitters ---------------------------------------------------

    def op_alu_rr(self, ins, cost: int) -> None:
        dest = self.dest(ins.rd)
        if dest is not None:
            expr = _ALU_RR[ins.mnemonic](self.reg(ins.rs1), self.reg(ins.rs2))
            self.emit(f"{dest} = {expr}")
        self.pending += cost

    def op_alu_imm(self, ins, cost: int) -> None:
        dest = self.dest(ins.rd)
        if dest is not None:
            expr = _ALU_IMM[ins.mnemonic](self.reg(ins.rs1), ins.imm)
            self.emit(f"{dest} = {expr}")
        self.pending += cost

    def op_lui(self, ins, cost: int) -> None:
        dest = self.dest(ins.rd)
        if dest is not None:
            self.emit(f"{dest} = {ins.imm & MASK64}")
        self.pending += cost

    def op_auipc(self, ins, pc: int, cost: int) -> None:
        dest = self.dest(ins.rd)
        if dest is not None:
            self.emit(f"{dest} = {(pc + ins.imm) & MASK64}")
        self.pending += cost

    def op_load(self, ins, index: int, pc: int) -> None:
        size = tab.ACCESS_SIZE[ins.mnemonic]
        signed = not ins.mnemonic.endswith("u") and ins.mnemonic != "ld"
        # A device load can observe hart.cycles (CLINT mtime): flush.
        self.flush_cycles()
        self.emit(f"_a = ({self.reg(ins.rs1)} + {ins.imm}) & M")
        self.emit("try:")
        self.emit(f"_v = _rd{size}(_a)", 2)
        self.emit("except _MF:")
        self.exit_trap(index, "_Trap(_LAF, tval=_a)", pc, 2)
        dest = self.dest(ins.rd)
        if dest is not None:
            if signed:
                self.emit(f"{dest} = _sx{size * 8}(_v)")
            else:
                self.emit(f"{dest} = _v")
        self.pending += self.hart.cost.load

    def op_store(self, ins, index: int, pc: int) -> None:
        size = tab.ACCESS_SIZE[ins.mnemonic]
        store_cost = self.hart.cost.store
        self.flush_cycles()
        self.emit(f"_a = ({self.reg(ins.rs1)} + {ins.imm}) & M")
        self.emit("try:")
        self.emit(f"_d = _wr{size}(_a, {self.reg(ins.rs2)})", 2)
        self.emit("except _MF:")
        self.exit_trap(index, "_Trap(_SAF, tval=_a)", pc, 2)
        # Device stores and code-page writes end the block with pc at
        # the next instruction (the store itself retired).
        self.emit("if _d or hart._block_break:")
        self.emit("hart._block_break = True", 2)
        self.writeback(2)
        self.emit(f"hart.pc = {pc + 4}", 2)
        self.emit(f"hart.instret += {index + 1}", 2)
        self.emit(f"hart.cycles += {store_cost}", 2)
        self.emit(f"return {-(index + 1)}", 2)
        self.pending += store_cost

    def op_crypto(self, ins, index: int, pc: int) -> None:
        parsed = tab.parse_crypto_mnemonic(ins.mnemonic)
        if parsed is None:
            raise _Unsupported(ins.mnemonic)
        is_encrypt, _ = parsed
        call = "_enc" if is_encrypt else "_dec"
        ksel_name = f"_k{index}"
        range_name = f"_b{index}"
        self.env[ksel_name] = ins.ksel
        self.env[range_name] = ins.byte_range
        self.flush_cycles()
        self.emit("try:")
        self.emit(
            f"_v, _oc = {call}({ksel_name}, {self.reg(ins.rs1)}, "
            f"{range_name}, {self.reg(ins.rs2)}, "
            f"privilege={self.block.privilege})",
            2,
        )
        self.emit("except _PE:")
        self.exit_trap(index, f"_Trap(_ILL, tval={pc})", pc, 2)
        self.emit("except _IV:")
        self.emit("hart.cycles += _engine.miss_cycles", 2)
        self.exit_trap(index, f"_Trap(_RVF, tval={pc})", pc, 2)
        dest = self.dest(ins.rd)
        if dest is not None:
            self.emit(f"{dest} = _v")
        self.emit("hart.cycles += _oc")

    # -- terminal ops ------------------------------------------------------

    def last_branch(self, ins, pc: int, count: int) -> None:
        cost = self.hart.cost
        taken = cost.cost(ins.mnemonic, branch_taken=True)
        not_taken = cost.cost(ins.mnemonic, branch_taken=False)
        cond = _BRANCH_COND[ins.mnemonic](
            self.reg(ins.rs1), self.reg(ins.rs2)
        )
        self.emit(f"if {cond}:")
        self.chainable_exit((pc + ins.imm) & MASK64, count,
                            self.pending + taken, 2)
        self.chainable_exit(pc + 4, count, self.pending + not_taken, 1)
        self.pending = 0

    def last_jal(self, ins, pc: int, count: int) -> None:
        dest = self.dest(ins.rd)
        if dest is not None:
            self.emit(f"{dest} = {pc + 4}")
        self.chainable_exit((pc + ins.imm) & MASK64, count,
                            self.pending + self.hart.cost.jump, 1)
        self.pending = 0

    def last_jalr(self, ins, pc: int, count: int) -> None:
        # Target is computed before the link write (rd may equal rs1).
        self.emit(
            f"_t = ({self.reg(ins.rs1)} + {ins.imm}) & {MASK64 & ~1}"
        )
        dest = self.dest(ins.rd)
        if dest is not None:
            self.emit(f"{dest} = {pc + 4}")
        self.chainable_exit("_t", count,
                            self.pending + self.hart.cost.jump, 1)
        self.pending = 0

    def last_fallthrough(self, pc: int, count: int) -> None:
        self.chainable_exit(pc + 4, count, self.pending, 1)
        self.pending = 0

    def chainable_exit(self, target, count: int, cycles: int,
                       indent: int) -> None:
        self.writeback(indent)
        self.emit(f"hart.instret += {count}", indent)
        if cycles:
            self.emit(f"hart.cycles += {cycles}", indent)
        self.emit(f"hart.pc = {target}", indent)
        self.emit(f"return {count}", indent)

    def last_handler(self, handler, ins, pc: int, count: int) -> None:
        """CSR/system final op: sync everything, call the real handler."""
        self.flush_cycles()
        self.writeback(1)
        self.emit(f"hart.pc = {pc}")
        if count > 1:
            self.emit(f"hart.instret += {count - 1}")
        self.env["_hl"] = handler
        self.env["_il"] = ins
        self.emit("try:")
        self.emit(f"_n = _hl(_il, {pc})", 2)
        self.emit("except _TrapExc as _t:")
        self.emit(f"hart._enter_trap(_t, {pc})", 2)
        self.emit(f"return {-count}", 2)
        self.emit(f"hart.pc = {pc + 4} if _n is None else _n")
        self.emit("hart.instret += 1")
        self.emit(f"return {-count}")

    # -- driver ------------------------------------------------------------

    def generate(self) -> str:
        hart = self.hart
        block = self.block
        cost = hart.cost
        ops = block.ops
        count = len(ops)
        for index, (handler, ins) in enumerate(ops):
            mnemonic = ins.mnemonic
            pc = block.entry_pc + 4 * index
            is_last = index == count - 1
            if mnemonic in tab.BRANCHES:
                self.last_branch(ins, pc, count)
            elif mnemonic == "jal":
                self.last_jal(ins, pc, count)
            elif mnemonic == "jalr":
                self.last_jalr(ins, pc, count)
            elif mnemonic in _HANDLER_FALLBACK:
                self.last_handler(handler, ins, pc, count)
            elif mnemonic in _ALU_RR:
                self.op_alu_rr(ins, cost.cost(mnemonic))
            elif mnemonic in _ALU_IMM:
                self.op_alu_imm(ins, cost.cost(mnemonic))
            elif mnemonic == "lui":
                self.op_lui(ins, cost.default)
            elif mnemonic == "auipc":
                self.op_auipc(ins, pc, cost.default)
            elif mnemonic == "fence":
                self.pending += cost.default
            elif mnemonic in tab.LOADS:
                self.op_load(ins, index, pc)
            elif mnemonic in tab.STORES:
                self.op_store(ins, index, pc)
            elif tab.parse_crypto_mnemonic(mnemonic) is not None:
                self.op_crypto(ins, index, pc)
            else:
                raise _Unsupported(mnemonic)
            if is_last and mnemonic not in BLOCK_TERMINATORS:
                self.last_fallthrough(pc, count)

        header = ["def _block(hart):", "    regs = hart.regs._regs"]
        for number in sorted(self.loaded):
            header.append(f"    r{number} = regs[{number}]")
        return "\n".join(header + self.lines) + "\n"


class _TraceCodegen(_Codegen):
    """Code generator for trace-length superblocks (tier 4).

    A trace is a profile-selected sequence of already-translated blocks
    whose hot path chains head to tail.  The generator inlines the
    whole sequence into one function: interior terminators keep the
    execution on the trace when control flow goes the profiled way and
    exit with a fully synced architectural state (a chainable positive
    return) the moment it does not.  Instruction indices, retired
    counts and writeback sets are *global* across the trace, so an
    off-trace exit after N instructions is bit-identical to N ordinary
    machine-loop rounds.

    The caller must only enter the generated function under the same
    guard the single-block tier uses, extended to the summed cycle
    bound: no deliverable timer interrupt may fire before the trace's
    worst-case cycle count has elapsed.  Interior CSR/system ops are
    rejected (they could flip interrupt enables mid-trace), device
    stores exit through the normal ``_block_break`` path, and traps
    retire exactly the preceding instructions — so skipping the
    per-boundary interrupt checks of the chain loop is sound.
    """

    def __init__(self, hart, blocks):
        super().__init__(hart, blocks[0])
        self.trace = blocks

    # -- interior terminators ---------------------------------------------

    def mid_branch(self, ins, pc: int, retired: int,
                   next_entry: int) -> None:
        cost = self.hart.cost
        taken = cost.cost(ins.mnemonic, branch_taken=True)
        not_taken = cost.cost(ins.mnemonic, branch_taken=False)
        cond = _BRANCH_COND[ins.mnemonic](
            self.reg(ins.rs1), self.reg(ins.rs2)
        )
        target = (pc + ins.imm) & MASK64
        if target == next_entry:
            self.emit(f"if not ({cond}):")
            self.chainable_exit(pc + 4, retired,
                                self.pending + not_taken, 2)
            self.pending += taken
        elif pc + 4 == next_entry:
            self.emit(f"if {cond}:")
            self.chainable_exit(target, retired, self.pending + taken, 2)
            self.pending += not_taken
        else:
            raise _Unsupported("branch leaves the trace on both arms")

    def mid_jal(self, ins, pc: int, next_entry: int) -> None:
        if (pc + ins.imm) & MASK64 != next_entry:
            raise _Unsupported("jal target leaves the trace")
        dest = self.dest(ins.rd)
        if dest is not None:
            self.emit(f"{dest} = {pc + 4}")
        self.pending += self.hart.cost.jump

    def mid_jalr(self, ins, pc: int, retired: int,
                 next_entry: int) -> None:
        jump = self.hart.cost.jump
        self.emit(
            f"_t = ({self.reg(ins.rs1)} + {ins.imm}) & {MASK64 & ~1}"
        )
        dest = self.dest(ins.rd)
        if dest is not None:
            self.emit(f"{dest} = {pc + 4}")
        self.emit(f"if _t != {next_entry}:")
        self.chainable_exit("_t", retired, self.pending + jump, 2)
        self.pending += jump

    # -- driver ------------------------------------------------------------

    def generate(self) -> str:
        cost = self.hart.cost
        total = sum(len(block.ops) for block in self.trace)
        last_index = len(self.trace) - 1
        gi = 0  # global instruction index across the whole trace
        for bi, block in enumerate(self.trace):
            # op_crypto folds ``self.block.privilege`` into its calls;
            # compile_trace guarantees it is uniform across the trace.
            self.block = block
            next_entry = (
                None if bi == last_index else self.trace[bi + 1].entry_pc
            )
            ops = block.ops
            for li, (handler, ins) in enumerate(ops):
                mnemonic = ins.mnemonic
                pc = block.entry_pc + 4 * li
                is_last_op = li == len(ops) - 1
                terminal = is_last_op and bi == last_index
                if mnemonic in tab.BRANCHES:
                    if terminal:
                        self.last_branch(ins, pc, total)
                    elif is_last_op:
                        self.mid_branch(ins, pc, gi + 1, next_entry)
                    else:
                        raise _Unsupported("interior branch")
                elif mnemonic == "jal":
                    if terminal:
                        self.last_jal(ins, pc, total)
                    elif is_last_op:
                        self.mid_jal(ins, pc, next_entry)
                    else:
                        raise _Unsupported("interior jal")
                elif mnemonic == "jalr":
                    if terminal:
                        self.last_jalr(ins, pc, total)
                    elif is_last_op:
                        self.mid_jalr(ins, pc, gi + 1, next_entry)
                    else:
                        raise _Unsupported("interior jalr")
                elif mnemonic in _HANDLER_FALLBACK:
                    if terminal:
                        self.last_handler(handler, ins, pc, total)
                    else:
                        # A CSR/system op can change interrupt enables,
                        # keys or privilege: never inline one mid-trace.
                        raise _Unsupported("CSR/system op mid-trace")
                elif mnemonic in _ALU_RR:
                    self.op_alu_rr(ins, cost.cost(mnemonic))
                elif mnemonic in _ALU_IMM:
                    self.op_alu_imm(ins, cost.cost(mnemonic))
                elif mnemonic == "lui":
                    self.op_lui(ins, cost.default)
                elif mnemonic == "auipc":
                    self.op_auipc(ins, pc, cost.default)
                elif mnemonic == "fence":
                    self.pending += cost.default
                elif mnemonic in tab.LOADS:
                    self.op_load(ins, gi, pc)
                elif mnemonic in tab.STORES:
                    self.op_store(ins, gi, pc)
                elif tab.parse_crypto_mnemonic(mnemonic) is not None:
                    self.op_crypto(ins, gi, pc)
                else:
                    raise _Unsupported(mnemonic)
                if is_last_op and mnemonic not in BLOCK_TERMINATORS:
                    if terminal:
                        self.last_fallthrough(pc, total)
                    elif next_entry != pc + 4:
                        raise _Unsupported("fallthrough leaves the trace")
                gi += 1

        header = ["def _block(hart):", "    regs = hart.regs._regs"]
        for number in sorted(self.loaded):
            header.append(f"    r{number} = regs[{number}]")
        return "\n".join(header + self.lines) + "\n"


def _build_env(hart) -> dict:
    bus = hart.bus
    return {
        "M": MASK64,
        "H": _H,
        "_ts": to_signed64,
        "_wx": _wx,
        "_s32": _s32,
        "_sx8": _sx8,
        "_sx16": _sx16,
        "_sx32": _sx32,
        "_div": hart._div,
        "_divu": hart._divu,
        "_rem": hart._rem,
        "_remu": hart._remu,
        "_div32": hart._div32,
        "_divu32": hart._divu32,
        "_rem32": hart._rem32,
        "_remu32": hart._remu32,
        "_rd1": bus.read_u8,
        "_rd2": bus.read_u16,
        "_rd4": bus.read_u32,
        "_rd8": bus.read_u64,
        "_wr1": bus.write_u8,
        "_wr2": bus.write_u16,
        "_wr4": bus.write_u32,
        "_wr8": bus.write_u64,
        "_enc": hart.engine.encrypt,
        "_dec": hart.engine.decrypt,
        "_engine": hart.engine,
        "_MF": MemoryFault,
        "_PE": PrivilegeError,
        "_IV": IntegrityViolation,
        "_Trap": Trap,
        "_TrapExc": Trap,
        "_LAF": Cause.LOAD_ACCESS_FAULT,
        "_SAF": Cause.STORE_ACCESS_FAULT,
        "_ILL": Cause.ILLEGAL_INSTRUCTION,
        "_RVF": Cause.REGVAULT_INTEGRITY_FAULT,
        "__builtins__": {},
    }


def compile_block(hart, block):
    """Compile ``block`` for ``hart``; returns the function or None.

    On success the function is stored in ``block.compiled``; on refusal
    ``block.compile_failed`` is set so the block stays on the
    interpreting tier without re-attempting every execution.
    """
    trace = hart.blocks.trace_hook
    started_ns = time.perf_counter_ns() if trace is not None else 0
    generator = _Codegen(hart, block)
    try:
        source = generator.generate()
    except _Unsupported:
        block.compile_failed = True
        return None
    env = _build_env(hart)
    env.update(generator.env)
    namespace: dict = {}
    exec(  # noqa: S102 - source is synthesized above, not external input
        compile(source, f"<block@{block.entry_pc:#x}>", "exec"),
        env,
        namespace,
    )
    fn = namespace["_block"]
    block.compiled = fn
    hart.compiled_blocks += 1
    collector = hart.code_collector
    if collector is not None:
        collector.record_block(hart, block, source)
    shared = hart.shared_code
    if shared is not None:
        shared.publish(hart, block, fn, generator.env)
    if trace is not None:
        trace(
            BLOCK_JIT,
            pc=block.entry_pc,
            instructions=len(block.ops),
            ns=time.perf_counter_ns() - started_ns,
        )
    return fn


def compile_trace(hart, blocks):
    """Compile a block sequence into one superblock function.

    Returns ``(fn, source)`` on success, ``(None, None)`` when the
    trace cannot be inlined exactly (interior CSR/system ops, control
    flow that cannot stay on the trace, mixed privilege).  The caller
    owns caching: nothing is stored on the constituent blocks.
    """
    if len(blocks) < 2:
        return None, None
    privilege = blocks[0].privilege
    if any(block.privilege != privilege for block in blocks):
        return None, None
    generator = _TraceCodegen(hart, blocks)
    try:
        source = generator.generate()
    except _Unsupported:
        return None, None
    env = _build_env(hart)
    env.update(generator.env)
    namespace: dict = {}
    exec(  # noqa: S102 - source is synthesized above, not external input
        compile(source, f"<trace@{blocks[0].entry_pc:#x}>", "exec"),
        env,
        namespace,
    )
    return namespace["_block"], source

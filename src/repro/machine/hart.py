"""The simulated RV64IM hart with the RegVault extension.

Models an in-order, single-issue core (the paper's Rocket baseline):
fetch, decode (memoized), execute, trap.  The RegVault crypto-engine is
invoked by the ``cre``/``crd`` instructions; its privilege gate and
integrity faults surface as architectural traps.
"""

from __future__ import annotations

import enum
import time

from repro.crypto.engine import CryptoEngine
from repro.errors import (
    DecodeError,
    IntegrityViolation,
    MemoryFault,
    PrivilegeError,
)
from repro.isa import csrdefs
from repro.isa import instructions as tab
from repro.isa.decoder import BLOCK_TERMINATORS, decode_cached, predecode
from repro.isa.instructions import Instruction
from repro.machine.blockcache import (
    MAX_BLOCK_INSTRUCTIONS,
    MAX_SHARED_LAYOUTS,
    SUPERBLOCK_CAPACITY,
    BlockCache,
    BlockLayout,
    TranslatedBlock,
)
from repro.machine.blockcompile import compile_block
from repro.machine.csr import (
    CSRFile,
    MIE_MTIE,
    MIP_MTIP,
    MSTATUS_MIE,
    MSTATUS_MPIE,
    MSTATUS_MPP_MASK,
    MSTATUS_MPP_SHIFT,
)
from repro.machine.regfile import RegisterFile
from repro.machine.timing import CostModel
from repro.machine.trap import Cause, Trap, mcause_value
from repro.telemetry.events import (
    BLOCK_COMPILE,
    INSN_RETIRE,
    TRAP_ENTER,
    TRAP_EXIT,
)
from repro.utils.bits import (
    MASK64,
    sign_extend,
    to_signed64,
    to_unsigned64,
)


class PrivilegeLevel(enum.IntEnum):
    USER = 0
    SUPERVISOR = 1
    MACHINE = 3


class Hart:
    """One hardware thread.

    Parameters
    ----------
    bus:
        Object with ``read_u8/16/32/64`` and ``write_u8/16/32/64``
        methods (a :class:`repro.machine.machine.SystemBus` or a bare
        :class:`repro.machine.memory.Memory`).
    engine:
        The RegVault crypto-engine (key registers + CLB + QARMA).
    cost_model:
        Cycle accounting; see :mod:`repro.machine.timing`.
    """

    def __init__(
        self,
        bus,
        engine: CryptoEngine | None = None,
        cost_model: CostModel | None = None,
    ):
        self.bus = bus
        self.engine = engine if engine is not None else CryptoEngine()
        self.cost = cost_model or CostModel()
        self.regs = RegisterFile()
        self.csrs = CSRFile(self.engine.key_file)
        self.pc = 0
        self.privilege = PrivilegeLevel.MACHINE
        self.cycles = 0
        self.instret = 0
        self.waiting_for_interrupt = False
        self.csrs.counter_hooks[csrdefs.CYCLE] = lambda: self.cycles
        self.csrs.counter_hooks[csrdefs.TIME] = lambda: self.cycles
        self.csrs.counter_hooks[csrdefs.INSTRET] = lambda: self.instret
        self.csrs.counter_hooks[csrdefs.MCYCLE] = lambda: self.cycles
        self.csrs.counter_hooks[csrdefs.MINSTRET] = lambda: self.instret
        self._dispatch = self._build_dispatch()
        #: Saved (dispatch, enter_trap) states for attached tracers; the
        #: empty list is the zero-overhead baseline.
        self._tracer_stack: list[dict] = []
        #: Attached :class:`repro.machine.spec.SpeculativeEngine`, or
        #: None (the default: no speculation is ever modeled).
        self.spec = None
        # -- fast path: basic-block translation cache ----------------------
        self.blocks = BlockCache()
        #: ``(pc, privilege) -> BlockLayout`` dict shared across forks
        #: of one warm template (installed by the boot cache, None
        #: otherwise).  Layouts are validated byte-for-byte against
        #: live memory before adoption, so the dict needs no
        #: invalidation and tolerates siblings with divergent memory.
        self.shared_layouts: dict | None = None
        #: Translations answered from ``shared_layouts``.
        self.layout_hits = 0
        # -- compiled tier: specialized functions + direct chaining --------
        #: Master switch for the third execution tier (the differential
        #: fuzzer pins it off on one DUT to compare tiers directly).
        self.compile_enabled = True
        #: Block-interpreter executions before a block is compiled.
        #: ``compile()`` costs a few hundred microseconds per block, so
        #: only blocks with demonstrated reuse (loops, hot call targets)
        #: are worth it; boot-style code that runs a handful of times
        #: stays on the block interpreter.
        self.compile_threshold = 16
        #: Blocks compiled so far (mirrored into telemetry metrics).
        self.compiled_blocks = 0
        #: Set mid-block by device stores and code-page writes; forces a
        #: return to the machine loop before the next predecoded op.
        self._block_break = False
        # -- tier 4: persistent cache + trace-length superblocks -----------
        #: Profile-selected multi-block traces compiled into single
        #: functions (see :mod:`repro.machine.codecache`), keyed like
        #: ordinary blocks by ``(entry_pc, privilege)``.  A second
        #: :class:`BlockCache` gives them page invalidation, LRU
        #: bounding and epoch semantics for free; empty (the default)
        #: costs one ``len()`` check per block dispatch.
        self.superblocks = BlockCache(SUPERBLOCK_CAPACITY)
        #: :class:`repro.machine.codecache.CodeRecorder` capturing
        #: compiled sources for persistence, or None.
        self.code_collector = None
        #: :class:`repro.machine.codecache.SharedCodeRegistry` shared
        #: across forks of one template (installed by the boot cache),
        #: or None.  Published on compile, bound on layout adoption.
        self.shared_code = None
        # Translation fetches bypass the device bus (code never lives in
        # MMIO, and device reads can have side effects); execution-time
        # loads and stores still go through ``self.bus`` unchanged.
        self._code_mem = getattr(bus, "memory", bus)
        if hasattr(self._code_mem, "add_code_write_hook"):
            self._code_mem.add_code_write_hook(self._on_code_write)

    # ------------------------------------------------------------------ step --

    def step(self) -> None:
        """Execute one instruction (or take one pending interrupt)."""
        if self._take_pending_interrupt():
            return
        pc = self.pc
        try:
            word = self._fetch(pc)
            try:
                ins = decode_cached(word)
            except DecodeError:
                raise Trap(Cause.ILLEGAL_INSTRUCTION, tval=word) from None
            handler = self._dispatch.get(ins.mnemonic)
            if handler is None:
                raise Trap(Cause.ILLEGAL_INSTRUCTION, tval=word)
            next_pc = handler(ins, pc)
            self.pc = (pc + 4) if next_pc is None else next_pc
            self.instret += 1
        except Trap as trap:
            self._enter_trap(trap, pc)

    # ------------------------------------------------------------ fast path --

    def run_block(self, limit: int, deadline: int = MASK64) -> int:
        """Execute up to one translated basic block; return steps consumed.

        Equivalence contract with a :meth:`step` loop (the machine loop
        refreshes MIP between calls, exactly as it does between steps):

        * the same handler closures run, in the same order, so register,
          memory, CSR and cycle effects are bit-identical;
        * a pending interrupt is taken at the block boundary, and the
          ``deadline`` guard falls back to single-stepping whenever the
          machine timer could become deliverable mid-block;
        * device stores and writes to translated code pages end the
          block before the next predecoded instruction.

        ``limit`` bounds the instructions this call may retire (the
        machine loop's remaining step budget).
        """
        if self._take_pending_interrupt():
            return 1
        pc = self.pc
        key = (pc, self.privilege)
        if (
            len(self.superblocks)
            and self.compile_enabled
            and not self._tracer_stack
        ):
            sblock = self.superblocks.lookup(key)
            if (
                sblock is not None
                and sblock.compiled is not None
                and len(sblock.ops) <= limit
                and not (
                    self.cycles + sblock.cycle_bound >= deadline
                    and self._timer_deliverable()
                )
            ):
                # The summed cycle bound proves no deliverable timer
                # can fire before the whole trace retires, so entering
                # the superblock is the single-block guard extended to
                # the trace length.
                return self._run_compiled(
                    sblock, sblock.compiled, limit, deadline
                )
        block = self.blocks.lookup(key)
        if block is None:
            block = self._translate(pc, key)
        if block is None or len(block.ops) > limit:
            self.step()
            return 1
        if (
            self.cycles + block.cycle_bound >= deadline
            and self._timer_deliverable()
        ):
            # The timer could fire mid-block: single-step so interrupt
            # delivery lands on the same instruction as the slow path.
            self.step()
            return 1
        if self.compile_enabled and not self._tracer_stack:
            fn = block.compiled
            if fn is None and not block.compile_failed:
                block.exec_count += 1
                if block.exec_count >= self.compile_threshold:
                    fn = compile_block(self, block)
            if fn is not None:
                return self._run_compiled(block, fn, limit, deadline)
        # Body ops run with ``pc`` in a local and ``instret`` batched:
        # no instruction in the body can observe either (CSR reads
        # terminate blocks, so they only appear as the final op), and
        # every exit below syncs both before returning.  ``pc`` always
        # names the instruction being executed — it is only advanced
        # after a handler returns — so the trap paths see the exact
        # faulting address.
        executed = 0
        self._block_break = False
        try:
            for handler, ins in block.body:
                next_pc = handler(ins, pc)
                pc = (pc + 4) if next_pc is None else next_pc
                executed += 1
                if self._block_break:
                    self.pc = pc
                    self.instret += executed
                    return executed
        except Trap as trap:
            self.instret += executed
            self._enter_trap(trap, pc)
            return executed + 1
        # The final op may read the counter CSRs: sync the
        # architectural view first.
        self.pc = pc
        self.instret += executed
        handler, ins = block.last
        try:
            next_pc = handler(ins, pc)
        except Trap as trap:
            self._enter_trap(trap, pc)
            return executed + 1
        self.pc = (pc + 4) if next_pc is None else next_pc
        self.instret += 1
        return executed + 1

    def _run_compiled(self, block, fn, limit: int, deadline: int) -> int:
        """Run compiled blocks back to back (tier 3, direct chaining).

        Each iteration reproduces one machine-loop round exactly:

        * a negative return from ``fn`` (trap, device store, code-page
          write, CSR/system op) is never chained — those exits can move
          mtimecmp, keys, privilege or the shutdown flag;
        * between chained blocks the machine loop's MIP refresh is
          replayed set-only: mtime *is* the live cycle counter and
          mtimecmp cannot change mid-chain (device stores break out),
          so timer pendency is monotone within a chain;
        * the next block must fit the remaining step budget and pass
          the same cycle-bound deadline guard as ``run_block``, and is
          only entered through an epoch-validated direct link.
        """
        blocks = self.blocks
        total = 0
        while True:
            self._block_break = False
            executed = fn(self)
            if executed < 0:
                return total - executed
            total += executed
            if self._block_break or total >= limit:
                return total
            if self.cycles >= deadline:
                self.csrs.set_mip_bit(MIP_MTIP, True)
            if self._take_pending_interrupt():
                return total + 1
            next_pc = self.pc
            sblocks = self.superblocks
            if len(sblocks):
                sblock = sblocks.peek((next_pc, block.privilege))
                if (
                    sblock is not None
                    and sblock.compiled is not None
                    and len(sblock.ops) <= limit - total
                    and not (
                        self.cycles + sblock.cycle_bound >= deadline
                        and self._timer_deliverable()
                    )
                ):
                    # Superblocks are never cached in ``links`` — the
                    # two caches have independent epochs — but a trace
                    # whose exit lands on a superblock head (its own
                    # included) chains straight back in.
                    block = sblock
                    fn = sblock.compiled
                    continue
            epoch = blocks.epoch
            entry = block.links.get(next_pc)
            if entry is not None and entry[0] == epoch:
                nxt = entry[1]
            else:
                nxt = blocks.peek((next_pc, block.privilege))
                if nxt is not None:
                    links = block.links
                    if len(links) >= self._MAX_CHAIN_LINKS:
                        links.clear()
                    links[next_pc] = (epoch, nxt)
            if (
                nxt is None
                or nxt.compiled is None
                or len(nxt.ops) > limit - total
                or (
                    self.cycles + nxt.cycle_bound >= deadline
                    and self._timer_deliverable()
                )
            ):
                return total
            block = nxt
            fn = nxt.compiled

    #: Direct links cached per block before the table is reset (guards
    #: indirect-jump-heavy blocks from unbounded link growth).
    _MAX_CHAIN_LINKS = 8

    #: Words fetched per translation round; most blocks fit in one.
    _FETCH_CHUNK = 8

    def _adopt_layout(self, pc: int, key: tuple[int, int], mem):
        """Rebind a shared :class:`BlockLayout` into a local block.

        Validates the layout byte-for-byte against live memory first —
        adoption is only a win because the bulk read + compare is far
        cheaper than fetch/predecode/cost-bounding the sequence, and
        the comparison makes sharing unconditionally safe: a sibling
        fork's layout for code this machine has since overwritten (or
        never had) simply fails to match and translation proceeds
        normally.
        """
        shared = self.shared_layouts
        if shared is None:
            return None
        layout = shared.get(key)
        if layout is None:
            return None
        try:
            raw = bytes(mem.read_bytes(pc, len(layout.raw)))
        except (MemoryFault, AttributeError):
            return None
        if raw != layout.raw:
            return None
        dispatch = self._dispatch
        ops = tuple(
            (dispatch[ins.mnemonic], ins) for ins in layout.instructions
        )
        block = TranslatedBlock(
            pc, ops, layout.cycle_bound, layout.pages, int(key[1])
        )
        self.blocks.insert(key, block)
        if hasattr(mem, "watch_code_page"):
            for page in layout.pages:
                mem.watch_code_page(page)
        self.layout_hits += 1
        shared_code = self.shared_code
        if shared_code is not None:
            # The raw bytes were just validated against live memory, so
            # a sibling's compiled function can be rebound directly —
            # the fork skips compilation as well as translation.
            fn = shared_code.bind(self, key, layout.raw)
            if fn is not None:
                block.compiled = fn
        return block

    def _translate(self, pc: int, key: tuple[int, int]) -> TranslatedBlock | None:
        """Predecode the straight-line sequence starting at ``pc``."""
        if pc % 4:
            return None
        trace = self.blocks.trace_hook
        started_ns = time.perf_counter_ns() if trace is not None else 0
        mem = self._code_mem
        block = self._adopt_layout(pc, key, mem)
        if block is not None:
            return block
        address = pc
        instructions: list = []
        while len(instructions) < MAX_BLOCK_INSTRUCTIONS:
            try:
                raw = mem.read_bytes(address, 4 * self._FETCH_CHUNK)
                words = [
                    int.from_bytes(raw[i:i + 4], "little")
                    for i in range(0, len(raw), 4)
                ]
            except (MemoryFault, AttributeError):
                # Chunk crosses unmapped memory (or the bus has no bulk
                # read): retry word-by-word up to the first fault.
                words = []
                for _ in range(self._FETCH_CHUNK):
                    try:
                        words.append(mem.read_u32(address + 4 * len(words)))
                    except MemoryFault:
                        break
                if not words:
                    break
            chunk_ins = predecode(words)
            instructions.extend(chunk_ins)
            if len(chunk_ins) < len(words) or (
                chunk_ins and chunk_ins[-1].mnemonic in BLOCK_TERMINATORS
            ):
                break  # hit a terminator or an undecodable word
            address += 4 * len(words)
        del instructions[MAX_BLOCK_INSTRUCTIONS:]
        ops = []
        bound = self.cost.trap_entry  # a mid-block trap charges entry cost
        crypto_worst = max(self.engine.miss_cycles, self.engine.hit_cycles)
        for ins in instructions:
            handler = self._dispatch.get(ins.mnemonic)
            if handler is None:
                break
            ops.append((handler, ins))
            if self.cost.classify(ins.mnemonic) == "crypto":
                bound += crypto_worst
            else:
                bound += self.cost.worst_case(ins.mnemonic)
        if not ops:
            return None
        pages = BlockCache.pages_of(pc, len(ops))
        block = TranslatedBlock(pc, tuple(ops), bound, pages, int(key[1]))
        self.blocks.insert(key, block)
        if hasattr(mem, "watch_code_page"):
            for page in pages:
                mem.watch_code_page(page)
        shared = self.shared_layouts
        if shared is not None and len(shared) < MAX_SHARED_LAYOUTS:
            try:
                raw = bytes(mem.read_bytes(pc, 4 * len(ops)))
            except (MemoryFault, AttributeError):
                raw = None
            if raw is not None:
                shared[key] = BlockLayout(
                    raw, tuple(ins for _, ins in ops), bound, pages
                )
        if trace is not None:
            trace(
                BLOCK_COMPILE,
                pc=pc,
                instructions=len(ops),
                ns=time.perf_counter_ns() - started_ns,
            )
        return block

    def _on_code_write(self, page_index: int) -> None:
        self.blocks.invalidate_page(page_index)
        if len(self.superblocks):
            self.superblocks.invalidate_page(page_index)
        self._block_break = True

    def _timer_deliverable(self) -> bool:
        """Could a machine-timer interrupt be taken if MTIP became set?"""
        if not self.csrs.raw_read(csrdefs.MIE) & MIE_MTIE:
            return False
        return (
            self.privilege < PrivilegeLevel.MACHINE
            or bool(self.csrs.mstatus & MSTATUS_MIE)
        )

    def _fetch(self, pc: int) -> int:
        if pc % 4:
            raise Trap(Cause.INSTRUCTION_MISALIGNED, tval=pc)
        try:
            return self.bus.read_u32(pc)
        except MemoryFault:
            raise Trap(Cause.INSTRUCTION_ACCESS_FAULT, tval=pc) from None

    # ------------------------------------------------------------- interrupts --

    def _take_pending_interrupt(self) -> bool:
        mip = self.csrs.raw_read(csrdefs.MIP)
        mie = self.csrs.raw_read(csrdefs.MIE)
        pending = mip & mie
        if not pending & MIP_MTIP:
            return False
        enabled = (
            self.privilege < PrivilegeLevel.MACHINE
            or self.csrs.mstatus & MSTATUS_MIE
        )
        if not enabled:
            return False
        self.waiting_for_interrupt = False
        self._enter_trap(
            Trap(Cause.MACHINE_TIMER_INTERRUPT, interrupt=True), self.pc
        )
        return True

    # ------------------------------------------------------------------ traps --

    def _enter_trap(self, trap: Trap, pc: int) -> None:
        """Trap into machine mode (this model does not delegate)."""
        self.csrs.raw_write(csrdefs.MEPC, pc)
        self.csrs.raw_write(
            csrdefs.MCAUSE, mcause_value(trap.cause, trap.interrupt)
        )
        self.csrs.raw_write(csrdefs.MTVAL, trap.tval)
        mstatus = self.csrs.mstatus
        mpie = 1 if mstatus & MSTATUS_MIE else 0
        mstatus &= ~(MSTATUS_MIE | MSTATUS_MPIE | MSTATUS_MPP_MASK) & MASK64
        mstatus |= mpie << 7
        mstatus |= int(self.privilege) << MSTATUS_MPP_SHIFT
        self.csrs.mstatus = mstatus
        self.privilege = PrivilegeLevel.MACHINE
        mtvec = self.csrs.raw_read(csrdefs.MTVEC)
        if mtvec == 0:
            raise Trap(trap.cause, trap.tval, trap.interrupt)
        self.pc = mtvec & ~0b11
        self.cycles += self.cost.trap_entry

    def _mret(self, ins: Instruction, pc: int) -> int:
        if self.privilege != PrivilegeLevel.MACHINE:
            raise Trap(Cause.ILLEGAL_INSTRUCTION)
        mstatus = self.csrs.mstatus
        previous = (mstatus & MSTATUS_MPP_MASK) >> MSTATUS_MPP_SHIFT
        mie = 1 if mstatus & MSTATUS_MPIE else 0
        mstatus &= ~(MSTATUS_MIE | MSTATUS_MPIE | MSTATUS_MPP_MASK) & MASK64
        mstatus |= mie << 3
        mstatus |= MSTATUS_MPIE
        self.csrs.mstatus = mstatus
        self.privilege = PrivilegeLevel(previous)
        self.cycles += self.cost.trap_return
        return self.csrs.raw_read(csrdefs.MEPC)

    # --------------------------------------------------------------- telemetry --

    def attach_tracer(self, bus) -> None:
        """Instrument the hart for a :class:`repro.telemetry.TraceBus`.

        Only the planes the bus has subscribers for *at attach time* are
        instrumented, and each one calls straight through to the
        original closures, so architectural state, cycle accounting and
        trap behaviour are unchanged:

        * ``insn.retire`` — raw plane; every subscriber is called
          positionally as ``fn(ins, pc)`` before the handler, with no
          event object allocated (this is the per-instruction path);
        * ``trap.enter``  — emitted before the trap is architecturally
          taken, so subscribers see pre-entry register state;
        * ``trap.exit``   — emitted after ``mret``/``sret`` returns,
          carrying the resumed pc and the restored privilege level.

        Translated blocks capture handler references at translation
        time, so the block cache is flushed to make the fast path pick
        up the wrapped handlers; :meth:`detach_tracer` restores the
        exact pre-attach dispatch table and trap entry.
        """
        self._tracer_stack.append(
            {"dispatch": self._dispatch, "enter_trap": self._enter_trap}
        )
        dispatch = self._dispatch
        observers = bus.subscribers(INSN_RETIRE)
        if observers:
            if len(observers) == 1:
                observe = observers[0]
            else:
                def observe(ins, pc, _observers=tuple(observers)):
                    for fn in _observers:
                        fn(ins, pc)

            def wrap(handler):
                def wrapped(ins, pc, _handler=handler):
                    observe(ins, pc)
                    return _handler(ins, pc)

                return wrapped

            dispatch = {
                mnemonic: wrap(handler)
                for mnemonic, handler in dispatch.items()
            }
        if bus.wants(TRAP_EXIT):
            def wrap_return(handler):
                def wrapped(ins, pc, _handler=handler):
                    next_pc = _handler(ins, pc)
                    bus.emit(
                        TRAP_EXIT,
                        self.cycles,
                        pc=next_pc,
                        privilege=int(self.privilege),
                    )
                    return next_pc

                return wrapped

            dispatch = dict(dispatch)
            for mnemonic in ("mret", "sret"):
                dispatch[mnemonic] = wrap_return(dispatch[mnemonic])
        self._dispatch = dispatch
        if bus.wants(TRAP_ENTER):
            inner = self._enter_trap

            def enter_trap(trap, pc):
                bus.emit(
                    TRAP_ENTER,
                    self.cycles,
                    cause=int(trap.cause),
                    interrupt=bool(trap.interrupt),
                    pc=pc,
                    tval=trap.tval,
                )
                inner(trap, pc)

            # Shadow the bound method; step/run_block/_take_pending_interrupt
            # all go through the instance attribute.
            self._enter_trap = enter_trap
        self.blocks.flush()
        if len(self.superblocks):
            self.superblocks.flush()

    def detach_tracer(self) -> None:
        """Undo the most recent :meth:`attach_tracer` exactly."""
        if not self._tracer_stack:
            return
        saved = self._tracer_stack.pop()
        self._dispatch = saved["dispatch"]
        self._enter_trap = saved["enter_trap"]
        self.blocks.flush()
        if len(self.superblocks):
            self.superblocks.flush()

    def attach_speculation(self, spec) -> None:
        """Attach a :class:`repro.machine.spec.SpeculativeEngine`.

        Wraps only the control-flow handlers (branches, ``jal``,
        ``jalr``) so the predictor observes every retirement, and
        pushes a frame on the tracer stack: the compiled tier stands
        down while speculation is attached, exactly as it does for
        telemetry, and :meth:`detach_speculation` restores the
        pre-attach dispatch table.  Architectural state is untouched —
        transient windows run against shadow overlays only.
        """
        spec.attach_to(self)

    def detach_speculation(self) -> None:
        """Undo :meth:`attach_speculation` (LIFO w.r.t. tracers)."""
        if self.spec is not None:
            self.spec.detach()

    def attach_coverage(self, on_instruction, on_trap=None) -> None:
        """Observation callbacks for correctness tooling (thin shim).

        Builds a private trace bus and delegates to
        :meth:`attach_tracer` so there is exactly one hook mechanism.
        ``on_instruction(ins)`` fires before every retired instruction;
        ``on_trap(trap, pc)`` fires on every trap entry (synchronous or
        interrupt).  New code should subscribe to a
        :class:`repro.telemetry.TraceBus` directly.
        """
        from repro.telemetry.bus import TraceBus

        bus = TraceBus()
        bus.subscribe(INSN_RETIRE, lambda ins, pc: on_instruction(ins))
        if on_trap is not None:
            def forward(event):
                data = event.data
                on_trap(
                    Trap(
                        Cause(data["cause"]),
                        tval=data["tval"],
                        interrupt=data["interrupt"],
                    ),
                    data["pc"],
                )

            bus.subscribe(TRAP_ENTER, forward)
        self.attach_tracer(bus)

    # ---------------------------------------------------------------- dispatch --

    def _build_dispatch(self):
        d = {}

        # ALU register-register.
        d["add"] = self._alu("add", lambda a, b: a + b)
        d["sub"] = self._alu("sub", lambda a, b: a - b)
        d["sll"] = self._alu("sll", lambda a, b: a << (b & 63))
        d["slt"] = self._alu(
            "slt", lambda a, b: int(to_signed64(a) < to_signed64(b))
        )
        d["sltu"] = self._alu("sltu", lambda a, b: int(a < b))
        d["xor"] = self._alu("xor", lambda a, b: a ^ b)
        d["srl"] = self._alu("srl", lambda a, b: a >> (b & 63))
        d["sra"] = self._alu("sra", lambda a, b: to_signed64(a) >> (b & 63))
        d["or"] = self._alu("or", lambda a, b: a | b)
        d["and"] = self._alu("and", lambda a, b: a & b)
        d["mul"] = self._alu("mul", lambda a, b: a * b)
        d["mulh"] = self._alu(
            "mulh", lambda a, b: (to_signed64(a) * to_signed64(b)) >> 64
        )
        d["mulhsu"] = self._alu("mulhsu", lambda a, b: (to_signed64(a) * b) >> 64)
        d["mulhu"] = self._alu("mulhu", lambda a, b: (a * b) >> 64)
        d["div"] = self._alu("div", self._div)
        d["divu"] = self._alu("divu", self._divu)
        d["rem"] = self._alu("rem", self._rem)
        d["remu"] = self._alu("remu", self._remu)

        # 32-bit ("W") register-register.
        d["addw"] = self._alu_w("addw", lambda a, b: a + b)
        d["subw"] = self._alu_w("subw", lambda a, b: a - b)
        d["sllw"] = self._alu_w("sllw", lambda a, b: a << (b & 31))
        d["srlw"] = self._alu_w(
            "srlw", lambda a, b: (a & 0xFFFFFFFF) >> (b & 31)
        )
        d["sraw"] = self._alu_w(
            "sraw", lambda a, b: sign_extend(a & 0xFFFFFFFF, 32) >> (b & 31)
        )
        d["mulw"] = self._alu_w("mulw", lambda a, b: a * b)
        d["divw"] = self._alu_w("divw", self._div32)
        d["divuw"] = self._alu_w("divuw", self._divu32)
        d["remw"] = self._alu_w("remw", self._rem32)
        d["remuw"] = self._alu_w("remuw", self._remu32)

        # ALU immediates.
        d["addi"] = self._alu_imm("addi", lambda a, i: a + i)
        d["slti"] = self._alu_imm(
            "slti", lambda a, i: int(to_signed64(a) < i)
        )
        d["sltiu"] = self._alu_imm(
            "sltiu", lambda a, i: int(a < to_unsigned64(i))
        )
        d["xori"] = self._alu_imm("xori", lambda a, i: a ^ to_unsigned64(i))
        d["ori"] = self._alu_imm("ori", lambda a, i: a | to_unsigned64(i))
        d["andi"] = self._alu_imm("andi", lambda a, i: a & to_unsigned64(i))
        d["slli"] = self._alu_imm("slli", lambda a, i: a << i)
        d["srli"] = self._alu_imm("srli", lambda a, i: a >> i)
        d["srai"] = self._alu_imm("srai", lambda a, i: to_signed64(a) >> i)
        d["addiw"] = self._alu_imm_w("addiw", lambda a, i: a + i)
        d["slliw"] = self._alu_imm_w("slliw", lambda a, i: a << i)
        d["srliw"] = self._alu_imm_w(
            "srliw", lambda a, i: (a & 0xFFFFFFFF) >> i
        )
        d["sraiw"] = self._alu_imm_w(
            "sraiw", lambda a, i: sign_extend(a & 0xFFFFFFFF, 32) >> i
        )

        # Memory.
        for mnemonic in tab.LOADS:
            d[mnemonic] = self._make_load(mnemonic)
        for mnemonic in tab.STORES:
            d[mnemonic] = self._make_store(mnemonic)

        # Control flow.
        d["beq"] = self._branch("beq", lambda a, b: a == b)
        d["bne"] = self._branch("bne", lambda a, b: a != b)
        d["blt"] = self._branch(
            "blt", lambda a, b: to_signed64(a) < to_signed64(b)
        )
        d["bge"] = self._branch(
            "bge", lambda a, b: to_signed64(a) >= to_signed64(b)
        )
        d["bltu"] = self._branch("bltu", lambda a, b: a < b)
        d["bgeu"] = self._branch("bgeu", lambda a, b: a >= b)
        d["jal"] = self._jal
        d["jalr"] = self._jalr
        d["lui"] = self._lui
        d["auipc"] = self._auipc

        # System.
        d["fence"] = self._fence
        d["ecall"] = self._ecall
        d["ebreak"] = self._ebreak
        d["mret"] = self._mret
        d["sret"] = self._mret  # single-trap-level model: sret behaves as mret
        d["wfi"] = self._wfi
        for mnemonic in tab.CSR_OPS:
            d[mnemonic] = self._make_csr(mnemonic)

        # RegVault.
        from repro.crypto.keys import KeySelect

        for ksel in KeySelect:
            d[tab.crypto_mnemonic(True, ksel)] = self._make_crypto(True)
            d[tab.crypto_mnemonic(False, ksel)] = self._make_crypto(False)

        return d

    # -- handler factories -------------------------------------------------------
    #
    # Per-mnemonic cycle costs are resolved once at dispatch-build time:
    # the cost model is fixed for the hart's lifetime, and both the
    # single-step path and the block fast path call these same closures,
    # which is what keeps their cycle accounting bit-identical.

    def _alu(self, mnemonic: str, op):
        cycle_cost = self.cost.cost(mnemonic)

        def handler(ins: Instruction, pc: int):
            self.regs.write(ins.rd, op(self.regs[ins.rs1], self.regs[ins.rs2]))
            self.cycles += cycle_cost
            return None

        return handler

    def _alu_w(self, mnemonic: str, op):
        cycle_cost = self.cost.cost(mnemonic)

        def handler(ins: Instruction, pc: int):
            result = op(self.regs[ins.rs1], self.regs[ins.rs2])
            self.regs.write(ins.rd, to_unsigned64(sign_extend(result, 32)))
            self.cycles += cycle_cost
            return None

        return handler

    def _alu_imm(self, mnemonic: str, op):
        cycle_cost = self.cost.cost(mnemonic)

        def handler(ins: Instruction, pc: int):
            self.regs.write(ins.rd, op(self.regs[ins.rs1], ins.imm))
            self.cycles += cycle_cost
            return None

        return handler

    def _alu_imm_w(self, mnemonic: str, op):
        cycle_cost = self.cost.cost(mnemonic)

        def handler(ins: Instruction, pc: int):
            result = op(self.regs[ins.rs1], ins.imm)
            self.regs.write(ins.rd, to_unsigned64(sign_extend(result, 32)))
            self.cycles += cycle_cost
            return None

        return handler

    @staticmethod
    def _div(a, b):
        sa, sb = to_signed64(a), to_signed64(b)
        if sb == 0:
            return MASK64
        if sa == -(1 << 63) and sb == -1:
            return a
        quotient = abs(sa) // abs(sb)
        return -quotient if (sa < 0) != (sb < 0) else quotient

    @staticmethod
    def _divu(a, b):
        return MASK64 if b == 0 else a // b

    @staticmethod
    def _rem(a, b):
        sa, sb = to_signed64(a), to_signed64(b)
        if sb == 0:
            return a
        if sa == -(1 << 63) and sb == -1:
            return 0
        remainder = abs(sa) % abs(sb)
        return -remainder if sa < 0 else remainder

    @staticmethod
    def _remu(a, b):
        return a if b == 0 else a % b

    @staticmethod
    def _div32(a, b):
        sa = sign_extend(a & 0xFFFFFFFF, 32)
        sb = sign_extend(b & 0xFFFFFFFF, 32)
        if sb == 0:
            return -1
        if sa == -(1 << 31) and sb == -1:
            return sa
        quotient = abs(sa) // abs(sb)
        return -quotient if (sa < 0) != (sb < 0) else quotient

    @staticmethod
    def _divu32(a, b):
        ua, ub = a & 0xFFFFFFFF, b & 0xFFFFFFFF
        return 0xFFFFFFFF if ub == 0 else ua // ub

    @staticmethod
    def _rem32(a, b):
        sa = sign_extend(a & 0xFFFFFFFF, 32)
        sb = sign_extend(b & 0xFFFFFFFF, 32)
        if sb == 0:
            return sa
        if sa == -(1 << 31) and sb == -1:
            return 0
        remainder = abs(sa) % abs(sb)
        return -remainder if sa < 0 else remainder

    @staticmethod
    def _remu32(a, b):
        ua, ub = a & 0xFFFFFFFF, b & 0xFFFFFFFF
        return ua if ub == 0 else ua % ub

    def _make_load(self, mnemonic: str):
        size = tab.ACCESS_SIZE[mnemonic]
        signed = not mnemonic.endswith("u") and mnemonic != "ld"
        reader = {
            1: lambda a: self.bus.read_u8(a),
            2: lambda a: self.bus.read_u16(a),
            4: lambda a: self.bus.read_u32(a),
            8: lambda a: self.bus.read_u64(a),
        }[size]

        def handler(ins: Instruction, pc: int):
            address = (self.regs[ins.rs1] + ins.imm) & MASK64
            try:
                value = reader(address)
            except MemoryFault:
                raise Trap(Cause.LOAD_ACCESS_FAULT, tval=address) from None
            if signed:
                value = to_unsigned64(sign_extend(value, size * 8))
            self.regs.write(ins.rd, value)
            self.cycles += self.cost.load
            return None

        return handler

    def _make_store(self, mnemonic: str):
        size = tab.ACCESS_SIZE[mnemonic]
        writer = {
            1: lambda a, v: self.bus.write_u8(a, v),
            2: lambda a, v: self.bus.write_u16(a, v),
            4: lambda a, v: self.bus.write_u32(a, v),
            8: lambda a, v: self.bus.write_u64(a, v),
        }[size]

        def handler(ins: Instruction, pc: int):
            address = (self.regs[ins.rs1] + ins.imm) & MASK64
            try:
                # A truthy return marks a device (MMIO) write: devices
                # can redirect the machine loop (shutdown, timer
                # reprogramming), so the block fast path must yield.
                if writer(address, self.regs[ins.rs2]):
                    self._block_break = True
            except MemoryFault:
                raise Trap(Cause.STORE_ACCESS_FAULT, tval=address) from None
            self.cycles += self.cost.store
            return None

        return handler

    def _branch(self, mnemonic: str, condition):
        taken_cost = self.cost.cost(mnemonic, branch_taken=True)
        not_taken_cost = self.cost.cost(mnemonic, branch_taken=False)

        def handler(ins: Instruction, pc: int):
            if condition(self.regs[ins.rs1], self.regs[ins.rs2]):
                self.cycles += taken_cost
                return (pc + ins.imm) & MASK64
            self.cycles += not_taken_cost
            return None

        return handler

    def _jal(self, ins: Instruction, pc: int):
        self.regs.write(ins.rd, pc + 4)
        self.cycles += self.cost.jump
        return (pc + ins.imm) & MASK64

    def _jalr(self, ins: Instruction, pc: int):
        target = (self.regs[ins.rs1] + ins.imm) & MASK64 & ~1
        self.regs.write(ins.rd, pc + 4)
        self.cycles += self.cost.jump
        return target

    def _lui(self, ins: Instruction, pc: int):
        self.regs.write(ins.rd, to_unsigned64(ins.imm))
        self.cycles += self.cost.default
        return None

    def _auipc(self, ins: Instruction, pc: int):
        self.regs.write(ins.rd, (pc + ins.imm) & MASK64)
        self.cycles += self.cost.default
        return None

    def _fence(self, ins: Instruction, pc: int):
        self.cycles += self.cost.default
        return None

    def _ecall(self, ins: Instruction, pc: int):
        cause = {
            PrivilegeLevel.USER: Cause.ECALL_FROM_U,
            PrivilegeLevel.SUPERVISOR: Cause.ECALL_FROM_S,
            PrivilegeLevel.MACHINE: Cause.ECALL_FROM_M,
        }[self.privilege]
        raise Trap(cause)

    def _ebreak(self, ins: Instruction, pc: int):
        raise Trap(Cause.BREAKPOINT, tval=pc)

    def _wfi(self, ins: Instruction, pc: int):
        self.waiting_for_interrupt = True
        self.cycles += self.cost.default
        return None

    def _make_csr(self, mnemonic: str):
        write_op = mnemonic in ("csrrw", "csrrwi")
        set_op = mnemonic in ("csrrs", "csrrsi")
        immediate = mnemonic.endswith("i")

        def handler(ins: Instruction, pc: int):
            operand = ins.rs1 if immediate else self.regs[ins.rs1]
            reads = not (write_op and ins.rd == 0)
            writes = write_op or (not immediate and ins.rs1 != 0) or (
                immediate and ins.rs1 != 0
            )
            old = self.csrs.read(ins.csr, self.privilege) if reads else 0
            if writes:
                if write_op:
                    new = operand
                elif set_op:
                    new = old | operand
                else:
                    new = old & ~operand & MASK64
                self.csrs.write(ins.csr, new, self.privilege)
            self.regs.write(ins.rd, old)
            self.cycles += self.cost.csr
            return None

        return handler

    def _make_crypto(self, is_encrypt: bool):
        def handler(ins: Instruction, pc: int):
            value = self.regs[ins.rs1]
            tweak = self.regs[ins.rs2]
            try:
                if is_encrypt:
                    result, op_cycles = self.engine.encrypt(
                        ins.ksel, value, ins.byte_range, tweak,
                        privilege=int(self.privilege),
                    )
                else:
                    result, op_cycles = self.engine.decrypt(
                        ins.ksel, value, ins.byte_range, tweak,
                        privilege=int(self.privilege),
                    )
            except PrivilegeError:
                raise Trap(Cause.ILLEGAL_INSTRUCTION, tval=pc) from None
            except IntegrityViolation:
                # A failed decrypt still consumed the engine latency.
                self.cycles += self.engine.miss_cycles
                raise Trap(
                    Cause.REGVAULT_INTEGRITY_FAULT, tval=pc
                ) from None
            self.regs.write(ins.rd, result)
            # Engine latency: 1 cycle on a CLB hit, 3 on a miss (§4.2).
            self.cycles += op_cycles
            return None

        return handler

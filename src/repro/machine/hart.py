"""The simulated RV64IM hart with the RegVault extension.

Models an in-order, single-issue core (the paper's Rocket baseline):
fetch, decode (memoized), execute, trap.  The RegVault crypto-engine is
invoked by the ``cre``/``crd`` instructions; its privilege gate and
integrity faults surface as architectural traps.
"""

from __future__ import annotations

import enum

from repro.crypto.engine import CryptoEngine
from repro.errors import (
    DecodeError,
    IntegrityViolation,
    MemoryFault,
    PrivilegeError,
)
from repro.isa import csrdefs
from repro.isa import instructions as tab
from repro.isa.decoder import decode
from repro.isa.instructions import Instruction
from repro.machine.csr import (
    CSRFile,
    MIE_MTIE,
    MIP_MTIP,
    MSTATUS_MIE,
    MSTATUS_MPIE,
    MSTATUS_MPP_MASK,
    MSTATUS_MPP_SHIFT,
)
from repro.machine.regfile import RegisterFile
from repro.machine.timing import CostModel
from repro.machine.trap import Cause, Trap, mcause_value
from repro.utils.bits import (
    MASK64,
    sign_extend,
    to_signed64,
    to_unsigned64,
)


class PrivilegeLevel(enum.IntEnum):
    USER = 0
    SUPERVISOR = 1
    MACHINE = 3


class Hart:
    """One hardware thread.

    Parameters
    ----------
    bus:
        Object with ``read_u8/16/32/64`` and ``write_u8/16/32/64``
        methods (a :class:`repro.machine.machine.SystemBus` or a bare
        :class:`repro.machine.memory.Memory`).
    engine:
        The RegVault crypto-engine (key registers + CLB + QARMA).
    cost_model:
        Cycle accounting; see :mod:`repro.machine.timing`.
    """

    def __init__(
        self,
        bus,
        engine: CryptoEngine | None = None,
        cost_model: CostModel | None = None,
    ):
        self.bus = bus
        self.engine = engine if engine is not None else CryptoEngine()
        self.cost = cost_model or CostModel()
        self.regs = RegisterFile()
        self.csrs = CSRFile(self.engine.key_file)
        self.pc = 0
        self.privilege = PrivilegeLevel.MACHINE
        self.cycles = 0
        self.instret = 0
        self.waiting_for_interrupt = False
        self._decode_cache: dict[int, Instruction] = {}
        self.csrs.counter_hooks[csrdefs.CYCLE] = lambda: self.cycles
        self.csrs.counter_hooks[csrdefs.TIME] = lambda: self.cycles
        self.csrs.counter_hooks[csrdefs.INSTRET] = lambda: self.instret
        self.csrs.counter_hooks[csrdefs.MCYCLE] = lambda: self.cycles
        self.csrs.counter_hooks[csrdefs.MINSTRET] = lambda: self.instret
        self._dispatch = self._build_dispatch()

    # ------------------------------------------------------------------ step --

    def step(self) -> None:
        """Execute one instruction (or take one pending interrupt)."""
        if self._take_pending_interrupt():
            return
        pc = self.pc
        try:
            word = self._fetch(pc)
            ins = self._decode_cache.get(word)
            if ins is None:
                try:
                    ins = decode(word)
                except DecodeError:
                    raise Trap(Cause.ILLEGAL_INSTRUCTION, tval=word) from None
                self._decode_cache[word] = ins
            handler = self._dispatch.get(ins.mnemonic)
            if handler is None:
                raise Trap(Cause.ILLEGAL_INSTRUCTION, tval=word)
            next_pc = handler(ins, pc)
            self.pc = (pc + 4) if next_pc is None else next_pc
            self.instret += 1
        except Trap as trap:
            self._enter_trap(trap, pc)

    def _fetch(self, pc: int) -> int:
        if pc % 4:
            raise Trap(Cause.INSTRUCTION_MISALIGNED, tval=pc)
        try:
            return self.bus.read_u32(pc)
        except MemoryFault:
            raise Trap(Cause.INSTRUCTION_ACCESS_FAULT, tval=pc) from None

    # ------------------------------------------------------------- interrupts --

    def _take_pending_interrupt(self) -> bool:
        mip = self.csrs.raw_read(csrdefs.MIP)
        mie = self.csrs.raw_read(csrdefs.MIE)
        pending = mip & mie
        if not pending & MIP_MTIP:
            return False
        enabled = (
            self.privilege < PrivilegeLevel.MACHINE
            or self.csrs.mstatus & MSTATUS_MIE
        )
        if not enabled:
            return False
        self.waiting_for_interrupt = False
        self._enter_trap(
            Trap(Cause.MACHINE_TIMER_INTERRUPT, interrupt=True), self.pc
        )
        return True

    # ------------------------------------------------------------------ traps --

    def _enter_trap(self, trap: Trap, pc: int) -> None:
        """Trap into machine mode (this model does not delegate)."""
        self.csrs.raw_write(csrdefs.MEPC, pc)
        self.csrs.raw_write(
            csrdefs.MCAUSE, mcause_value(trap.cause, trap.interrupt)
        )
        self.csrs.raw_write(csrdefs.MTVAL, trap.tval)
        mstatus = self.csrs.mstatus
        mpie = 1 if mstatus & MSTATUS_MIE else 0
        mstatus &= ~(MSTATUS_MIE | MSTATUS_MPIE | MSTATUS_MPP_MASK) & MASK64
        mstatus |= mpie << 7
        mstatus |= int(self.privilege) << MSTATUS_MPP_SHIFT
        self.csrs.mstatus = mstatus
        self.privilege = PrivilegeLevel.MACHINE
        mtvec = self.csrs.raw_read(csrdefs.MTVEC)
        if mtvec == 0:
            raise Trap(trap.cause, trap.tval, trap.interrupt)
        self.pc = mtvec & ~0b11
        self.cycles += self.cost.trap_entry

    def _mret(self, ins: Instruction, pc: int) -> int:
        if self.privilege != PrivilegeLevel.MACHINE:
            raise Trap(Cause.ILLEGAL_INSTRUCTION)
        mstatus = self.csrs.mstatus
        previous = (mstatus & MSTATUS_MPP_MASK) >> MSTATUS_MPP_SHIFT
        mie = 1 if mstatus & MSTATUS_MPIE else 0
        mstatus &= ~(MSTATUS_MIE | MSTATUS_MPIE | MSTATUS_MPP_MASK) & MASK64
        mstatus |= mie << 3
        mstatus |= MSTATUS_MPIE
        self.csrs.mstatus = mstatus
        self.privilege = PrivilegeLevel(previous)
        self.cycles += self.cost.trap_return
        return self.csrs.raw_read(csrdefs.MEPC)

    # ---------------------------------------------------------------- dispatch --

    def _build_dispatch(self):
        d = {}

        # ALU register-register.
        d["add"] = self._alu(lambda a, b: a + b)
        d["sub"] = self._alu(lambda a, b: a - b)
        d["sll"] = self._alu(lambda a, b: a << (b & 63))
        d["slt"] = self._alu(
            lambda a, b: int(to_signed64(a) < to_signed64(b))
        )
        d["sltu"] = self._alu(lambda a, b: int(a < b))
        d["xor"] = self._alu(lambda a, b: a ^ b)
        d["srl"] = self._alu(lambda a, b: a >> (b & 63))
        d["sra"] = self._alu(lambda a, b: to_signed64(a) >> (b & 63))
        d["or"] = self._alu(lambda a, b: a | b)
        d["and"] = self._alu(lambda a, b: a & b)
        d["mul"] = self._alu(lambda a, b: a * b)
        d["mulh"] = self._alu(
            lambda a, b: (to_signed64(a) * to_signed64(b)) >> 64
        )
        d["mulhsu"] = self._alu(lambda a, b: (to_signed64(a) * b) >> 64)
        d["mulhu"] = self._alu(lambda a, b: (a * b) >> 64)
        d["div"] = self._alu(self._div)
        d["divu"] = self._alu(self._divu)
        d["rem"] = self._alu(self._rem)
        d["remu"] = self._alu(self._remu)

        # 32-bit ("W") register-register.
        d["addw"] = self._alu_w(lambda a, b: a + b)
        d["subw"] = self._alu_w(lambda a, b: a - b)
        d["sllw"] = self._alu_w(lambda a, b: a << (b & 31))
        d["srlw"] = self._alu_w(lambda a, b: (a & 0xFFFFFFFF) >> (b & 31))
        d["sraw"] = self._alu_w(
            lambda a, b: sign_extend(a & 0xFFFFFFFF, 32) >> (b & 31)
        )
        d["mulw"] = self._alu_w(lambda a, b: a * b)
        d["divw"] = self._alu_w(self._div32)
        d["divuw"] = self._alu_w(self._divu32)
        d["remw"] = self._alu_w(self._rem32)
        d["remuw"] = self._alu_w(self._remu32)

        # ALU immediates.
        d["addi"] = self._alu_imm(lambda a, i: a + i)
        d["slti"] = self._alu_imm(lambda a, i: int(to_signed64(a) < i))
        d["sltiu"] = self._alu_imm(lambda a, i: int(a < to_unsigned64(i)))
        d["xori"] = self._alu_imm(lambda a, i: a ^ to_unsigned64(i))
        d["ori"] = self._alu_imm(lambda a, i: a | to_unsigned64(i))
        d["andi"] = self._alu_imm(lambda a, i: a & to_unsigned64(i))
        d["slli"] = self._alu_imm(lambda a, i: a << i)
        d["srli"] = self._alu_imm(lambda a, i: a >> i)
        d["srai"] = self._alu_imm(lambda a, i: to_signed64(a) >> i)
        d["addiw"] = self._alu_imm_w(lambda a, i: a + i)
        d["slliw"] = self._alu_imm_w(lambda a, i: a << i)
        d["srliw"] = self._alu_imm_w(lambda a, i: (a & 0xFFFFFFFF) >> i)
        d["sraiw"] = self._alu_imm_w(
            lambda a, i: sign_extend(a & 0xFFFFFFFF, 32) >> i
        )

        # Memory.
        for mnemonic in tab.LOADS:
            d[mnemonic] = self._make_load(mnemonic)
        for mnemonic in tab.STORES:
            d[mnemonic] = self._make_store(mnemonic)

        # Control flow.
        d["beq"] = self._branch(lambda a, b: a == b)
        d["bne"] = self._branch(lambda a, b: a != b)
        d["blt"] = self._branch(
            lambda a, b: to_signed64(a) < to_signed64(b)
        )
        d["bge"] = self._branch(
            lambda a, b: to_signed64(a) >= to_signed64(b)
        )
        d["bltu"] = self._branch(lambda a, b: a < b)
        d["bgeu"] = self._branch(lambda a, b: a >= b)
        d["jal"] = self._jal
        d["jalr"] = self._jalr
        d["lui"] = self._lui
        d["auipc"] = self._auipc

        # System.
        d["fence"] = self._fence
        d["ecall"] = self._ecall
        d["ebreak"] = self._ebreak
        d["mret"] = self._mret
        d["sret"] = self._mret  # single-trap-level model: sret behaves as mret
        d["wfi"] = self._wfi
        for mnemonic in tab.CSR_OPS:
            d[mnemonic] = self._make_csr(mnemonic)

        # RegVault.
        from repro.crypto.keys import KeySelect

        for ksel in KeySelect:
            d[tab.crypto_mnemonic(True, ksel)] = self._make_crypto(True)
            d[tab.crypto_mnemonic(False, ksel)] = self._make_crypto(False)

        return d

    # -- handler factories -------------------------------------------------------

    def _alu(self, op):
        def handler(ins: Instruction, pc: int):
            self.regs.write(ins.rd, op(self.regs[ins.rs1], self.regs[ins.rs2]))
            self.cycles += self.cost.cost(ins.mnemonic)
            return None

        return handler

    def _alu_w(self, op):
        def handler(ins: Instruction, pc: int):
            result = op(self.regs[ins.rs1], self.regs[ins.rs2])
            self.regs.write(ins.rd, to_unsigned64(sign_extend(result, 32)))
            self.cycles += self.cost.cost(ins.mnemonic)
            return None

        return handler

    def _alu_imm(self, op):
        def handler(ins: Instruction, pc: int):
            self.regs.write(ins.rd, op(self.regs[ins.rs1], ins.imm))
            self.cycles += self.cost.cost(ins.mnemonic)
            return None

        return handler

    def _alu_imm_w(self, op):
        def handler(ins: Instruction, pc: int):
            result = op(self.regs[ins.rs1], ins.imm)
            self.regs.write(ins.rd, to_unsigned64(sign_extend(result, 32)))
            self.cycles += self.cost.cost(ins.mnemonic)
            return None

        return handler

    @staticmethod
    def _div(a, b):
        sa, sb = to_signed64(a), to_signed64(b)
        if sb == 0:
            return MASK64
        if sa == -(1 << 63) and sb == -1:
            return a
        quotient = abs(sa) // abs(sb)
        return -quotient if (sa < 0) != (sb < 0) else quotient

    @staticmethod
    def _divu(a, b):
        return MASK64 if b == 0 else a // b

    @staticmethod
    def _rem(a, b):
        sa, sb = to_signed64(a), to_signed64(b)
        if sb == 0:
            return a
        if sa == -(1 << 63) and sb == -1:
            return 0
        remainder = abs(sa) % abs(sb)
        return -remainder if sa < 0 else remainder

    @staticmethod
    def _remu(a, b):
        return a if b == 0 else a % b

    @staticmethod
    def _div32(a, b):
        sa = sign_extend(a & 0xFFFFFFFF, 32)
        sb = sign_extend(b & 0xFFFFFFFF, 32)
        if sb == 0:
            return -1
        if sa == -(1 << 31) and sb == -1:
            return sa
        quotient = abs(sa) // abs(sb)
        return -quotient if (sa < 0) != (sb < 0) else quotient

    @staticmethod
    def _divu32(a, b):
        ua, ub = a & 0xFFFFFFFF, b & 0xFFFFFFFF
        return 0xFFFFFFFF if ub == 0 else ua // ub

    @staticmethod
    def _rem32(a, b):
        sa = sign_extend(a & 0xFFFFFFFF, 32)
        sb = sign_extend(b & 0xFFFFFFFF, 32)
        if sb == 0:
            return sa
        if sa == -(1 << 31) and sb == -1:
            return 0
        remainder = abs(sa) % abs(sb)
        return -remainder if sa < 0 else remainder

    @staticmethod
    def _remu32(a, b):
        ua, ub = a & 0xFFFFFFFF, b & 0xFFFFFFFF
        return ua if ub == 0 else ua % ub

    def _make_load(self, mnemonic: str):
        size = tab.ACCESS_SIZE[mnemonic]
        signed = not mnemonic.endswith("u") and mnemonic != "ld"
        reader = {
            1: lambda a: self.bus.read_u8(a),
            2: lambda a: self.bus.read_u16(a),
            4: lambda a: self.bus.read_u32(a),
            8: lambda a: self.bus.read_u64(a),
        }[size]

        def handler(ins: Instruction, pc: int):
            address = (self.regs[ins.rs1] + ins.imm) & MASK64
            try:
                value = reader(address)
            except MemoryFault:
                raise Trap(Cause.LOAD_ACCESS_FAULT, tval=address) from None
            if signed:
                value = to_unsigned64(sign_extend(value, size * 8))
            self.regs.write(ins.rd, value)
            self.cycles += self.cost.load
            return None

        return handler

    def _make_store(self, mnemonic: str):
        size = tab.ACCESS_SIZE[mnemonic]
        writer = {
            1: lambda a, v: self.bus.write_u8(a, v),
            2: lambda a, v: self.bus.write_u16(a, v),
            4: lambda a, v: self.bus.write_u32(a, v),
            8: lambda a, v: self.bus.write_u64(a, v),
        }[size]

        def handler(ins: Instruction, pc: int):
            address = (self.regs[ins.rs1] + ins.imm) & MASK64
            try:
                writer(address, self.regs[ins.rs2])
            except MemoryFault:
                raise Trap(Cause.STORE_ACCESS_FAULT, tval=address) from None
            self.cycles += self.cost.store
            return None

        return handler

    def _branch(self, condition):
        def handler(ins: Instruction, pc: int):
            taken = condition(self.regs[ins.rs1], self.regs[ins.rs2])
            self.cycles += self.cost.cost(ins.mnemonic, branch_taken=taken)
            return (pc + ins.imm) & MASK64 if taken else None

        return handler

    def _jal(self, ins: Instruction, pc: int):
        self.regs.write(ins.rd, pc + 4)
        self.cycles += self.cost.jump
        return (pc + ins.imm) & MASK64

    def _jalr(self, ins: Instruction, pc: int):
        target = (self.regs[ins.rs1] + ins.imm) & MASK64 & ~1
        self.regs.write(ins.rd, pc + 4)
        self.cycles += self.cost.jump
        return target

    def _lui(self, ins: Instruction, pc: int):
        self.regs.write(ins.rd, to_unsigned64(ins.imm))
        self.cycles += self.cost.default
        return None

    def _auipc(self, ins: Instruction, pc: int):
        self.regs.write(ins.rd, (pc + ins.imm) & MASK64)
        self.cycles += self.cost.default
        return None

    def _fence(self, ins: Instruction, pc: int):
        self.cycles += self.cost.default
        return None

    def _ecall(self, ins: Instruction, pc: int):
        cause = {
            PrivilegeLevel.USER: Cause.ECALL_FROM_U,
            PrivilegeLevel.SUPERVISOR: Cause.ECALL_FROM_S,
            PrivilegeLevel.MACHINE: Cause.ECALL_FROM_M,
        }[self.privilege]
        raise Trap(cause)

    def _ebreak(self, ins: Instruction, pc: int):
        raise Trap(Cause.BREAKPOINT, tval=pc)

    def _wfi(self, ins: Instruction, pc: int):
        self.waiting_for_interrupt = True
        self.cycles += self.cost.default
        return None

    def _make_csr(self, mnemonic: str):
        write_op = mnemonic in ("csrrw", "csrrwi")
        set_op = mnemonic in ("csrrs", "csrrsi")
        immediate = mnemonic.endswith("i")

        def handler(ins: Instruction, pc: int):
            operand = ins.rs1 if immediate else self.regs[ins.rs1]
            reads = not (write_op and ins.rd == 0)
            writes = write_op or (not immediate and ins.rs1 != 0) or (
                immediate and ins.rs1 != 0
            )
            old = self.csrs.read(ins.csr, self.privilege) if reads else 0
            if writes:
                if write_op:
                    new = operand
                elif set_op:
                    new = old | operand
                else:
                    new = old & ~operand & MASK64
                self.csrs.write(ins.csr, new, self.privilege)
            self.regs.write(ins.rd, old)
            self.cycles += self.cost.csr
            return None

        return handler

    def _make_crypto(self, is_encrypt: bool):
        def handler(ins: Instruction, pc: int):
            value = self.regs[ins.rs1]
            tweak = self.regs[ins.rs2]
            try:
                if is_encrypt:
                    result, op_cycles = self.engine.encrypt(
                        ins.ksel, value, ins.byte_range, tweak,
                        privilege=int(self.privilege),
                    )
                else:
                    result, op_cycles = self.engine.decrypt(
                        ins.ksel, value, ins.byte_range, tweak,
                        privilege=int(self.privilege),
                    )
            except PrivilegeError:
                raise Trap(Cause.ILLEGAL_INSTRUCTION, tval=pc) from None
            except IntegrityViolation:
                # A failed decrypt still consumed the engine latency.
                self.cycles += self.engine.miss_cycles
                raise Trap(
                    Cause.REGVAULT_INTEGRITY_FAULT, tval=pc
                ) from None
            self.regs.write(ins.rd, result)
            # Engine latency: 1 cycle on a CLB hit, 3 on a miss (§4.2).
            self.cycles += op_cycles
            return None

        return handler

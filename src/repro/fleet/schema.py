"""Envelope formats for the fleet: jobs, results, BENCH_fleet.

Three schemas travel through the serving layer:

* **job envelope** (:data:`JOB_SCHEMA`) — one request submitted to the
  fleet: a kind (``workload`` | ``attack`` | ``fuzz``), a tenant, a
  priority, an optional deadline and kind-specific parameters;
* **result envelope** (:data:`RESULT_SCHEMA`) — one answer: status,
  deterministic payload, plus scheduling facts (worker, attempts) and a
  ``timing`` section that is stripped from canonical output;
* **BENCH_fleet** (:data:`BENCH_FLEET_SCHEMA`) — the load-generator
  report: deterministic result counts + digest, with every wall-clock
  derived number (throughput, latency percentiles, cold/warm ratio,
  rolled-up fleet metrics) confined to ``timing``.

Validators follow the repo convention (:mod:`repro.fuzz.schema`):
return a list of problem strings, empty meaning valid.  They are wired
into ``python -m repro.validate`` so CI checks every uploaded
``BENCH_fleet.json`` and any serialized envelope stream.
"""

from __future__ import annotations

__all__ = [
    "BENCH_FLEET_SCHEMA",
    "JOB_KINDS",
    "JOB_SCHEMA",
    "RESULT_SCHEMA",
    "RESULT_STATUSES",
    "deterministic_view",
    "make_job",
    "make_result",
    "validate_bench_fleet",
    "validate_job",
    "validate_result",
]

JOB_SCHEMA = "repro.fleet/job-1"
RESULT_SCHEMA = "repro.fleet/result-1"
BENCH_FLEET_SCHEMA = "repro.fleet/bench-1"
SCHEMA_VERSION = 1

JOB_KINDS = ("workload", "attack", "fuzz")

#: ``ok`` ran to completion; ``error`` raised (or exhausted its crash
#: retries); ``expired`` missed its deadline while queued and was never
#: run.
RESULT_STATUSES = ("ok", "error", "expired")


def make_job(
    job_id: str,
    kind: str,
    params: dict,
    *,
    tenant: str = "default",
    priority: int = 1,
    deadline_s: float | None = None,
) -> dict:
    """Build one job envelope (validated by :func:`validate_job`)."""
    return {
        "schema": JOB_SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "id": job_id,
        "tenant": tenant,
        "kind": kind,
        "priority": priority,
        "deadline_s": deadline_s,
        "params": dict(params),
    }


def make_result(
    job: dict,
    status: str,
    payload: dict | None,
    *,
    error: str | None = None,
    worker: int | None = None,
    attempts: int = 1,
    timing: dict | None = None,
) -> dict:
    """Build the result envelope answering ``job``."""
    return {
        "schema": RESULT_SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "id": job["id"],
        "tenant": job["tenant"],
        "kind": job["kind"],
        "status": status,
        "payload": payload,
        "error": error,
        "worker": worker,
        "attempts": attempts,
        "timing": timing or {},
    }


def deterministic_view(result: dict) -> dict:
    """The part of a result that must not depend on scheduling.

    Which worker served a job, how many attempts it took after an
    injected crash, and every wall-clock number are scheduling facts;
    everything else — including the payload — is a pure function of the
    job and must be bit-identical across runs.
    """
    return {
        "id": result["id"],
        "tenant": result["tenant"],
        "kind": result["kind"],
        "status": result["status"],
        "payload": result["payload"],
        "error": result["error"],
    }


# -- validators -------------------------------------------------------------------


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_count(document, key, problems, where="") -> None:
    value = document.get(key)
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        problems.append(
            f"{where}{key!r} is not a non-negative integer: {value!r}"
        )


def validate_job(document: dict) -> list[str]:
    """Validate one job envelope."""
    problems: list[str] = []
    if document.get("schema") != JOB_SCHEMA:
        problems.append(f"bad schema id {document.get('schema')!r}")
    if not isinstance(document.get("id"), str) or not document.get("id"):
        problems.append("missing non-empty string 'id'")
    if not isinstance(document.get("tenant"), str):
        problems.append("missing string 'tenant'")
    if document.get("kind") not in JOB_KINDS:
        problems.append(f"unknown kind {document.get('kind')!r}")
    priority = document.get("priority")
    if not isinstance(priority, int) or isinstance(priority, bool):
        problems.append(f"'priority' is not an integer: {priority!r}")
    deadline = document.get("deadline_s")
    if deadline is not None and (not _is_number(deadline) or deadline <= 0):
        problems.append(f"'deadline_s' is not a positive number: {deadline!r}")
    if not isinstance(document.get("params"), dict):
        problems.append("'params' is not an object")
    return problems


def validate_result(document: dict) -> list[str]:
    """Validate one result envelope."""
    problems: list[str] = []
    if document.get("schema") != RESULT_SCHEMA:
        problems.append(f"bad schema id {document.get('schema')!r}")
    if not isinstance(document.get("id"), str) or not document.get("id"):
        problems.append("missing non-empty string 'id'")
    if not isinstance(document.get("tenant"), str):
        problems.append("missing string 'tenant'")
    if document.get("kind") not in JOB_KINDS:
        problems.append(f"unknown kind {document.get('kind')!r}")
    status = document.get("status")
    if status not in RESULT_STATUSES:
        problems.append(f"unknown status {status!r}")
    payload = document.get("payload")
    if status == "ok" and not isinstance(payload, dict):
        problems.append("'payload' missing for an ok result")
    if status == "error" and not isinstance(document.get("error"), str):
        problems.append("'error' missing for an error result")
    _check_count(document, "attempts", problems)
    return problems


#: Deterministic result-count keys; they must sum to ``jobs``.
_RESULT_COUNTS = ("ok", "error", "expired", "lost")


def validate_bench_fleet(document: dict) -> list[str]:
    """Validate a ``BENCH_fleet.json`` load-generator report."""
    problems: list[str] = []
    if document.get("schema") != BENCH_FLEET_SCHEMA:
        problems.append(f"bad schema id {document.get('schema')!r}")
    _check_count(document, "schema_version", problems)
    for key in ("seed", "jobs", "workers", "batch_size",
                "crashes_injected"):
        _check_count(document, key, problems)
    digest = document.get("results_digest")
    if not isinstance(digest, str) or len(digest) != 64:
        problems.append(f"'results_digest' is not a sha256 hex: {digest!r}")
    results = document.get("results")
    if not isinstance(results, dict):
        problems.append("'results' is not an object")
    else:
        for key in _RESULT_COUNTS:
            _check_count(results, key, problems, where="results.")
        counts = [results.get(key) for key in _RESULT_COUNTS]
        jobs = document.get("jobs")
        if all(isinstance(c, int) for c in counts) and isinstance(jobs, int):
            if sum(counts) != jobs:
                problems.append(
                    f"results counts sum to {sum(counts)}, "
                    f"expected jobs = {jobs}"
                )
    for key in ("per_kind", "per_tenant", "mix"):
        section = document.get(key)
        if not isinstance(section, dict):
            problems.append(f"'{key}' is not an object")
            continue
        for name, value in section.items():
            _check_count({name: value}, name, problems, where=f"{key}.")
    code_cache = document.get("code_cache")
    if code_cache is not None:
        if not isinstance(code_cache, dict):
            problems.append("'code_cache' is not an object")
        else:
            _check_count(code_cache, "workers_reporting", problems,
                         where="code_cache.")
            if not isinstance(code_cache.get("shared"), bool):
                problems.append("code_cache.shared is not a boolean")
            keys = code_cache.get("keys")
            if not isinstance(keys, list) or any(
                not isinstance(key, str) for key in keys
            ):
                problems.append(
                    "code_cache.keys is not a list of strings"
                )
    timing = document.get("timing")
    if timing is not None:
        if not isinstance(timing, dict):
            problems.append("'timing' is not an object")
        else:
            for key in ("wall_seconds", "jobs_per_second"):
                if not _is_number(timing.get(key)):
                    problems.append(f"timing.{key} is not a number")
    return problems

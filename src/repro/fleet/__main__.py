"""CLI for the fleet serving layer.

Subcommands:

* ``serve`` — read job envelopes (JSON lines) from a file or stdin,
  run them through a fleet, print the result envelopes sorted by job
  id.  Exits 1 if any job was lost or errored.
* ``submit`` — compose and print one validated job envelope from
  flags, ready to pipe into ``serve`` or append to a job file.
* ``loadgen`` — run the deterministic load generator and write
  ``BENCH_fleet.json``.  Exits 1 if any job was lost or errored.

Examples::

    python -m repro.fleet submit --kind workload --config full \
        --workload alu --param iterations=64 > jobs.jsonl
    python -m repro.fleet serve jobs.jsonl
    python -m repro.fleet loadgen --seed 0 --jobs 120 \
        --output BENCH_fleet.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.fleet.loadgen import LoadgenOptions, canonical_json, run_loadgen
from repro.fleet.scheduler import Fleet, FleetError, FleetOptions
from repro.fleet.schema import JOB_KINDS, make_job, validate_job


def _parse_param(raw: str):
    key, sep, value = raw.partition("=")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"expected key=value, got {raw!r}"
        )
    try:
        return key, json.loads(value)
    except json.JSONDecodeError:
        return key, value


def _add_fleet_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker pool size (default: one per core, capped)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=8,
        help="max jobs per batch shipped to a worker (default 8)",
    )
    parser.add_argument(
        "--recycle-after", type=int, default=None,
        help="gracefully replace a worker after N jobs (default never)",
    )
    parser.add_argument(
        "--sequential", action="store_true",
        help="run everything in-process (no worker pool; deterministic)",
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    stream = sys.stdin if args.jobs_file == "-" else open(args.jobs_file)
    try:
        jobs = [
            json.loads(line)
            for line in stream
            if line.strip()
        ]
    finally:
        if stream is not sys.stdin:
            stream.close()
    options = FleetOptions(
        batch_size=args.batch_size,
        recycle_after=args.recycle_after,
        parallel=not args.sequential,
    )
    if args.workers is not None:
        options.workers = max(1, args.workers)
    fleet = Fleet(options)
    server = None
    if args.metrics_port is not None:
        from repro.telemetry.openmetrics import MetricsServer

        server = MetricsServer(
            lambda: (fleet.metrics_snapshot(), fleet.health_snapshot()),
            port=args.metrics_port,
        )
        port = server.start()
        print(
            f"fleet: metrics on http://127.0.0.1:{port}/metrics "
            "(/healthz, /readyz)",
            file=sys.stderr,
        )
    try:
        results = fleet.run_jobs(jobs)
    except FleetError as error:
        print(f"fleet: {error}", file=sys.stderr)
        return 2
    finally:
        if server is not None:
            server.stop()
    for job_id in sorted(results):
        print(json.dumps(results[job_id], sort_keys=True))
    bad = sum(
        1 for result in results.values() if result["status"] != "ok"
    )
    lost = len(jobs) - len(results)
    if bad or lost:
        print(
            f"fleet: {bad} non-ok results, {lost} lost jobs",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    params = dict(args.param or [])
    if args.config is not None:
        params["config"] = args.config
    if args.workload is not None:
        params["workload"] = args.workload
    if args.attack is not None:
        params["attack"] = args.attack
    job = make_job(
        args.id,
        args.kind,
        params,
        tenant=args.tenant,
        priority=args.priority,
        deadline_s=args.deadline,
    )
    problems = validate_job(job)
    if problems:
        for problem in problems:
            print(f"submit: {problem}", file=sys.stderr)
        return 2
    print(json.dumps(job, sort_keys=True))
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    spans = args.spans or bool(args.spans_output or args.trace_output)
    flightrec = args.flightrec or bool(args.flightrec_output)
    options = LoadgenOptions(
        seed=args.seed,
        jobs=args.jobs,
        workers=args.workers,
        batch_size=args.batch_size,
        recycle_after=args.recycle_after,
        inject_crash=args.inject_crash,
        sequential=args.sequential,
        cold_sample=args.cold_sample,
        spans=spans,
        flightrec=flightrec,
    )
    extras: dict = {}
    report = run_loadgen(options, extras=extras)
    _write_observability(args, extras)
    document = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(document + "\n")
    if args.json or not (args.output or args.print_canonical):
        print(document)
    elif not args.print_canonical:
        timing = report["timing"]
        results = report["results"]
        print(
            f"fleet loadgen: seed={report['seed']} jobs={report['jobs']} "
            f"workers={report['workers']} ok={results['ok']} "
            f"error={results['error']} lost={results['lost']}"
        )
        print(
            f"  {timing['sessions_per_minute']:.0f} sessions/min, "
            f"warm/cold {timing['cold_vs_warm']:.2f}x, "
            f"p50 {timing['latency_ms']['p50']:.1f} ms, "
            f"requeued {timing['jobs_requeued']}, "
            f"crashed {timing['workers_crashed']}"
        )
        print(f"  digest {report['results_digest'][:16]}…")
    if args.print_canonical:
        print(canonical_json(report))
    if results_bad(report):
        print("fleet loadgen: lost or errored jobs", file=sys.stderr)
        return 1
    return 0


def _write_json(path: str, document: dict) -> None:
    with open(path, "w") as handle:
        handle.write(json.dumps(document, indent=2, sort_keys=True) + "\n")


def _write_observability(args: argparse.Namespace, extras: dict) -> None:
    """Write the loadgen's observability artifacts where asked."""
    import os

    if args.spans_output:
        _write_json(args.spans_output, extras["span_export"])
    if args.trace_output:
        from repro.telemetry.spans import spans_to_chrome_trace

        _write_json(
            args.trace_output, spans_to_chrome_trace(extras["span_export"])
        )
    if args.flightrec_output:
        os.makedirs(args.flightrec_output, exist_ok=True)
        for index, dump in enumerate(extras["flight_dumps"]):
            _write_json(
                os.path.join(
                    args.flightrec_output, f"flightrec-{index:03d}.json"
                ),
                dump,
            )
    if args.rollup_output:
        _write_json(args.rollup_output, extras["rollup"])


def results_bad(report: dict) -> bool:
    results = report["results"]
    return bool(results["lost"] or results["error"])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Multi-tenant warm-forking job fleet.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser(
        "serve", help="run job envelopes (JSON lines) through a fleet"
    )
    serve.add_argument(
        "jobs_file", nargs="?", default="-",
        help="path to a JSONL job file ('-' or omitted: stdin)",
    )
    _add_fleet_flags(serve)
    serve.add_argument(
        "--metrics-port", type=int, default=None,
        help="serve /metrics, /healthz and /readyz on this port while "
        "draining (0: pick an ephemeral port; printed to stderr)",
    )
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="compose and print one job envelope"
    )
    submit.add_argument("--id", default="job-000000", help="job id")
    submit.add_argument(
        "--kind", choices=JOB_KINDS, default="workload", help="job kind"
    )
    submit.add_argument("--tenant", default="default", help="tenant name")
    submit.add_argument(
        "--priority", type=int, default=1,
        help="priority (lower runs first, default 1)",
    )
    submit.add_argument(
        "--deadline", type=float, default=None,
        help="deadline in seconds from submission (default none)",
    )
    submit.add_argument("--config", default=None, help="kernel config name")
    submit.add_argument(
        "--workload", default=None, help="workload name (workload jobs)"
    )
    submit.add_argument(
        "--attack", default=None, help="attack name (attack jobs)"
    )
    submit.add_argument(
        "--param", action="append", type=_parse_param, metavar="K=V",
        help="extra job parameter (JSON value or bare string)",
    )
    submit.set_defaults(func=_cmd_submit)

    loadgen = sub.add_parser(
        "loadgen", help="drive a seeded job mix; write BENCH_fleet.json"
    )
    loadgen.add_argument("--seed", type=int, default=0, help="mix seed")
    loadgen.add_argument(
        "--jobs", type=int, default=120, help="jobs to generate (default 120)"
    )
    _add_fleet_flags(loadgen)
    loadgen.add_argument(
        "--inject-crash", type=int, default=1,
        help="worker crashes to inject mid-run (default 1)",
    )
    loadgen.add_argument(
        "--cold-sample", type=int, default=8,
        help="probe sessions replayed warm and cold for the ratio",
    )
    loadgen.add_argument(
        "--output", default=None, help="write the report here (JSON)"
    )
    loadgen.add_argument(
        "--json", action="store_true",
        help="print the full report even when --output is given",
    )
    loadgen.add_argument(
        "--print-canonical", action="store_true",
        help="also print the canonical (timing-stripped) report",
    )
    loadgen.add_argument(
        "--spans", action="store_true",
        help="record distributed spans and the span-overhead probe",
    )
    loadgen.add_argument(
        "--flightrec", action="store_true",
        help="attach crash flight recorders to workers",
    )
    loadgen.add_argument(
        "--spans-output", default=None,
        help="write the merged span export here (implies --spans)",
    )
    loadgen.add_argument(
        "--trace-output", default=None,
        help="write the span export as Chrome trace JSON (implies --spans)",
    )
    loadgen.add_argument(
        "--flightrec-output", default=None, metavar="DIR",
        help="write harvested flight-recorder dumps into this directory "
        "(implies --flightrec)",
    )
    loadgen.add_argument(
        "--rollup-output", default=None,
        help="write the fleet-wide metrics rollup here (JSON)",
    )
    loadgen.set_defaults(func=_cmd_loadgen)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

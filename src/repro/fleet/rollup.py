"""Fleet-wide metrics rollup.

Every worker owns a private
:class:`~repro.telemetry.metrics.MetricsRegistry` (job counts,
per-tenant counters, fork-latency histograms, boot-cache gauges) and
ships its JSON snapshot home with each batch of results.  The
scheduler keeps the latest snapshot per worker incarnation — snapshots
are cumulative over a worker's life, so the last one subsumes the
rest, and a crashed worker's final snapshot still counts what it
served before dying.

:func:`merge_metrics` folds any number of those snapshots (plus the
scheduler's own registry) into one fleet-wide ``metrics-1`` document:

* **counters** sum;
* **histograms** merge exactly (counts, sums, min/max, bucket-wise);
* **gauges** sum when numeric (boot-cache template/boot/fork counts
  across workers are totals), last-wins otherwise.

The merged document round-trips through the same
:func:`repro.telemetry.schema.validate_metrics` validator as any
single-process export.
"""

from __future__ import annotations

from repro.telemetry.metrics import METRICS_SCHEMA

__all__ = ["merge_metrics"]


def _merge_histogram(into: dict, piece: dict) -> None:
    into["count"] = into.get("count", 0) + piece.get("count", 0)
    into["sum"] = into.get("sum", 0) + piece.get("sum", 0)
    for key, pick in (("min", min), ("max", max)):
        values = [v for v in (into.get(key), piece.get(key)) if v is not None]
        into[key] = pick(values) if values else None
    into["mean"] = into["sum"] / into["count"] if into["count"] else 0.0
    buckets = into.setdefault("buckets", {})
    for bound, count in piece.get("buckets", {}).items():
        buckets[bound] = buckets.get(bound, 0) + count


def _sorted_buckets(histogram: dict) -> dict:
    histogram["buckets"] = {
        bound: histogram["buckets"][bound]
        for bound in sorted(
            histogram.get("buckets", {}), key=lambda b: int(b[3:])
        )
    }
    return histogram


def merge_metrics(snapshots: list[dict]) -> dict:
    """Fold ``metrics-1`` snapshots into one fleet-wide document."""
    counters: dict[str, int] = {}
    gauges: dict[str, object] = {}
    histograms: dict[str, dict] = {}
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            current = gauges.get(name)
            numeric = isinstance(value, (int, float)) and not isinstance(
                value, bool
            )
            # bool is an int subclass, but True + 3 is not a rollup any
            # caller means: a type conflict across workers degrades to
            # last-wins, same as any other non-numeric gauge.
            current_numeric = isinstance(
                current, (int, float)
            ) and not isinstance(current, bool)
            if numeric and current_numeric:
                gauges[name] = current + value
            else:
                gauges[name] = value
        for name, piece in snapshot.get("histograms", {}).items():
            _merge_histogram(histograms.setdefault(name, {}), piece)
    return {
        "schema": METRICS_SCHEMA,
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": {
            name: _sorted_buckets(histogram)
            for name, histogram in sorted(histograms.items())
        },
    }

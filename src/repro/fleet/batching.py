"""Batching policy: which jobs may share one dispatch.

Forking is only cheap when the template is warm, and templates are
keyed by kernel configuration — so the scheduler batches jobs whose
:func:`batch_key` matches and ships them to one worker in one message.
Every job in the batch after the first is served from the template the
first one booted (or found warm), which is what turns a pile of short
sessions into fork-rate-limited work instead of boot-rate-limited work.

``workload`` and ``attack`` jobs share a key per kernel config (an
attack against ``full`` and a workload on ``full`` fork the same
booted template).  ``fuzz`` batches are config-less — they build their
own machines per case — and group only with each other so they never
dilute a machine-affine batch.
"""

from __future__ import annotations

__all__ = ["batch_key", "plan_batches"]


def batch_key(job: dict) -> tuple:
    """Template-affinity key: jobs with equal keys batch together."""
    if job.get("kind") == "fuzz":
        return ("fuzz",)
    return ("machine", job.get("params", {}).get("config", "full"))


def plan_batches(jobs: list[dict], batch_size: int) -> list[list[dict]]:
    """Greedy batch plan over an ordered job list (reference policy).

    The live scheduler batches incrementally out of the priority queue
    (:meth:`repro.fleet.queue.JobQueue.pop_batch`); this function is
    the same policy applied to a static list — used by tests and by
    ``serve`` in sequential mode to report what the batches were.
    """
    if batch_size < 1:
        raise ValueError(f"need a positive batch size, got {batch_size}")
    batches: list[list[dict]] = []
    pending = list(jobs)
    while pending:
        head = pending.pop(0)
        key = batch_key(head)
        batch = [head]
        rest = []
        for job in pending:
            if len(batch) < batch_size and batch_key(job) == key:
                batch.append(job)
            else:
                rest.append(job)
        pending = rest
        batches.append(batch)
    return batches

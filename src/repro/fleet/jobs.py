"""Job kinds and their in-worker execution.

A fleet job is one of three shapes of work, all short-lived and all
answered from warm state:

* ``workload`` — run a small named user program (``exit`` | ``alu`` |
  ``storm``) on a named kernel config to completion and report the
  architectural outcome;
* ``attack`` — run one Table-4 penetration test against a config and
  report the verdict;
* ``fuzz`` — run a miniature differential fuzz batch (a seeded
  :class:`~repro.fuzz.campaign.Campaign`) and report divergences and
  coverage counts.

Every payload is a pure function of the job parameters: workloads fork
a booted template copy-on-write (bit-identical to a cold boot going
forward), attacks are deterministic by construction, and fuzz batches
are seeded.  That is what lets the load generator digest results across
runs and across scheduling orders.

:class:`JobContext` is the warm state one worker accumulates: a bounded
:class:`~repro.kernel.BootCache` of booted templates, a build cache of
kernel images keyed by what the job asked for, and the worker's metrics
registry (fork latency, per-tenant counters, job counts).
"""

from __future__ import annotations

import time
from contextlib import nullcontext

from repro.compiler.ir import Const
from repro.kernel import BootCache, KernelConfig, KernelSession
from repro.kernel.build import build_kernel
from repro.kernel.structs import SYS_GETPPID
from repro.telemetry.metrics import MetricsRegistry

__all__ = [
    "ATTACKS",
    "CONFIGS",
    "WORKLOAD_BUILDERS",
    "JobContext",
    "execute_job",
]

#: Per-job step budget: generous for the short sessions the fleet
#: serves, small enough that a runaway guest cannot wedge a worker.
JOB_STEP_BUDGET = 4_000_000

CONFIGS = {
    "baseline": KernelConfig.baseline,
    "ra": KernelConfig.ra_only,
    "fp": KernelConfig.fp_only,
    "noncontrol": KernelConfig.noncontrol_only,
    "full": KernelConfig.full,
}


def _exit_module(params: dict):
    from repro.bench.workloads.base import make_user_module

    code = int(params.get("code", 42)) & 0xFF

    def body(lb):
        lb.exit(Const(code))

    return make_user_module(body)


def _alu_module(params: dict):
    from repro.bench.workloads.base import make_user_module

    iterations = int(params.get("iterations", 32))

    def body(lb):
        acc = lb.accumulate()

        def step(lb2, i):
            b = lb2.b
            mixed = b.xor(b.mul(i, i), b.shl(i, Const(3)))
            lb2.add_into(acc, b.and_(mixed, Const(0xFFFF)))

        lb.loop(iterations, step)
        lb.exit(Const(0))

    return make_user_module(body)


def _storm_module(params: dict):
    from repro.bench.workloads.base import make_user_module

    iterations = int(params.get("iterations", 8))

    def body(lb):
        acc = lb.accumulate()
        lb.loop(
            iterations,
            lambda lb2, i: lb2.add_into(acc, lb2.syscall(SYS_GETPPID)),
        )
        lb.exit(Const(0))

    return make_user_module(body)


WORKLOAD_BUILDERS = {
    "exit": _exit_module,
    "alu": _alu_module,
    "storm": _storm_module,
}


def _attack_classes() -> dict:
    from repro.attacks.corruption import CorruptionAttack
    from repro.attacks.jop import JopAttack
    from repro.attacks.leak import LeakAttack
    from repro.attacks.privilege import PrivilegeEscalationAttack
    from repro.attacks.rop import RopAttack
    from repro.attacks.selinux_bypass import SelinuxBypassAttack
    from repro.attacks.substitution import SubstitutionAttack

    return {
        "rop": RopAttack,
        "jop": JopAttack,
        "corruption": CorruptionAttack,
        "leak": LeakAttack,
        "privilege": PrivilegeEscalationAttack,
        "selinux": SelinuxBypassAttack,
        "substitution": SubstitutionAttack,
    }


#: Short attack names the ``attack`` job kind accepts.
ATTACKS = tuple(sorted(_attack_classes()))


class JobError(Exception):
    """A job could not be executed (bad parameters, unknown kind)."""


class JobContext:
    """Warm per-worker state: boot templates, built images, metrics."""

    def __init__(self, metrics: MetricsRegistry | None = None):
        self.boot_cache = BootCache()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._images: dict[tuple, object] = {}
        #: Observability attachments installed by the worker (or the
        #: sequential scheduler): a SpanRecorder whose innermost open
        #: span is the current job's ``execute``, and a FlightRecorder
        #: ring.  ``None`` means the plane is off — the job path then
        #: pays nothing.
        self.spans = None
        self.flightrec = None

    def _config(self, params: dict) -> KernelConfig:
        name = params.get("config", "full")
        factory = CONFIGS.get(name)
        if factory is None:
            raise JobError(f"unknown kernel config {name!r}")
        return factory()

    def image_for(self, params: dict):
        """The built kernel+user image for a workload job, cached.

        The image depends only on the job parameters, so equal requests
        (the common case under batching) share one build.
        """
        workload = params.get("workload", "exit")
        builder = WORKLOAD_BUILDERS.get(workload)
        if builder is None:
            raise JobError(f"unknown workload {workload!r}")
        key = (
            params.get("config", "full"),
            workload,
            int(params.get("iterations", 0)),
            int(params.get("code", 42)),
        )
        image = self._images.get(key)
        if image is None:
            image = build_kernel(self._config(params), builder(params))
            self._images[key] = image
        return image


# -- kind executors ---------------------------------------------------------------


def _run_workload(params: dict, context: JobContext) -> dict:
    image = context.image_for(params)
    spans = context.spans
    start = time.perf_counter()
    with spans.span("fork") if spans is not None else nullcontext():
        session = KernelSession(
            image.config, image=image, boot_cache=context.boot_cache
        )
    context.metrics.observe(
        "fleet.fork_us", (time.perf_counter() - start) * 1e6
    )
    with spans.span("run") if spans is not None else nullcontext():
        result = session.run(int(params.get("max_steps", JOB_STEP_BUDGET)))
    return {
        "halt": getattr(result.halt_reason, "value", None),
        "exit_code": result.exit_code,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "console": result.console,
        "panicked": result.panicked,
    }


def _run_attack(params: dict, context: JobContext) -> dict:
    from repro.attacks.suite import run_attack

    name = params.get("attack", "rop")
    attack_cls = _attack_classes().get(name)
    if attack_cls is None:
        raise JobError(f"unknown attack {name!r}")
    config = context._config(params)
    result = run_attack(attack_cls, config, context.boot_cache)
    return {
        "attack": result.attack,
        "config": result.config,
        "succeeded": result.succeeded,
        "blocked": result.blocked,
        "outcome": result.outcome,
    }


def _run_fuzz(params: dict, context: JobContext) -> dict:
    from repro.fuzz.campaign import Campaign, FuzzConfig

    config = FuzzConfig(
        seed=int(params.get("seed", 0)),
        budget=int(params.get("budget", 4)),
        emit_dir=None,
    )
    report = Campaign(config).run()
    return {
        "seed": config.seed,
        "budget": config.budget,
        "divergences": report["divergences"],
        "interesting": report["corpus"]["interesting"],
        "coverage": {
            key: report["coverage"][key]
            for key in ("instruction_pairs", "trap_edges", "clb_events")
        },
    }


_EXECUTORS = {
    "workload": _run_workload,
    "attack": _run_attack,
    "fuzz": _run_fuzz,
}


def execute_job(job: dict, context: JobContext) -> tuple[str, dict | None, str | None]:
    """Run one job; return ``(status, payload, error)``.

    Exceptions never escape: a failing job degrades to an ``error``
    result so one bad request cannot take a worker (and its warm
    templates) down with it.
    """
    executor = _EXECUTORS.get(job.get("kind"))
    context.metrics.inc("fleet.jobs.total")
    context.metrics.inc(f"fleet.kind.{job.get('kind')}")
    context.metrics.inc(f"fleet.tenant.{job.get('tenant', 'default')}")
    flightrec = context.flightrec
    if flightrec is not None:
        flightrec.note(
            "job.start",
            job=str(job.get("id")),
            job_kind=str(job.get("kind")),
        )
    if executor is None:
        context.metrics.inc("fleet.jobs.error")
        if flightrec is not None:
            flightrec.note(
                "job.done", job=str(job.get("id")), status="error"
            )
        return "error", None, f"unknown job kind {job.get('kind')!r}"
    try:
        payload = executor(job.get("params", {}), context)
    except Exception as error:  # noqa: BLE001 — worker must survive any job
        context.metrics.inc("fleet.jobs.error")
        if flightrec is not None:
            flightrec.note(
                "job.done", job=str(job.get("id")), status="error"
            )
        return "error", None, f"{type(error).__name__}: {error}"
    context.metrics.inc("fleet.jobs.ok")
    if flightrec is not None:
        flightrec.note("job.done", job=str(job.get("id")), status="ok")
    return "ok", payload, None

"""Bounded priority job queue with deadlines and batch extraction.

Jobs are ordered by ``(priority, submission sequence)`` — lower
priority numbers run first, FIFO within a priority.  The queue is
bounded: pushing past ``limit`` raises :class:`QueueFull`, which the
serving layer surfaces to the caller instead of buffering without
bound (backpressure, not amnesia).

A job with ``deadline_s`` carries an absolute expiry stamped at first
enqueue; the deadline survives crash-requeues (a retried job does not
get a fresh budget).  Expired jobs are returned separately by
:meth:`JobQueue.pop_batch` so the scheduler can answer them with an
``expired`` envelope without wasting a fork on them.

:meth:`JobQueue.pop_batch` implements the dispatch side of the
batching policy: it takes the best-priority runnable job, then fills
the batch with queued jobs sharing its
:func:`~repro.fleet.batching.batch_key`, best-priority first.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field

from repro.fleet.batching import batch_key

__all__ = ["JobQueue", "PendingJob", "QueueFull"]


class QueueFull(Exception):
    """The bounded queue rejected a submission (backpressure)."""


@dataclass(order=True)
class PendingJob:
    """One queued job plus its scheduling state."""

    priority: int
    seq: int
    job: dict = field(compare=False)
    #: Monotonic stamp of the first enqueue (latency measurement base).
    enqueued_at: float = field(compare=False, default=0.0)
    #: Absolute monotonic expiry, stamped once at first enqueue.
    deadline_at: float | None = field(compare=False, default=None)
    #: Dispatch attempts so far (1 on first dispatch).
    attempts: int = field(compare=False, default=0)

    def expired(self, now: float) -> bool:
        return self.deadline_at is not None and now >= self.deadline_at


class JobQueue:
    """Bounded priority queue handing out template-affine batches."""

    def __init__(self, limit: int = 4096, clock=time.monotonic):
        if limit < 1:
            raise ValueError(f"need a positive queue limit, got {limit}")
        self.limit = limit
        self._clock = clock
        self._heap: list[PendingJob] = []
        self._seq = itertools.count()
        #: High-water mark of queued jobs (reported in fleet metrics).
        self.peak_depth = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, job: dict, now: float | None = None) -> PendingJob:
        """Enqueue a fresh job; raises :class:`QueueFull` when bounded out."""
        if len(self._heap) >= self.limit:
            raise QueueFull(
                f"job queue at its limit of {self.limit} entries"
            )
        now = self._clock() if now is None else now
        deadline = job.get("deadline_s")
        pending = PendingJob(
            priority=int(job.get("priority", 1)),
            seq=next(self._seq),
            job=job,
            enqueued_at=now,
            deadline_at=(now + deadline) if deadline is not None else None,
        )
        heapq.heappush(self._heap, pending)
        self.peak_depth = max(self.peak_depth, len(self._heap))
        return pending

    def requeue(self, pending: PendingJob) -> None:
        """Put a dispatched job back (its worker died mid-batch).

        Scheduling state — sequence, enqueue stamp, deadline, attempt
        count — is preserved: the retry keeps its place in the priority
        order and its original deadline.  Requeues bypass the bound; a
        job already admitted is never bounced back out.
        """
        heapq.heappush(self._heap, pending)
        self.peak_depth = max(self.peak_depth, len(self._heap))

    def pop_batch(
        self, batch_size: int, now: float | None = None
    ) -> tuple[list[PendingJob], list[PendingJob]]:
        """Extract ``(expired, batch)`` from the queue head.

        Expired jobs found while scanning are drained unconditionally;
        the batch holds up to ``batch_size`` live jobs sharing the
        batch key of the best-priority live job.
        """
        now = self._clock() if now is None else now
        expired: list[PendingJob] = []
        batch: list[PendingJob] = []
        skipped: list[PendingJob] = []
        key = None
        while self._heap and len(batch) < batch_size:
            pending = heapq.heappop(self._heap)
            if pending.expired(now):
                expired.append(pending)
                continue
            this_key = batch_key(pending.job)
            if key is None:
                key = this_key
            if this_key == key:
                batch.append(pending)
            else:
                skipped.append(pending)
        for pending in skipped:
            heapq.heappush(self._heap, pending)
        return expired, batch

"""Deterministic open-loop load generator → ``BENCH_fleet.json``.

``python -m repro.fleet loadgen --seed 0`` builds a seeded mix of
short jobs (mostly workload runs, a slice of attack sessions, a few
fuzz batches across several tenants and priorities), prewarms the
serving state — every distinct kernel image built once, every kernel
configuration booted once — and then drives the whole mix through a
:class:`~repro.fleet.scheduler.Fleet`, by default with one injected
worker crash to prove the requeue path on every run.

The emitted report separates what must be deterministic from what
cannot be: job outcomes (digested over every result payload), result
counts and the mix are pure functions of the seed; throughput,
latency percentiles, the cold/warm comparison and the rolled-up fleet
metrics live under ``timing`` and are stripped by
:func:`canonical_json` — so two runs of the same seed compare
bit-identically, exactly like a :mod:`repro.fuzz.dist` campaign
report.

The cold/warm comparison replays one probe session two ways — warm
(the fleet's serving path: image-cache hit, COW fork of the booted
template) and cold (no warm state: build the user program, link the
image, boot from reset) — and reports the throughput ratio; it
isolates exactly the per-request cost the boot-once/fork-per-job
design removes.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from random import Random

from repro.fleet import worker as fleet_worker
from repro.fleet.jobs import JobContext
from repro.fleet.schema import (
    BENCH_FLEET_SCHEMA,
    SCHEMA_VERSION,
    deterministic_view,
    make_job,
)
from repro.fleet.scheduler import Fleet, FleetOptions, default_worker_count

__all__ = [
    "LoadgenOptions",
    "canonical_json",
    "generate_jobs",
    "run_loadgen",
]


@dataclass
class LoadgenOptions:
    """Knobs for one load-generator run."""

    seed: int = 0
    jobs: int = 120
    workers: int | None = None
    batch_size: int = 8
    queue_limit: int = 4096
    recycle_after: int | None = None
    #: Worker crashes injected mid-run (0 disables fault injection).
    inject_crash: int = 1
    sequential: bool = False
    #: Probe sessions replayed warm and cold for the fork/boot ratio.
    cold_sample: int = 8
    tenants: int = 4
    #: Record distributed spans and run the span-overhead probe.
    spans: bool = False
    #: Attach crash flight recorders to workers.
    flightrec: bool = False

    def resolved_workers(self) -> int:
        if self.workers is not None:
            return max(1, self.workers)
        return min(default_worker_count(), 4)


#: The request mix: mostly short workload sessions, a slice of attack
#: sessions, a few fuzz batches — weights picked per job by the seeded
#: RNG, so the mix is a pure function of ``(seed, jobs, tenants)``.
_KIND_WEIGHTS = (("workload", 80), ("attack", 12), ("fuzz", 8))
_CONFIG_WEIGHTS = (("baseline", 65), ("full", 35))
_WORKLOAD_WEIGHTS = (("exit", 50), ("alu", 30), ("storm", 20))
_ATTACKS = ("rop", "jop")


def _weighted(rng: Random, table) -> str:
    total = sum(weight for _, weight in table)
    pick = rng.randrange(total)
    for name, weight in table:
        if pick < weight:
            return name
        pick -= weight
    raise AssertionError("unreachable")


def generate_jobs(seed: int, count: int, tenants: int = 4) -> list[dict]:
    """The seeded open-loop job mix, in submission order."""
    rng = Random(f"repro.fleet.loadgen:{seed}")
    jobs = []
    for index in range(count):
        kind = _weighted(rng, _KIND_WEIGHTS)
        if kind == "workload":
            workload = _weighted(rng, _WORKLOAD_WEIGHTS)
            params = {
                "config": _weighted(rng, _CONFIG_WEIGHTS),
                "workload": workload,
            }
            if workload == "exit":
                params["code"] = rng.randrange(100)
            elif workload == "alu":
                params["iterations"] = rng.choice((16, 32, 64))
            else:
                params["iterations"] = rng.choice((4, 8))
        elif kind == "attack":
            params = {
                "attack": rng.choice(_ATTACKS),
                "config": _weighted(rng, _CONFIG_WEIGHTS),
            }
        else:
            params = {
                "seed": rng.getrandbits(32),
                "budget": rng.choice((3, 4)),
            }
        jobs.append(make_job(
            f"job-{index:06d}",
            kind,
            params,
            tenant=f"tenant-{rng.randrange(tenants)}",
            priority=rng.choice((0, 1, 1, 1, 2)),
        ))
    return jobs


def _prewarm(jobs: list[dict]) -> tuple[JobContext, float]:
    """Boot-once warm state: every image built, every config booted."""
    from repro.kernel.api import DEFAULT_MASTER_KEY

    context = JobContext()
    start = time.perf_counter()
    booted = set()
    for job in jobs:
        if job["kind"] != "workload":
            continue
        image = context.image_for(job["params"])
        config = job["params"].get("config", "full")
        if config not in booted:
            booted.add(config)
            context.boot_cache.machine_for(image, DEFAULT_MASTER_KEY)
    return context, time.perf_counter() - start


#: The fork-vs-boot probe: the shortest session on the fully protected
#: kernel, where boot pays the most (key generation, register state
#: encryption) and the run itself costs almost nothing — isolating
#: exactly the per-session cost the boot-once/fork-per-job design
#: removes.
_PROBE_PARAMS = {"config": "full", "workload": "exit", "code": 42}


def _fork_vs_boot(sample: int, context: JobContext) -> dict:
    """Replay the probe session warm and cold.

    Warm is the fleet's serving path: image-cache hit, COW fork of the
    booted template, run.  Cold is what answering the same request with
    no warm state costs: build the user program, link the image (the
    kernel side stays cached — it is process-global either way), boot
    from reset, run.  The ratio is taken over best-of-N per-session
    times so an ill-timed scheduler or allocator hiccup cannot skew it.
    """
    import gc

    from repro.fleet.jobs import (
        CONFIGS,
        JOB_STEP_BUDGET,
        WORKLOAD_BUILDERS,
    )
    from repro.kernel import KernelSession
    from repro.kernel.api import DEFAULT_MASTER_KEY
    from repro.kernel.build import build_kernel

    image = context.image_for(_PROBE_PARAMS)
    # Template boot happens outside the timed window: the warm replay
    # measures fork cost, not the amortized one-time boot.
    context.boot_cache.machine_for(image, DEFAULT_MASTER_KEY)

    def warm_session():
        return KernelSession(
            image.config, image=image, boot_cache=context.boot_cache
        )

    def cold_session():
        module = WORKLOAD_BUILDERS["exit"](_PROBE_PARAMS)
        cold_image = build_kernel(
            CONFIGS[_PROBE_PARAMS["config"]](), module
        )
        return KernelSession(cold_image.config, image=cold_image)

    def replay(make_session) -> dict:
        times = []
        for _ in range(sample):
            start = time.perf_counter()
            make_session().run(JOB_STEP_BUDGET)
            times.append(time.perf_counter() - start)
        wall = sum(times)
        return {
            "sessions": sample,
            "wall_seconds": wall,
            "sessions_per_second": sample / wall if wall else 0.0,
            "best_ms": min(times) * 1e3 if times else 0.0,
        }

    # Pause the collector so a GC pass over the prewarm phase's garbage
    # cannot land inside either timed window.
    gc.collect()
    enabled = gc.isenabled()
    gc.disable()
    try:
        warm = replay(warm_session)
        cold = replay(cold_session)
    finally:
        if enabled:
            gc.enable()
    return {
        "probe": dict(_PROBE_PARAMS),
        "warm": warm,
        "cold": cold,
        "cold_vs_warm": (
            cold["best_ms"] / warm["best_ms"] if warm["best_ms"] else 0.0
        ),
    }


def _span_overhead(sample: int, context: JobContext) -> dict:
    """Measure what spans-on costs the probe session, as a percentage.

    Per served job the decoration adds a fixed set of operations — an
    execute span, nested fork and run spans, two flight-recorder
    notes, the per-batch drain share — and nothing else touches the
    job path.  Comparing full traced-vs-bare session replays drowns
    that microsecond-scale cost in milliseconds of scheduler noise, so
    the probe measures the two terms separately where each is stable:
    the decoration in a tight loop (thousands of repetitions), the
    session as a best-of-N replay (the :func:`_fork_vs_boot`
    discipline).  Their ratio is ``span_overhead_pct`` — the number
    the documented ≤5% budget test and the ``fleet.span_overhead_pct``
    trend lane watch.
    """
    import gc

    from repro.fleet.jobs import JOB_STEP_BUDGET
    from repro.kernel import KernelSession
    from repro.kernel.api import DEFAULT_MASTER_KEY
    from repro.telemetry.flightrec import FlightRecorder
    from repro.telemetry.spans import SpanRecorder, mint_trace_id

    image = context.image_for(_PROBE_PARAMS)
    context.boot_cache.machine_for(image, DEFAULT_MASTER_KEY)
    recorder = SpanRecorder("probe")
    flight = FlightRecorder("probe")
    trace_id = mint_trace_id("span-probe")

    def session_replay() -> None:
        KernelSession(
            image.config, image=image, boot_cache=context.boot_cache
        ).run(JOB_STEP_BUDGET)

    def decorate_once() -> None:
        with recorder.span(
            "execute", trace_id=trace_id, job="span-probe",
            job_kind="workload",
        ):
            flight.note("job.start", job="span-probe", job_kind="workload")
            with recorder.span("fork"):
                pass
            with recorder.span("run"):
                pass
            flight.note("job.done", job="span-probe", status="ok")
        recorder.drain()

    reps = max(256, sample * 256)
    gc.collect()
    enabled = gc.isenabled()
    gc.disable()
    try:
        session_times = []
        for _ in range(max(1, sample)):
            start = time.perf_counter()
            session_replay()
            session_times.append(time.perf_counter() - start)
        decorate_once()  # warm the recorder paths outside the window
        start = time.perf_counter()
        for _ in range(reps):
            decorate_once()
        decoration_s = (time.perf_counter() - start) / reps
    finally:
        if enabled:
            gc.enable()
    session_best = min(session_times)
    overhead = (
        decoration_s / session_best * 100.0 if session_best else 0.0
    )
    return {
        "sessions": len(session_times),
        "decoration_reps": reps,
        "session_best_ms": session_best * 1e3,
        "decoration_us": decoration_s * 1e6,
        "span_overhead_pct": overhead,
    }


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def _results_digest(results: dict[str, dict]) -> str:
    views = [deterministic_view(results[key]) for key in sorted(results)]
    blob = json.dumps(views, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def run_loadgen(
    options: LoadgenOptions | None = None, extras: dict | None = None
) -> dict:
    """Drive the seeded mix through a fleet; return the bench report.

    Pass an ``extras`` dict to also receive the observability
    artifacts: the merged span export, harvested flight-recorder
    dumps, the metrics rollup and the health report.  They live
    outside the report because they are wall-clock data — the report's
    canonical form must stay a pure function of the seed.
    """
    options = options or LoadgenOptions()
    jobs = generate_jobs(options.seed, options.jobs, options.tenants)
    workers = options.resolved_workers()

    context, warmup_seconds = _prewarm(jobs)
    comparison = _fork_vs_boot(options.cold_sample, context)
    overhead = (
        _span_overhead(options.cold_sample, context)
        if options.spans else None
    )

    fleet = Fleet(
        FleetOptions(
            workers=workers,
            batch_size=options.batch_size,
            queue_limit=options.queue_limit,
            recycle_after=options.recycle_after,
            parallel=not options.sequential,
            spans=options.spans,
            flightrec=options.flightrec,
        ),
        context=context if options.sequential else None,
    )
    # Deterministically spaced crash victims: the workers serving these
    # jobs die mid-batch and the batches must come back requeued.
    for index in range(options.inject_crash):
        victim = options.jobs * (index + 1) // (options.inject_crash + 1)
        fleet.inject_crash_on(f"job-{victim:06d}")

    if not options.sequential:
        fleet_worker.prewarm(context)
    try:
        start = time.perf_counter()
        results = fleet.run_jobs(jobs)
        wall = time.perf_counter() - start
    finally:
        fleet_worker.prewarm(None)

    by_status: dict[str, int] = {"ok": 0, "error": 0, "expired": 0}
    per_kind: dict[str, int] = {}
    per_tenant: dict[str, int] = {}
    mix: dict[str, int] = {}
    latencies = []
    for job in jobs:
        mix[job["kind"]] = mix.get(job["kind"], 0) + 1
        per_tenant[job["tenant"]] = per_tenant.get(job["tenant"], 0) + 1
    for result in results.values():
        by_status[result["status"]] = by_status.get(result["status"], 0) + 1
        if result["status"] == "ok":
            per_kind[result["kind"]] = per_kind.get(result["kind"], 0) + 1
        latencies.append(result["timing"]["total_ms"])

    lost = options.jobs - len(results)
    jobs_per_second = len(results) / wall if wall else 0.0
    fleet_metrics = fleet.metrics_snapshot()
    counters = fleet_metrics.get("counters", {})

    report = {
        "schema": BENCH_FLEET_SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "seed": options.seed,
        "jobs": options.jobs,
        "workers": workers,
        "batch_size": options.batch_size,
        "tenants": options.tenants,
        "sequential": options.sequential,
        "crashes_injected": options.inject_crash,
        "mix": dict(sorted(mix.items())),
        "per_kind": dict(sorted(per_kind.items())),
        "per_tenant": dict(sorted(per_tenant.items())),
        "results": {
            "ok": by_status.get("ok", 0),
            "error": by_status.get("error", 0),
            "expired": by_status.get("expired", 0),
            "lost": lost,
        },
        "results_digest": _results_digest(results),
        "code_cache": fleet.code_cache_snapshot(),
        "timing": {
            "warmup_seconds": warmup_seconds,
            "wall_seconds": wall,
            "jobs_per_second": jobs_per_second,
            "sessions_per_minute": jobs_per_second * 60.0,
            "warm": comparison["warm"],
            "cold": comparison["cold"],
            "cold_vs_warm": comparison["cold_vs_warm"],
            "latency_ms": {
                "mean": (
                    sum(latencies) / len(latencies) if latencies else 0.0
                ),
                "p50": _percentile(latencies, 0.50),
                "p90": _percentile(latencies, 0.90),
                "p99": _percentile(latencies, 0.99),
                "max": max(latencies) if latencies else 0.0,
            },
            "jobs_requeued": counters.get("fleet.jobs.requeued", 0),
            "workers_crashed": counters.get("fleet.workers.crashed", 0),
            "workers_recycled": counters.get("fleet.workers.recycled", 0),
            "queue_peak": fleet.queue.peak_depth,
            "fleet_metrics": fleet_metrics,
        },
    }
    # Lane markers: present only when the plane is on, so reports from
    # undecorated runs keep their exact historical shape (the trend
    # gate compares sources by equality).
    if options.spans:
        report["spans"] = True
        report["timing"]["span_probe"] = overhead
        report["timing"]["span_overhead_pct"] = (
            overhead["span_overhead_pct"]
        )
    if options.flightrec:
        report["flightrec"] = True
    if extras is not None:
        extras["span_export"] = fleet.span_export()
        extras["flight_dumps"] = list(fleet.flight_dumps)
        extras["rollup"] = fleet_metrics
        extras["health"] = fleet.health_snapshot()
    return report


def canonical_json(report: dict, include_timing: bool = False) -> str:
    """Deterministic serialized form: sorted keys, timing stripped."""
    document = report if include_timing else {
        key: value for key, value in report.items() if key != "timing"
    }
    return json.dumps(document, indent=2, sort_keys=True)

"""The fleet orchestrator: queue in front, warm workers behind.

:class:`Fleet` accepts concurrent job requests (workload runs, attack
sessions, fuzz batches), schedules them over a pool of long-lived
worker processes, and answers from warm state:

* jobs wait in a bounded priority queue (:mod:`repro.fleet.queue`) and
  leave it in template-affine batches (:mod:`repro.fleet.batching`) —
  every job of a batch forks the same booted kernel template inside
  one worker;
* each worker boots a configuration at most once
  (:class:`~repro.kernel.BootCache`) and serves every assigned job
  from a copy-on-write fork of that warm snapshot;
* a worker that crashes mid-batch (or goes silent past
  ``worker_timeout``) is replaced and its in-flight jobs are requeued
  with their original priority, deadline and latency clock — up to
  ``max_attempts`` dispatches, after which a job degrades to an
  ``error`` result instead of crash-looping the pool;
* a worker that has served ``recycle_after`` jobs finishes its batch,
  announces it is recycling, and is gracefully replaced (bounded
  memory growth without dropping anything);
* per-worker metrics snapshots ride home on every reply and are rolled
  up (:mod:`repro.fleet.rollup`) with the scheduler's own registry
  into one fleet-wide metrics document.

``parallel=False`` runs the identical scheduling logic against one
in-process :class:`~repro.fleet.jobs.JobContext` — same batches, same
results, no processes — which is what makes the serving layer's
determinism testable in-suite.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field

from repro.fleet.jobs import JobContext
from repro.fleet.queue import JobQueue, PendingJob
from repro.fleet.rollup import merge_metrics
from repro.fleet.schema import make_result, validate_job
from repro.fleet.worker import WorkerOptions, serve_batch, worker_main
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["Fleet", "FleetError", "FleetOptions", "default_worker_count"]

#: Upper bound on the worker pool; past this, process overhead beats
#: any batching win for the short sessions the fleet serves.
MAX_WORKERS = 32


def default_worker_count() -> int:
    """Pool size when the caller does not choose: one worker per core,
    clamped to ``[1, MAX_WORKERS]`` (``os.cpu_count()`` may be None)."""
    return max(1, min(os.cpu_count() or 1, MAX_WORKERS))


class FleetError(Exception):
    """A request the fleet could not accept."""


@dataclass
class FleetOptions:
    """Knobs for one fleet instance."""

    workers: int = field(default_factory=default_worker_count)
    #: Most jobs shipped to a worker in one message (template reuse
    #: amortizes over the batch; latency caps it).
    batch_size: int = 8
    queue_limit: int = 4096
    #: Gracefully replace a worker after this many jobs (None: never).
    recycle_after: int | None = None
    #: Dispatches a job may consume before degrading to an error.
    max_attempts: int = 3
    #: Seconds a worker may sit on one batch before it is declared dead.
    worker_timeout: float | None = 300.0
    #: False: run every batch in-process (deterministic test mode).
    parallel: bool = True


class _WorkerHandle:
    """Parent-side state for one live worker incarnation."""

    def __init__(self, incarnation: int, process, conn):
        self.incarnation = incarnation
        self.process = process
        self.conn = conn
        #: The batch currently on the worker (None: idle).
        self.inflight: list[PendingJob] | None = None
        self.sent_at: float = 0.0

    @property
    def busy(self) -> bool:
        return self.inflight is not None


class Fleet:
    """One serving instance: submit jobs, drain, read the rollup."""

    def __init__(
        self,
        options: FleetOptions | None = None,
        context: JobContext | None = None,
    ):
        self.options = options or FleetOptions()
        if self.options.workers < 1:
            raise FleetError(
                f"need at least one worker, got {self.options.workers}"
            )
        if self.options.batch_size < 1:
            raise FleetError(
                f"need a positive batch size, got {self.options.batch_size}"
            )
        self.queue = JobQueue(limit=self.options.queue_limit)
        self.metrics = MetricsRegistry()
        self.results: dict[str, dict] = {}
        #: Latest metrics snapshot per worker incarnation (a crashed
        #: worker's last snapshot still counts what it served).
        self.worker_snapshots: dict[int, dict] = {}
        self._workers: list[_WorkerHandle] = []
        self._incarnations = 0
        self._batch_ids = 0
        self._crash_ids: set[str] = set()
        self._seen_ids: set[str] = set()
        #: Sequential-mode execution context (ignored when parallel).
        self._context = context

    # -- submission --------------------------------------------------------------

    def submit(self, job: dict) -> None:
        """Validate and enqueue one job envelope.

        Raises :class:`FleetError` on a malformed or duplicate-id job
        and :class:`~repro.fleet.queue.QueueFull` when the bounded
        queue pushes back.
        """
        problems = validate_job(job)
        if problems:
            raise FleetError(
                f"invalid job envelope: {'; '.join(problems[:3])}"
            )
        if job["id"] in self._seen_ids:
            raise FleetError(f"duplicate job id {job['id']!r}")
        self._seen_ids.add(job["id"])
        self.queue.push(job)
        self.metrics.inc("fleet.jobs.submitted")

    def inject_crash_on(self, job_id: str) -> None:
        """Fault injection: kill the worker that next receives this job.

        The marker is consumed at dispatch, so the requeued batch runs
        normally on the replacement worker — the injected fault models
        one crash, not a poisoned job.
        """
        self._crash_ids.add(job_id)

    # -- lifecycle ---------------------------------------------------------------

    def _spawn_worker(self) -> _WorkerHandle:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        incarnation = self._incarnations
        self._incarnations += 1
        process = ctx.Process(
            target=worker_main,
            args=(
                child_conn,
                incarnation,
                WorkerOptions(recycle_after=self.options.recycle_after),
            ),
            name=f"fleet-worker-{incarnation}",
        )
        process.start()
        child_conn.close()
        handle = _WorkerHandle(incarnation, process, parent_conn)
        self._workers.append(handle)
        self.metrics.inc("fleet.workers.spawned")
        return handle

    def start(self) -> None:
        if self.options.parallel and not self._workers:
            for _ in range(self.options.workers):
                self._spawn_worker()

    def stop(self) -> None:
        for handle in self._workers:
            try:
                handle.conn.send({"type": "stop"})
            except (BrokenPipeError, OSError):
                pass
            handle.conn.close()
        for handle in self._workers:
            handle.process.join(10)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(10)
        self._workers = []

    # -- result bookkeeping ------------------------------------------------------

    def _finish(self, pending: PendingJob, result: dict) -> None:
        total_ms = (time.monotonic() - pending.enqueued_at) * 1e3
        result.setdefault("timing", {})["total_ms"] = total_ms
        self.metrics.observe("fleet.latency_ms", total_ms)
        self.metrics.inc("fleet.jobs.completed")
        self.metrics.inc(f"fleet.status.{result['status']}")
        self.results[result["id"]] = result

    def _expire(self, pending: PendingJob) -> None:
        self._finish(pending, make_result(
            pending.job, "expired", None,
            error="deadline passed before dispatch",
            attempts=pending.attempts,
        ))

    def _fail(self, pending: PendingJob, reason: str) -> None:
        self._finish(pending, make_result(
            pending.job, "error", None,
            error=reason,
            attempts=pending.attempts,
        ))

    def _requeue_inflight(self, handle: _WorkerHandle, reason: str) -> None:
        for pending in handle.inflight or []:
            if pending.attempts >= self.options.max_attempts:
                self._fail(
                    pending,
                    f"gave up after {pending.attempts} attempts: {reason}",
                )
            else:
                self.queue.requeue(pending)
                self.metrics.inc("fleet.jobs.requeued")
        handle.inflight = None

    # -- parallel drain ----------------------------------------------------------

    def _dispatch(self, handle: _WorkerHandle) -> bool:
        expired, batch = self.queue.pop_batch(self.options.batch_size)
        for pending in expired:
            self._expire(pending)
        if not batch:
            return False
        crash = False
        for pending in batch:
            pending.attempts += 1
            if pending.job["id"] in self._crash_ids:
                self._crash_ids.discard(pending.job["id"])
                crash = True
        self._batch_ids += 1
        self.metrics.observe("fleet.queue.depth", len(self.queue))
        try:
            handle.conn.send({
                "type": "batch",
                "batch_id": self._batch_ids,
                "jobs": [pending.job for pending in batch],
                "attempts": [pending.attempts for pending in batch],
                "crash": crash,
            })
        except (BrokenPipeError, OSError):
            handle.inflight = batch
            self._on_worker_death(handle, "send failed (worker dead)")
            return True
        handle.inflight = batch
        handle.sent_at = time.monotonic()
        return True

    def _on_worker_death(self, handle: _WorkerHandle, reason: str) -> None:
        self.metrics.inc("fleet.workers.crashed")
        if handle.process.is_alive():
            handle.process.terminate()
        handle.process.join(10)
        handle.conn.close()
        self._workers.remove(handle)
        self._requeue_inflight(handle, reason)
        self._spawn_worker()

    def _on_reply(self, handle: _WorkerHandle, message: dict) -> None:
        inflight = handle.inflight or []
        by_id = {pending.job["id"]: pending for pending in inflight}
        handle.inflight = None
        self.worker_snapshots[message["worker"]] = message["metrics"]
        for result in message["results"]:
            pending = by_id.pop(result["id"])
            self._finish(pending, result)
        # Anything the worker did not answer (should not happen with a
        # well-behaved worker) goes back on the queue.
        for pending in by_id.values():
            self.queue.requeue(pending)
            self.metrics.inc("fleet.jobs.requeued")
        if message.get("recycling"):
            self.metrics.inc("fleet.workers.recycled")
            handle.conn.close()
            handle.process.join(10)
            self._workers.remove(handle)
            self._spawn_worker()

    def _drain_parallel(self) -> None:
        from multiprocessing.connection import wait as conn_wait

        self.start()
        while True:
            for handle in list(self._workers):
                if not handle.busy and len(self.queue):
                    self._dispatch(handle)
            busy = [handle for handle in self._workers if handle.busy]
            if not busy and not len(self.queue):
                break
            if not busy:
                # Only expired jobs were left; the loop above drained
                # them through pop_batch without dispatching.
                continue
            ready = conn_wait([handle.conn for handle in busy], timeout=0.2)
            now = time.monotonic()
            for handle in list(busy):
                if handle.conn in ready:
                    try:
                        message = handle.conn.recv()
                    except (EOFError, OSError):
                        self._on_worker_death(handle, "worker crashed")
                        continue
                    self._on_reply(handle, message)
                elif (
                    self.options.worker_timeout is not None
                    and now - handle.sent_at > self.options.worker_timeout
                ):
                    self._on_worker_death(handle, "worker timed out")

    # -- sequential drain --------------------------------------------------------

    def _drain_sequential(self) -> None:
        context = self._context or JobContext()
        self._context = context
        while len(self.queue):
            expired, batch = self.queue.pop_batch(self.options.batch_size)
            for pending in expired:
                self._expire(pending)
            if not batch:
                continue
            crash = False
            for pending in batch:
                pending.attempts += 1
                if pending.job["id"] in self._crash_ids:
                    self._crash_ids.discard(pending.job["id"])
                    crash = True
            self._batch_ids += 1
            self.metrics.observe("fleet.queue.depth", len(self.queue))
            if crash:
                # Simulated crash: the batch dies undone, exactly as a
                # parallel worker taking CRASH_EXIT would leave it.
                self.metrics.inc("fleet.workers.crashed")
                handle = _WorkerHandle(0, None, None)
                handle.inflight = batch
                self._requeue_inflight(handle, "worker crashed (injected)")
                continue
            message = {
                "batch_id": self._batch_ids,
                "jobs": [pending.job for pending in batch],
                "attempts": [pending.attempts for pending in batch],
            }
            for pending, result in zip(
                batch, serve_batch(message, context, worker_id=0)
            ):
                self._finish(pending, result)
        context.boot_cache.publish_metrics(context.metrics)
        self.worker_snapshots[0] = context.metrics.to_json()

    # -- public driving ----------------------------------------------------------

    def drain(self) -> dict[str, dict]:
        """Serve until the queue is empty and nothing is in flight."""
        if self.options.parallel:
            self._drain_parallel()
        else:
            self._drain_sequential()
        self.metrics.set("fleet.queue.peak", self.queue.peak_depth)
        return self.results

    def run_jobs(self, jobs: list[dict]) -> dict[str, dict]:
        """Convenience: submit everything, drain, stop workers."""
        try:
            for job in jobs:
                self.submit(job)
            return self.drain()
        finally:
            self.stop()

    def metrics_snapshot(self) -> dict:
        """Fleet-wide rollup: every worker's registry + the scheduler's."""
        return merge_metrics(
            list(self.worker_snapshots.values()) + [self.metrics.to_json()]
        )

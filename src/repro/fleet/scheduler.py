"""The fleet orchestrator: queue in front, warm workers behind.

:class:`Fleet` accepts concurrent job requests (workload runs, attack
sessions, fuzz batches), schedules them over a pool of long-lived
worker processes, and answers from warm state:

* jobs wait in a bounded priority queue (:mod:`repro.fleet.queue`) and
  leave it in template-affine batches (:mod:`repro.fleet.batching`) —
  every job of a batch forks the same booted kernel template inside
  one worker;
* each worker boots a configuration at most once
  (:class:`~repro.kernel.BootCache`) and serves every assigned job
  from a copy-on-write fork of that warm snapshot;
* a worker that crashes mid-batch (or goes silent past
  ``worker_timeout``) is replaced and its in-flight jobs are requeued
  with their original priority, deadline and latency clock — up to
  ``max_attempts`` dispatches, after which a job degrades to an
  ``error`` result instead of crash-looping the pool;
* a worker that has served ``recycle_after`` jobs finishes its batch,
  announces it is recycling, and is gracefully replaced (bounded
  memory growth without dropping anything);
* per-worker metrics snapshots ride home on every reply and are rolled
  up (:mod:`repro.fleet.rollup`) with the scheduler's own registry
  into one fleet-wide metrics document.

``parallel=False`` runs the identical scheduling logic against one
in-process :class:`~repro.fleet.jobs.JobContext` — same batches, same
results, no processes — which is what makes the serving layer's
determinism testable in-suite.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field

from repro.fleet.jobs import JobContext
from repro.fleet.queue import JobQueue, PendingJob
from repro.fleet.rollup import merge_metrics
from repro.fleet.schema import make_result, validate_job
from repro.fleet.worker import WorkerOptions, serve_batch, worker_main
from repro.telemetry.flightrec import DEFAULT_FLIGHT_LIMIT, read_dump
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import (
    SPANS_SCHEMA,
    SpanRecorder,
    merge_span_logs,
    mint_trace_id,
)

__all__ = ["Fleet", "FleetError", "FleetOptions", "default_worker_count"]

#: Upper bound on the worker pool; past this, process overhead beats
#: any batching win for the short sessions the fleet serves.
MAX_WORKERS = 32


def default_worker_count() -> int:
    """Pool size when the caller does not choose: one worker per core,
    clamped to ``[1, MAX_WORKERS]`` (``os.cpu_count()`` may be None)."""
    return max(1, min(os.cpu_count() or 1, MAX_WORKERS))


class FleetError(Exception):
    """A request the fleet could not accept."""


@dataclass
class FleetOptions:
    """Knobs for one fleet instance."""

    workers: int = field(default_factory=default_worker_count)
    #: Most jobs shipped to a worker in one message (template reuse
    #: amortizes over the batch; latency caps it).
    batch_size: int = 8
    queue_limit: int = 4096
    #: Gracefully replace a worker after this many jobs (None: never).
    recycle_after: int | None = None
    #: Dispatches a job may consume before degrading to an error.
    max_attempts: int = 3
    #: Seconds a worker may sit on one batch before it is declared dead.
    worker_timeout: float | None = 300.0
    #: False: run every batch in-process (deterministic test mode).
    parallel: bool = True
    #: Record distributed spans: a trace per job (queue wait, batch,
    #: execute with fork/run children) stitched across processes.
    spans: bool = False
    #: Attach a crash flight recorder to every worker; dumps from dead
    #: workers are harvested and attached to degraded results.
    flightrec: bool = False
    flightrec_limit: int = DEFAULT_FLIGHT_LIMIT


class _WorkerHandle:
    """Parent-side state for one live worker incarnation."""

    def __init__(self, incarnation: int, process, conn):
        self.incarnation = incarnation
        self.process = process
        self.conn = conn
        #: The batch currently on the worker (None: idle).
        self.inflight: list[PendingJob] | None = None
        self.sent_at: float = 0.0
        #: Open "batch" span covering dispatch → reply (spans mode).
        self.batch_span = None

    @property
    def busy(self) -> bool:
        return self.inflight is not None


class Fleet:
    """One serving instance: submit jobs, drain, read the rollup."""

    def __init__(
        self,
        options: FleetOptions | None = None,
        context: JobContext | None = None,
    ):
        self.options = options or FleetOptions()
        if self.options.workers < 1:
            raise FleetError(
                f"need at least one worker, got {self.options.workers}"
            )
        if self.options.batch_size < 1:
            raise FleetError(
                f"need a positive batch size, got {self.options.batch_size}"
            )
        self.queue = JobQueue(limit=self.options.queue_limit)
        self.metrics = MetricsRegistry()
        self.results: dict[str, dict] = {}
        #: Latest metrics snapshot per worker incarnation (a crashed
        #: worker's last snapshot still counts what it served).
        self.worker_snapshots: dict[int, dict] = {}
        #: Persistent-code-cache keys each worker reported serving
        #: from (see ``template_cache_keys``); forked siblings of one
        #: prewarmed context all publish the same set.
        self.worker_cache_keys: dict[int, tuple[str, ...]] = {}
        self._workers: list[_WorkerHandle] = []
        self._incarnations = 0
        self._batch_ids = 0
        self._crash_ids: set[str] = set()
        self._seen_ids: set[str] = set()
        #: Sequential-mode execution context (ignored when parallel).
        self._context = context
        #: Scheduler-side span log (None: spans off).
        self.spans = SpanRecorder("scheduler") if self.options.spans else None
        #: Flight-recorder dumps harvested from dead workers.
        self.flight_dumps: list[dict] = []
        self._flight_dir: str | None = None
        self._harvested: set[str] = set()
        #: Span dicts shipped home on worker replies, pending export.
        self._remote_spans: list[dict] = []
        self._trace_ids: dict[str, str] = {}
        self._root_spans: dict[str, object] = {}
        self._wait_spans: dict[str, object] = {}

    # -- submission --------------------------------------------------------------

    def submit(self, job: dict) -> None:
        """Validate and enqueue one job envelope.

        Raises :class:`FleetError` on a malformed or duplicate-id job
        and :class:`~repro.fleet.queue.QueueFull` when the bounded
        queue pushes back.
        """
        problems = validate_job(job)
        if problems:
            raise FleetError(
                f"invalid job envelope: {'; '.join(problems[:3])}"
            )
        if job["id"] in self._seen_ids:
            raise FleetError(f"duplicate job id {job['id']!r}")
        self._seen_ids.add(job["id"])
        self.queue.push(job)
        self.metrics.inc("fleet.jobs.submitted")
        if self.spans is not None:
            trace_id = mint_trace_id(job["id"])
            self._trace_ids[job["id"]] = trace_id
            # Attr named job_kind, not kind: the chrome-trace validator
            # reserves args.kind for structured telemetry events.
            root = self.spans.start(
                "job",
                trace_id=trace_id,
                job=job["id"],
                job_kind=job["kind"],
                tenant=job["tenant"],
            )
            self._root_spans[job["id"]] = root
            self._wait_spans[job["id"]] = self.spans.start(
                "queue.wait", trace_id=trace_id, parent_id=root.span_id
            )
            # The trace context travels on the envelope itself, so the
            # worker's execute span parents under this root span.
            job["trace"] = {
                "trace_id": trace_id,
                "parent_span": root.span_id,
            }

    def inject_crash_on(self, job_id: str) -> None:
        """Fault injection: kill the worker that next receives this job.

        The marker is consumed at dispatch, so the requeued batch runs
        normally on the replacement worker — the injected fault models
        one crash, not a poisoned job.
        """
        self._crash_ids.add(job_id)

    # -- lifecycle ---------------------------------------------------------------

    def _spawn_worker(self) -> _WorkerHandle:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        incarnation = self._incarnations
        self._incarnations += 1
        process = ctx.Process(
            target=worker_main,
            args=(
                child_conn,
                incarnation,
                WorkerOptions(
                    recycle_after=self.options.recycle_after,
                    spans=self.options.spans,
                    flightrec_dir=self._flight_dir,
                    flightrec_limit=self.options.flightrec_limit,
                ),
            ),
            name=f"fleet-worker-{incarnation}",
        )
        process.start()
        child_conn.close()
        handle = _WorkerHandle(incarnation, process, parent_conn)
        self._workers.append(handle)
        self.metrics.inc("fleet.workers.spawned")
        return handle

    def start(self) -> None:
        if (
            self.options.parallel
            and self.options.flightrec
            and self._flight_dir is None
        ):
            self._flight_dir = tempfile.mkdtemp(prefix="repro-flightrec-")
        if self.options.parallel and not self._workers:
            for _ in range(self.options.workers):
                self._spawn_worker()

    def stop(self) -> None:
        for handle in self._workers:
            try:
                handle.conn.send({"type": "stop"})
            except (BrokenPipeError, OSError):
                pass
            handle.conn.close()
        for handle in self._workers:
            handle.process.join(10)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(10)
        self._workers = []
        self._harvest_all_flight_dumps()
        if self._flight_dir is not None:
            shutil.rmtree(self._flight_dir, ignore_errors=True)
            self._flight_dir = None

    # -- span bookkeeping --------------------------------------------------------

    def _end_wait(self, job_id: str, **attrs) -> None:
        span = self._wait_spans.pop(job_id, None)
        if span is not None:
            span.end(**attrs)

    def _restart_wait(self, pending: PendingJob) -> None:
        """A requeued job waits again: open a fresh queue.wait span."""
        if self.spans is None:
            return
        job_id = pending.job["id"]
        root = self._root_spans.get(job_id)
        self._wait_spans[job_id] = self.spans.start(
            "queue.wait",
            trace_id=self._trace_ids.get(job_id),
            parent_id=root.span_id if root is not None else None,
            requeue=True,
        )

    # -- flight-dump harvesting --------------------------------------------------

    def _harvest_flight_dump(self, incarnation: int) -> dict | None:
        """Best-effort read of one dead worker's spooled dump."""
        if self._flight_dir is None:
            return None
        path = os.path.join(self._flight_dir, f"worker-{incarnation}.json")
        if path in self._harvested:
            return None
        dump = read_dump(path)
        if dump is not None:
            self._harvested.add(path)
            self.flight_dumps.append(dump)
            self.metrics.inc("fleet.flight_dumps")
        return dump

    def _harvest_all_flight_dumps(self) -> None:
        if self._flight_dir is None:
            return
        try:
            names = sorted(os.listdir(self._flight_dir))
        except OSError:
            return
        for name in names:
            if name.startswith("worker-") and name.endswith(".json"):
                try:
                    self._harvest_flight_dump(int(name[7:-5]))
                except ValueError:
                    continue

    # -- result bookkeeping ------------------------------------------------------

    def _finish(self, pending: PendingJob, result: dict) -> None:
        total_ms = (time.monotonic() - pending.enqueued_at) * 1e3
        result.setdefault("timing", {})["total_ms"] = total_ms
        self.metrics.observe("fleet.latency_ms", total_ms)
        self.metrics.inc("fleet.jobs.completed")
        self.metrics.inc(f"fleet.status.{result['status']}")
        self.results[result["id"]] = result
        if self.spans is not None:
            self._end_wait(result["id"])
            root = self._root_spans.pop(result["id"], None)
            if root is not None:
                root.end(
                    status=result["status"],
                    attempts=result.get("attempts", 1),
                )

    def _expire(self, pending: PendingJob) -> None:
        self._finish(pending, make_result(
            pending.job, "expired", None,
            error="deadline passed before dispatch",
            attempts=pending.attempts,
        ))

    def _fail(
        self, pending: PendingJob, reason: str, flightrec: dict | None = None
    ) -> None:
        result = make_result(
            pending.job, "error", None,
            error=reason,
            attempts=pending.attempts,
        )
        if flightrec is not None:
            # The dead worker's post-mortem rides on the degraded
            # result; deterministic_view ignores it, so digests hold.
            result["flightrec"] = flightrec
        self._finish(pending, result)

    def _requeue_inflight(
        self,
        handle: _WorkerHandle,
        reason: str,
        flightrec: dict | None = None,
    ) -> None:
        for pending in handle.inflight or []:
            if pending.attempts >= self.options.max_attempts:
                self._fail(
                    pending,
                    f"gave up after {pending.attempts} attempts: {reason}",
                    flightrec=flightrec,
                )
            else:
                self.queue.requeue(pending)
                self.metrics.inc("fleet.jobs.requeued")
                self._restart_wait(pending)
        handle.inflight = None

    # -- parallel drain ----------------------------------------------------------

    def _dispatch(self, handle: _WorkerHandle) -> bool:
        expired, batch = self.queue.pop_batch(self.options.batch_size)
        for pending in expired:
            self._expire(pending)
        if not batch:
            return False
        crash = False
        for pending in batch:
            pending.attempts += 1
            if pending.job["id"] in self._crash_ids:
                self._crash_ids.discard(pending.job["id"])
                crash = True
        self._batch_ids += 1
        self.metrics.observe("fleet.queue.depth", len(self.queue))
        if self.spans is not None:
            for pending in batch:
                self._end_wait(pending.job["id"], attempt=pending.attempts)
            handle.batch_span = self.spans.start(
                "batch",
                batch_id=self._batch_ids,
                worker=handle.incarnation,
                jobs=len(batch),
                trace_ids=[
                    self._trace_ids.get(p.job["id"]) for p in batch
                ],
            )
        try:
            handle.conn.send({
                "type": "batch",
                "batch_id": self._batch_ids,
                "jobs": [pending.job for pending in batch],
                "attempts": [pending.attempts for pending in batch],
                "crash": crash,
            })
        except (BrokenPipeError, OSError):
            handle.inflight = batch
            self._on_worker_death(handle, "send failed (worker dead)")
            return True
        handle.inflight = batch
        handle.sent_at = time.monotonic()
        return True

    def _on_worker_death(self, handle: _WorkerHandle, reason: str) -> None:
        self.metrics.inc("fleet.workers.crashed")
        if handle.process.is_alive():
            # SIGTERM: the worker's flight-recorder handler (if any)
            # writes its dump before dying, so harvest after the join.
            handle.process.terminate()
        handle.process.join(10)
        handle.conn.close()
        self._workers.remove(handle)
        dump = self._harvest_flight_dump(handle.incarnation)
        if handle.batch_span is not None:
            handle.batch_span.end(outcome=reason)
            handle.batch_span = None
        self._requeue_inflight(handle, reason, flightrec=dump)
        self._spawn_worker()

    def _on_reply(self, handle: _WorkerHandle, message: dict) -> None:
        inflight = handle.inflight or []
        by_id = {pending.job["id"]: pending for pending in inflight}
        handle.inflight = None
        self.worker_snapshots[message["worker"]] = message["metrics"]
        keys = message.get("code_cache_keys")
        if keys:
            self.worker_cache_keys[message["worker"]] = tuple(keys)
        self._remote_spans.extend(message.get("spans") or [])
        if handle.batch_span is not None:
            handle.batch_span.end(results=len(message["results"]))
            handle.batch_span = None
        for result in message["results"]:
            pending = by_id.pop(result["id"])
            self._finish(pending, result)
        # Anything the worker did not answer (should not happen with a
        # well-behaved worker) goes back on the queue.
        for pending in by_id.values():
            self.queue.requeue(pending)
            self.metrics.inc("fleet.jobs.requeued")
            self._restart_wait(pending)
        if message.get("recycling"):
            self.metrics.inc("fleet.workers.recycled")
            handle.conn.close()
            handle.process.join(10)
            self._workers.remove(handle)
            self._spawn_worker()

    def _drain_parallel(self) -> None:
        from multiprocessing.connection import wait as conn_wait

        self.start()
        while True:
            for handle in list(self._workers):
                if not handle.busy and len(self.queue):
                    self._dispatch(handle)
            busy = [handle for handle in self._workers if handle.busy]
            if not busy and not len(self.queue):
                break
            if not busy:
                # Only expired jobs were left; the loop above drained
                # them through pop_batch without dispatching.
                continue
            ready = conn_wait([handle.conn for handle in busy], timeout=0.2)
            now = time.monotonic()
            for handle in list(busy):
                if handle.conn in ready:
                    try:
                        message = handle.conn.recv()
                    except (EOFError, OSError):
                        self._on_worker_death(handle, "worker crashed")
                        continue
                    self._on_reply(handle, message)
                elif (
                    self.options.worker_timeout is not None
                    and now - handle.sent_at > self.options.worker_timeout
                ):
                    self._on_worker_death(handle, "worker timed out")

    # -- sequential drain --------------------------------------------------------

    def _drain_sequential(self) -> None:
        context = self._context or JobContext()
        self._context = context
        if self.spans is not None:
            # One process, one recorder: scheduler and "worker" spans
            # share the lane, and nesting still parents fork/run under
            # execute through the recorder's context stack.
            context.spans = self.spans
        if self.options.flightrec and context.flightrec is None:
            from repro.telemetry.flightrec import FlightRecorder

            context.flightrec = FlightRecorder(
                "worker-0", self.options.flightrec_limit
            )
        while len(self.queue):
            expired, batch = self.queue.pop_batch(self.options.batch_size)
            for pending in expired:
                self._expire(pending)
            if not batch:
                continue
            crash = False
            for pending in batch:
                pending.attempts += 1
                if pending.job["id"] in self._crash_ids:
                    self._crash_ids.discard(pending.job["id"])
                    crash = True
            self._batch_ids += 1
            self.metrics.observe("fleet.queue.depth", len(self.queue))
            if self.spans is not None:
                for pending in batch:
                    self._end_wait(
                        pending.job["id"], attempt=pending.attempts
                    )
            if context.flightrec is not None:
                context.flightrec.note(
                    "batch.recv",
                    batch_id=self._batch_ids,
                    jobs=len(batch),
                    crash=crash,
                )
            if crash:
                # Simulated crash: the batch dies undone, exactly as a
                # parallel worker taking CRASH_EXIT would leave it —
                # including the post-mortem the real worker writes.
                self.metrics.inc("fleet.workers.crashed")
                dump = None
                if context.flightrec is not None:
                    context.flightrec.note("crash.injected")
                    dump = context.flightrec.dump("crash")
                    self.flight_dumps.append(dump)
                    self.metrics.inc("fleet.flight_dumps")
                handle = _WorkerHandle(0, None, None)
                handle.inflight = batch
                self._requeue_inflight(
                    handle, "worker crashed (injected)", flightrec=dump
                )
                continue
            batch_span = None
            if self.spans is not None:
                batch_span = self.spans.start(
                    "batch",
                    batch_id=self._batch_ids,
                    worker=0,
                    jobs=len(batch),
                    trace_ids=[
                        self._trace_ids.get(p.job["id"]) for p in batch
                    ],
                )
            message = {
                "batch_id": self._batch_ids,
                "jobs": [pending.job for pending in batch],
                "attempts": [pending.attempts for pending in batch],
            }
            for pending, result in zip(
                batch, serve_batch(message, context, worker_id=0)
            ):
                self._finish(pending, result)
            if batch_span is not None:
                batch_span.end(results=len(batch))
        context.boot_cache.publish_metrics(context.metrics)
        self.worker_snapshots[0] = context.metrics.to_json()
        keys = sorted(set(
            context.boot_cache.template_cache_keys().values()
        ))
        if keys:
            self.worker_cache_keys[0] = tuple(keys)

    # -- public driving ----------------------------------------------------------

    def drain(self) -> dict[str, dict]:
        """Serve until the queue is empty and nothing is in flight."""
        if self.options.parallel:
            self._drain_parallel()
        else:
            self._drain_sequential()
        self.metrics.set("fleet.queue.peak", self.queue.peak_depth)
        return self.results

    def run_jobs(self, jobs: list[dict]) -> dict[str, dict]:
        """Convenience: submit everything, drain, stop workers."""
        try:
            for job in jobs:
                self.submit(job)
            return self.drain()
        finally:
            self.stop()

    def metrics_snapshot(self) -> dict:
        """Fleet-wide rollup: every worker's registry + the scheduler's."""
        snapshots = (
            list(self.worker_snapshots.values()) + [self.metrics.to_json()]
        )
        if self.spans is not None:
            with self.spans.span("rollup", registries=len(snapshots)):
                return merge_metrics(snapshots)
        return merge_metrics(snapshots)

    def code_cache_snapshot(self) -> dict:
        """Which persistent-code-cache sets the fleet served from.

        ``shared`` is true when every reporting worker published the
        same key set — the expected steady state when the pool was
        forked from one prewarmed context, and the precondition for
        siblings reusing each other's persisted compiled code.
        """
        key_sets = set(self.worker_cache_keys.values())
        union = sorted(set().union(*key_sets)) if key_sets else []
        return {
            "keys": union,
            "workers_reporting": len(self.worker_cache_keys),
            "shared": len(key_sets) <= 1,
        }

    def span_export(self) -> dict:
        """The merged ``spans-1`` document: scheduler + all workers.

        Scheduler spans still open (unfinished jobs) are excluded; the
        worker spans arrived pre-serialized on batch replies, grouped
        back into per-process logs so the merge records lane order.
        """
        if self.spans is None:
            return merge_span_logs([])
        documents = [{
            "schema": SPANS_SCHEMA,
            "process": self.spans.process,
            "dropped": self.spans.dropped,
            "spans": [
                span.to_json() for span in self.spans.spans if span.finished
            ],
        }]
        by_process: dict[str, list[dict]] = {}
        for span in self._remote_spans:
            by_process.setdefault(
                span.get("process", "worker"), []
            ).append(span)
        for process in sorted(by_process):
            documents.append({
                "schema": SPANS_SCHEMA,
                "process": process,
                "dropped": 0,
                "spans": by_process[process],
            })
        return merge_span_logs(documents)

    def health_snapshot(self) -> dict:
        """Liveness/readiness report for the metrics endpoint."""
        counters = self.metrics.to_json().get("counters", {})
        alive = sum(
            1 for handle in self._workers
            if handle.process is None or handle.process.is_alive()
        )
        busy = sum(1 for handle in self._workers if handle.busy)
        return {
            "ready": (not self.options.parallel) or alive > 0,
            "queue_depth": len(self.queue),
            "queue_peak": self.queue.peak_depth,
            "workers": {
                "configured": self.options.workers,
                "alive": alive,
                "busy": busy,
                "crashed": counters.get("fleet.workers.crashed", 0),
                "recycled": counters.get("fleet.workers.recycled", 0),
            },
            "jobs": {
                "submitted": counters.get("fleet.jobs.submitted", 0),
                "completed": counters.get("fleet.jobs.completed", 0),
                "requeued": counters.get("fleet.jobs.requeued", 0),
            },
            "flight_dumps": len(self.flight_dumps),
        }

"""Multi-tenant serving layer: warm-forking job fleet.

``repro.fleet`` turns the simulator into a service: an orchestrator
(:class:`Fleet`) accepts concurrent job requests — workload runs,
attack sessions, fuzz batches — and schedules them over a pool of
long-lived worker processes.  Each worker boots a kernel configuration
once (:class:`~repro.kernel.BootCache`) and answers every job from a
copy-on-write fork of that warm snapshot; template-affine batching
keeps same-config jobs on the same warm parent.

Entry points:

* :class:`Fleet` / :class:`FleetOptions` — embed the orchestrator;
* :func:`~repro.fleet.loadgen.run_loadgen` — the deterministic load
  generator behind ``BENCH_fleet.json``;
* ``python -m repro.fleet`` — ``serve`` / ``submit`` / ``loadgen``.
"""

from repro.fleet.jobs import JobContext, execute_job
from repro.fleet.loadgen import LoadgenOptions, generate_jobs, run_loadgen
from repro.fleet.queue import JobQueue, QueueFull
from repro.fleet.rollup import merge_metrics
from repro.fleet.scheduler import Fleet, FleetError, FleetOptions
from repro.fleet.schema import (
    BENCH_FLEET_SCHEMA,
    JOB_SCHEMA,
    RESULT_SCHEMA,
    make_job,
    make_result,
    validate_bench_fleet,
    validate_job,
    validate_result,
)

__all__ = [
    "BENCH_FLEET_SCHEMA",
    "Fleet",
    "FleetError",
    "FleetOptions",
    "JOB_SCHEMA",
    "JobContext",
    "JobQueue",
    "LoadgenOptions",
    "QueueFull",
    "RESULT_SCHEMA",
    "execute_job",
    "generate_jobs",
    "make_job",
    "make_result",
    "merge_metrics",
    "run_loadgen",
    "validate_bench_fleet",
    "validate_job",
    "validate_result",
]

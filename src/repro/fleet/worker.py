"""Fleet worker process: boot once, fork per job.

A worker is a long-lived child process holding warm state — a bounded
:class:`~repro.kernel.BootCache` of booted kernel templates, a build
cache of kernel images, a private metrics registry.  It speaks a tiny
pipe protocol with the scheduler:

* ``{"type": "batch", ...}`` — a list of job envelopes sharing one
  batch key.  The worker executes them in order (every one a COW fork
  of the same warm template) and replies with the result envelopes,
  its cumulative metrics snapshot, and whether it is about to recycle.
* ``{"type": "stop"}`` — drain and exit.

Fault injection rides the protocol: a batch flagged ``crash`` makes
the worker die via ``os._exit`` before executing anything, exactly as
an OOM-killed or segfaulted worker would look from the parent's end of
the pipe.  Recycling is the graceful counterpart — after serving
``recycle_after`` jobs the worker finishes its current batch, says so
in the reply, and exits; the scheduler replaces it.  Both paths reuse
the discipline proven in :mod:`repro.fuzz.dist`: the parent treats an
EOF/broken pipe as a dead worker and requeues whatever that worker had
in flight, so a crash costs latency, never jobs.
"""

from __future__ import annotations

import os
import time
from contextlib import nullcontext
from dataclasses import dataclass

from repro.fleet.jobs import JobContext, execute_job
from repro.fleet.schema import make_result
from repro.telemetry.flightrec import DEFAULT_FLIGHT_LIMIT

__all__ = ["WorkerOptions", "prewarm", "worker_main"]

#: Exit status a crash-injected worker dies with (recognizable in
#: scheduler logs; any abnormal death is handled the same way).
CRASH_EXIT = 17


@dataclass
class WorkerOptions:
    """Per-worker knobs, picklable for spawn-style start methods."""

    #: Gracefully exit after serving this many jobs (None: serve forever).
    recycle_after: int | None = None
    #: Record per-job execute/fork/run spans, shipped on each reply.
    spans: bool = False
    #: Spool directory for crash flight-recorder dumps (None: off).
    flightrec_dir: str | None = None
    flightrec_limit: int = DEFAULT_FLIGHT_LIMIT


#: Warm state installed by :func:`prewarm` before workers are spawned.
_PREWARMED: JobContext | None = None


def prewarm(context: JobContext | None) -> None:
    """Install a pre-booted :class:`JobContext` for future workers.

    With the ``fork`` start method every worker inherits the context's
    booted templates and built images through the OS fork — the fleet
    boots once, *then* forks the pool, then forks again per request.
    Under ``spawn`` the global does not carry over and each worker
    warms itself on first use; results are identical either way.
    """
    global _PREWARMED
    _PREWARMED = context


def _adopt_context(worker_id: int) -> JobContext:
    context = _PREWARMED
    if context is None:
        return JobContext()
    # The prewarm work (boots, builds) happened in the parent; zero the
    # inherited counters so rollups attribute to this worker only what
    # it actually serves.
    from repro.telemetry.metrics import MetricsRegistry

    context.metrics = MetricsRegistry()
    context.spans = None
    context.flightrec = None
    cache = context.boot_cache
    cache.boots = cache.forks = cache.fallbacks = cache.evictions = 0
    return context


def serve_batch(
    message: dict, context: JobContext, worker_id: int
) -> list[dict]:
    """Execute one batch message; return the result envelopes."""
    results = []
    for job, attempts in zip(message["jobs"], message["attempts"]):
        trace = job.get("trace") or {}
        execute_span = (
            context.spans.span(
                "execute",
                trace_id=trace.get("trace_id"),
                parent_id=trace.get("parent_span"),
                job=job["id"],
                job_kind=job["kind"],
                attempt=attempts,
            )
            if context.spans is not None
            else nullcontext()
        )
        start = time.perf_counter()
        with execute_span:
            status, payload, error = execute_job(job, context)
        run_ms = (time.perf_counter() - start) * 1e3
        context.metrics.observe("fleet.run_ms", run_ms)
        results.append(make_result(
            job, status, payload,
            error=error,
            worker=worker_id,
            attempts=attempts,
            timing={"run_ms": run_ms},
        ))
    return results


def worker_main(conn, worker_id: int, options: WorkerOptions) -> None:
    """Child-process entry: serve batches until stopped or recycled."""
    context = _adopt_context(worker_id)
    dump_path = None
    if options.flightrec_dir:
        from repro.telemetry.flightrec import (
            FlightRecorder,
            install_sigterm_dump,
        )

        context.flightrec = FlightRecorder(
            f"worker-{worker_id}", options.flightrec_limit
        )
        dump_path = os.path.join(
            options.flightrec_dir, f"worker-{worker_id}.json"
        )
        # The scheduler kills a silent worker with SIGTERM; the handler
        # turns that kill into a post-mortem before the process dies.
        install_sigterm_dump(context.flightrec, dump_path)
    if options.spans:
        from repro.telemetry.spans import SpanRecorder

        context.spans = SpanRecorder(f"worker-{worker_id}")
    served = 0
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            if message.get("type") == "stop":
                break
            if context.flightrec is not None:
                context.flightrec.note(
                    "batch.recv",
                    batch_id=message.get("batch_id", 0),
                    jobs=len(message.get("jobs", ())),
                    crash=bool(message.get("crash")),
                )
            if message.get("crash"):
                # Injected fault: die the way a real crash does — no
                # reply, no cleanup, just a broken pipe for the parent.
                # The flight dump is the one artifact a crash handler
                # would salvage, so write it first.
                if context.flightrec is not None and dump_path is not None:
                    context.flightrec.note("crash.injected")
                    context.flightrec.write(dump_path, "crash")
                os._exit(CRASH_EXIT)
            results = serve_batch(message, context, worker_id)
            served += len(results)
            recycling = (
                options.recycle_after is not None
                and served >= options.recycle_after
            )
            context.boot_cache.publish_metrics(context.metrics)
            context.metrics.set("fleet.worker.served", served)
            reply = {
                "type": "results",
                "batch_id": message["batch_id"],
                "worker": worker_id,
                "results": results,
                "metrics": context.metrics.to_json(),
                # Persistent-code-cache keys of the templates this
                # worker serves from: siblings forked from the same
                # prewarmed context publish identical keys, proving
                # they draw on the same compiled sets.
                "code_cache_keys": sorted(
                    set(context.boot_cache.template_cache_keys().values())
                ),
                "served": served,
                "recycling": recycling,
            }
            if context.spans is not None:
                reply["spans"] = context.spans.drain()
            conn.send(reply)
            if recycling:
                break
    finally:
        conn.close()

"""Capture a live :class:`~repro.machine.machine.Machine` into a snapshot."""

from __future__ import annotations

from dataclasses import fields

from repro.errors import SnapshotError
from repro.machine.timing import CostModel
from repro.telemetry import hooks as telemetry
from repro.telemetry.events import SNAPSHOT_CAPTURE
from repro.snapshot.state import (
    CLBState,
    DeviceState,
    EngineState,
    HartState,
    MachineSnapshot,
    MemoryState,
)


def cipher_spec(cipher) -> dict:
    """Identify a cipher object so restore can rebuild an equal one."""
    from repro.crypto.alternatives import XexXteaCipher, XorDsrCipher
    from repro.crypto.qarma import Qarma64

    if isinstance(cipher, Qarma64):
        return {
            "name": "qarma",
            "rounds": cipher.rounds,
            "sbox": cipher.sbox_index,
        }
    if isinstance(cipher, XorDsrCipher):
        return {"name": "xor", "rounds": 1, "sbox": -1}
    if isinstance(cipher, XexXteaCipher):
        return {"name": "xex", "rounds": cipher.rounds, "sbox": -1}
    raise SnapshotError(
        f"cannot snapshot unknown cipher type {type(cipher).__name__}"
    )


def cost_model_state(cost: CostModel) -> dict:
    return {
        f.name: getattr(cost, f.name)
        for f in fields(CostModel)
        if not f.name.startswith("_")
    }


def _capture_memory(memory, include_pages: bool) -> MemoryState:
    return MemoryState(
        strict=memory.strict,
        regions=tuple(
            (r.name, r.base, r.size) for r in memory.regions
        ),
        watched_pages=tuple(sorted(memory._watched_pages)),
        pages=(
            {index: bytes(page) for index, page in memory._pages.items()}
            if include_pages
            else {}
        ),
        pages_captured=include_pages,
    )


def _capture_engine(engine) -> EngineState:
    clb = engine.clb
    clb_state = CLBState(
        num_entries=clb.num_entries,
        clock=clb._clock,
        entries=tuple(
            (
                entry.valid,
                int(entry.ksel),
                entry.tweak,
                entry.plaintext,
                entry.ciphertext,
                entry.last_use,
            )
            for entry in clb.entries
        ),
        stats={
            "enc_hits": clb.stats.enc_hits,
            "enc_misses": clb.stats.enc_misses,
            "dec_hits": clb.stats.dec_hits,
            "dec_misses": clb.stats.dec_misses,
            "invalidations": clb.stats.invalidations,
            "evictions": clb.stats.evictions,
        },
    )
    return EngineState(
        cipher=cipher_spec(engine.cipher),
        miss_cycles=engine.miss_cycles,
        hit_cycles=engine.hit_cycles,
        keys=tuple(
            (int(ksel), reg.hi, reg.lo)
            for ksel, reg in sorted(
                engine.key_file.registers.items(), key=lambda kv: int(kv[0])
            )
        ),
        stats={
            "encryptions": engine.stats.encryptions,
            "decryptions": engine.stats.decryptions,
            "integrity_faults": engine.stats.integrity_faults,
            "cycles": engine.stats.cycles,
            "per_key": {
                int(ksel): count
                for ksel, count in engine.stats.per_key.items()
            },
        },
        clb=clb_state,
    )


def capture(machine, include_pages: bool = True) -> MachineSnapshot:
    """Snapshot ``machine`` at the current instruction boundary.

    ``include_pages=False`` skips copying memory page contents — used by
    :func:`repro.snapshot.fork.fork`, which shares pages copy-on-write
    instead.  Such a snapshot cannot be serialized or restored on its
    own.
    """
    if telemetry.active():
        telemetry.emit(
            SNAPSHOT_CAPTURE,
            pages=len(machine.memory._pages),
            include_pages=include_pages,
        )
    hart = machine.hart
    return MachineSnapshot(
        hart=HartState(
            regs=tuple(hart.regs._regs),
            pc=hart.pc,
            privilege=int(hart.privilege),
            cycles=hart.cycles,
            instret=hart.instret,
            waiting_for_interrupt=hart.waiting_for_interrupt,
        ),
        csrs=dict(hart.csrs._storage),
        memory=_capture_memory(machine.memory, include_pages),
        devices=DeviceState(
            clint_mtime=machine.clint._mtime,
            clint_mtimecmp=machine.clint.mtimecmp,
            shutdown_requested=machine.syscon.shutdown_requested,
            exit_code=machine.syscon.exit_code,
            uart_output=bytes(machine.uart.output),
            rng_state=machine.rng.state,
        ),
        engine=_capture_engine(machine.engine),
        cost=cost_model_state(hart.cost),
        fast_path=machine.fast_path,
        halt_reason=(
            machine.halt_reason.value
            if machine.halt_reason is not None
            else None
        ),
    )

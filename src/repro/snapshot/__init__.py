"""Machine checkpoint/restore with copy-on-write forking.

Three entry points:

* :func:`capture` / :func:`restore` — full checkpointing: every
  architectural and modeled-microarchitectural bit of a
  :class:`~repro.machine.machine.Machine` into a versioned,
  deterministic :class:`MachineSnapshot` and back.  A restored machine
  is bit-identical to the original going forward (derived caches
  restart cold; SMC tracking is re-armed).
* :func:`to_bytes` / :func:`from_bytes` (and :func:`save` /
  :func:`load`) — deterministic binary serialization; equal state means
  equal bytes, so :func:`content_hash` is a stable identity.
* :func:`fork` — cheap in-process cloning: children share all current
  memory pages copy-on-write and only copy what they write.  This is
  what lets the attack suite and the benchmarks boot a kernel once and
  fork it per scenario (:class:`repro.kernel.bootcache.BootCache`).

See ``docs/snapshot.md`` for the format and the cache-interaction
rules.
"""

from repro.snapshot.capture import capture
from repro.snapshot.fork import fork
from repro.snapshot.restore import restore
from repro.snapshot.serialize import (
    content_hash,
    from_bytes,
    load,
    save,
    to_bytes,
)
from repro.snapshot.state import SNAPSHOT_VERSION, MachineSnapshot

__all__ = [
    "MachineSnapshot",
    "SNAPSHOT_VERSION",
    "capture",
    "content_hash",
    "fork",
    "from_bytes",
    "load",
    "restore",
    "save",
    "to_bytes",
]

"""Rebuild a live machine from a :class:`MachineSnapshot`.

The restored machine is bit-identical to the captured one *going
forward*: every architectural and modeled-microarchitectural bit is
reinstated, while derived caches restart cold —

* the new hart gets an empty basic-block translation cache;
* the process-wide decode cache is dropped (it is content-addressed and
  could never serve stale entries, but a restore is the documented
  invalidation point — see ``docs/snapshot.md``);
* self-modifying-code tracking is re-armed: every page that was watched
  at capture time is watched again, and the new hart's code-write hook
  is registered on the restored memory, so translations made after the
  restore are invalidated by guest writes exactly as before.
"""

from __future__ import annotations

from repro.crypto.clb import CLBEntry
from repro.crypto.engine import CryptoEngine
from repro.crypto.keys import KeyFile, KeySelect
from repro.errors import SnapshotError
from repro.isa.decoder import clear_decode_cache
from repro.machine.machine import HaltReason, Machine
from repro.machine.memory import Memory, MemoryRegion, PAGE_SIZE
from repro.machine.timing import CostModel
from repro.snapshot.state import (
    SNAPSHOT_VERSION,
    EngineState,
    MachineSnapshot,
)
from repro.telemetry import hooks as telemetry
from repro.telemetry.events import SNAPSHOT_RESTORE


def build_engine(state: EngineState, cipher=None) -> CryptoEngine:
    """Reconstruct a crypto-engine (key file + CLB + stats) from state.

    ``cipher`` lets an in-process fork reuse the parent's cipher object
    (they are stateless); otherwise one is rebuilt from the recorded
    spec.
    """
    if cipher is None:
        cipher = _make_cipher(state.cipher)
    key_file = KeyFile()
    for ksel, hi, lo in state.keys:
        register = key_file.registers[KeySelect(ksel)]
        register.hi = hi
        register.lo = lo
    engine = CryptoEngine(
        key_file=key_file,
        clb_entries=state.clb.num_entries,
        cipher=cipher,
        miss_cycles=state.miss_cycles,
        hit_cycles=state.hit_cycles,
    )
    # CLB lines and replacement clock.
    engine.clb._clock = state.clb.clock
    for entry, line in zip(engine.clb.entries, state.clb.entries):
        valid, ksel, tweak, plaintext, ciphertext, last_use = line
        entry.valid = valid
        entry.ksel = KeySelect(ksel)
        entry.tweak = tweak
        entry.plaintext = plaintext
        entry.ciphertext = ciphertext
        entry.last_use = last_use
    for name, value in state.clb.stats.items():
        setattr(engine.clb.stats, name, value)
    # Engine counters.
    stats = state.stats
    engine.stats.encryptions = stats["encryptions"]
    engine.stats.decryptions = stats["decryptions"]
    engine.stats.integrity_faults = stats["integrity_faults"]
    engine.stats.cycles = stats["cycles"]
    engine.stats.per_key = {
        KeySelect(ksel): count for ksel, count in stats["per_key"].items()
    }
    return engine


def _make_cipher(spec: dict):
    from repro.crypto.alternatives import XexXteaCipher, XorDsrCipher
    from repro.crypto.qarma import Qarma64

    name = spec.get("name")
    if name == "qarma":
        return Qarma64(rounds=spec["rounds"], sbox=spec["sbox"])
    if name == "xor":
        return XorDsrCipher()
    if name == "xex":
        return XexXteaCipher()
    raise SnapshotError(f"unknown cipher spec {spec!r}")


def apply_scalar_state(machine: Machine, snapshot: MachineSnapshot) -> None:
    """Reinstate everything except memory pages onto a fresh machine."""
    from repro.machine.hart import PrivilegeLevel

    hart = machine.hart
    state = snapshot.hart
    hart.regs._regs[:] = state.regs
    hart.pc = state.pc
    hart.privilege = PrivilegeLevel(state.privilege)
    hart.cycles = state.cycles
    hart.instret = state.instret
    hart.waiting_for_interrupt = state.waiting_for_interrupt
    hart.csrs._storage = dict(snapshot.csrs)

    devices = snapshot.devices
    machine.clint._mtime = devices.clint_mtime
    machine.clint.mtimecmp = devices.clint_mtimecmp
    machine.syscon.shutdown_requested = devices.shutdown_requested
    machine.syscon.exit_code = devices.exit_code
    machine.uart.output = bytearray(devices.uart_output)
    machine.rng.state = devices.rng_state

    machine.fast_path = snapshot.fast_path
    machine.halt_reason = (
        HaltReason(snapshot.halt_reason)
        if snapshot.halt_reason is not None
        else None
    )


def restore(snapshot: MachineSnapshot) -> Machine:
    """Build a fresh :class:`Machine` in the snapshot's exact state."""
    if snapshot.version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {snapshot.version} not supported "
            f"(expected {SNAPSHOT_VERSION})"
        )
    if not snapshot.memory.pages_captured:
        raise SnapshotError(
            "snapshot was captured without page contents (fork-style); "
            "it cannot be restored standalone"
        )
    memory = Memory(strict=snapshot.memory.strict)
    memory.regions = [
        MemoryRegion(name, base, size)
        for name, base, size in snapshot.memory.regions
    ]
    for index, data in snapshot.memory.pages.items():
        if len(data) != PAGE_SIZE:
            raise SnapshotError(
                f"page {index:#x} has {len(data)} bytes, "
                f"expected {PAGE_SIZE}"
            )
        memory._pages[index] = bytearray(data)

    engine = build_engine(snapshot.engine)
    machine = Machine(
        memory=memory,
        engine=engine,
        cost_model=CostModel(**snapshot.cost),
    )
    apply_scalar_state(machine, snapshot)
    # Re-arm SMC tracking: the Machine constructor registered the new
    # hart's code-write hook; watching the captured pages again makes
    # guest writes to restored code pages invalidate any block the new
    # hart translates from them.  The translation caches themselves
    # restart cold — the new BlockCache is empty and the process-wide
    # decode cache is dropped here, the documented invalidation point.
    for page_index in snapshot.memory.watched_pages:
        memory.watch_code_page(page_index)
    machine.hart.blocks.flush()
    machine.hart.superblocks.flush()
    clear_decode_cache()
    if telemetry.active():
        telemetry.emit(
            SNAPSHOT_RESTORE, pages=len(snapshot.memory.pages)
        )
    return machine

"""Snapshot round-trip smoke check: ``python -m repro.snapshot``.

Boots a kernel to the first user instruction, captures a snapshot,
serializes it to disk, restores a second machine from the serialized
bytes, then runs both machines the same number of steps and asserts
they retire identical instruction counts, cycle counts, console output
and exit codes.  Exit status 0 means the round trip is exact; CI runs
this and uploads the snapshot artifact.
"""

from __future__ import annotations

import argparse
import sys

from repro import snapshot as snap
from repro.kernel import KernelConfig, KernelSession


def _fingerprint(machine, reason) -> dict:
    return {
        "halt_reason": getattr(reason, "value", None),
        "instret": machine.hart.instret,
        "cycles": machine.hart.cycles,
        "console": machine.console,
        "exit_code": machine.exit_code,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.snapshot",
        description="Machine snapshot round-trip smoke check.",
    )
    parser.add_argument(
        "--config",
        choices=("baseline", "ra", "fp", "noncontrol", "full"),
        default="full",
        help="kernel build to boot (default: full)",
    )
    parser.add_argument(
        "--steps",
        type=int,
        default=10_000,
        help="steps to run both machines after the snapshot point",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="also write the serialized snapshot here",
    )
    args = parser.parse_args(argv)

    factory = {
        "baseline": KernelConfig.baseline,
        "ra": KernelConfig.ra_only,
        "fp": KernelConfig.fp_only,
        "noncontrol": KernelConfig.noncontrol_only,
        "full": KernelConfig.full,
    }[args.config]
    session = KernelSession(factory())
    if not session.run_until(session.image.user_program.entry):
        print("error: kernel never reached user space", file=sys.stderr)
        return 1

    snapshot = snap.capture(session.machine)
    data = snap.to_bytes(snapshot)
    if data != snap.to_bytes(snap.capture(session.machine)):
        print("error: serialization is not deterministic", file=sys.stderr)
        return 1
    print(
        f"snapshot: config={args.config} version={snapshot.version} "
        f"pages={len(snapshot.memory.pages)} bytes={len(data)} "
        f"sha256={snapshot.content_hash()[:16]}..."
    )
    if args.out:
        with open(args.out, "wb") as handle:
            handle.write(data)
        print(f"wrote {args.out}")

    restored = snap.restore(snap.from_bytes(data))
    original_reason = session.machine.run(max_steps=args.steps)
    restored_reason = restored.run(max_steps=args.steps)

    original = _fingerprint(session.machine, original_reason)
    clone = _fingerprint(restored, restored_reason)
    if original != clone:
        diffs = {
            key: (original[key], clone[key])
            for key in original
            if original[key] != clone[key]
        }
        print(f"MISMATCH after {args.steps} steps: {diffs}", file=sys.stderr)
        return 1
    print(
        f"round trip exact over {args.steps} steps: "
        f"instret={original['instret']} cycles={original['cycles']} "
        f"halt={original['halt_reason']} exit={original['exit_code']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

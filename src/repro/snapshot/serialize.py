"""Deterministic binary serialization for machine snapshots.

Layout (little-endian)::

    +--------+---------+-----------+-----------+-----------+--------+
    | magic  | version | meta len  | meta JSON | blob len  | blob   |
    | 6 B    | u16     | u32       | ...       | u32       | ...    |
    +--------+---------+-----------+-----------+-----------+--------+

``meta`` is canonical JSON (sorted keys, no whitespace) holding every
scalar field; ``blob`` is the zlib-compressed concatenation of the raw
4 KiB pages in ascending page-index order (the indices live in meta).
The same machine state always produces the same bytes, so
``sha256(to_bytes(snapshot))`` is a stable content hash.
"""

from __future__ import annotations

import base64
import hashlib
import json
import struct
import zlib

from repro.errors import SnapshotError
from repro.machine.memory import PAGE_SIZE
from repro.snapshot.state import (
    SNAPSHOT_VERSION,
    CLBState,
    DeviceState,
    EngineState,
    HartState,
    MachineSnapshot,
    MemoryState,
)

MAGIC = b"RVSNAP"
#: Fixed compression level keeps the byte stream deterministic.
_ZLIB_LEVEL = 6


def _meta_dict(snapshot: MachineSnapshot) -> dict:
    hart = snapshot.hart
    memory = snapshot.memory
    devices = snapshot.devices
    engine = snapshot.engine
    return {
        "version": snapshot.version,
        "fast_path": snapshot.fast_path,
        "halt_reason": snapshot.halt_reason,
        "hart": {
            "regs": list(hart.regs),
            "pc": hart.pc,
            "privilege": hart.privilege,
            "cycles": hart.cycles,
            "instret": hart.instret,
            "wfi": hart.waiting_for_interrupt,
        },
        "csrs": {str(addr): value for addr, value in snapshot.csrs.items()},
        "memory": {
            "strict": memory.strict,
            "regions": [list(region) for region in memory.regions],
            "watched": list(memory.watched_pages),
            "page_indices": sorted(memory.pages),
        },
        "devices": {
            "clint_mtime": devices.clint_mtime,
            "clint_mtimecmp": devices.clint_mtimecmp,
            "shutdown_requested": devices.shutdown_requested,
            "exit_code": devices.exit_code,
            "uart": base64.b64encode(devices.uart_output).decode("ascii"),
            "rng_state": devices.rng_state,
        },
        "engine": {
            "cipher": engine.cipher,
            "miss_cycles": engine.miss_cycles,
            "hit_cycles": engine.hit_cycles,
            "keys": [list(key) for key in engine.keys],
            "stats": {
                **{
                    name: value
                    for name, value in engine.stats.items()
                    if name != "per_key"
                },
                "per_key": {
                    str(ksel): count
                    for ksel, count in engine.stats["per_key"].items()
                },
            },
            "clb": {
                "num_entries": engine.clb.num_entries,
                "clock": engine.clb.clock,
                "entries": [list(entry) for entry in engine.clb.entries],
                "stats": engine.clb.stats,
            },
        },
        "cost": snapshot.cost,
    }


def to_bytes(snapshot: MachineSnapshot) -> bytes:
    """Serialize; deterministic for equal machine state."""
    if not snapshot.memory.pages_captured:
        raise SnapshotError(
            "fork-style snapshot (no page contents) cannot be serialized"
        )
    meta = json.dumps(
        _meta_dict(snapshot), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    raw_pages = b"".join(
        snapshot.memory.pages[index]
        for index in sorted(snapshot.memory.pages)
    )
    blob = zlib.compress(raw_pages, _ZLIB_LEVEL)
    return b"".join(
        (
            MAGIC,
            struct.pack("<H", snapshot.version),
            struct.pack("<I", len(meta)),
            meta,
            struct.pack("<I", len(blob)),
            blob,
        )
    )


def from_bytes(data: bytes) -> MachineSnapshot:
    """Parse bytes produced by :func:`to_bytes`."""
    if len(data) < len(MAGIC) + 6 or not data.startswith(MAGIC):
        raise SnapshotError("not a RegVault machine snapshot (bad magic)")
    offset = len(MAGIC)
    (version,) = struct.unpack_from("<H", data, offset)
    offset += 2
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {version} not supported "
            f"(expected {SNAPSHOT_VERSION})"
        )
    (meta_len,) = struct.unpack_from("<I", data, offset)
    offset += 4
    try:
        meta = json.loads(data[offset:offset + meta_len].decode("utf-8"))
    except ValueError as error:
        raise SnapshotError(f"corrupt snapshot metadata: {error}") from None
    offset += meta_len
    (blob_len,) = struct.unpack_from("<I", data, offset)
    offset += 4
    raw_pages = zlib.decompress(data[offset:offset + blob_len])

    indices = meta["memory"]["page_indices"]
    if len(raw_pages) != PAGE_SIZE * len(indices):
        raise SnapshotError(
            f"page blob holds {len(raw_pages)} bytes, expected "
            f"{PAGE_SIZE * len(indices)}"
        )
    pages = {
        index: raw_pages[i * PAGE_SIZE:(i + 1) * PAGE_SIZE]
        for i, index in enumerate(indices)
    }

    hart = meta["hart"]
    devices = meta["devices"]
    engine = meta["engine"]
    return MachineSnapshot(
        version=version,
        fast_path=meta["fast_path"],
        halt_reason=meta["halt_reason"],
        hart=HartState(
            regs=tuple(hart["regs"]),
            pc=hart["pc"],
            privilege=hart["privilege"],
            cycles=hart["cycles"],
            instret=hart["instret"],
            waiting_for_interrupt=hart["wfi"],
        ),
        csrs={int(addr): value for addr, value in meta["csrs"].items()},
        memory=MemoryState(
            strict=meta["memory"]["strict"],
            regions=tuple(
                (name, base, size)
                for name, base, size in meta["memory"]["regions"]
            ),
            watched_pages=tuple(meta["memory"]["watched"]),
            pages=pages,
        ),
        devices=DeviceState(
            clint_mtime=devices["clint_mtime"],
            clint_mtimecmp=devices["clint_mtimecmp"],
            shutdown_requested=devices["shutdown_requested"],
            exit_code=devices["exit_code"],
            uart_output=base64.b64decode(devices["uart"]),
            rng_state=devices["rng_state"],
        ),
        engine=EngineState(
            cipher=engine["cipher"],
            miss_cycles=engine["miss_cycles"],
            hit_cycles=engine["hit_cycles"],
            keys=tuple(tuple(key) for key in engine["keys"]),
            stats={
                **{
                    name: value
                    for name, value in engine["stats"].items()
                    if name != "per_key"
                },
                "per_key": {
                    int(ksel): count
                    for ksel, count in engine["stats"]["per_key"].items()
                },
            },
            clb=CLBState(
                num_entries=engine["clb"]["num_entries"],
                clock=engine["clb"]["clock"],
                entries=tuple(
                    tuple(entry) for entry in engine["clb"]["entries"]
                ),
                stats=engine["clb"]["stats"],
            ),
        ),
        cost=meta["cost"],
    )


def content_hash(snapshot: MachineSnapshot) -> str:
    """Stable SHA-256 hex digest of the canonical serialized form."""
    return hashlib.sha256(to_bytes(snapshot)).hexdigest()


def save(snapshot: MachineSnapshot, path) -> int:
    """Write the snapshot to ``path``; return the byte count."""
    data = to_bytes(snapshot)
    with open(path, "wb") as handle:
        handle.write(data)
    return len(data)


def load(path) -> MachineSnapshot:
    """Read a snapshot previously written with :func:`save`."""
    with open(path, "rb") as handle:
        return from_bytes(handle.read())

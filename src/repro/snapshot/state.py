"""Snapshot state containers.

A :class:`MachineSnapshot` is a frozen, self-contained description of a
:class:`repro.machine.machine.Machine` at one instruction boundary: the
complete architectural state (registers, PC, privilege, CSRs, memory
pages and regions) plus the microarchitectural state the simulator
models explicitly (CLB entries and statistics, engine counters, cycle
and instret counters, device registers).

What is deliberately *not* captured:

* translated basic blocks and the shared decode cache — both are
  derived caches; a restored machine starts with them empty (and the
  process-wide decode cache is dropped on restore, see
  :mod:`repro.snapshot.restore`);
* Python-level callbacks (code-write hooks, CLB key listeners, counter
  hooks) — these bind to live objects and are re-created when the
  restored machine is constructed.

Everything in this module is plain data: ints, strings, bytes, tuples
and dicts of the same, so snapshots serialize deterministically (see
:mod:`repro.snapshot.serialize`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Bump when the snapshot layout changes incompatibly.
SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class HartState:
    """Architectural hart state (registers, PC, privilege, counters)."""

    regs: tuple  # 32 ints, x0 included
    pc: int
    privilege: int
    cycles: int
    instret: int
    waiting_for_interrupt: bool


@dataclass(frozen=True)
class MemoryState:
    """Sparse memory: regions, allocated pages and SMC-watched pages.

    ``pages`` may be empty when the snapshot was captured for an
    in-process fork (the forked Memory carries the pages itself); such
    snapshots are marked ``pages_captured=False`` and refuse to
    serialize.
    """

    strict: bool
    regions: tuple  # ((name, base, size), ...)
    watched_pages: tuple  # sorted page indices
    pages: dict  # page index -> bytes (PAGE_SIZE each)
    pages_captured: bool = True


@dataclass(frozen=True)
class DeviceState:
    """CLINT + SYSCON + UART + RNG registers."""

    clint_mtime: int
    clint_mtimecmp: int
    shutdown_requested: bool
    exit_code: int
    uart_output: bytes
    rng_state: int


@dataclass(frozen=True)
class CLBState:
    """Cryptographic lookaside buffer: every line plus statistics."""

    num_entries: int
    clock: int
    #: ((valid, ksel, tweak, plaintext, ciphertext, last_use), ...)
    entries: tuple
    stats: dict  # field name -> int


@dataclass(frozen=True)
class EngineState:
    """Crypto-engine: cipher identity, key material, CLB, counters."""

    #: {"name": "qarma"|"xor"|"xex", "rounds": int, "sbox": int}
    cipher: dict
    miss_cycles: int
    hit_cycles: int
    #: ((ksel, hi, lo), ...) — the eight key registers, master included.
    keys: tuple
    #: encryptions/decryptions/integrity_faults/cycles + per_key {int: n}
    stats: dict
    clb: CLBState


@dataclass(frozen=True)
class MachineSnapshot:
    """One complete machine checkpoint."""

    hart: HartState
    csrs: dict  # csr address -> value
    memory: MemoryState
    devices: DeviceState
    engine: EngineState
    cost: dict  # CostModel field name -> int
    fast_path: bool
    halt_reason: str | None
    version: int = SNAPSHOT_VERSION
    _hash_cache: list = field(
        default_factory=list, repr=False, compare=False
    )

    def content_hash(self) -> str:
        """SHA-256 over the canonical serialized form (cached)."""
        if not self._hash_cache:
            from repro.snapshot.serialize import content_hash

            self._hash_cache.append(content_hash(self))
        return self._hash_cache[0]

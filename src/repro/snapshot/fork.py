"""Cheap copy-on-write machine forking.

``fork(machine)`` produces an independent child machine whose memory
shares every current page with the parent copy-on-write
(:meth:`repro.machine.memory.Memory.fork`): N children of one booted
kernel share all boot-time pages and only copy the pages they actually
write.  Scalar state (hart, CSRs, devices, engine, CLB) is copied
eagerly — it is a few hundred machine words.

The child starts with an empty block-translation cache and its own
code-write hook, so self-modifying-code tracking is re-armed per child;
the stateless cipher object is shared with the parent.
"""

from __future__ import annotations

from repro.machine.machine import Machine
from repro.machine.timing import CostModel
from repro.snapshot.capture import capture
from repro.snapshot.restore import apply_scalar_state, build_engine
from repro.telemetry import hooks as telemetry
from repro.telemetry.events import SNAPSHOT_FORK


def fork(machine: Machine) -> Machine:
    """Return an independent copy of ``machine`` sharing pages COW."""
    if telemetry.active():
        telemetry.emit(SNAPSHOT_FORK, pages=len(machine.memory._pages))
    snapshot = capture(machine, include_pages=False)
    memory = machine.memory.fork()
    engine = build_engine(snapshot.engine, cipher=machine.engine.cipher)
    child = Machine(
        memory=memory,
        engine=engine,
        cost_model=CostModel(**snapshot.cost),
    )
    apply_scalar_state(child, snapshot)
    return child

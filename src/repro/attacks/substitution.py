"""Attack 8 — spatial code-pointer substitution.

The attacker cannot forge a valid ciphertext, but can *copy* one: the
(possibly encrypted) ``sys_exit`` entry of the syscall table is copied
over the ``sys_nop`` entry.  A victim calling the harmless syscall then
executes the substituted one with attacker-chosen arguments.

* Original kernel: pointers are interchangeable — the substitution
  works and ``SYS_NOP`` terminates the machine with the attacker's
  exit code.
* RegVault: the storage address is the encryption tweak, so the copied
  ciphertext decrypts to garbage at its new location and the dispatch
  faults ("the address-based randomization thwarts spatial substitution
  attacks", §4.3.1).
"""

from __future__ import annotations

from repro.attacks.base import Attack
from repro.compiler.ir import Const
from repro.kernel import KernelConfig
from repro.kernel.structs import SYS_EXIT, SYS_NOP

HIJACK_CODE = 0x7E


class SubstitutionAttack(Attack):
    name = "spatial code-pointer substitution"
    number = 8

    def run(self, config: KernelConfig):
        def body(b, syscall):
            # A "harmless" syscall with a loaded argument; if the table
            # was substituted this is really exit(HIJACK_CODE).
            syscall(SYS_NOP, Const(HIJACK_CODE))
            syscall(SYS_EXIT, Const(1))

        session = self.session(config, body)
        assert session.run_until(session.image.user_program.entry)
        table = session.symbol("syscall_table")
        exit_entry = session.read_u64(table + 8 * SYS_EXIT)
        session.write_u64(table + 8 * SYS_NOP, exit_entry)

        result = session.resume()
        return self.result(
            config,
            succeeded=result.exit_code == HIJACK_CODE,
            outcome=self.describe(result),
        )

"""Run the full penetration-test matrix (Table 4)."""

from __future__ import annotations

from repro.attacks.base import Attack, AttackResult
from repro.attacks.corruption import CorruptionAttack
from repro.attacks.interrupt import InterruptCorruptionAttack
from repro.attacks.jop import JopAttack
from repro.attacks.leak import LeakAttack
from repro.attacks.privilege import PrivilegeEscalationAttack
from repro.attacks.rop import RopAttack
from repro.attacks.selinux_bypass import SelinuxBypassAttack
from repro.attacks.substitution import SubstitutionAttack
from repro.kernel import KernelConfig

#: The paper's eight penetration tests, in Table 4 order.
ALL_ATTACKS: tuple[type[Attack], ...] = (
    RopAttack,
    JopAttack,
    CorruptionAttack,
    LeakAttack,
    PrivilegeEscalationAttack,
    SelinuxBypassAttack,
    InterruptCorruptionAttack,
    SubstitutionAttack,
)


def run_attack(
    attack_cls: type[Attack],
    config: KernelConfig,
    boot_cache=None,
) -> AttackResult:
    attack = attack_cls()
    if boot_cache is not None:
        attack.boot_cache = boot_cache
    result = attack.run(config)
    if result.telemetry is None:
        from repro.telemetry.summary import aggregate_session_telemetry

        result.telemetry = aggregate_session_telemetry(attack.sessions)
    return result


def run_suite(
    configs: tuple[KernelConfig, ...] | None = None,
    boot_cache=None,
    use_boot_cache: bool = True,
    attacks: tuple[type[Attack], ...] | None = None,
) -> list[AttackResult]:
    """Run every attack against every config (default: original vs full).

    By default a fresh :class:`~repro.kernel.BootCache` serves the
    whole matrix, so each config boots exactly once and every scenario
    forks that boot copy-on-write.  Pass ``use_boot_cache=False`` to
    boot from reset per cell (bit-identical results, much slower), or
    pass an existing ``boot_cache`` to share templates across calls.
    ``attacks`` overrides the attack roster (default Table 4; the CLI's
    ``--transient`` appends the speculative family from
    :mod:`repro.attacks.transient`).
    """
    if configs is None:
        configs = (KernelConfig.baseline(), KernelConfig.full())
    if attacks is None:
        attacks = ALL_ATTACKS
    if boot_cache is None and use_boot_cache:
        from repro.kernel import BootCache

        boot_cache = BootCache()
    results = []
    for attack_cls in attacks:
        for config in configs:
            results.append(run_attack(attack_cls, config, boot_cache))
    return results


def matrix_json(results: list[AttackResult]) -> dict:
    """The Table-4 matrix as a JSON-serializable document."""
    configs: list[str] = []
    for result in results:
        if result.config not in configs:
            configs.append(result.config)
    return {
        "schema": "repro.attacks/1",
        "configs": configs,
        "attacks": [
            {
                "attack": result.attack,
                "config": result.config,
                "succeeded": result.succeeded,
                "blocked": result.blocked,
                "symbol": result.symbol,
                "outcome": result.outcome,
                "telemetry": result.telemetry,
            }
            for result in results
        ],
        "defended": all(
            not result.succeeded
            for result in results
            if result.config != "baseline"
        ),
    }


def format_table(results: list[AttackResult]) -> str:
    """Render the Table 4 matrix."""
    configs = []
    for result in results:
        if result.config not in configs:
            configs.append(result.config)
    attacks = []
    for result in results:
        if result.attack not in attacks:
            attacks.append(result.attack)
    cell = {(r.attack, r.config): r for r in results}

    header = f"{'Attack':40s}" + "".join(f"{c:>12s}" for c in configs)
    rows = [header, "-" * len(header)]
    for attack in attacks:
        row = f"{attack:40s}"
        for config in configs:
            result = cell[(attack, config)]
            row += f"{result.symbol:>12s}"
        rows.append(row)
    rows.append("")
    rows.append("x = attack succeeds      v = attack stopped")
    return "\n".join(rows)

"""Run the full penetration-test matrix (Table 4)."""

from __future__ import annotations

from repro.attacks.base import Attack, AttackResult
from repro.attacks.corruption import CorruptionAttack
from repro.attacks.interrupt import InterruptCorruptionAttack
from repro.attacks.jop import JopAttack
from repro.attacks.leak import LeakAttack
from repro.attacks.privilege import PrivilegeEscalationAttack
from repro.attacks.rop import RopAttack
from repro.attacks.selinux_bypass import SelinuxBypassAttack
from repro.attacks.substitution import SubstitutionAttack
from repro.kernel import KernelConfig

#: The paper's eight penetration tests, in Table 4 order.
ALL_ATTACKS: tuple[type[Attack], ...] = (
    RopAttack,
    JopAttack,
    CorruptionAttack,
    LeakAttack,
    PrivilegeEscalationAttack,
    SelinuxBypassAttack,
    InterruptCorruptionAttack,
    SubstitutionAttack,
)


def run_attack(
    attack_cls: type[Attack], config: KernelConfig
) -> AttackResult:
    return attack_cls().run(config)


def run_suite(
    configs: tuple[KernelConfig, ...] | None = None,
) -> list[AttackResult]:
    """Run every attack against every config (default: original vs full)."""
    if configs is None:
        configs = (KernelConfig.baseline(), KernelConfig.full())
    results = []
    for attack_cls in ALL_ATTACKS:
        for config in configs:
            results.append(run_attack(attack_cls, config))
    return results


def format_table(results: list[AttackResult]) -> str:
    """Render the Table 4 matrix."""
    configs = []
    for result in results:
        if result.config not in configs:
            configs.append(result.config)
    attacks = []
    for result in results:
        if result.attack not in attacks:
            attacks.append(result.attack)
    cell = {(r.attack, r.config): r for r in results}

    header = f"{'Attack':40s}" + "".join(f"{c:>12s}" for c in configs)
    rows = [header, "-" * len(header)]
    for attack in attacks:
        row = f"{attack:40s}"
        for config in configs:
            result = cell[(attack, config)]
            row += f"{result.symbol:>12s}"
        rows.append(row)
    rows.append("")
    rows.append("x = attack succeeds      v = attack stopped")
    return "\n".join(rows)

"""Attack framework plumbing."""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler import Function, FunctionType, I64, IRBuilder, Module
from repro.compiler.ir import Const
from repro.kernel import KernelConfig
from repro.kernel.api import RunResult

#: Exit code the kernel-resident gadget produces when hijacked control
#: flow reaches it.
GADGET_EXIT = 0xAA


@dataclass
class AttackResult:
    """Outcome of one attack against one kernel build."""

    attack: str
    config: str
    #: The attacker reached their goal (root, leak, hijack, ...).
    succeeded: bool
    #: The protection observably stopped the attack (trap/garbage).
    blocked: bool
    outcome: str
    #: Post-run counters (CLB hit ratio, crypto ops, syscall counts)
    #: aggregated over the attack's sessions; filled in by the suite
    #: runner from machine statistics — no tracer is ever attached.
    telemetry: dict | None = None

    @property
    def symbol(self) -> str:
        """Table-4 style cell: ``x`` (attack lands) / ``v`` (defended)."""
        return "x" if self.succeeded else "v"


class Attack:
    """Base class: build a scenario, stage the exploit, classify."""

    name = "abstract"
    number = 0
    #: Optional :class:`repro.kernel.BootCache` — when set (the suite
    #: runner sets it), sessions fork a booted template instead of
    #: booting from reset.  Results are bit-identical either way.
    boot_cache = None

    def __init__(self) -> None:
        #: Every session built via :meth:`session`, in creation order.
        self.sessions: list = []

    def run(self, config: KernelConfig) -> AttackResult:
        raise NotImplementedError

    # -- helpers --------------------------------------------------------------

    def session(self, config: KernelConfig, body):
        """A :class:`KernelSession` for this scenario, boot-cached if set.

        Every session is also recorded on ``self.sessions`` so
        conformance tests can inspect final machine state after
        :meth:`run` returns (e.g. the step-vs-block differential suite
        hashes each session's architectural state under both modes).
        """
        from repro.kernel import KernelSession

        session = KernelSession(
            config, self.user_program(body), boot_cache=self.boot_cache
        )
        self.sessions.append(session)
        return session

    @staticmethod
    def user_program(body) -> Module:
        """User module whose main is built by ``body(b, syscall)``."""
        module = Module("user")
        main = Function("main", FunctionType(I64, ()))
        module.add_function(main)
        builder = IRBuilder(main)
        builder.block("entry")

        def syscall(number, *args):
            return builder.intrinsic(
                "ecall", [Const(number), *args], returns=True
            )

        body(builder, syscall)
        builder.ret(Const(0))
        return module

    def result(
        self,
        config: KernelConfig,
        succeeded: bool,
        outcome: str,
    ) -> AttackResult:
        return AttackResult(
            attack=self.name,
            config=config.name,
            succeeded=succeeded,
            blocked=not succeeded,
            outcome=outcome,
        )

    @staticmethod
    def describe(result: RunResult) -> str:
        if result.exit_code == GADGET_EXIT:
            return "gadget executed (control flow hijacked)"
        if result.integrity_fault:
            return "RegVault integrity fault (panic)"
        if result.panicked:
            return f"kernel panic, trap cause {result.panic_cause}"
        return f"exit code {result.exit_code}"

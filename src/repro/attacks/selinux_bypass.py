"""Attack 6 — SELinux bypass by flag overwrite (§3.2.3, [Shen BH'17]).

Zero ``selinux_state.initialized`` (and ``enforcing``): the access
control logic then treats every request as allowed.

* Original kernel: a permission that policy denies is granted after the
  overwrite — enforcement is off.
* RegVault: the flags are ``__rand_integrity``-protected; the zeroed
  ciphertext slots trip the integrity check inside the next hook call.
"""

from __future__ import annotations

from repro.attacks.base import Attack
from repro.compiler.ir import Const
from repro.kernel import KernelConfig
from repro.kernel.selinux import POLICY_ALLOW_BELOW
from repro.kernel.structs import SELINUX_STATE, SYS_EXIT, SYS_SELINUX_CHECK

#: A permission the toy policy always denies.
FORBIDDEN_PERM = POLICY_ALLOW_BELOW + 3
BYPASSED = 0xB1
DENIED = 0xD0


class SelinuxBypassAttack(Attack):
    name = "SELinux bypass"
    number = 6

    def run(self, config: KernelConfig):
        def body(b, syscall):
            allowed = syscall(SYS_SELINUX_CHECK, Const(FORBIDDEN_PERM))
            got_through = b.cmp("ne", allowed, Const(0))
            b.cond_br(got_through, "bypassed", "denied")
            b.block("bypassed")
            syscall(SYS_EXIT, Const(BYPASSED))
            b.br("denied")
            b.block("denied")
            syscall(SYS_EXIT, Const(DENIED))

        session = self.session(config, body)
        assert session.run_until(session.image.user_program.entry)
        for field_name in ("initialized", "enforcing"):
            addr = session.field_addr(
                "selinux_state", SELINUX_STATE, field_name
            )
            if config.noncontrol:
                session.write_u64(addr, 0)
            else:
                session.write_u32(addr, 0)

        result = session.resume()
        return self.result(
            config,
            succeeded=result.exit_code == BYPASSED,
            outcome=self.describe(result),
        )

"""Run the Table-4 penetration matrix: ``python -m repro.attacks``.

Prints the human-readable matrix by default; ``--json`` emits the same
results as a machine-readable document (schema ``repro.attacks/1``).
Exit status is 0 when every protected configuration stopped every
attack, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.attacks.suite import format_table, matrix_json, run_suite
from repro.kernel import KernelConfig

CONFIG_FACTORIES = {
    "baseline": KernelConfig.baseline,
    "ra": KernelConfig.ra_only,
    "fp": KernelConfig.fp_only,
    "noncontrol": KernelConfig.noncontrol_only,
    "full": KernelConfig.full,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.attacks",
        description="Run the RegVault penetration-test matrix (Table 4).",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the matrix as JSON instead of the text table",
    )
    parser.add_argument(
        "--config",
        action="append",
        choices=sorted(CONFIG_FACTORIES),
        metavar="NAME",
        help="kernel build(s) to attack; repeatable "
        "(default: baseline and full)",
    )
    parser.add_argument(
        "--no-boot-cache",
        action="store_true",
        help="boot from reset for every cell instead of forking "
        "a cached boot (slower, bit-identical results)",
    )
    parser.add_argument(
        "--transient",
        action="store_true",
        help="append the transient-execution family (Spectre-PHT "
        "bounds bypass, key-CSR exfiltration) to the matrix",
    )
    args = parser.parse_args(argv)

    configs = (
        tuple(CONFIG_FACTORIES[name]() for name in args.config)
        if args.config
        else None
    )
    attacks = None
    if args.transient:
        from repro.attacks.suite import ALL_ATTACKS
        from repro.attacks.transient import TRANSIENT_ATTACKS

        attacks = ALL_ATTACKS + TRANSIENT_ATTACKS
    results = run_suite(
        configs, use_boot_cache=not args.no_boot_cache, attacks=attacks
    )
    document = matrix_json(results)
    if args.json:
        json.dump(document, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        print(format_table(results))
    return 0 if document["defended"] else 1


if __name__ == "__main__":
    sys.exit(main())

"""Attack 4 — sensitive data disclosure (keyring key leak, §3.2.1).

The victim installs a cryptographic key in the kernel keyring; the
attacker dumps the keyring with an arbitrary-read primitive.

* Original kernel: keyring payloads sit in memory as plaintext — the
  attacker walks away with the key.
* RegVault: payloads are QARMA ciphertext under the keyring key
  register, whose value is neither in memory nor CSR-readable; the dump
  yields only ciphertext.
"""

from __future__ import annotations

from repro.attacks.base import Attack
from repro.compiler.ir import Const
from repro.kernel import KernelConfig
from repro.kernel.structs import KERNEL_KEY, SYS_ADD_KEY, SYS_EXIT

SECRET_LO = 0x5EC2E7000000AAAA
SECRET_HI = 0x5EC2E7000000BBBB


class LeakAttack(Attack):
    name = "sensitive data disclosure"
    number = 4

    def run(self, config: KernelConfig):
        def body(b, syscall):
            syscall(SYS_ADD_KEY, Const(SECRET_LO), Const(SECRET_HI))
            # Signal "key installed" and keep running so the attacker
            # strikes while the key is resident.
            syscall(0x7, Const(0), Const(0))  # harmless second add_key
            syscall(SYS_EXIT, Const(0))

        session = self.session(config, body)
        # Run to completion; the keyring retains the key at rest.
        final = session.run()
        assert final.exit_code == 0

        slot0 = session.symbol("keyring")
        lo_addr = slot0 + session.image.field_offset(KERNEL_KEY, "payload_lo")
        hi_addr = slot0 + session.image.field_offset(KERNEL_KEY, "payload_hi")
        dumped_lo = session.read_u64(lo_addr)
        dumped_hi = session.read_u64(hi_addr)

        leaked = dumped_lo == SECRET_LO and dumped_hi == SECRET_HI
        outcome = (
            "plaintext key recovered from memory"
            if leaked
            else f"dump yields ciphertext ({dumped_lo:#x})"
        )
        return self.result(config, succeeded=leaked, outcome=outcome)

"""Attack 5 — privilege escalation by corrupting ``cred.uid`` (§3.2.2).

The classic Android/Linux rooting move: write 0 over the uid/euid
fields, then ask the kernel who you are.

* Original kernel: ``getuid`` returns 0 and ``setuid(0)`` succeeds —
  the attacker is root.
* RegVault: the fields are ``__rand_integrity`` ciphertext; the zeroed
  slots fail the integrity check at the next credential load and the
  kernel traps instead of granting root.
"""

from __future__ import annotations

from repro.attacks.base import Attack
from repro.compiler.ir import Const
from repro.kernel import KernelConfig
from repro.kernel.structs import CRED, SYS_EXIT, SYS_GETUID, SYS_SETUID

ROOT_MARKER = 0x900D  # exit code when the attacker verifies uid == 0


class PrivilegeEscalationAttack(Attack):
    name = "privilege escalation"
    number = 5

    def run(self, config: KernelConfig):
        def body(b, syscall):
            uid = syscall(SYS_GETUID)
            is_root = b.cmp("eq", uid, Const(0))
            grabbed = syscall(SYS_SETUID, Const(0))   # root-only operation
            setuid_ok = b.cmp("eq", grabbed, Const(0))
            both = b.and_(is_root, setuid_ok)
            b.cond_br(both, "rooted", "not_rooted")
            b.block("rooted")
            syscall(SYS_EXIT, Const(ROOT_MARKER))
            b.br("not_rooted")
            b.block("not_rooted")
            syscall(SYS_EXIT, Const(1))

        session = self.session(config, body)
        assert session.run_until(session.image.user_program.entry)
        cred_base = session.thread_field_addr(0, "cred")
        for field_name in ("uid", "euid"):
            addr = cred_base + session.image.field_offset(CRED, field_name)
            if config.noncontrol:
                session.write_u64(addr, 0)
            else:
                session.write_u32(addr, 0)

        result = session.resume()
        return self.result(
            config,
            succeeded=result.exit_code == ROOT_MARKER,
            outcome=self.describe(result),
        )

"""Penetration-test suite (Table 4).

Eight attacks from the paper's security evaluation, each staged through
the threat model's exploit primitive — arbitrary kernel memory
read/write — against a running kernel:

1. return-oriented programming (saved return address overwrite),
2. jump-oriented programming (function pointer overwrite),
3. sensitive data corruption,
4. sensitive data disclosure (keyring key leak),
5. privilege escalation (``cred.uid`` overwrite),
6. SELinux bypass (``selinux_state`` flag overwrite),
7. interrupt context corruption,
8. spatial code-pointer substitution.

Every attack runs against both the original and the RegVault kernel and
reports whether the attacker's goal was reached or the protection
stopped it.
"""

from repro.attacks.base import Attack, AttackResult
from repro.attacks.suite import (
    ALL_ATTACKS,
    format_table,
    matrix_json,
    run_attack,
    run_suite,
)

__all__ = [
    "Attack",
    "AttackResult",
    "ALL_ATTACKS",
    "format_table",
    "matrix_json",
    "run_attack",
    "run_suite",
]

"""Transient-execution attack family (Spectre-PHT, key-CSR exfil).

Unlike the eight architectural attacks, these run *bare-metal* victims
under the opt-in speculative front-end (:mod:`repro.machine.spec`):
the leak they measure lives entirely inside squashed transient windows,
so the kernel's syscall surface is irrelevant — what matters is what
the modeled hardware lets a mispredicted path observe.

* :class:`SpectrePHTAttack` — the classic bounds-check bypass.  A
  gadget ``if (i < len) probe[array[i] << 6]`` is trained in-bounds,
  then called with an index that reaches a protected kernel field.
  The transient out-of-bounds load dead-drops the loaded byte into a
  probe-array address; the attacker "recovers" it from the tainted
  transient load the trace plane records (our stand-in for a cache
  side channel).  Against a baseline build the field is plaintext and
  the secret leaks; under RegVault's non-control-data protection the
  field holds QARMA ciphertext, so the very same transient sequence
  leaks only an encrypted byte.
* :class:`TransientKeyExfilAttack` — a Meltdown-style grab at a key
  CSR inside a transient window.  Baseline models naive hardware that
  forwards the CSR value transiently and only traps at retirement
  (``forward_key_csrs=True``): the key byte reaches the probe array.
  RegVault's write-only key registers gate the read *before* any
  forward, so under any protected build the window squashes at the
  ``csrr`` and nothing leaks.

Both attacks report through the same :class:`AttackResult` cells as
the Table-4 matrix (``python -m repro.attacks --transient``) and stash
the speculative stats plus a leakage-analyzer summary in the cell's
``telemetry`` field.
"""

from __future__ import annotations

from repro.attacks.base import Attack, AttackResult
from repro.crypto.keys import KeySelect
from repro.isa import assemble
from repro.kernel import KernelConfig
from repro.machine import Machine
from repro.machine.spec import SpecConfig, SpeculativeEngine
from repro.telemetry.bus import TraceBus, TraceRecorder
from repro.telemetry.events import SPEC_KINDS, SPEC_LOAD
from repro.telemetry.leakage import LeakageAnalyzer
from repro.utils.bits import MASK64

__all__ = [
    "SpectrePHTAttack",
    "TransientKeyExfilAttack",
    "TRANSIENT_ATTACKS",
]

#: The planted kernel secret the Spectre gadget reaches out of bounds.
SECRET_BYTE = 0xA7

#: Deterministic per-register thread keys, distinct from the fuzz keys.
ATTACK_KEYS = {
    ksel: (0xD1CEB00C0FFEE123 << 64 | 0x8BADF00D5EAF00D5)
    ^ (int(ksel) * 0xA5A5A5A5A5A5A5A5)
    for ksel in KeySelect
}

#: Probe-array geometry: one 64-byte "cache line" per byte value.
_PROBE_STRIDE = 64
_PROBE_BYTES = 256 * _PROBE_STRIDE

_EPILOGUE = """
    li t0, 0x5555
    li t1, 0x02010000
    sw t0, 0(t1)
__idle:
    j __idle

__trap:
    csrr t0, mepc
    addi t0, t0, 4
    csrw mepc, t0
    mret
"""

_SPECTRE_ENCRYPT = """
    # Boot-time RegVault keying of the secret field: encrypt in place
    # with key A, tweaked by the field's address (the compiler's
    # convention for protected non-control data).
    la t0, secret
    ld t1, 0(t0)
    add t2, t0, x0
    creak t3, t1[7:0], t2
    sd t3, 0(t0)
"""

_SPECTRE_SOURCE = """
_start:
    la t0, __trap
    csrw mtvec, t0
    la s2, array
    la s3, probe
    la t0, array_len
    ld s5, 0(t0)
{encrypt}
    li s6, 0
    li s7, 6
__train:
    andi a0, s6, 7
    jal ra, __gadget
    addi s6, s6, 1
    blt s6, s7, __train
    la t0, secret
    sub a0, t0, s2
    jal ra, __gadget
{epilogue}

__gadget:
    bgeu a0, s5, __oob
    add t0, s2, a0
    lbu t1, 0(t0)
    slli t1, t1, 6
    add t1, s3, t1
    lbu t2, 0(t1)
__oob:
    ret

.data
.align 3
array_len:
    .dword 16
array:
    .zero 64
secret:
    .dword {secret:#x}
probe:
    .zero {probe_bytes}
"""

_EXFIL_SOURCE = """
_start:
    la t0, __trap
    csrw mtvec, t0
    la s3, probe
    li s6, 0
    li s7, 6
__train:
    li a0, 0
    jal ra, __gadget
    addi s6, s6, 1
    blt s6, s7, __train
    li a0, 1
    jal ra, __gadget
{epilogue}

__gadget:
    bne a0, x0, __done
    csrr t0, krega_lo
    andi t0, t0, 0xff
    slli t0, t0, 6
    add t0, s3, t0
    lbu t1, 0(t0)
__done:
    ret

.data
.align 3
probe:
    .zero {probe_bytes}
"""


class _TransientAttack(Attack):
    """Shared bare-metal driver: assemble, attach speculation, record."""

    def _run_victim(self, program, spec_config: SpecConfig):
        """Run ``program`` under speculation; return (spec, recorder)."""
        machine = Machine.from_program(program)
        for ksel, key in ATTACK_KEYS.items():
            machine.engine.key_file.set_key(ksel, key)
        spec = SpeculativeEngine(spec_config)
        bus = TraceBus()
        recorder = TraceRecorder()
        for kind in SPEC_KINDS:
            bus.subscribe(kind, recorder)
        machine.hart.attach_speculation(spec)
        spec.trace_hook = bus.make_hook(lambda: machine.hart.cycles)
        try:
            machine.run(200_000, fast=True)
        finally:
            machine.hart.detach_speculation()
        self.last_machine = machine
        return spec, recorder

    @staticmethod
    def _recovered_bytes(program, recorder) -> list[int]:
        """Byte values dead-dropped into the probe array, in trace order."""
        probe = program.symbol("probe")
        recovered = []
        for event in recorder.by_kind(SPEC_LOAD):
            address = event.data["address"]
            if event.data["tainted"] and \
                    probe <= address < probe + _PROBE_BYTES:
                recovered.append((address - probe) // _PROBE_STRIDE)
        return recovered

    @staticmethod
    def _telemetry(spec, recorder) -> dict:
        report = LeakageAnalyzer().analyze(recorder.events).report()
        return {
            "spec": spec.stats.to_json(),
            "leakage": {
                "findings": len(report["findings"]),
                "clean": report["clean"],
                "blocked_key_csr_reads": report["blocked"]["key_csr_reads"],
            },
        }


class SpectrePHTAttack(_TransientAttack):
    """Bounds-check-bypass read of a protected kernel data field."""

    name = "transient bounds bypass (Spectre-PHT)"
    number = 9

    def run(self, config: KernelConfig) -> AttackResult:
        # RegVault keys the field only when non-control data protection
        # is on; other builds leave it plaintext (and leak it).
        protected = config.noncontrol
        source = _SPECTRE_SOURCE.format(
            encrypt=_SPECTRE_ENCRYPT if protected else "",
            epilogue=_EPILOGUE,
            secret=SECRET_BYTE,
            probe_bytes=_PROBE_BYTES,
        )
        # The attacker targets the secret's address either way; the
        # hardware model is identical — only the *data* differs.
        program = assemble(source)
        secret = program.symbol("secret")
        spec, recorder = self._run_victim(
            program, SpecConfig(secret_ranges=((secret, secret + 8),))
        )
        recovered = self._recovered_bytes(program, recorder)
        result = self.result(
            config,
            succeeded=SECRET_BYTE in recovered,
            outcome=self._describe(recovered, protected),
        )
        result.telemetry = self._telemetry(spec, recorder)
        return result

    @staticmethod
    def _describe(recovered: list[int], protected: bool) -> str:
        if SECRET_BYTE in recovered:
            return (
                f"transient OOB load dead-dropped secret byte "
                f"{SECRET_BYTE:#04x} into the probe array"
            )
        if recovered and protected:
            return (
                f"transient OOB load saw only QARMA ciphertext "
                f"(recovered {recovered[-1]:#04x}, secret stays hidden)"
            )
        return "no secret-dependent transient access observed"


class TransientKeyExfilAttack(_TransientAttack):
    """Meltdown-style transient read of a write-only key CSR."""

    name = "transient key-CSR exfiltration"
    number = 10

    def run(self, config: KernelConfig) -> AttackResult:
        # Baseline models naive hardware (value forwarded transiently,
        # trap at retirement); any protected build gets RegVault's
        # gate-before-forward key registers.
        naive = not config.any_protection
        program = assemble(
            _EXFIL_SOURCE.format(epilogue=_EPILOGUE,
                                 probe_bytes=_PROBE_BYTES)
        )
        spec, recorder = self._run_victim(
            program, SpecConfig(forward_key_csrs=naive)
        )
        expected = ATTACK_KEYS[KeySelect.A] & MASK64 & 0xFF
        recovered = self._recovered_bytes(program, recorder)
        blocked = spec.stats.squashes.get("key_csr", 0)
        if expected in recovered:
            outcome = (
                f"key CSR forwarded transiently: key byte {expected:#04x} "
                "dead-dropped into the probe array"
            )
        elif blocked:
            outcome = (
                f"window squashed at the key CSR read ({blocked} blocked "
                "probe(s)); key never left the register file"
            )
        else:
            outcome = "no transient key-CSR forward observed"
        result = self.result(
            config, succeeded=expected in recovered, outcome=outcome
        )
        result.telemetry = self._telemetry(spec, recorder)
        return result


#: The transient family, in report order (numbers continue Table 4).
TRANSIENT_ATTACKS: tuple[type[Attack], ...] = (
    SpectrePHTAttack,
    TransientKeyExfilAttack,
)

"""Attack 3 — sensitive data corruption.

The attacker overwrites an integrity-protected field (``cred.gid``)
with a chosen value and the kernel later consumes it.

* Original kernel: the corrupted value is silently accepted —
  ``getgid`` returns the attacker's number.
* RegVault: the field is a QARMA ciphertext with 32 zero-check bits;
  the attacker's plaintext write fails the ``crd`` integrity check and
  the kernel traps (Figure 2b).
"""

from __future__ import annotations

from repro.attacks.base import Attack
from repro.kernel import KernelConfig
from repro.kernel.structs import CRED, SYS_EXIT, SYS_GETGID

EVIL_GID = 0x31337


class CorruptionAttack(Attack):
    name = "sensitive data corruption"
    number = 3

    def run(self, config: KernelConfig):
        def body(b, syscall):
            gid = syscall(SYS_GETGID)
            syscall(SYS_EXIT, gid)

        session = self.session(config, body)
        assert session.run_until(session.image.user_program.entry)
        gid_addr = session.thread_field_addr(0, "cred") + (
            session.image.field_offset(CRED, "gid")
        )
        if config.noncontrol:
            # Protected layout: the gid slot is a full ciphertext word.
            session.write_u64(gid_addr, EVIL_GID)
        else:
            session.write_u32(gid_addr, EVIL_GID)

        result = session.resume()
        return self.result(
            config,
            succeeded=result.exit_code == (EVIL_GID & 0xFFFF),
            outcome=self.describe(result),
        )

"""Validator for the penetration-matrix JSON (schema ``repro.attacks/1``).

The matrix document is produced by :func:`repro.attacks.suite.
matrix_json` and shipped as a CI artifact by the ``spec-smoke`` job;
:mod:`repro.validate` dispatches here so a malformed matrix fails the
build before the artifact uploads.
"""

from __future__ import annotations

__all__ = ["MATRIX_SCHEMA", "validate_matrix"]

MATRIX_SCHEMA = "repro.attacks/1"


def validate_matrix(document: dict) -> list[str]:
    """Return a list of problems — empty means valid."""
    problems: list[str] = []
    if document.get("schema") != MATRIX_SCHEMA:
        problems.append(f"bad schema id {document.get('schema')!r}")
    configs = document.get("configs")
    if not isinstance(configs, list) or not all(
        isinstance(name, str) for name in configs
    ):
        problems.append("'configs' is not a list of strings")
        configs = []
    if not isinstance(document.get("defended"), bool):
        problems.append("'defended' is not a boolean")
    attacks = document.get("attacks")
    if not isinstance(attacks, list):
        return problems + ["'attacks' is not a list"]
    if not attacks:
        problems.append("'attacks' is empty")
    for index, cell in enumerate(attacks):
        where = f"attacks[{index}]"
        if not isinstance(cell, dict):
            problems.append(f"{where}: not an object")
            continue
        for field in ("attack", "config", "outcome"):
            if not isinstance(cell.get(field), str):
                problems.append(f"{where}: missing string {field!r}")
        for field in ("succeeded", "blocked"):
            if not isinstance(cell.get(field), bool):
                problems.append(f"{where}: missing boolean {field!r}")
        if cell.get("symbol") not in ("x", "v"):
            problems.append(f"{where}: bad symbol {cell.get('symbol')!r}")
        if configs and cell.get("config") not in configs:
            problems.append(
                f"{where}: config {cell.get('config')!r} not in 'configs'"
            )
        if cell.get("succeeded") == cell.get("blocked"):
            problems.append(
                f"{where}: 'succeeded' and 'blocked' must be complements"
            )
    return problems

"""Attack 2 — jump-oriented programming via function-pointer overwrite.

The syscall table is kernel data; the attacker overwrites the
``SYS_NOP`` entry with a gadget address and has the victim thread issue
that syscall.

* Original kernel: the dispatcher loads the planted pointer and
  ``jalr``s straight into the gadget.
* RegVault (``fp``): table entries are ciphertext under the dedicated
  function-pointer key; the planted plaintext address decrypts to
  garbage, and the indirect jump faults (§3.1.2).
"""

from __future__ import annotations

from repro.attacks.base import Attack, GADGET_EXIT
from repro.compiler.ir import Const
from repro.kernel import KernelConfig
from repro.kernel.structs import SYS_EXIT, SYS_NOP


class JopAttack(Attack):
    name = "jump-oriented programming"
    number = 2

    def run(self, config: KernelConfig):
        def body(b, syscall):
            syscall(SYS_NOP)          # the hijacked call
            syscall(SYS_EXIT, Const(7))

        session = self.session(config, body)
        # Boot fully (the table is initialized at boot), then strike
        # before the user program runs.
        assert session.run_until(session.image.user_program.entry)
        entry_addr = session.symbol("syscall_table") + 8 * SYS_NOP
        session.write_u64(entry_addr, session.symbol("attack_gadget"))

        result = session.resume()
        return self.result(
            config,
            succeeded=result.exit_code == GADGET_EXIT,
            outcome=self.describe(result),
        )

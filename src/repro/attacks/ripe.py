"""RIPE-style parametrized attack matrix.

The paper ports the RIPE suite [Wilander et al., ACSAC'11] to its
RISC-V kernel; RIPE's contribution is systematic *dimensions* rather
than individual exploits.  This module reproduces that idea for the
data RegVault protects:

* **targets** — the protected data classes of Table 2 reachable
  through the running kernel (cred uid, selinux flag, syscall-table
  pointer, keyring payload);
* **techniques** —

  - ``overwrite``: plant a chosen plaintext value directly;
  - ``substitute``: splice in the valid ciphertext of the *same kind*
    of data from a different address (spatial substitution);
  - ``replay``: capture the target's own ciphertext, let the kernel
    legitimately change the value, then restore the stale bytes
    (temporal substitution).

Expected outcomes: the unprotected kernel loses to everything; RegVault
stops all overwrites and spatial substitutions (integrity check and
address tweak, §4.3.1).  **Replay is a documented limitation**: the
tweak binds ciphertext to an address, not to a version, so replaying a
value the *same slot* previously held decrypts cleanly.  The paper does
not claim replay protection (CoDaRR's re-randomization, discussed in
§5, targets exactly this gap); the matrix makes the boundary explicit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.base import Attack
from repro.compiler.ir import Const
from repro.kernel import KernelConfig, KernelSession
from repro.kernel.structs import (
    CRED,
    SELINUX_STATE,
    SYS_EXIT,
    SYS_GETGID,
    SYS_GETUID,
    SYS_NOP,
    SYS_SELINUX_CHECK,
    SYS_SETGID,
)

TARGETS = ("cred_uid", "selinux_enforcing", "syscall_ptr")
TECHNIQUES = ("overwrite", "substitute", "replay")

#: Marker exit codes.
ATTACK_WON = 0xA7
CLEAN = 0x0C


@dataclass(frozen=True)
class RipeResult:
    target: str
    technique: str
    config: str
    succeeded: bool
    outcome: str

    @property
    def symbol(self) -> str:
        return "x" if self.succeeded else "v"


def _cross_thread_program():
    """Thread 0 (root) idles; thread 1 (victim, uid 1000) checks its
    uid after the attack window."""

    def body(b, syscall):
        pid = syscall(1)                       # SYS_GETPID
        first = b.cmp("eq", pid, Const(0))
        b.cond_br(first, "rootside", "victim")
        b.block("rootside")
        syscall(5)                             # yield to the victim
        syscall(SYS_EXIT, Const(CLEAN))
        b.br("end")
        b.block("victim")
        syscall(SYS_NOP)                       # attack window marker
        uid = syscall(SYS_GETUID)
        rooted = b.cmp("eq", uid, Const(0))
        b.cond_br(rooted, "won", "clean")
        b.block("won")
        syscall(4, Const(ord("R")))            # SYS_WRITE: rooted
        syscall(SYS_EXIT, Const(ATTACK_WON))
        b.br("end")
        b.block("clean")
        syscall(4, Const(ord("u")))            # SYS_WRITE: still a user
        syscall(SYS_EXIT, Const(CLEAN))
        b.br("end")
        b.block("end")

    return Attack.user_program(body)


def _user_program(target: str):
    """A victim that reports whether the attacker's goal value became
    effective."""

    def body(b, syscall):
        if target == "cred_uid":
            # Phase marker, then consume the (possibly tampered) uid.
            syscall(SYS_NOP)                       # attack window marker
            uid = syscall(SYS_GETUID)
            rooted = b.cmp("eq", uid, Const(0))
            b.cond_br(rooted, "won", "clean")
        elif target == "selinux_enforcing":
            syscall(SYS_NOP)
            allowed = syscall(SYS_SELINUX_CHECK, Const(7))  # denied normally
            bypassed = b.cmp("ne", allowed, Const(0))
            b.cond_br(bypassed, "won", "clean")
        else:  # syscall_ptr: call SYS_NOP; substituted ptr hijacks it
            result = syscall(SYS_NOP, Const(ATTACK_WON))
            b.cond_br(b.cmp("eq", result, Const(0)), "clean", "won")
        b.block("won")
        syscall(SYS_EXIT, Const(ATTACK_WON))
        b.br("end")
        b.block("clean")
        syscall(SYS_EXIT, Const(CLEAN))
        b.br("end")
        b.block("end")
        # Attack.user_program appends the final ret.

    return Attack.user_program(body)


def _replay_program():
    """For cred_uid replay: the kernel legitimately changes gid after
    the attacker snapshots it, then the victim re-reads it."""

    def body(b, syscall):
        g1 = syscall(SYS_GETGID)                # force initial use (0: root)
        syscall(SYS_NOP)                        # snapshot window
        syscall(SYS_SETGID, Const(7))           # legitimate change by root
        syscall(SYS_NOP)                        # restore window
        g2 = syscall(SYS_GETGID)
        same = b.cmp("eq", g2, g1)
        b.cond_br(same, "stale", "fresh")
        b.block("stale")
        syscall(SYS_EXIT, Const(ATTACK_WON))    # old value effective again
        b.br("end")
        b.block("fresh")
        syscall(SYS_EXIT, Const(CLEAN))
        b.br("end")
        b.block("end")
        # Attack.user_program appends the final ret.

    return Attack.user_program(body)


def _target_address(session: KernelSession, target: str) -> int:
    if target == "cred_uid":
        return session.thread_field_addr(0, "cred") + (
            session.image.field_offset(CRED, "uid")
        )
    if target == "selinux_enforcing":
        return session.field_addr("selinux_state", SELINUX_STATE, "enforcing")
    return session.symbol("syscall_table") + 8 * SYS_NOP


def _decoy_address(session: KernelSession, target: str) -> int:
    """A valid same-class ciphertext at a different address."""
    if target == "cred_uid":
        # euid holds the same plaintext under a different tweak.
        return session.thread_field_addr(0, "cred") + (
            session.image.field_offset(CRED, "euid")
        )
    if target == "selinux_enforcing":
        return session.field_addr(
            "selinux_state", SELINUX_STATE, "initialized"
        )
    return session.symbol("syscall_table") + 8 * SYS_EXIT


def run_cell(target: str, technique: str, config: KernelConfig) -> RipeResult:
    """Run one (target, technique, config) matrix cell."""
    if technique == "replay":
        return _run_root_replay(config)

    if target == "cred_uid" and technique == "substitute":
        return _run_cross_thread_substitution(config)

    session = KernelSession(config, _user_program(target))
    if target == "syscall_ptr":
        # Plant before the dispatcher ever reads the table entry.
        assert session.run_until(session.image.user_program.entry)
    else:
        assert session.run_until("sys_nop"), "victim never reached the window"
    address = _target_address(session, target)

    if technique == "overwrite":
        evil = {"cred_uid": 0, "selinux_enforcing": 0,
                "syscall_ptr": session.symbol("attack_gadget")}[target]
        if config.noncontrol or target == "syscall_ptr":
            session.write_u64(address, evil)
        else:
            session.write_u32(address, evil)
    elif technique == "substitute":
        session.write_u64(address, session.read_u64(
            _decoy_address(session, target)
        ))

    result = session.resume()
    succeeded = result.exit_code in (ATTACK_WON, 0xAA)
    return RipeResult(
        target=target,
        technique=technique,
        config=config.name,
        succeeded=succeeded,
        outcome=_describe(result),
    )


def _run_cross_thread_substitution(config: KernelConfig) -> RipeResult:
    """Spatial substitution on credentials: splice the *root* thread's
    valid uid ciphertext over the victim thread's slot."""
    import dataclasses

    config = dataclasses.replace(
        config, root_thread=True, num_threads=2
    )
    session = KernelSession(config, _cross_thread_program())
    assert session.run_until("sys_nop"), "victim never reached the window"
    uid_off = session.image.field_offset(CRED, "uid")
    donor = session.thread_field_addr(0, "cred") + uid_off     # uid 0
    victim = session.thread_field_addr(1, "cred") + uid_off    # uid 1000
    session.write_u64(victim, session.read_u64(donor))

    result = session.resume()
    rooted = "R" in result.console
    return RipeResult(
        target="cred_uid",
        technique="substitute",
        config=config.name,
        succeeded=rooted,
        outcome="victim became root" if rooted else _describe(result),
    )


def _run_root_replay(config: KernelConfig) -> RipeResult:
    """Temporal replay against a root thread whose setgid(0)
    legitimately rewrites the gid field between the attacker's snapshot
    and splice."""
    import dataclasses

    config = dataclasses.replace(config, root_thread=True)
    session = KernelSession(config, _replay_program())
    assert session.run_until("sys_nop")        # snapshot window
    gid_addr = session.thread_field_addr(0, "cred") + (
        session.image.field_offset(CRED, "gid")
    )
    snapshot = session.read_u64(gid_addr)
    before = snapshot

    # Step off the breakpoint, then resume past setgid(0): the kernel
    # rewrites gid legitimately before the second marker.
    session.machine.hart.step()
    assert session.run_until("sys_nop")        # restore window
    changed = session.read_u64(gid_addr)
    # Splice the stale ciphertext back (temporal substitution).
    session.write_u64(gid_addr, snapshot)
    result = session.resume()

    succeeded = result.exit_code == ATTACK_WON and changed != before
    outcome = (
        "stale ciphertext replayed cleanly (no versioning in the tweak)"
        if succeeded
        else _describe(result)
    )
    return RipeResult(
        target="cred_gid",
        technique="replay",
        config=config.name,
        succeeded=succeeded,
        outcome=outcome,
    )


def _describe(result) -> str:
    if result.integrity_fault:
        return "integrity fault"
    if result.panicked:
        return f"kernel panic (cause {result.panic_cause})"
    if result.exit_code == ATTACK_WON:
        return "attacker goal reached"
    if result.exit_code == CLEAN:
        return "no effect"
    return f"exit {result.exit_code:#x}"


def run_matrix(configs=None) -> list[RipeResult]:
    if configs is None:
        configs = (KernelConfig.baseline(), KernelConfig.full())
    results = []
    for target in TARGETS:
        for technique in ("overwrite", "substitute"):
            for config in configs:
                results.append(run_cell(target, technique, config))
    for config in configs:
        results.append(_run_root_replay(config))
    return results


def format_matrix(results: list[RipeResult]) -> str:
    lines = [
        "RIPE-style attack matrix (x = attack effective, v = stopped)",
        "",
        f"{'target':20s} {'technique':12s} {'baseline':>9s} {'full':>6s}",
        "-" * 52,
    ]
    cells = {}
    order = []
    for result in results:
        key = (result.target, result.technique)
        cells[(key, result.config)] = result
        if key not in order:
            order.append(key)
    for key in order:
        target, technique = key
        base = cells.get((key, "baseline"))
        full = cells.get((key, "full"))
        lines.append(
            f"{target:20s} {technique:12s} "
            f"{base.symbol if base else '?':>9s} "
            f"{full.symbol if full else '?':>6s}"
        )
    lines += [
        "",
        "replay note: address tweaks bind ciphertext to a location, not",
        "a version — stale-value replay is outside RegVault's guarantees",
        "(the paper's §5 points to CoDaRR-style re-randomization).",
    ]
    return "\n".join(lines)

"""Attack 7 — interrupt context corruption (§2.4.3, [Azad BH'20]).

A timer interrupt preempts the victim thread mid-computation and dumps
*all* of its live registers into the interrupt context.  While the
victim is descheduled, the attacker tampers with the saved register
values.

* Original kernel: the context is plaintext; the victim resumes with
  silently corrupted registers (its in-register markers are destroyed
  and nothing notices).
* RegVault (CIP): every saved register is a link in the decryption
  chain; corruption anywhere cascades into the zero-terminator check on
  restore, which traps (Figure 4).
"""

from __future__ import annotations

import dataclasses

from repro.attacks.base import Attack
from repro.compiler.ir import Const, Move
from repro.compiler.types import I64
from repro.kernel import KernelConfig
from repro.kernel.structs import SYS_EXIT, SYS_GETPID, SYS_WRITE

MARKER = 0x13579BDF2468ACE0
INTACT = 0x60
CORRUPTED = 0x6C

#: Saved-context slots of the temporaries and callee-saved registers
#: (x5-x9, x18-x30 — everything but ra/sp/gp/tp and the a-registers).
CALLEE_SAVED_SLOTS = (5, 6, 7, 8, 9) + tuple(range(18, 31))


class InterruptCorruptionAttack(Attack):
    name = "interrupt context corruption"
    number = 7

    def run(self, config: KernelConfig):
        # Two threads, and a timer short enough to preempt the victim's
        # busy loop.
        config = dataclasses.replace(
            config, num_threads=2, timer_interval=2_500
        )

        def body(b, syscall):
            pid = syscall(SYS_GETPID)
            first = b.cmp("eq", pid, Const(0))
            b.cond_br(first, "victim", "accomplice")

            b.block("victim")
            # Markers live in callee-saved registers across a busy loop
            # long enough to be timer-preempted.  Verdict on console:
            # 'C' = silently corrupted, 'K' = intact.  3000 iterations
            # span several 2500-cycle ticks — preemption is guaranteed
            # well before the loop exits.
            markers = [b.move(Const(MARKER + i)) for i in range(6)]
            spin = b.func.new_reg(I64, "spin")
            b._emit(Move(spin, Const(0)))
            b.br("busy")
            b.block("busy")
            b._emit(Move(spin, b.add(spin, 1)))
            more = b.cmp("lt", spin, 3000)
            b.cond_br(more, "busy", "check")
            b.block("check")
            intact = b.move(Const(1))
            for i, marker in enumerate(markers):
                ok = b.cmp("eq", marker, Const(MARKER + i))
                intact = b.and_(intact, ok)
            b.cond_br(intact, "clean", "dirty")
            b.block("clean")
            syscall(SYS_WRITE, Const(ord("K")))
            syscall(SYS_EXIT, Const(INTACT))
            b.br("dirty")
            b.block("dirty")
            syscall(SYS_WRITE, Const(ord("C")))
            syscall(SYS_EXIT, Const(CORRUPTED))
            b.br("victim_end")
            b.block("victim_end")
            b.ret(Const(0))

            b.block("accomplice")
            # Runs when the tick preempts the victim; signals the
            # attacker (breakpointed on sys_write), then spins so the
            # next tick hands control back to the victim.  8000
            # iterations outlast a dozen ticks — far more than the one
            # needed to reschedule the victim.
            syscall(SYS_WRITE, Const(ord("!")))
            waste = b.func.new_reg(I64, "waste")
            b._emit(Move(waste, Const(0)))
            b.br("wait")
            b.block("wait")
            b._emit(Move(waste, b.add(waste, 1)))
            again = b.cmp("lt", waste, 8000)
            b.cond_br(again, "wait", "give_up")
            b.block("give_up")
            syscall(SYS_EXIT, Const(INTACT))

        session = self.session(config, body)
        # The accomplice only runs after the victim was preempted by
        # the timer — its saved context is an *interrupt* context.
        assert session.run_until("sys_write"), "victim was never preempted"

        ctx = session.thread_field_addr(0, "ctx")
        assert session.context_kind(0) == (1 if config.cip else 0), (
            "expected an interrupt-saved context"
        )
        for slot in CALLEE_SAVED_SLOTS:
            address = ctx + 8 * slot
            session.write_u64(address, session.read_u64(address) ^ 0xFF00FF)

        result = session.resume()
        corrupted_silently = "C" in result.console
        return self.result(
            config,
            succeeded=corrupted_silently,
            outcome=(
                "silent register corruption on resume"
                if corrupted_silently
                else self.describe(result)
            ),
        )

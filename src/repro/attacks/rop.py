"""Attack 1 — return-oriented programming (RIPE-style).

While the kernel executes a non-leaf function (``sys_encrypt``), the
attacker overwrites its saved return address on the kernel stack with a
gadget address.

* Original kernel: the epilogue loads the planted address and returns
  into the gadget — hijack complete.
* RegVault (``ra``): the prologue stored ``creak(ra)`` (tweak = sp, per
  thread key ``a``); the epilogue runs ``crdak`` on the attacker's
  plaintext pointer and produces garbage, so the return jumps to an
  illegal address and traps (§3.1.1, "any corrupted pointers ... are
  decrypted into garbage values").
"""

from __future__ import annotations

from repro.attacks.base import Attack, GADGET_EXIT
from repro.compiler.ir import Const
from repro.kernel import KernelConfig
from repro.kernel.structs import SYS_ADD_KEY, SYS_ENCRYPT, SYS_EXIT

VICTIM = "sys_encrypt"


class RopAttack(Attack):
    name = "return-oriented programming"
    number = 1

    def run(self, config: KernelConfig):
        def body(b, syscall):
            slot = syscall(SYS_ADD_KEY, Const(0x1111), Const(0x2222))
            syscall(SYS_ENCRYPT, Const(0x42), slot)
            syscall(SYS_EXIT, Const(7))

        session = self.session(config, body)
        frame = session.image.kernel_compiled.frames[VICTIM]
        assert frame.ra_offset is not None, "victim must be non-leaf"

        # Pause at the victim's entry: sp still has the caller's value.
        assert session.run_until(VICTIM), "victim never executed"
        sp_entry = session.machine.hart.regs.by_name("sp")
        ra_slot = sp_entry - frame.frame_size + frame.ra_offset

        # Let the prologue save (and maybe encrypt) the return address,
        # then plant the gadget pointer.
        for _ in range(40):
            session.machine.hart.step()
        session.write_u64(ra_slot, session.symbol("attack_gadget"))

        result = session.resume()
        return self.result(
            config,
            succeeded=result.exit_code == GADGET_EXIT,
            outcome=self.describe(result),
        )

"""``python -m repro.validate file-or-dir ...`` — validate JSON artifacts.

One entry point for every schema the repo ships: each document is
dispatched on its ``schema`` id (Chrome traces, which carry
``traceEvents``, are recognized by shape) to the matching validator
from :mod:`repro.fuzz.schema`, :mod:`repro.perf.schema` or
:mod:`repro.telemetry.schema`.  Directories are walked for ``*.json``.

CI runs this over every uploaded artifact — campaign reports, BENCH
json, history entries, telemetry exports — so a malformed report fails
the job instead of shipping.  Exit status: 0 if every document
validated, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["validate_document", "main"]


def _validators() -> dict:
    from repro.attacks.schema import MATRIX_SCHEMA, validate_matrix
    from repro.fleet.schema import (
        BENCH_FLEET_SCHEMA,
        JOB_SCHEMA,
        RESULT_SCHEMA,
        validate_bench_fleet,
        validate_job,
        validate_result,
    )
    from repro.fuzz.campaign import REPORT_SCHEMA
    from repro.fuzz.dist import DIST_REPORT_SCHEMA
    from repro.fuzz.schema import validate_dist_report, validate_report
    from repro.machine.codecache import (
        PROFILE_SCHEMA as CODECACHE_PROFILE_SCHEMA,
    )
    from repro.machine.codecache import (
        SCHEMA as CODECACHE_SCHEMA,
    )
    from repro.machine.codecache import (
        validate_manifest as validate_codecache_manifest,
    )
    from repro.machine.codecache import (
        validate_profile as validate_codecache_profile,
    )
    from repro.perf.runner import SCHEMA as BENCH_SCHEMA
    from repro.perf.schema import validate_bench, validate_history_entry
    from repro.perf.trend import HISTORY_SCHEMA
    from repro.telemetry.flightrec import FLIGHTREC_SCHEMA
    from repro.telemetry.metrics import METRICS_SCHEMA
    from repro.telemetry.leakage import LEAKAGE_SCHEMA
    from repro.telemetry.schema import (
        validate_chrome_trace,
        validate_events,
        validate_flightrec,
        validate_leakage,
        validate_metrics,
        validate_profile,
        validate_spans,
    )
    from repro.telemetry.spans import SPANS_SCHEMA

    return {
        MATRIX_SCHEMA: validate_matrix,
        LEAKAGE_SCHEMA: validate_leakage,
        REPORT_SCHEMA: validate_report,
        DIST_REPORT_SCHEMA: validate_dist_report,
        BENCH_SCHEMA: validate_bench,
        HISTORY_SCHEMA: validate_history_entry,
        METRICS_SCHEMA: validate_metrics,
        JOB_SCHEMA: validate_job,
        RESULT_SCHEMA: validate_result,
        BENCH_FLEET_SCHEMA: validate_bench_fleet,
        SPANS_SCHEMA: validate_spans,
        FLIGHTREC_SCHEMA: validate_flightrec,
        CODECACHE_SCHEMA: validate_codecache_manifest,
        CODECACHE_PROFILE_SCHEMA: validate_codecache_profile,
        "repro.telemetry/events-1": validate_events,
        "repro.telemetry/chrome-trace-1": validate_chrome_trace,
        "repro.telemetry/profile-1": validate_profile,
    }


def validate_document(document) -> tuple[str, list[str]]:
    """Dispatch one parsed JSON document; return (kind, problems)."""
    if not isinstance(document, dict):
        return "unknown", ["top-level JSON value is not an object"]
    schema = document.get("schema")
    validators = _validators()
    if schema in validators:
        return schema, validators[schema](document)
    if "traceEvents" in document:
        from repro.telemetry.schema import validate_chrome_trace

        return "chrome-trace", validate_chrome_trace(document)
    return "unknown", [f"unrecognized document schema {schema!r}"]


def _iter_paths(arguments) -> list[Path]:
    paths: list[Path] = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            paths.extend(sorted(path.glob("*.json")))
        else:
            paths.append(path)
    return paths


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.validate",
        description="Schema-validate repo JSON artifacts "
        "(fuzz reports, BENCH json, history entries, telemetry exports).",
    )
    parser.add_argument("paths", nargs="+",
                        help="JSON files or directories of *.json")
    args = parser.parse_args(argv)

    paths = _iter_paths(args.paths)
    if not paths:
        print("no JSON documents found")
        return 1
    bad = 0
    for path in paths:
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            print(f"FAIL  {path}: unreadable: {error}")
            bad += 1
            continue
        kind, problems = validate_document(document)
        if problems:
            bad += 1
            print(f"FAIL  {path} [{kind}]:")
            for problem in problems[:20]:
                print(f"        {problem}")
            if len(problems) > 20:
                print(f"        ... and {len(problems) - 20} more")
        else:
            print(f"ok    {path} [{kind}]")
    print(f"{len(paths) - bad}/{len(paths)} documents valid")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())

"""Overhead computation and Figure-5-style reporting."""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.runner import Measurement

#: Paper reference points for the suite averages (§4.4).
PAPER_FULL_AVERAGE = {
    "unixbench": 2.6,
    "lmbench": 2.5,
    "spec": 0.0,
}

CONFIG_ORDER = ("ra", "fp", "noncontrol", "full")


@dataclass(frozen=True)
class OverheadRow:
    workload: str
    overhead_pct: dict  # config name -> percent vs baseline

    def get(self, config: str) -> float:
        return self.overhead_pct.get(config, float("nan"))


def overhead_table(
    matrix: dict[tuple[str, str], Measurement],
) -> list[OverheadRow]:
    """Relative cycle overhead per workload per config vs baseline."""
    workloads = []
    for workload, _ in matrix:
        if workload not in workloads:
            workloads.append(workload)
    rows = []
    for workload in workloads:
        base = matrix[(workload, "baseline")].cycles
        pct = {}
        for config in CONFIG_ORDER:
            if (workload, config) in matrix:
                cycles = matrix[(workload, config)].cycles
                pct[config] = 100.0 * (cycles - base) / base
        rows.append(OverheadRow(workload, pct))
    return rows


def averages(rows: list[OverheadRow]) -> dict:
    out = {}
    for config in CONFIG_ORDER:
        values = [
            row.get(config) for row in rows
            if config in row.overhead_pct
        ]
        if values:
            out[config] = sum(values) / len(values)
    return out


def format_figure(
    title: str,
    rows: list[OverheadRow],
    paper_full_average: float | None = None,
) -> str:
    """Render a Figure-5-style text table."""
    configs = [
        c for c in CONFIG_ORDER
        if any(c in row.overhead_pct for row in rows)
    ]
    header = f"{'workload':16s}" + "".join(
        f"{c.upper():>12s}" for c in configs
    )
    lines = [title, "", header, "-" * len(header)]
    for row in rows:
        line = f"{row.workload:16s}"
        for config in configs:
            line += f"{row.get(config):11.2f}%"
        lines.append(line)
    lines.append("-" * len(header))
    avg = averages(rows)
    line = f"{'average':16s}"
    for config in configs:
        line += f"{avg.get(config, float('nan')):11.2f}%"
    lines.append(line)
    if paper_full_average is not None:
        lines.append(
            f"\npaper FULL average: {paper_full_average:.1f}%   "
            f"measured FULL average: {avg.get('full', float('nan')):.2f}%"
        )
    return "\n".join(lines)

"""Workload execution and measurement.

Cycle accounting excludes boot: measurement starts when the first user
instruction executes (the paper benchmarks steady-state scores, not
kernel bring-up).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.workloads.base import Workload
from repro.errors import ReproError
from repro.kernel import KernelConfig, KernelSession
from repro.machine import HaltReason


@dataclass(frozen=True)
class Measurement:
    """One workload run under one configuration."""

    workload: str
    config: str
    cycles: int
    instructions: int
    crypto_ops: int
    clb_hit_ratio: float
    clb_dec_hit_ratio: float
    exit_code: int

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


def run_workload(
    workload: Workload,
    config: KernelConfig,
    scale: float = 1.0,
    boot_cache=None,
) -> Measurement:
    """Build, boot and measure one workload under one config.

    Cycle accounting starts at the first user instruction either way, so
    serving the boot from a :class:`~repro.kernel.BootCache` fork does
    not change any reported number — it only skips re-simulating boot.
    """
    import dataclasses

    config = dataclasses.replace(config, num_threads=workload.num_threads)
    session = KernelSession(
        config, workload.module(scale), boot_cache=boot_cache
    )
    # Fast-forward boot; measure from the first user instruction.
    reached = session.run_until(
        session.image.user_program.entry, max_steps=workload.max_steps
    )
    if not reached:
        raise ReproError(
            f"{workload.name}/{config.name}: never reached user space"
        )
    start_cycles = session.machine.hart.cycles
    start_instr = session.machine.hart.instret
    session.machine.engine.reset_stats()

    result = session.run(max_steps=workload.max_steps)
    if result.halt_reason is not HaltReason.SHUTDOWN:
        raise ReproError(
            f"{workload.name}/{config.name}: did not finish "
            f"({result.halt_reason})"
        )
    if result.panicked:
        raise ReproError(
            f"{workload.name}/{config.name}: kernel panic "
            f"(cause {result.panic_cause})"
        )
    clb = session.clb_stats
    dec_accesses = clb.dec_hits + clb.dec_misses
    return Measurement(
        workload=workload.name,
        config=config.name,
        cycles=result.cycles - start_cycles,
        instructions=result.instructions - start_instr,
        crypto_ops=session.stats.operations,
        clb_hit_ratio=clb.hit_ratio,
        clb_dec_hit_ratio=(
            clb.dec_hits / dec_accesses if dec_accesses else 0.0
        ),
        exit_code=result.exit_code,
    )


def measure_matrix(
    workloads,
    configs=None,
    scale: float = 1.0,
    boot_cache=None,
) -> dict[tuple[str, str], Measurement]:
    """Measure every workload under every config (one boot per config)."""
    if configs is None:
        configs = KernelConfig.figure5_matrix()
    if boot_cache is None:
        from repro.kernel import BootCache

        boot_cache = BootCache()
    matrix = {}
    for workload in workloads:
        for config in configs:
            measurement = run_workload(workload, config, scale, boot_cache)
            matrix[(workload.name, config.name)] = measurement
    return matrix


def correctness_check(workloads, configs=None, scale: float = 0.2) -> None:
    """Assert every workload computes the same result in every config."""
    if configs is None:
        configs = KernelConfig.figure5_matrix()
    from repro.kernel import BootCache

    boot_cache = BootCache()
    for workload in workloads:
        exit_codes = set()
        for config in configs:
            measurement = run_workload(workload, config, scale, boot_cache)
            exit_codes.add(measurement.exit_code)
        if len(exit_codes) != 1:
            raise ReproError(
                f"{workload.name}: exit codes diverge across configs: "
                f"{sorted(exit_codes)}"
            )

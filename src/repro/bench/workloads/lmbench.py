"""LMbench-shaped latency micro-suite (Figure 5b).

LMbench measures individual kernel-path latencies.  Each workload here
is a tight loop over one kernel operation; per-operation latency is the
measured cycles divided by iterations.  These are the harshest cases
for RegVault (the whole measured path is instrumented kernel code), so
their overheads bound what user programs can ever observe (§4.4.2).
"""

from __future__ import annotations

from repro.compiler.ir import Const
from repro.compiler.types import ArrayType, I64
from repro.bench.workloads.base import (
    LoopBuilder,
    Workload,
    make_user_module,
    scaled,
)
from repro.kernel.structs import (
    SYS_EXIT,
    SYS_GETPPID,
    SYS_NOP,
    SYS_SELINUX_CHECK,
    SYS_SPAWN,
    SYS_TRANSLATE,
    SYS_WRITE,
    SYS_YIELD,
)


def _null_syscall(scale: float):
    """lat_syscall null: the cheapest possible kernel round trip."""

    def body(lb: LoopBuilder):
        acc = lb.accumulate()
        lb.loop(
            scaled(100, scale),
            lambda lb2, i: lb2.add_into(acc, lb2.syscall(SYS_GETPPID)),
        )
        lb.exit(Const(0))

    return make_user_module(body)


def _null_io(scale: float):
    """lat_syscall write: one-byte writes."""

    def body(lb: LoopBuilder):
        acc = lb.accumulate()
        lb.loop(
            scaled(100, scale),
            lambda lb2, i: lb2.add_into(
                acc, lb2.syscall(SYS_WRITE, Const(ord("w")))
            ),
        )
        lb.exit(Const(0))

    return make_user_module(body)


def _stat(scale: float):
    """lat_syscall stat analogue: a permission-checking path that
    touches protected kernel data (selinux_state)."""

    def body(lb: LoopBuilder):
        acc = lb.accumulate()
        lb.loop(
            scaled(100, scale),
            lambda lb2, i: lb2.add_into(
                acc, lb2.syscall(SYS_SELINUX_CHECK, 2)
            ),
        )
        lb.exit(Const(0))

    return make_user_module(body)


def _page_fault(scale: float):
    """lat_pagefault analogue: page-table walks via sys_translate."""

    def body(lb: LoopBuilder):
        acc = lb.accumulate()
        lb.syscall(9, Const(0x4000_0000), Const(0x0900_8000))  # map once

        def iteration(lb2, i):
            va = lb2.b.add(Const(0x4000_0000), lb2.b.and_(i, 0xFFF))
            lb2.add_into(acc, lb2.syscall(SYS_TRANSLATE, va))

        lb.loop(scaled(80, scale), iteration)
        lb.exit(Const(0))

    return make_user_module(body)


def _ctx_switch(scale: float):
    """lat_ctx: forced context switches between two threads."""

    def body(lb: LoopBuilder):
        lb.loop(scaled(50, scale), lambda lb2, i: lb2.syscall(SYS_YIELD))
        lb.exit(Const(0))

    return make_user_module(body)


def _signal(scale: float):
    """lat_sig analogue: trap in, minimal work, trap out."""

    def body(lb: LoopBuilder):
        acc = lb.accumulate()
        lb.loop(
            scaled(100, scale),
            lambda lb2, i: lb2.add_into(acc, lb2.syscall(SYS_NOP)),
        )
        lb.exit(Const(0))

    return make_user_module(body)


def _mem_lat(scale: float):
    """lat_mem_rd: user-space pointer chasing — the control case where
    the kernel is not involved at all."""

    def body(lb: LoopBuilder):
        b = lb.b
        size = 64
        b.local("chain", ArrayType(I64, size))
        base = b.addr_of_local("chain")
        # Build a stride-17 cycle through the array.
        def link(lb2, i):
            b = lb2.b
            nxt = b.remu(b.mul(b.add(i, 1), 17), size)
            slot = b.add(base, b.shl(i, 3))
            b.raw_store(slot, b.add(base, b.shl(nxt, 3)))

        lb.loop(size, link)
        ptr = b.move(base, "ptr")
        from repro.compiler.ir import Move

        def chase(lb2, i):
            b = lb2.b
            b._emit(Move(ptr, b.raw_load(ptr)))

        lb.loop(scaled(900, scale), chase)
        lb.exit(Const(0))

    return make_user_module(body)


def _proc_fork(scale: float):
    """lat_proc fork: spawn + child exit + slot reclaim per iteration."""
    from repro.compiler import Function, FunctionType, I64, IRBuilder, Module
    from repro.compiler.ir import Const as C

    module = Module("user")
    child = Function("child_main", FunctionType(I64, ()))
    module.add_function(child)
    cb = IRBuilder(child)
    cb.block("entry")
    cb.intrinsic("ecall", [C(SYS_EXIT), C(0)], returns=True)
    cb.ret(C(0))

    main = Function("main", FunctionType(I64, ()))
    module.add_function(main)
    mb = IRBuilder(main)
    mb.block("entry")
    lb = LoopBuilder(mb)
    entry = mb.addr_of_func("child_main")

    def iteration(lb1, i):
        lb1.syscall(SYS_SPAWN, entry)
        lb1.syscall(SYS_YIELD)

    lb.loop(scaled(25, scale), iteration)
    lb.exit(C(0))
    mb.ret(C(0))
    return module


SUITE: tuple[Workload, ...] = (
    Workload("null_call", "lmbench", _null_syscall, "lat_syscall null"),
    Workload("null_io", "lmbench", _null_io, "lat_syscall write"),
    Workload("stat", "lmbench", _stat, "protected-data permission path"),
    Workload("page_fault", "lmbench", _page_fault, "page-table walk"),
    Workload("ctx", "lmbench", _ctx_switch, "context switch",
             num_threads=2),
    Workload("signal", "lmbench", _signal, "signal delivery analogue"),
    Workload("proc_fork", "lmbench", _proc_fork, "process fork latency"),
    Workload("mem_rd", "lmbench", _mem_lat, "user memory latency control"),
)

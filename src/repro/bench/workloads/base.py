"""Workload construction helpers.

A :class:`Workload` is a named factory for a user-space IR module (plus
the kernel configuration knobs it needs).  :class:`LoopBuilder` wraps
the IR builder with counted-loop and syscall conveniences so workload
definitions stay compact and readable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

from repro.compiler import Function, FunctionType, I64, IRBuilder, Module
from repro.compiler.ir import Const, Move, VReg
from repro.kernel.structs import SYS_EXIT


class LoopBuilder:
    """IRBuilder wrapper with loops, syscalls and unique labels."""

    def __init__(self, builder: IRBuilder):
        self.b = builder
        self._labels = itertools.count()

    def fresh(self, prefix: str) -> str:
        return f"{prefix}_{next(self._labels)}"

    def syscall(self, number: int, *args):
        return self.b.intrinsic(
            "ecall",
            [Const(number), *[
                Const(a) if isinstance(a, int) else a for a in args
            ]],
            returns=True,
        )

    def loop(self, count, body: Callable) -> None:
        """Emit ``for i in range(count): body(i)``.

        ``body(lb, i)`` receives this LoopBuilder and the loop counter
        vreg; it must not terminate the current block.
        """
        b = self.b
        head = self.fresh("loop")
        done = self.fresh("done")
        i = b.func.new_reg(I64, "i")
        b._emit(Move(i, Const(0)))
        b.br(head)
        b.block(head)
        body(self, i)
        b._emit(Move(i, b.add(i, 1)))
        limit = count if isinstance(count, (VReg, Const)) else Const(count)
        again = b.cmp("lt", i, limit)
        b.cond_br(again, head, done)
        b.block(done)

    def accumulate(self, name: str = "acc"):
        """A mutable accumulator register initialized to zero."""
        acc = self.b.func.new_reg(I64, name)
        self.b._emit(Move(acc, Const(0)))
        return acc

    def add_into(self, acc, value) -> None:
        self.b._emit(Move(acc, self.b.add(acc, value)))

    def set(self, reg, value) -> None:
        self.b._emit(Move(reg, value if not isinstance(value, int)
                          else Const(value)))

    def exit(self, code) -> None:
        self.syscall(SYS_EXIT, code)


@dataclass(frozen=True)
class Workload:
    """A named benchmark scenario.

    ``build(scale)`` returns the user module; ``scale`` shrinks or
    grows iteration counts (tests run at ~0.1, benches at 1.0).
    """

    name: str
    suite: str
    build: Callable[[float], Module]
    description: str = ""
    num_threads: int = 1
    max_steps: int = 8_000_000

    def module(self, scale: float = 1.0) -> Module:
        return self.build(scale)


def make_user_module(body: Callable[[LoopBuilder], None]) -> Module:
    """Standard single-main user module scaffold."""
    module = Module("user")
    main = Function("main", FunctionType(I64, ()))
    module.add_function(main)
    builder = IRBuilder(main)
    builder.block("entry")
    body(LoopBuilder(builder))
    builder.ret(Const(0))
    return module


def scaled(count: int, scale: float, minimum: int = 2) -> int:
    return max(minimum, int(count * scale))

"""UnixBench-shaped workload suite (Figure 5a).

Each workload mirrors the *structure* of a UnixBench item: the same
mix of user computation and kernel interaction, scaled to simulator-
friendly iteration counts.  UnixBench is syscall-oriented, so the paper
uses it (with LMbench) as the upper bound of RegVault's overhead
(§4.4.2).
"""

from __future__ import annotations

from repro.compiler.ir import Const
from repro.compiler.types import ArrayType, I64
from repro.bench.workloads.base import (
    LoopBuilder,
    Workload,
    make_user_module,
    scaled,
)
from repro.kernel.structs import (
    SYS_EXIT,
    SYS_GETPID,
    SYS_GETUID,
    SYS_NOP,
    SYS_SELINUX_CHECK,
    SYS_SETUID,
    SYS_SPAWN,
    SYS_WRITE,
    SYS_YIELD,
)


def _dhrystone(scale: float):
    """Integer/branch/call mix with a light syscall every iteration
    block — the classic 'dhry2reg' profile."""

    def body(lb: LoopBuilder):
        b = lb.b
        acc = lb.accumulate()

        def iteration(lb2, i):
            b = lb2.b
            x = b.add(b.mul(i, 13), 7)
            y = b.xor(x, b.shl(i, 3))
            z = b.sub(b.mul(y, 3), b.shr(x, 2))
            cond = b.cmp("lt", b.and_(z, 7), 4)
            lb2.add_into(acc, b.add(z, cond))

        def block(lb1, j):
            lb1.loop(40, iteration)
            lb1.add_into(acc, lb1.syscall(SYS_GETPID))

        lb.loop(scaled(25, scale), block)
        lb.exit(b.and_(acc, 0xFF))

    return make_user_module(body)


def _whetstone(scale: float):
    """Arithmetic-intensity profile (integer stand-in for the FP loop)."""

    def body(lb: LoopBuilder):
        b = lb.b
        acc = lb.accumulate()

        def iteration(lb2, i):
            b = lb2.b
            x = b.add(i, 3)
            y = b.div(b.mul(x, 1_000_003), b.add(b.and_(i, 63), 1))
            z = b.rem(y, 911)
            lb2.add_into(acc, z)

        lb.loop(scaled(700, scale), iteration)
        lb.syscall(SYS_NOP)
        lb.exit(b.and_(acc, 0xFF))

    return make_user_module(body)


def _execl(scale: float):
    """Process-image churn analogue: credential and policy queries
    dominate, little user compute (execl throughput is kernel-bound)."""

    def body(lb: LoopBuilder):
        b = lb.b
        acc = lb.accumulate()

        def iteration(lb2, i):
            lb2.add_into(acc, lb2.syscall(SYS_GETUID))
            lb2.add_into(acc, lb2.syscall(SYS_SETUID, 0))
            lb2.add_into(acc, lb2.syscall(SYS_SELINUX_CHECK, 2))
            # exec-side user work: argument marshalling.
            x = lb2.b.mul(i, 31)
            lb2.loop(20, lambda lb3, j: lb3.add_into(
                acc, lb3.b.xor(x, j)
            ))

        lb.loop(scaled(30, scale), iteration)
        lb.exit(b.and_(acc, 0xFF))

    return make_user_module(body)


def _file_copy(scale: float):
    """File-copy profile: user-space buffer shuffling with a write
    syscall per block (UnixBench fscopy)."""

    def body(lb: LoopBuilder):
        b = lb.b
        b.local("src", ArrayType(I64, 32))
        b.local("dst", ArrayType(I64, 32))
        src = b.addr_of_local("src")
        dst = b.addr_of_local("dst")
        acc = lb.accumulate()

        def copy_word(lb2, j):
            b = lb2.b
            offset = b.shl(b.and_(j, 31), 3)
            value = b.raw_load(b.add(src, offset))
            b.raw_store(b.add(dst, offset), b.add(value, j))

        def block(lb1, i):
            lb1.loop(64, copy_word)
            lb1.add_into(acc, lb1.syscall(SYS_WRITE, Const(ord("."))))

        lb.loop(scaled(18, scale), block)
        lb.exit(b.and_(acc, 0xFF))

    return make_user_module(body)


def _pipe_throughput(scale: float):
    """Pipe throughput: back-to-back small writes (syscall-dense)."""

    def body(lb: LoopBuilder):
        b = lb.b
        acc = lb.accumulate()

        def iteration(lb2, i):
            lb2.add_into(acc, lb2.syscall(SYS_WRITE, Const(ord("p"))))
            # pipe-buffer bookkeeping in user space
            lb2.loop(12, lambda lb3, j: lb3.add_into(acc, j))

        lb.loop(scaled(60, scale), iteration)
        lb.exit(b.and_(acc, 0xFF))

    return make_user_module(body)


def _context_switch(scale: float):
    """Pipe-based context switching: two threads yielding in turn."""

    def body(lb: LoopBuilder):
        acc = lb.accumulate()

        def iteration(lb2, i):
            lb2.syscall(SYS_YIELD)
            lb2.loop(10, lambda lb3, j: lb3.add_into(acc, j))

        lb.loop(scaled(40, scale), iteration)
        lb.exit(Const(0))

    return make_user_module(body)


def _process_creation(scale: float):
    """Process creation: real fork-lite cycles — spawn a child (typed
    cred copy, fresh keys and address space, sealed context), let it
    run to exit, reclaim the slot (UnixBench ``spawn``)."""
    from repro.compiler import Function, FunctionType, I64, IRBuilder, Module
    from repro.compiler.ir import Const as C

    module = Module("user")

    child = Function("child_main", FunctionType(I64, ()))
    module.add_function(child)
    cb = IRBuilder(child)
    cb.block("entry")
    cb.intrinsic("ecall", [C(SYS_EXIT), C(0)], returns=True)
    cb.ret(C(0))

    main = Function("main", FunctionType(I64, ()))
    module.add_function(main)
    mb = IRBuilder(main)
    mb.block("entry")
    lb = LoopBuilder(mb)
    acc = lb.accumulate()
    entry = mb.addr_of_func("child_main")

    def iteration(lb1, i):
        tid = lb1.syscall(SYS_SPAWN, entry)
        lb1.add_into(acc, tid)
        lb1.syscall(SYS_YIELD)             # child runs and exits
        # Parent-side setup work between forks.
        lb1.loop(20, lambda lb2, j: lb2.add_into(acc, j))

    lb.loop(scaled(20, scale), iteration)
    lb.exit(mb.and_(acc, 0xFF))
    mb.ret(C(0))
    return module


def _syscall_overhead(scale: float):
    """The pure syscall loop (UnixBench 'System Call Overhead')."""

    def body(lb: LoopBuilder):
        b = lb.b
        acc = lb.accumulate()
        lb.loop(
            scaled(120, scale),
            lambda lb2, i: lb2.add_into(acc, lb2.syscall(SYS_GETPID)),
        )
        lb.exit(b.and_(acc, 0xFF))

    return make_user_module(body)


def _shell(scale: float):
    """Shell-scripts profile: a broad mix of everything above."""

    def body(lb: LoopBuilder):
        b = lb.b
        acc = lb.accumulate()

        def iteration(lb2, i):
            lb2.add_into(acc, lb2.syscall(SYS_GETUID))
            lb2.loop(30, lambda lb3, j: lb3.add_into(
                acc, lb3.b.mul(j, 3)
            ))
            lb2.add_into(acc, lb2.syscall(SYS_SELINUX_CHECK, 1))
            lb2.loop(30, lambda lb3, j: lb3.add_into(
                acc, lb3.b.xor(j, i)
            ))
            lb2.syscall(SYS_WRITE, Const(ord("$")))

        lb.loop(scaled(20, scale), iteration)
        lb.exit(b.and_(acc, 0xFF))

    return make_user_module(body)


SUITE: tuple[Workload, ...] = (
    Workload("dhrystone", "unixbench", _dhrystone,
             "register-heavy integer mix (dhry2reg)"),
    Workload("whetstone", "unixbench", _whetstone,
             "arithmetic kernel (whetstone-double stand-in)"),
    Workload("execl", "unixbench", _execl,
             "process-image churn: cred + policy checks"),
    Workload("file_copy", "unixbench", _file_copy,
             "buffered copy with per-block writes"),
    Workload("pipe", "unixbench", _pipe_throughput,
             "pipe throughput (syscall-dense)"),
    Workload("context1", "unixbench", _context_switch,
             "pipe-based context switching", num_threads=2),
    Workload("spawn", "unixbench", _process_creation,
             "process creation (mm setup)"),
    Workload("syscall", "unixbench", _syscall_overhead,
             "system call overhead"),
    Workload("shell", "unixbench", _shell, "shell-script mix"),
)

"""Synthetic workload suites (see package docstring of repro.bench)."""

from repro.bench.workloads.base import Workload, LoopBuilder
from repro.bench.workloads import lmbench, spec, unixbench

__all__ = ["Workload", "LoopBuilder", "unixbench", "lmbench", "spec"]

"""SPEC-CPU2017-intspeed-shaped macro suite (Figure 5c).

SPEC programs are userspace-bound: they enter the kernel only at the
edges (and through timer ticks).  RegVault instruments *kernel* code
only — its instructions are not even executable in user mode — so the
paper reports close-to-zero overhead here.  Each workload mimics the
computational character of one intspeed component.
"""

from __future__ import annotations

from repro.compiler.ir import Const, Move
from repro.compiler.types import ArrayType, I64
from repro.bench.workloads.base import (
    LoopBuilder,
    Workload,
    make_user_module,
    scaled,
)
from repro.kernel.structs import SYS_NOP


def _perlbench(scale: float):
    """Branchy byte-crunching (interpreter dispatch character)."""

    def body(lb: LoopBuilder):
        b = lb.b
        acc = lb.accumulate()

        def iteration(lb2, i):
            b = lb2.b
            op = b.and_(i, 7)
            is_add = b.cmp("eq", op, 0)
            is_mul = b.cmp("eq", op, 1)
            is_xor = b.cmp("eq", op, 2)
            value = b.add(
                b.mul(is_add, b.add(i, 13)),
                b.add(
                    b.mul(is_mul, b.mul(i, 3)),
                    b.mul(is_xor, b.xor(i, 0x55)),
                ),
            )
            lb2.add_into(acc, value)

        lb.loop(scaled(2500, scale), iteration)
        lb.syscall(SYS_NOP)
        lb.exit(b.and_(acc, 0xFF))

    return make_user_module(body)


def _gcc(scale: float):
    """Function-call-heavy tree evaluation (compiler character)."""

    def build(scale_inner):
        from repro.compiler import Function, FunctionType, IRBuilder, Module

        module = Module("user")
        # eval(node) -> value; recursion depth driven by node number.
        evaluate = Function("evaluate", FunctionType(I64, (I64,)), ["n"])
        module.add_function(evaluate)
        b = IRBuilder(evaluate)
        b.block("entry")
        n = evaluate.params[0]
        small = b.cmp("le", n, 1)
        b.cond_br(small, "leaf", "node")
        b.block("leaf")
        b.ret(b.add(n, 1))
        b.block("node")
        left = b.call("evaluate", [b.shr(n, 1)])
        right = b.call("evaluate", [b.sub(b.shr(n, 1), 1)])
        combined = b.add(b.mul(left, 3), right)
        b.ret(b.and_(combined, 0xFFFF))

        main = Function("main", FunctionType(I64, ()))
        module.add_function(main)
        mb = IRBuilder(main)
        mb.block("entry")
        lb = LoopBuilder(mb)
        acc = lb.accumulate()
        lb.loop(
            scaled(20, scale_inner),
            lambda lb2, i: lb2.add_into(
                acc, lb2.b.call("evaluate", [lb2.b.add(i, 100)])
            ),
        )
        lb.exit(mb.and_(acc, 0xFF))
        mb.ret(Const(0))
        return module

    return build(scale)


def _mcf(scale: float):
    """Pointer-chasing over a linked structure (cache-hostile)."""

    def body(lb: LoopBuilder):
        b = lb.b
        size = 128
        b.local("nodes", ArrayType(I64, size))
        base = b.addr_of_local("nodes")

        def link(lb2, i):
            b = lb2.b
            nxt = b.remu(b.mul(b.add(i, 1), 53), size)
            b.raw_store(b.add(base, b.shl(i, 3)),
                        b.add(base, b.shl(nxt, 3)))

        lb.loop(size, link)
        ptr = b.move(base, "ptr")
        acc = lb.accumulate()

        def chase(lb2, i):
            b = lb2.b
            b._emit(Move(ptr, b.raw_load(ptr)))
            lb2.add_into(acc, ptr)

        lb.loop(scaled(2000, scale), chase)
        lb.syscall(SYS_NOP)
        lb.exit(b.and_(acc, 0xFF))

    return make_user_module(body)


def _xz(scale: float):
    """Bit-twiddling compression kernel."""

    def body(lb: LoopBuilder):
        b = lb.b
        acc = lb.accumulate()
        state = b.move(Const(0x9E3779B97F4A7C15), "state")

        def iteration(lb2, i):
            b = lb2.b
            s = b.xor(state, b.shr(state, 12))
            s = b.xor(s, b.shl(s, 25))
            s = b.xor(s, b.shr(s, 27))
            b._emit(Move(state, s))
            lb2.add_into(acc, b.and_(s, 0xFF))

        lb.loop(scaled(2200, scale), iteration)
        lb.syscall(SYS_NOP)
        lb.exit(b.and_(acc, 0xFF))

    return make_user_module(body)


def _deepsjeng(scale: float):
    """Recursive game-tree search (negamax character)."""

    def build(scale_inner):
        from repro.compiler import Function, FunctionType, IRBuilder, Module

        module = Module("user")
        search = Function(
            "search", FunctionType(I64, (I64, I64)), ["depth", "pos"]
        )
        module.add_function(search)
        b = IRBuilder(search)
        b.block("entry")
        depth, pos = search.params
        leaf = b.cmp("le", depth, 0)
        b.cond_br(leaf, "eval", "expand")
        b.block("eval")
        b.ret(b.and_(b.mul(pos, 2654435761), 0xFF))
        b.block("expand")
        child1 = b.call("search", [b.sub(depth, 1), b.add(pos, 1)])
        child2 = b.call("search", [b.sub(depth, 1), b.xor(pos, depth)])
        best = b.cmp("gt", child1, child2)
        score = b.add(b.mul(best, child1),
                      b.mul(b.xor(best, 1), child2))
        b.ret(score)

        main = Function("main", FunctionType(I64, ()))
        module.add_function(main)
        mb = IRBuilder(main)
        mb.block("entry")
        lb = LoopBuilder(mb)
        acc = lb.accumulate()
        depth = 6 if scale_inner >= 0.5 else 4
        lb.loop(
            scaled(12, scale_inner),
            lambda lb2, i: lb2.add_into(
                acc, lb2.b.call("search", [Const(depth), i])
            ),
        )
        lb.exit(mb.and_(acc, 0xFF))
        mb.ret(Const(0))
        return module

    return build(scale)


def _x264(scale: float):
    """Dense array arithmetic (SAD/MC loops)."""

    def body(lb: LoopBuilder):
        b = lb.b
        size = 64
        b.local("frame_a", ArrayType(I64, size))
        b.local("frame_b", ArrayType(I64, size))
        a = b.addr_of_local("frame_a")
        bb = b.addr_of_local("frame_b")
        lb.loop(size, lambda lb2, i: lb2.b.raw_store(
            lb2.b.add(a, lb2.b.shl(i, 3)), lb2.b.mul(i, 9)
        ))
        lb.loop(size, lambda lb2, i: lb2.b.raw_store(
            lb2.b.add(bb, lb2.b.shl(i, 3)), lb2.b.mul(i, 7)
        ))
        acc = lb.accumulate()

        def sad_pass(lb1, p):
            def sad(lb2, i):
                b = lb2.b
                off = b.shl(b.and_(i, size - 1), 3)
                va = b.raw_load(b.add(a, off))
                vb = b.raw_load(b.add(bb, off))
                diff = b.sub(va, vb)
                neg = b.cmp("lt", diff, 0)
                mag = b.sub(b.xor(diff, b.sub(Const(0), neg)),
                            b.sub(Const(0), neg))
                lb2.add_into(acc, mag)

            lb1.loop(160, sad)

        lb.loop(scaled(10, scale), sad_pass)
        lb.syscall(SYS_NOP)
        lb.exit(b.and_(acc, 0xFF))

    return make_user_module(body)


def _leela(scale: float):
    """Branch-heavy board evaluation loops."""

    def body(lb: LoopBuilder):
        b = lb.b
        acc = lb.accumulate()

        def iteration(lb2, i):
            b = lb2.b
            row = b.remu(i, 19)
            col = b.remu(b.mul(i, 7), 19)
            edge_r = b.or_(b.cmp("eq", row, 0), b.cmp("eq", row, 18))
            edge_c = b.or_(b.cmp("eq", col, 0), b.cmp("eq", col, 18))
            weight = b.add(b.mul(edge_r, 3), b.mul(edge_c, 2))
            lb2.add_into(acc, b.add(weight, b.and_(i, 1)))

        lb.loop(scaled(2000, scale), iteration)
        lb.syscall(SYS_NOP)
        lb.exit(b.and_(acc, 0xFF))

    return make_user_module(body)


def _exchange2(scale: float):
    """Permutation/puzzle enumeration (tight nested loops)."""

    def body(lb: LoopBuilder):
        b = lb.b
        acc = lb.accumulate()

        def outer(lb1, i):
            def inner(lb2, j):
                b = lb2.b
                v = b.add(b.mul(i, 9), j)
                ok = b.cmp("ne", b.remu(v, 9), 0)
                lb2.add_into(acc, b.mul(ok, v))

            lb1.loop(81, inner)

        lb.loop(scaled(28, scale), outer)
        lb.syscall(SYS_NOP)
        lb.exit(b.and_(acc, 0xFF))

    return make_user_module(body)


SUITE: tuple[Workload, ...] = (
    Workload("perlbench", "spec", _perlbench, "interpreter dispatch"),
    Workload("gcc", "spec", _gcc, "recursive tree evaluation"),
    Workload("mcf", "spec", _mcf, "pointer chasing"),
    Workload("xz", "spec", _xz, "bit-twiddling compression"),
    Workload("deepsjeng", "spec", _deepsjeng, "game-tree search"),
    Workload("x264", "spec", _x264, "dense array arithmetic"),
    Workload("leela", "spec", _leela, "board evaluation"),
    Workload("exchange2", "spec", _exchange2, "puzzle enumeration"),
)

"""Benchmark harness for the paper's performance evaluation (Figure 5).

Three synthetic suites mirror the structure of the paper's benchmarks:

* :mod:`repro.bench.workloads.unixbench` — UnixBench-shaped, syscall-
  oriented mixes (Figure 5a);
* :mod:`repro.bench.workloads.lmbench` — LMbench-shaped latency micros
  (Figure 5b);
* :mod:`repro.bench.workloads.spec` — SPEC-CPU2017-intspeed-shaped
  userspace macros (Figure 5c).

Each workload compiles once per protection configuration and executes
on the cycle-accurate simulator; overheads are cycle ratios against the
baseline build, never wall-clock.
"""

from repro.bench.runner import Measurement, run_workload, measure_matrix
from repro.bench.workloads.base import Workload

__all__ = ["Workload", "Measurement", "run_workload", "measure_matrix"]

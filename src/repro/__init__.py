"""RegVault (DAC 2022) reproduction.

Hardware-assisted selective data randomization for operating-system
kernels, rebuilt as an executable Python model: QARMA-64 primitives and
key registers, an RV64 simulator with the ``cre``/``crd`` ISA
extension and a cryptographic lookaside buffer, an instrumenting
compiler, a miniature protected kernel, the Table-4 penetration suite
and the Figure-5 benchmark harness.

High-level entry points:

>>> from repro.kernel import KernelConfig
>>> from repro.kernel.api import boot_and_run
>>> boot_and_run(KernelConfig.full()).exit_code
42

See README.md for the tour, DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"
__paper__ = (
    "Xu, Lin, Yuan, Shen, Zhou, Chang, Wu, Ren: "
    "RegVault: Hardware Assisted Selective Data Randomization for "
    "Operating System Kernels. DAC 2022."
)

"""Reproducible interpreter performance harness (``python -m repro.perf``).

Every paper result this repo reproduces — the Fig. 5 overhead suites,
the CLB study, the RIPE matrix — is bottlenecked on simulator speed, so
this package tracks the interpreter's performance trajectory across PRs:

* fixed, deterministic workloads (kernel boot, syscall storm, QARMA
  throughput, CLB hit/miss sweep, attack-suite replay);
* each interpreter workload measured under the single-step baseline and
  the basic-block fast path, with an architectural-equivalence check
  (instructions, cycles, console, exit code must match bit-for-bit);
* machine-readable output (``BENCH_interp.json``) committed to the repo
  and uploaded from CI, so every future optimization has a number to
  beat.

See ``docs/perf.md`` for how to run it and read the results.
"""

from repro.perf.runner import run_perf
from repro.perf.workloads import WORKLOADS

__all__ = ["run_perf", "WORKLOADS"]

"""Validators for the benchmark report and trend-history formats.

Same contract as :mod:`repro.telemetry.schema`: each validator returns
a list of problem strings — empty means valid.  CI validates uploaded
``BENCH_interp.json`` artifacts and every ``BENCH_history/`` entry so a
malformed report fails the job instead of silently poisoning the trend
window.
"""

from __future__ import annotations

from repro.perf.runner import SCHEMA as BENCH_SCHEMA
from repro.perf.trend import HISTORY_SCHEMA, TRACKED_METRICS

__all__ = ["validate_bench", "validate_history_entry"]

_KNOWN_KINDS = ("interpreter", "snapshot", "engine", "codecache")


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_bench(document: dict) -> list[str]:
    """Validate a ``repro.perf`` benchmark report."""
    problems: list[str] = []
    if document.get("schema") != BENCH_SCHEMA:
        problems.append(f"bad schema id {document.get('schema')!r}")
    if not isinstance(document.get("schema_version"), int):
        problems.append("missing integer 'schema_version'")
    if not isinstance(document.get("quick"), bool):
        problems.append("missing boolean 'quick'")
    workloads = document.get("workloads")
    if not isinstance(workloads, dict) or not workloads:
        return problems + ["'workloads' missing or empty"]
    for name, data in workloads.items():
        where = f"workloads.{name}"
        if not isinstance(data, dict):
            problems.append(f"{where}: not an object")
            continue
        kind = data.get("kind")
        if kind not in _KNOWN_KINDS:
            problems.append(f"{where}: unknown kind {kind!r}")
            continue
        if kind == "interpreter":
            if data.get("equivalent") is not True:
                problems.append(
                    f"{where}: not marked architecturally equivalent"
                )
            if not _is_number(data.get("speedup")):
                problems.append(f"{where}: missing numeric 'speedup'")
            for tier in ("baseline", "fast"):
                row = data.get(tier)
                if not isinstance(row, dict) or not _is_number(
                    row.get("wall_seconds")
                ):
                    problems.append(
                        f"{where}.{tier}: missing numeric 'wall_seconds'"
                    )
        elif kind == "engine":
            for key in ("operations", "operations_per_second"):
                if not _is_number(data.get(key)):
                    problems.append(f"{where}: missing numeric {key!r}")
        elif kind == "codecache":
            if data.get("equivalent") is not True:
                problems.append(
                    f"{where}: not marked architecturally equivalent"
                )
            if not _is_number(data.get("warm_vs_cold")):
                problems.append(f"{where}: missing numeric 'warm_vs_cold'")
            for half in ("cold", "warm"):
                row = data.get(half)
                if not isinstance(row, dict) or not _is_number(
                    row.get("wall_seconds")
                ):
                    problems.append(
                        f"{where}.{half}: missing numeric 'wall_seconds'"
                    )
    return problems


def validate_history_entry(document: dict) -> list[str]:
    """Validate one ``BENCH_history/`` entry."""
    problems: list[str] = []
    if document.get("schema") != HISTORY_SCHEMA:
        problems.append(f"bad schema id {document.get('schema')!r}")
    if not isinstance(document.get("schema_version"), int):
        problems.append("missing integer 'schema_version'")
    timestamp = document.get("timestamp")
    if not isinstance(timestamp, str) or "T" not in timestamp:
        problems.append(f"bad 'timestamp' {timestamp!r} (want ISO-8601)")
    if not isinstance(document.get("label"), str):
        problems.append("missing string 'label'")
    if not isinstance(document.get("source"), dict):
        problems.append("'source' is not an object")
    metrics = document.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        return problems + ["'metrics' missing or empty"]
    for name, value in metrics.items():
        if name not in TRACKED_METRICS:
            problems.append(f"metrics.{name}: not a tracked metric")
        if not _is_number(value) or value < 0:
            problems.append(
                f"metrics.{name}: not a non-negative number: {value!r}"
            )
    return problems

"""Fixed benchmark workloads for the perf harness.

Two kinds of workload live here:

* **Interpreter workloads** (:class:`InterpWorkload`) boot a kernel and
  run it to completion twice — once single-stepped, once through the
  basic-block fast path — and assert that both runs retire the same
  instruction count, cycle count, console output and exit code.  The
  reported metric is instructions/sec of simulated execution.

* **Engine workloads** (:class:`EngineWorkload`) exercise the crypto
  engine directly (QARMA throughput, CLB hit/miss behaviour) and report
  operations/sec plus the engine/CLB statistics snapshots.

All workloads are deterministic: fixed seeds, fixed iteration counts
(scaled down under ``--quick``), no wall-clock-dependent control flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.compiler.ir import Const
from repro.kernel.config import KernelConfig
from repro.kernel.structs import SYS_GETPPID


# -- user modules ----------------------------------------------------------------


def _storm_module(iterations: int):
    """A tight null-syscall loop: the lmbench ``lat_syscall null`` shape."""
    from repro.bench.workloads.base import make_user_module

    def body(lb):
        acc = lb.accumulate()
        lb.loop(iterations, lambda lb2, i: lb2.add_into(acc, lb2.syscall(SYS_GETPPID)))
        lb.exit(Const(0))

    return make_user_module(body)


def _compute_module(iterations: int):
    """A dispatch-bound ALU kernel (mix of mul/shift/xor per iteration).

    This is the steady-state half of ``kernel_boot``: the boot itself
    exercises translation and compile *overhead* (every block is cold),
    while this loop exercises sustained execution where the compiled
    tier's direct chaining should dominate.
    """
    from repro.bench.workloads.base import make_user_module

    def body(lb):
        acc = lb.accumulate()

        def step(lb2, i):
            b = lb2.b
            mixed = b.xor(b.mul(i, i), b.shl(i, Const(3)))
            lb2.add_into(acc, b.and_(mixed, Const(0xFFFF)))

        lb.loop(iterations, step)
        lb.exit(Const(0))

    return make_user_module(body)


# -- interpreter workloads -------------------------------------------------------


@dataclass(frozen=True)
class InterpWorkload:
    """A kernel run measured under both interpreter modes."""

    name: str
    description: str
    #: ``make_config(quick) -> KernelConfig``
    make_config: Callable[[bool], KernelConfig]
    #: ``make_module(quick) -> Module | None`` (None = default boot payload)
    make_module: Callable[[bool], object] = lambda quick: None
    max_steps: int = 20_000_000

    def build_session(self, quick: bool):
        from repro.kernel.api import KernelSession

        return KernelSession(
            self.make_config(quick), self.make_module(quick)
        )


def _boot_config(quick: bool) -> KernelConfig:
    # The unprotected build is the pure-interpreter measurement: with
    # protections on, QARMA (pure Python) dominates the profile and the
    # dispatch win is masked — that case is kernel_boot_protected below.
    return KernelConfig.baseline(num_threads=2 if quick else 8)


def _boot_protected_config(quick: bool) -> KernelConfig:
    return KernelConfig.full(num_threads=1 if quick else 2)


def _storm_config(quick: bool) -> KernelConfig:
    return KernelConfig.full()


INTERP_WORKLOADS: tuple[InterpWorkload, ...] = (
    InterpWorkload(
        name="kernel_boot",
        description=(
            "Boot the unprotected (baseline-config) kernel with 8 "
            "threads and run a dispatch-bound ALU loop to shutdown.  "
            "Interpreter-bound: measures raw dispatch throughput, cold "
            "translation through the boot and steady state through the "
            "compute payload."
        ),
        make_config=_boot_config,
        make_module=lambda quick: _compute_module(2_000 if quick else 40_000),
    ),
    InterpWorkload(
        name="kernel_boot_protected",
        description=(
            "Boot the fully-protected kernel (RA+FP+noncontrol+spill"
            "+CIP, QARMA, 8-entry CLB).  Crypto-bound: QARMA in Python "
            "dominates, so the dispatch speedup is intentionally "
            "diluted here."
        ),
        make_config=_boot_protected_config,
    ),
    InterpWorkload(
        name="syscall_storm",
        description=(
            "Fully-protected kernel running a tight getppid() loop "
            "(lmbench lat_syscall null shape): trap entry/exit, CIP "
            "seal/unseal and scheduler interaction under load."
        ),
        make_config=_storm_config,
        make_module=lambda quick: _storm_module(60 if quick else 300),
    ),
)


# -- attack-suite replay ---------------------------------------------------------


def run_attack_replay(quick: bool, use_boot_cache: bool = True) -> dict:
    """Replay the Table-4 penetration tests; return outcome fingerprint.

    The fingerprint (attack, config, outcome) triples double as the
    equivalence check between interpreter modes: an attack suite that
    changes verdicts under the fast path means the fast path is wrong.

    A fresh :class:`~repro.kernel.BootCache` serves each replay (one
    boot per config, one fork per cell) unless ``use_boot_cache`` is
    False.
    """
    from repro.attacks.suite import ALL_ATTACKS, run_attack

    boot_cache = None
    if use_boot_cache:
        from repro.kernel import BootCache

        boot_cache = BootCache()
    attacks = ALL_ATTACKS[:3] if quick else ALL_ATTACKS
    configs = (KernelConfig.baseline(), KernelConfig.full())
    fingerprint = []
    for attack_cls in attacks:
        for config in configs:
            result = run_attack(attack_cls, config, boot_cache)
            fingerprint.append(
                (result.attack, result.config, result.succeeded)
            )
    return {
        "results": len(fingerprint),
        "succeeded": sum(1 for _, _, ok in fingerprint if ok),
        "fingerprint": fingerprint,
    }


# -- snapshot / fork throughput ---------------------------------------------------


def run_snapshot_workload(quick: bool) -> dict:
    """Measure snapshot capture/serialize/restore and COW-fork throughput.

    Micro-benchmarks run against a fully-protected kernel parked at the
    first user instruction; the macro number replays the attack suite
    cold (boot from reset per cell) and warm (boot once per config,
    fork per cell) and verifies the verdicts are identical.
    """
    import time

    from repro import snapshot as snap
    from repro.kernel import KernelSession

    session = KernelSession(KernelConfig.full())
    assert session.run_until(session.image.user_program.entry)
    machine = session.machine

    iterations = 5 if quick else 25

    def timed(operation):
        start = time.perf_counter()
        for _ in range(iterations):
            operation()
        return iterations / (time.perf_counter() - start)

    reference = snap.capture(machine)
    data = snap.to_bytes(reference)
    rates = {
        "capture_per_second": timed(lambda: snap.capture(machine)),
        "serialize_per_second": timed(lambda: snap.to_bytes(reference)),
        "deserialize_per_second": timed(lambda: snap.from_bytes(data)),
        "restore_per_second": timed(lambda: snap.restore(reference)),
        "fork_per_second": timed(lambda: snap.fork(machine)),
    }

    # Macro comparison — the two real operating points of the suite:
    # cold start (fresh process: compile every kernel, boot from reset
    # per cell) vs steady state (templates and build caches live: fork
    # per cell).  A warm-up replay populates the caches off the clock,
    # exactly as repeat invocations of the suite do in practice.
    from repro.isa.decoder import clear_decode_cache
    from repro.kernel.build import _KERNEL_CACHE

    _KERNEL_CACHE.clear()
    clear_decode_cache()
    cold_start = time.perf_counter()
    cold = run_attack_replay(quick, use_boot_cache=False)
    cold_wall = time.perf_counter() - cold_start

    from repro.attacks.suite import ALL_ATTACKS, run_attack
    from repro.kernel import BootCache

    boot_cache = BootCache()
    attacks = ALL_ATTACKS[:3] if quick else ALL_ATTACKS
    configs = (KernelConfig.baseline(), KernelConfig.full())

    def replay() -> list:
        fingerprint = []
        for attack_cls in attacks:
            for config in configs:
                result = run_attack(attack_cls, config, boot_cache)
                fingerprint.append(
                    (result.attack, result.config, result.succeeded)
                )
        return fingerprint

    warmup_fingerprint = replay()  # populates the templates off-clock
    warm_start = time.perf_counter()
    warm_fingerprint = replay()
    warm_wall = time.perf_counter() - warm_start

    return {
        "pages": len(reference.memory.pages),
        "snapshot_bytes": len(data),
        "content_hash": reference.content_hash(),
        **rates,
        "suite": {
            "attacks_run": cold["results"],
            "equivalent": cold["fingerprint"] == warm_fingerprint
            and cold["fingerprint"] == warmup_fingerprint,
            "cold_wall_seconds": cold_wall,
            "warm_wall_seconds": warm_wall,
            "speedup": cold_wall / warm_wall,
            "template_boots": boot_cache.boots,
            "forks": boot_cache.forks,
        },
    }


# -- persistent code cache warm start ---------------------------------------------


def run_warm_start_workload(quick: bool) -> dict:
    """Time-to-compiled-set, cold vs warm from the on-disk cache.

    The gated number is how long each start takes to have the
    workload's *complete* compiled block set live — the apples-to-
    apples point, since the warm start installs every persisted entry
    before the first instruction executes, while the cold start only
    reaches the same state when its *last* hot block crosses the
    compile threshold and finishes code generation.  Both halves run at
    the fleet's steady state (kernel build cache warm, as in the
    snapshot workload's warm lane) with the process decode cache
    cleared, so the difference is exactly what tier 4 persists:
    translation, profiling and compilation.  Both runs execute to
    completion and must produce identical architectural fingerprints.
    """
    import tempfile
    import time

    from repro.isa.decoder import clear_decode_cache
    from repro.machine.codecache import (
        CodeCache,
        CodeRecorder,
        cache_key,
        config_signature,
        image_text_digest,
    )

    workload = next(w for w in INTERP_WORKLOADS if w.name == "kernel_boot")
    workload.build_session(quick)  # warm the kernel build cache off-clock

    def fingerprint(result) -> dict:
        return {
            "halt_reason": getattr(result.halt_reason, "value", None),
            "exit_code": result.exit_code,
            "console": result.console,
            "instructions": result.instructions,
            "cycles": result.cycles,
        }

    class _TimedRecorder(CodeRecorder):
        """Collector that timestamps the first and last compilation."""

        def __init__(self, started: float):
            super().__init__()
            self.started = started
            self.first: float | None = None
            self.last: float | None = None

        def record_block(self, hart, block, source):
            now = time.perf_counter() - self.started
            if self.first is None:
                self.first = now
            self.last = now
            super().record_block(hart, block, source)

    with tempfile.TemporaryDirectory() as cache_dir:
        cache = CodeCache(cache_dir, max_sets=4)

        # -- cold: translate + profile + compile, recording as it goes.
        clear_decode_cache()
        cold_start = time.perf_counter()
        session = workload.build_session(quick)
        hart = session.machine.hart
        recorder = _TimedRecorder(cold_start)
        hart.code_collector = recorder
        cold_result = session.run(workload.max_steps)
        cold_wall = time.perf_counter() - cold_start
        signature = config_signature(hart)
        text_digest = image_text_digest(session.image)
        key = cache_key(text_digest, signature)
        cache.save(key, recorder, signature, text_digest)  # off the clock

        # -- warm: identical conditions plus the disk cache.
        clear_decode_cache()
        warm_start = time.perf_counter()
        session = workload.build_session(quick)
        hart = session.machine.hart
        loaded = cache.load(
            key, config_signature(hart), image_text_digest(session.image)
        )
        installed = rejected = 0
        if loaded is not None:
            installed, rejected = cache.install(hart, loaded)
        set_ready_warm = (
            time.perf_counter() - warm_start if installed else None
        )
        warm_result = session.run(workload.max_steps)
        warm_wall = time.perf_counter() - warm_start

        cold_fp = fingerprint(cold_result)
        warm_fp = fingerprint(warm_result)
        return {
            "equivalent": cold_fp == warm_fp,
            "entries": len(recorder),
            "instructions": cold_fp["instructions"],
            "cold": {
                "wall_seconds": cold_wall,
                "first_compile_seconds": recorder.first,
                "compiled_set_seconds": recorder.last,
                "instructions_per_second": (
                    cold_result.instructions / cold_wall
                ),
            },
            "warm": {
                "wall_seconds": warm_wall,
                "compiled_set_seconds": set_ready_warm,
                "instructions_per_second": (
                    warm_result.instructions / warm_wall
                ),
                "installed": installed,
                "rejected": rejected,
                "hit_rate": (
                    installed / len(recorder) if len(recorder) else 0.0
                ),
            },
            "warm_vs_cold": (
                recorder.last / set_ready_warm
                if recorder.last and set_ready_warm
                else 0.0
            ),
            "cache": cache.stats(),
        }


# -- engine workloads ------------------------------------------------------------


@dataclass(frozen=True)
class EngineWorkload:
    """A direct crypto-engine benchmark (no simulated hart)."""

    name: str
    description: str
    #: ``run(quick) -> (operations, extra_stats_dict)``
    run: Callable[[bool], tuple[int, dict]]


def _qarma_throughput(quick: bool) -> tuple[int, dict]:
    """Raw QARMA ops/sec with the CLB disabled (every op computes).

    The engine loop runs with the memo disabled (every tweak is fresh
    anyway), so this measures the table-fused cipher fast path; a short
    reference-path loop alongside it reports the host speedup of the
    fused implementation over the cell-list reference.
    """
    import time

    from repro.crypto.engine import CryptoEngine
    from repro.crypto.keys import KeySelect
    from repro.crypto.primitives import FULL_RANGE
    from repro.crypto.qarma import Qarma64

    engine = CryptoEngine(clb_entries=0, memo_entries=0)
    engine.key_file.set_key(KeySelect.A, 0x0123456789ABCDEF0123456789ABCDEF)
    iterations = 500 if quick else 5_000
    value = 0x1111111111111111
    for i in range(iterations):
        tweak = 0x8000_0000 + 8 * i
        sealed, _ = engine.encrypt(KeySelect.A, value, FULL_RANGE, tweak)
        value, _ = engine.decrypt(KeySelect.A, sealed, FULL_RANGE, tweak)

    # Fast path vs reference path, same cipher object and inputs.
    cipher = Qarma64()
    key = 0x0123456789ABCDEF0123456789ABCDEF
    ref_iters = max(1, iterations // 10)
    start = time.perf_counter()
    for i in range(ref_iters):
        cipher.encrypt(0x2222222222222222 + i, 0x9000 + i, key)
    fast_wall = time.perf_counter() - start
    start = time.perf_counter()
    for i in range(ref_iters):
        cipher.encrypt_reference(0x2222222222222222 + i, 0x9000 + i, key)
    reference_wall = time.perf_counter() - start
    return engine.stats.operations, {
        "engine": engine.stats.snapshot(),
        "fast_path_speedup": reference_wall / fast_wall,
    }


def _clb_sweep(quick: bool) -> tuple[int, dict]:
    """CLB hit/miss sweep: high-locality vs low-locality phases.

    Phase 1 re-seals the same 4 (value, tweak) pairs — the function
    prologue/epilogue pattern the 8-entry CLB is designed for — and
    should approach a 100% hit ratio.  Phase 2 streams unique tweaks
    (working set >> 8 entries) and should approach 0%.
    """
    from repro.crypto.engine import CryptoEngine
    from repro.crypto.keys import KeySelect
    from repro.crypto.primitives import FULL_RANGE

    engine = CryptoEngine(clb_entries=8)
    engine.key_file.set_key(KeySelect.A, 0xFEDCBA9876543210FEDCBA9876543210)
    rounds = 50 if quick else 500

    # High locality: 4 hot lines, revisited every round.
    hot = [(0x2222 * (i + 1), 0x9000_0000 + 8 * i) for i in range(4)]
    for _ in range(rounds):
        for value, tweak in hot:
            sealed, _ = engine.encrypt(KeySelect.A, value, FULL_RANGE, tweak)
            engine.decrypt(KeySelect.A, sealed, FULL_RANGE, tweak)
    high = engine.clb.stats.snapshot()
    engine.reset_stats()

    # Low locality: every access uses a fresh tweak.
    for i in range(rounds * 8):
        tweak = 0xA000_0000 + 8 * i
        engine.encrypt(KeySelect.A, 0x3333_3333, FULL_RANGE, tweak)
    low = engine.clb.stats.snapshot()

    operations = high["accesses"] + low["accesses"]
    return operations, {
        "high_locality": high,
        "low_locality": low,
    }


ENGINE_WORKLOADS: tuple[EngineWorkload, ...] = (
    EngineWorkload(
        name="qarma_throughput",
        description="Raw QARMA-64 encrypt+decrypt round-trips, CLB off.",
        run=_qarma_throughput,
    ),
    EngineWorkload(
        name="clb_sweep",
        description=(
            "8-entry CLB under a high-locality phase (4 hot lines) and "
            "a low-locality phase (streaming tweaks)."
        ),
        run=_clb_sweep,
    ),
)


#: Every workload name the CLI accepts, in report order.
WORKLOADS: tuple[str, ...] = (
    tuple(w.name for w in INTERP_WORKLOADS)
    + ("kernel_boot_warm_start", "attack_replay", "snapshot")
    + tuple(w.name for w in ENGINE_WORKLOADS)
)

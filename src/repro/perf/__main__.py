"""CLI entry point: ``python -m repro.perf``.

Runs the fixed workload set under both interpreter modes, verifies
architectural equivalence, prints a summary table and (optionally)
writes the machine-readable ``BENCH_interp.json`` consumed by CI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.perf.report import format_report
from repro.perf.runner import run_perf, write_report
from repro.perf.workloads import WORKLOADS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="RegVault simulator benchmark harness.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller iteration counts and a single repeat (CI smoke)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="wall-clock repeats per measurement (best-of-N; "
        "default 3, 1 with --quick)",
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        metavar="NAME",
        choices=WORKLOADS,
        help=f"subset to run (default: all of {', '.join(WORKLOADS)})",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="append a metrics block from one instrumented "
        "kernel_boot_protected run (off the benchmark clock)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the JSON report (sorted keys, schema-versioned) "
        "instead of the summary table",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write the JSON report here (e.g. BENCH_interp.json)",
    )
    args = parser.parse_args(argv)

    if args.output:
        # Fail on an unwritable path now, not after minutes of runs.
        directory = os.path.dirname(os.path.abspath(args.output))
        if not os.path.isdir(directory):
            parser.error(f"--output directory does not exist: {directory}")

    report = run_perf(
        quick=args.quick,
        repeats=args.repeats,
        only=args.workloads,
        telemetry=args.telemetry,
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_report(report))
    if args.output:
        write_report(report, args.output)
        if not args.json:
            print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Measure the perf workloads and assemble the benchmark report.

Interpreter workloads run once per mode (single-step baseline vs the
block fast path) per repeat; the best wall-clock of the repeats is kept
to damp scheduler noise, while the architectural results — which must
be identical across repeats *and* modes — are cross-checked every time.
"""

from __future__ import annotations

import json
import platform
import time

from repro.machine.machine import Machine
from repro.perf.workloads import (
    ENGINE_WORKLOADS,
    INTERP_WORKLOADS,
    WORKLOADS,
    run_attack_replay,
    run_snapshot_workload,
    run_warm_start_workload,
)

SCHEMA = "repro.perf/1"
#: Bumped whenever a key is added/renamed; BENCH_history extraction and
#: CI artifact diffs key off this.
SCHEMA_VERSION = 1


class EquivalenceError(AssertionError):
    """Fast path and single-step baseline disagreed on architecture."""


#: Execution tiers measured per interpreter workload:
#: ``(name, fast_path, compile_enabled)``.
TIERS = (
    ("baseline", False, False),   # tier 1: single-step interpreter
    ("block", True, False),       # tier 2: predecoded block interpreter
    ("fast", True, True),         # tier 3: compiled blocks + chaining
)


def _measure_interp(workload, quick: bool, mode: str, repeats: int):
    """Run one interpreter workload in one tier; return (metrics, fp)."""
    compile_enabled = {name: comp for name, _, comp in TIERS}[mode]
    best = None
    fingerprint = None
    for _ in range(repeats):
        session = workload.build_session(quick)
        hart = session.machine.hart
        hart.compile_enabled = compile_enabled
        start = time.perf_counter()
        result = session.run(workload.max_steps)
        wall = time.perf_counter() - start
        fp = {
            "halt_reason": getattr(result.halt_reason, "value", None),
            "exit_code": result.exit_code,
            "console": result.console,
            "instructions": result.instructions,
            "cycles": result.cycles,
        }
        if fingerprint is None:
            fingerprint = fp
        elif fp != fingerprint:
            raise EquivalenceError(
                f"{workload.name}: non-deterministic run in tier "
                f"{mode}: {fp} != {fingerprint}"
            )
        blocks = hart.blocks
        candidate = {
            "wall_seconds": wall,
            "instructions": result.instructions,
            "cycles": result.cycles,
            "instructions_per_second": result.instructions / wall,
            "simulated_cycles_per_second": result.cycles / wall,
            "block_translations": blocks.translations,
            "blocks_invalidated": blocks.invalidated_blocks,
            "block_hits": blocks.hits,
            "block_misses": blocks.misses,
            "block_evictions": blocks.evictions,
            "blocks_compiled": hart.compiled_blocks,
        }
        if best is None or wall < best["wall_seconds"]:
            best = candidate
    return best, fingerprint


def _check_equivalence(name: str, slow_fp: dict, fast_fp: dict) -> None:
    if slow_fp == fast_fp:
        return
    diffs = {
        key: (slow_fp[key], fast_fp[key])
        for key in slow_fp
        if slow_fp[key] != fast_fp[key]
    }
    raise EquivalenceError(
        f"{name}: fast path diverged from single-step baseline: {diffs}"
    )


def _run_interp_workload(workload, quick: bool, repeats: int) -> dict:
    saved = Machine.DEFAULT_FAST_PATH
    rows = {}
    fingerprints = {}
    try:
        for mode, fast_path, _ in TIERS:
            Machine.DEFAULT_FAST_PATH = fast_path
            rows[mode], fingerprints[mode] = _measure_interp(
                workload, quick, mode, repeats
            )
    finally:
        Machine.DEFAULT_FAST_PATH = saved
    for mode in ("block", "fast"):
        _check_equivalence(
            f"{workload.name}[{mode}]",
            fingerprints["baseline"],
            fingerprints[mode],
        )
    slow_fp = fingerprints["baseline"]
    baseline_wall = rows["baseline"]["wall_seconds"]
    return {
        "kind": "interpreter",
        "description": workload.description,
        "equivalent": True,
        "instructions": slow_fp["instructions"],
        "simulated_cycles": slow_fp["cycles"],
        "halt_reason": slow_fp["halt_reason"],
        "exit_code": slow_fp["exit_code"],
        "baseline": rows["baseline"],
        "block": rows["block"],
        "fast": rows["fast"],
        # "speedup" stays the headline baseline->top-tier number; the
        # per-tier ratios break it down.
        "speedup": baseline_wall / rows["fast"]["wall_seconds"],
        "block_speedup": baseline_wall / rows["block"]["wall_seconds"],
        "compiled_speedup_over_block": (
            rows["block"]["wall_seconds"] / rows["fast"]["wall_seconds"]
        ),
    }


def _run_attack_replay(quick: bool, repeats: int) -> dict:
    saved = Machine.DEFAULT_FAST_PATH
    try:
        Machine.DEFAULT_FAST_PATH = False
        start = time.perf_counter()
        slow = run_attack_replay(quick)
        slow_wall = time.perf_counter() - start
        Machine.DEFAULT_FAST_PATH = True
        start = time.perf_counter()
        fast = run_attack_replay(quick)
        fast_wall = time.perf_counter() - start
    finally:
        Machine.DEFAULT_FAST_PATH = saved
    if slow["fingerprint"] != fast["fingerprint"]:
        raise EquivalenceError(
            "attack_replay: penetration-test verdicts changed under the "
            f"fast path: {slow['fingerprint']} != {fast['fingerprint']}"
        )
    return {
        "kind": "interpreter",
        "description": (
            "Replay the Table-4 penetration-test matrix under both "
            "interpreter modes; verdicts must match."
        ),
        "equivalent": True,
        "attacks_run": slow["results"],
        "attacks_succeeded": slow["succeeded"],
        "baseline": {"wall_seconds": slow_wall},
        "fast": {"wall_seconds": fast_wall},
        "speedup": slow_wall / fast_wall,
    }


def _run_snapshot_workload(quick: bool) -> dict:
    """Snapshot/fork throughput plus boot-cached attack-suite speedup.

    Runs once regardless of ``repeats``: the macro half replays the
    whole penetration matrix twice (cold and warm), which dwarfs any
    scheduler noise the repeats would damp.
    """
    data = run_snapshot_workload(quick)
    if not data["suite"]["equivalent"]:
        raise EquivalenceError(
            "snapshot: boot-cached attack suite changed verdicts"
        )
    return {
        "kind": "snapshot",
        "description": (
            "Machine snapshot capture/serialize/restore and COW fork "
            "throughput; attack suite cold (boot per cell) vs warm "
            "(boot once per config, fork per cell)."
        ),
        "equivalent": True,
        **data,
    }


def _run_warm_start_workload(quick: bool) -> dict:
    """Persistent code-cache warm start vs cold start.

    Runs once regardless of ``repeats``: the cold half deliberately
    rebuilds the kernel from scratch, which dwarfs scheduler noise.
    """
    data = run_warm_start_workload(quick)
    if not data["equivalent"]:
        raise EquivalenceError(
            "kernel_boot_warm_start: cached warm run diverged from the "
            "cold run"
        )
    return {
        "kind": "codecache",
        "description": (
            "Time until kernel_boot's full compiled block set is live, "
            "cold (translate + profile + compile every hot block) vs "
            "warm (import the persisted set and byte-validate); runs "
            "must be bit-identical."
        ),
        **data,
    }


def _run_engine_workload(workload, quick: bool, repeats: int) -> dict:
    best = None
    stats = None
    operations = None
    for _ in range(repeats):
        start = time.perf_counter()
        ops, extra = workload.run(quick)
        wall = time.perf_counter() - start
        if operations is None:
            operations, stats = ops, extra
        if best is None or wall < best:
            best = wall
    return {
        "kind": "engine",
        "description": workload.description,
        "operations": operations,
        "wall_seconds": best,
        "operations_per_second": operations / best,
        "stats": stats,
    }


def _telemetry_block(quick: bool) -> dict:
    """One instrumented protected-boot run's metrics, for the report.

    Runs off the benchmark clock (the measured runs above are never
    instrumented) and uses the metrics plane only, so the report gains
    CLB/crypto/block/trap/syscall counters without trace overhead.
    """
    from repro.telemetry.runner import run_workload

    run = run_workload(
        "kernel_boot_protected",
        quick=quick,
        trace=False,
        profile=False,
        metrics=True,
    )
    return {
        "workload": run.workload,
        "metrics": run.telemetry.metrics_json(),
    }


def run_perf(
    quick: bool = False,
    repeats: int | None = None,
    only: list[str] | None = None,
    telemetry: bool = False,
) -> dict:
    """Run the selected workloads; return the JSON-ready report dict."""
    if only:
        unknown = sorted(set(only) - set(WORKLOADS))
        if unknown:
            raise ValueError(
                f"unknown workloads {unknown}; choose from {list(WORKLOADS)}"
            )
    if repeats is None:
        repeats = 1 if quick else 3
    repeats = max(1, repeats)
    selected = set(only) if only else set(WORKLOADS)

    results: dict[str, dict] = {}
    for workload in INTERP_WORKLOADS:
        if workload.name in selected:
            results[workload.name] = _run_interp_workload(
                workload, quick, repeats
            )
    if "kernel_boot_warm_start" in selected:
        results["kernel_boot_warm_start"] = _run_warm_start_workload(quick)
    if "attack_replay" in selected:
        results["attack_replay"] = _run_attack_replay(quick, repeats)
    if "snapshot" in selected:
        results["snapshot"] = _run_snapshot_workload(quick)
    for workload in ENGINE_WORKLOADS:
        if workload.name in selected:
            results[workload.name] = _run_engine_workload(
                workload, quick, repeats
            )

    report = {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "quick": quick,
        "repeats": repeats,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "workloads": results,
    }
    if telemetry:
        report["telemetry"] = _telemetry_block(quick)
    return report


def write_report(report: dict, path: str) -> None:
    # Sorted keys keep BENCH_history diffs and CI artifact comparisons
    # deterministic regardless of workload execution order.
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

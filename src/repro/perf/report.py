"""Human-readable rendering of a perf report dict."""

from __future__ import annotations


def format_report(report: dict) -> str:
    lines = [
        f"repro.perf — schema {report['schema']}  "
        f"(python {report['python']}, quick={report['quick']}, "
        f"repeats={report['repeats']})",
        "",
    ]
    header = (
        f"{'workload':24s} {'instr':>10s} {'base ips':>12s} "
        f"{'fast ips':>12s} {'speedup':>8s}  equiv"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, data in report["workloads"].items():
        if data["kind"] == "interpreter":
            base = data["baseline"]
            fast = data["fast"]
            instr = data.get("instructions")
            base_ips = base.get("instructions_per_second")
            fast_ips = fast.get("instructions_per_second")
            lines.append(
                f"{name:24s} "
                f"{instr if instr is not None else '-':>10} "
                f"{_rate(base_ips):>12s} {_rate(fast_ips):>12s} "
                f"{data['speedup']:>7.2f}x  "
                f"{'yes' if data['equivalent'] else 'NO'}"
            )
        elif data["kind"] == "snapshot":
            # Columns repurposed: capture rate, fork rate, and the
            # cold-vs-warm attack-suite wall-clock speedup.
            suite = data["suite"]
            lines.append(
                f"{name:24s} {data['pages']:>10} "
                f"{_rate(data['capture_per_second']):>12s} "
                f"{_rate(data['fork_per_second']):>12s} "
                f"{suite['speedup']:>7.2f}x  "
                f"{'yes' if data['equivalent'] else 'NO'}"
            )
        elif data["kind"] == "codecache":
            # Columns repurposed: persisted entries, cold vs warm
            # time-to-compiled-set, and the warm-start speedup.
            lines.append(
                f"{name:24s} {data['entries']:>10} "
                f"{_seconds(data['cold']['compiled_set_seconds']):>12s} "
                f"{_seconds(data['warm']['compiled_set_seconds']):>12s} "
                f"{data['warm_vs_cold']:>7.2f}x  "
                f"{'yes' if data['equivalent'] else 'NO'}"
            )
        else:
            lines.append(
                f"{name:24s} {data['operations']:>10} "
                f"{'-':>12s} {_rate(data['operations_per_second']):>12s} "
                f"{'-':>8s}  -"
            )
    lines.append("")
    for name, data in report["workloads"].items():
        if data["kind"] == "engine" and "stats" in data:
            lines.append(f"{name}: {_engine_summary(data['stats'])}")
    return "\n".join(line.rstrip() for line in lines)


def _seconds(value: float | None) -> str:
    if value is None:
        return "-"
    if value < 1:
        return f"{value * 1000:.0f}ms"
    return f"{value:.2f}s"


def _rate(value: float | None) -> str:
    if value is None:
        return "-"
    if value >= 1_000_000:
        return f"{value / 1_000_000:.2f}M/s"
    if value >= 1_000:
        return f"{value / 1_000:.1f}k/s"
    return f"{value:.0f}/s"


def _engine_summary(stats: dict) -> str:
    parts = []
    for key, value in stats.items():
        if isinstance(value, dict) and "hit_ratio" in value:
            parts.append(f"{key} hit ratio {value['hit_ratio']:.1%}")
        elif isinstance(value, dict) and "operations" in value:
            parts.append(f"{key} ops {value['operations']}")
    return ", ".join(parts) if parts else "(no stats)"

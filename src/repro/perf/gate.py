"""Perf-regression gate over a ``BENCH_interp.json`` report.

CI runs the quick benchmark and then this gate: it fails the build if
the compiled tier stops paying for itself on the dispatch-bound boot
workload, or if any interpreter workload loses architectural
equivalence.  The floors are deliberately generous — shared CI runners
are noisy and quick mode amortizes compilation over fewer iterations —
so a red gate means the tier actually regressed, not that the runner
was slow today.

On top of the fixed floors, ``--history BENCH_history`` adds windowed
trend detection (:mod:`repro.perf.trend`): the current numbers — and,
with ``--fuzz-report``, the fuzz coverage counts — must stay inside a
tolerance band around the median of the last K comparable recorded
runs, so sustained regressions that never cross a fixed floor still
fail the gate.

Usage::

    python -m repro.perf.gate BENCH_interp.json \\
        [--history BENCH_history] [--fuzz-report fuzz-report.json]
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["GATES", "REQUIRED_WORKLOADS", "check_report", "check_trend"]

#: ``(workload, metric path, floor)`` — every gated ratio must stay at
#: or above its floor.  ``kernel_boot`` is the canonical dispatch-bound
#: workload: if compiled blocks stop beating the block interpreter
#: there, the tier has regressed everywhere.  ``kernel_boot_warm_start``
#: gates tier 4: a warm start importing the persisted code set must
#: have the full compiled set live at least 3x sooner than a cold
#: start compiling it from scratch.
GATES = (
    ("kernel_boot", "compiled_speedup_over_block", 1.2),
    ("kernel_boot", "speedup", 2.0),
    ("kernel_boot_warm_start", "warm_vs_cold", 3.0),
)

#: Workloads that must be present in any gated report.  Other gated
#: workloads have their floor applied only when present, so partial
#: runs (``--only kernel_boot``) still gate what they measured.
REQUIRED_WORKLOADS = ("kernel_boot",)


def check_report(report: dict) -> list[str]:
    """Return a list of failure messages (empty = gate passes)."""
    failures: list[str] = []
    workloads = report.get("workloads", {})

    for name, data in workloads.items():
        if data.get("kind") not in ("interpreter", "codecache"):
            continue
        if data.get("equivalent") is not True:
            failures.append(f"{name}: not marked architecturally equivalent")

    for name, metric, floor in GATES:
        data = workloads.get(name)
        if data is None:
            if name in REQUIRED_WORKLOADS:
                failures.append(f"{name}: workload missing from report")
            continue
        value = data.get(metric)
        if not isinstance(value, (int, float)):
            failures.append(f"{name}: metric {metric!r} missing")
        elif value < floor:
            failures.append(
                f"{name}: {metric} = {value:.2f} below floor {floor:.2f}"
            )

    boot = workloads.get("kernel_boot", {})
    fast_row = boot.get("fast", {})
    if fast_row and not fast_row.get("blocks_compiled"):
        failures.append(
            "kernel_boot: compiled tier ran zero blocks through the "
            "compiler (tier silently disabled?)"
        )
    return failures


def check_trend(
    report: dict,
    history_dir: str,
    fuzz_report: dict | None = None,
    fleet_report: dict | None = None,
    window: int | None = None,
    min_history: int | None = None,
) -> list[str]:
    """Trend failures for the report against a ``BENCH_history/`` dir."""
    from datetime import datetime, timezone

    from repro.perf import trend

    history = trend.load_history(history_dir)
    current = trend.make_entry(
        report,
        fuzz_report,
        fleet_report,
        timestamp=datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        label="current",
    )
    findings = trend.analyze(
        history,
        current,
        window=window or trend.DEFAULT_WINDOW,
        min_history=min_history or trend.DEFAULT_MIN_HISTORY,
    )
    print(f"trend window ({len(history)} history entries):")
    print(trend.format_findings(findings))
    return trend.trend_failures(findings)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.gate",
        description="Fail if a benchmark report regresses the gated floors.",
    )
    parser.add_argument("report", help="path to BENCH_interp.json")
    parser.add_argument("--history", metavar="DIR", default=None,
                        help="BENCH_history directory; adds windowed "
                        "trend detection on top of the fixed floors")
    parser.add_argument("--fuzz-report", metavar="FILE", default=None,
                        help="fuzz campaign report whose coverage counts "
                        "join the trend check")
    parser.add_argument("--fleet-report", metavar="FILE", default=None,
                        help="BENCH_fleet.json whose serving throughput "
                        "joins the trend check")
    parser.add_argument("--window", type=int, default=None,
                        help="trend window size (median of last K)")
    parser.add_argument("--min-history", type=int, default=None,
                        help="skip metrics with fewer comparable entries")
    args = parser.parse_args(argv)

    with open(args.report, encoding="utf-8") as handle:
        report = json.load(handle)
    failures = check_report(report)
    if args.history:
        fuzz = None
        if args.fuzz_report:
            with open(args.fuzz_report, encoding="utf-8") as handle:
                fuzz = json.load(handle)
        fleet = None
        if args.fleet_report:
            with open(args.fleet_report, encoding="utf-8") as handle:
                fleet = json.load(handle)
        failures += check_trend(
            report, args.history, fuzz_report=fuzz, fleet_report=fleet,
            window=args.window, min_history=args.min_history,
        )
    if failures:
        print("perf gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    gated = ", ".join(f"{w}.{m} >= {f}" for w, m, f in GATES)
    trend_note = " + trend window" if args.history else ""
    print(f"perf gate passed ({gated}{trend_note})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

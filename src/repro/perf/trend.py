"""Windowed perf/coverage trend tracking over ``BENCH_history/``.

``BENCH_history/`` is a checked-in directory of small, timestamped
history entries — one per recorded benchmark run — each holding the
handful of metrics the trend gate watches (per-workload ips, the
kernel-boot speedup ratios, fuzz coverage counts) rather than the full
``BENCH_interp.json``.  The analyzer compares the *current* run against
the **median of the last K** comparable history entries with a
per-metric tolerance band, so a single noisy run neither fails the gate
nor poisons the history, while a sustained regression of either speed
or fuzz coverage does fail it.

Comparability rules keep apples with apples: benchmark metrics only
compare against entries recorded with the same ``--quick`` setting,
fuzz coverage only against entries whose campaign shape
``(seed, budget, shards)`` matches, and fleet serving throughput only
against entries whose loadgen shape ``(seed, jobs, workers)`` matches.
Entries recorded from spec-enabled runs (reports carrying a
``"spec": true`` marker) only ever compare against other spec-enabled
entries — the speculative front-end slows every workload it touches.

CLI::

    python -m repro.perf.trend record BENCH_interp.json \\
        --history BENCH_history [--fuzz-report fuzz.json] [--label ci]
    python -m repro.perf.trend check BENCH_interp.json \\
        --history BENCH_history [--fuzz-report fuzz.json]

``check`` exits non-zero on any regression; ``--inject-regression F``
scales the current metrics by ``F`` first, which CI uses to prove the
failing path stays wired up.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from statistics import median

__all__ = [
    "HIGHER_IS_WORSE",
    "HISTORY_SCHEMA",
    "TRACKED_METRICS",
    "TrendFinding",
    "analyze",
    "extract_metrics",
    "load_history",
    "make_entry",
    "save_entry",
    "trend_failures",
]

HISTORY_SCHEMA = "repro.perf/history-1"
HISTORY_SCHEMA_VERSION = 1

DEFAULT_WINDOW = 5
#: Fewer comparable entries than this and a metric is skipped rather
#: than guessed at.
DEFAULT_MIN_HISTORY = 3

#: metric name -> relative tolerance below the window median that still
#: passes.  Speedup ratios are machine-independent (tight band); raw
#: ips track the host's wall clock (loose band — shared CI runners are
#: noisy); fuzz coverage is deterministic per campaign shape (tightest).
TRACKED_METRICS: dict[str, float] = {
    "kernel_boot.speedup": 0.35,
    "kernel_boot.block_speedup": 0.35,
    "kernel_boot.compiled_speedup_over_block": 0.35,
    "kernel_boot.fast.ips": 0.60,
    "kernel_boot_protected.fast.ips": 0.60,
    "syscall_storm.fast.ips": 0.60,
    "qarma_throughput.ops_per_second": 0.60,
    "cache.warm_vs_cold": 0.60,
    "fuzz.coverage.instruction_pairs": 0.10,
    "fuzz.coverage.trap_edges": 0.25,
    "fuzz.coverage.clb_events": 0.25,
    "fleet.jobs_per_second": 0.60,
    "fleet.cold_vs_warm": 0.35,
    "fleet.span_overhead_pct": 2.0,
}

#: Metrics where *larger* is the regression direction (costs, not
#: throughput).  Their TRACKED_METRICS tolerance is an absolute
#: allowance added to the window median — a percentage-cost metric
#: hovering near zero would make any relative band meaningless — and
#: the gate fails when the current value exceeds ``median +
#: tolerance``.
HIGHER_IS_WORSE: frozenset[str] = frozenset({
    "fleet.span_overhead_pct",
})

#: Metrics that improved past this fraction above the median are
#: labelled ``improving`` in the check output (informational only).
_IMPROVEMENT_BAND = 0.15


@dataclass
class TrendFinding:
    metric: str
    #: ``regression`` | ``ok`` | ``improving`` | ``insufficient-history``
    status: str
    current: float
    median: float | None
    #: The passing bound: a floor for throughput-style metrics, a
    #: ceiling for :data:`HIGHER_IS_WORSE` cost metrics.
    floor: float | None
    window: int


def extract_metrics(
    bench_report: dict | None = None,
    fuzz_report: dict | None = None,
    fleet_report: dict | None = None,
) -> dict[str, float]:
    """Pull the tracked metric values out of full reports.

    Either report may be absent; only metrics whose source data exists
    end up in the result.
    """
    metrics: dict[str, float] = {}
    workloads = (bench_report or {}).get("workloads", {})

    def put(name, value):
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            metrics[name] = value

    for workload in ("kernel_boot", "kernel_boot_protected",
                     "syscall_storm"):
        data = workloads.get(workload, {})
        fast = data.get("fast", {})
        put(f"{workload}.fast.ips", fast.get("instructions_per_second"))
        if workload == "kernel_boot":
            put("kernel_boot.speedup", data.get("speedup"))
            put("kernel_boot.block_speedup", data.get("block_speedup"))
            put("kernel_boot.compiled_speedup_over_block",
                data.get("compiled_speedup_over_block"))
    qarma = workloads.get("qarma_throughput", {})
    put("qarma_throughput.ops_per_second",
        qarma.get("operations_per_second"))
    warm = workloads.get("kernel_boot_warm_start", {})
    put("cache.warm_vs_cold", warm.get("warm_vs_cold"))

    coverage = (fuzz_report or {}).get("coverage", {})
    put("fuzz.coverage.instruction_pairs",
        coverage.get("instruction_pairs"))
    put("fuzz.coverage.trap_edges", coverage.get("trap_edges"))
    put("fuzz.coverage.clb_events", coverage.get("clb_events"))

    timing = (fleet_report or {}).get("timing", {})
    put("fleet.jobs_per_second", timing.get("jobs_per_second"))
    put("fleet.cold_vs_warm", timing.get("cold_vs_warm"))
    put("fleet.span_overhead_pct", timing.get("span_overhead_pct"))
    return metrics


def _fuzz_source(fuzz_report: dict | None) -> dict | None:
    if not fuzz_report:
        return None
    return {
        "seed": fuzz_report.get("seed"),
        "budget": fuzz_report.get("budget"),
        "shards": fuzz_report.get("shards", 1),
    }


def _fleet_source(fleet_report: dict | None) -> dict | None:
    if not fleet_report:
        return None
    source = {
        "seed": fleet_report.get("seed"),
        "jobs": fleet_report.get("jobs"),
        "workers": fleet_report.get("workers"),
    }
    # Span-decorated runs pay the observability cost; their throughput
    # lives in its own lane.  Absent (not false) when off, so older
    # plain entries keep comparing against plain runs.
    if fleet_report.get("spans"):
        source["spans"] = True
    return source


def make_entry(
    bench_report: dict | None = None,
    fuzz_report: dict | None = None,
    fleet_report: dict | None = None,
    *,
    timestamp: str,
    label: str = "manual",
) -> dict:
    """Build one history entry from full reports."""
    source: dict = {}
    if bench_report:
        source["quick"] = bool(bench_report.get("quick"))
        source["python"] = bench_report.get("python")
        source["platform"] = bench_report.get("platform")
    fuzz = _fuzz_source(fuzz_report)
    if fuzz:
        source["fuzz"] = fuzz
    fleet = _fleet_source(fleet_report)
    if fleet:
        source["fleet"] = fleet
    # A fuzz report produced with the speculative front-end attached
    # carries a "spec": true marker.  Spec-enabled runs pay for the
    # transient windows, so their numbers live in their own lane.
    if any((report or {}).get("spec")
           for report in (bench_report, fuzz_report, fleet_report)):
        source["spec"] = True
    return {
        "schema": HISTORY_SCHEMA,
        "schema_version": HISTORY_SCHEMA_VERSION,
        "timestamp": timestamp,
        "label": label,
        "source": source,
        "metrics": extract_metrics(bench_report, fuzz_report, fleet_report),
    }


def save_entry(entry: dict, directory) -> Path:
    """Write one entry as ``<timestamp>-<label>.json``; return the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stamp = entry["timestamp"].replace(":", "").replace("-", "")
    path = directory / f"{stamp}-{entry['label']}.json"
    path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
    return path


def load_history(directory) -> list[dict]:
    """Every history entry in a directory, oldest first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    entries = []
    for path in sorted(directory.glob("*.json")):
        document = json.loads(path.read_text())
        if document.get("schema") == HISTORY_SCHEMA:
            entries.append(document)
    entries.sort(key=lambda e: (e.get("timestamp", ""), e.get("label", "")))
    return entries


def _comparable(entry: dict, current: dict, metric: str) -> bool:
    """Does a history entry's run shape match the current one for
    this metric?"""
    source = entry.get("source", {})
    now = current.get("source", {})
    # Entries recorded with the speculative front-end enabled never
    # compare against plain ones (and vice versa); absent means plain.
    if bool(source.get("spec")) != bool(now.get("spec")):
        return False
    if metric.startswith("fuzz."):
        return source.get("fuzz") == now.get("fuzz") and now.get("fuzz")
    if metric.startswith("fleet."):
        return source.get("fleet") == now.get("fleet") and now.get("fleet")
    return source.get("quick") == now.get("quick")


def analyze(
    history: list[dict],
    current: dict,
    window: int = DEFAULT_WINDOW,
    min_history: int = DEFAULT_MIN_HISTORY,
) -> list[TrendFinding]:
    """Compare a current entry against the history; one finding per
    tracked metric present in the current entry."""
    findings = []
    for metric, tolerance in TRACKED_METRICS.items():
        value = current.get("metrics", {}).get(metric)
        if value is None:
            continue
        values = [
            entry["metrics"][metric]
            for entry in history
            if metric in entry.get("metrics", {})
            and _comparable(entry, current, metric)
        ][-window:]
        if len(values) < min_history:
            findings.append(TrendFinding(
                metric, "insufficient-history", value, None, None,
                len(values),
            ))
            continue
        mid = median(values)
        if metric in HIGHER_IS_WORSE:
            # Cost metric: the bound is a ceiling, tolerance absolute.
            bound = mid + tolerance
            if value > bound:
                status = "regression"
            elif value < mid * (1.0 - _IMPROVEMENT_BAND):
                status = "improving"
            else:
                status = "ok"
        else:
            bound = mid * (1.0 - tolerance)
            if value < bound:
                status = "regression"
            elif value > mid * (1.0 + _IMPROVEMENT_BAND):
                status = "improving"
            else:
                status = "ok"
        findings.append(TrendFinding(
            metric, status, value, mid, bound, len(values)
        ))
    return findings


def trend_failures(findings: list[TrendFinding]) -> list[str]:
    """Gate-style failure messages for every regressed metric."""
    return [
        f"{f.metric}: {f.current:.4g} "
        + (
            f"above trend ceiling {f.floor:.4g}"
            if f.metric in HIGHER_IS_WORSE
            else f"below trend floor {f.floor:.4g}"
        )
        + f" (median of last {f.window}: {f.median:.4g})"
        for f in findings
        if f.status == "regression"
    ]


def format_findings(findings: list[TrendFinding]) -> str:
    lines = []
    for f in findings:
        if f.median is None:
            lines.append(
                f"  {f.metric:45s} {f.current:>12.4g}  "
                f"(skipped: only {f.window} comparable entries)"
            )
        else:
            lines.append(
                f"  {f.metric:45s} {f.current:>12.4g}  "
                f"median {f.median:>12.4g}  bound {f.floor:>12.4g}  "
                f"{f.status}"
            )
    return "\n".join(lines) if lines else "  (no tracked metrics present)"


def _load_json(path):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.trend",
        description="Record/check benchmark trend history.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser(
        "record", help="append one history entry extracted from reports"
    )
    check = sub.add_parser(
        "check", help="compare current reports against the history"
    )
    for command in (record, check):
        command.add_argument("bench", nargs="?", default=None,
                             help="BENCH_interp.json (optional when "
                             "--fuzz-report is given)")
        command.add_argument("--history", required=True, metavar="DIR",
                             help="BENCH_history directory")
        command.add_argument("--fuzz-report", default=None, metavar="FILE",
                             help="fuzz campaign report for the coverage "
                             "metrics")
        command.add_argument("--fleet-report", default=None, metavar="FILE",
                             help="BENCH_fleet.json for the serving "
                             "throughput metrics")
    record.add_argument("--label", default="manual")
    record.add_argument("--timestamp", default=None,
                        help="ISO-8601 UTC override (default: now)")
    check.add_argument("--window", type=int, default=DEFAULT_WINDOW)
    check.add_argument("--min-history", type=int,
                       default=DEFAULT_MIN_HISTORY)
    check.add_argument("--inject-regression", type=float, default=None,
                       metavar="FACTOR",
                       help="scale current metrics by FACTOR before "
                       "checking (CI self-test of the failing path)")
    args = parser.parse_args(argv)

    bench = _load_json(args.bench) if args.bench else None
    fuzz = _load_json(args.fuzz_report) if args.fuzz_report else None
    fleet = _load_json(args.fleet_report) if args.fleet_report else None
    if bench is None and fuzz is None and fleet is None:
        parser.error("need a bench report, a --fuzz-report, a "
                     "--fleet-report, or any combination")

    if args.command == "record":
        timestamp = args.timestamp or (
            datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
        )
        entry = make_entry(
            bench, fuzz, fleet, timestamp=timestamp, label=args.label
        )
        path = save_entry(entry, args.history)
        print(f"recorded {len(entry['metrics'])} metric(s) -> {path}")
        return 0

    timestamp = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
    current = make_entry(
        bench, fuzz, fleet, timestamp=timestamp, label="current"
    )
    if args.inject_regression is not None:
        # Scale every metric toward its own regression direction: down
        # for throughput-style metrics, up for cost metrics.
        current["metrics"] = {
            name: (
                value / args.inject_regression
                if name in HIGHER_IS_WORSE and args.inject_regression
                else value * args.inject_regression
            )
            for name, value in current["metrics"].items()
        }
    history = load_history(args.history)
    findings = analyze(
        history, current, window=args.window, min_history=args.min_history
    )
    print(f"trend check against {len(history)} history entr"
          f"{'y' if len(history) == 1 else 'ies'} in {args.history}:")
    print(format_findings(findings))
    failures = trend_failures(findings)
    if failures:
        print("trend gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("trend gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

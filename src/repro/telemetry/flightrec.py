"""Crash flight recorder: the last N events before a process died.

Every fleet and fuzz worker keeps a :class:`FlightRecorder` — a
bounded ring buffer of recent telemetry events (batch receipts, job
lifecycle marks, and anything subscribed from a
:class:`~repro.telemetry.bus.TraceBus`).  The buffer costs one deque
append per event and never grows past ``limit``, so it is cheap enough
to stay on for every job served.

When the process dies abnormally the buffer becomes the post-mortem:

* an **injected or detected crash** writes the dump just before the
  process exits;
* a **SIGTERM** (the scheduler's timeout kill, a fuzz shard's
  wall-clock termination) triggers the handler installed by
  :func:`install_sigterm_dump`, which writes the dump and then dies
  with the original signal semantics.

Dumps are ``repro.telemetry/flightrec-1`` JSON documents written
atomically (tmp + rename) so a parent harvesting the spool directory
never reads a torn file.  The fleet scheduler attaches the dump to the
degraded job results of the dead worker; the fuzz driver attaches it
to the failed shard row.
"""

from __future__ import annotations

import json
import os
import signal
from collections import deque

__all__ = [
    "FLIGHTREC_SCHEMA",
    "DEFAULT_FLIGHT_LIMIT",
    "FlightRecorder",
    "install_sigterm_dump",
    "read_dump",
]

FLIGHTREC_SCHEMA = "repro.telemetry/flightrec-1"

#: Default ring size: enough to hold a few batches of job lifecycle
#: events, small enough that the dump stays a skim-size document.
DEFAULT_FLIGHT_LIMIT = 256


class FlightRecorder:
    """Bounded ring of recent events for one process."""

    def __init__(self, process: str, limit: int = DEFAULT_FLIGHT_LIMIT):
        if limit < 1:
            raise ValueError(f"need a positive ring limit, got {limit}")
        self.process = process
        self.limit = limit
        self.seen = 0
        self._ring: deque[dict] = deque(maxlen=limit)

    def __len__(self) -> int:
        return len(self._ring)

    def note(self, kind: str, cycle: int = 0, **fields) -> None:
        """Record one event (newest wins once the ring is full)."""
        self.seen += 1
        self._ring.append({
            "seq": self.seen, "kind": kind, "cycle": cycle, **fields,
        })

    def __call__(self, event) -> None:
        """Bus-subscriber form: record a structured telemetry event."""
        self.note(event.kind, event.cycle, **event.data)

    def attach(self, bus) -> None:
        """Subscribe to every structured kind of a trace bus."""
        from repro.telemetry.events import STRUCTURED_KINDS

        for kind in STRUCTURED_KINDS:
            bus.subscribe(kind, self)

    @property
    def dropped(self) -> int:
        return self.seen - len(self._ring)

    def dump(self, reason: str) -> dict:
        """The post-mortem document: the last ``limit`` events."""
        return {
            "schema": FLIGHTREC_SCHEMA,
            "process": self.process,
            "reason": reason,
            "limit": self.limit,
            "seen": self.seen,
            "dropped": self.dropped,
            "events": list(self._ring),
        }

    def write(self, path, reason: str) -> None:
        """Atomically write the dump (tmp + rename) to ``path``."""
        path = os.fspath(path)
        blob = json.dumps(self.dump(reason), indent=2, sort_keys=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(blob + "\n")
        os.replace(tmp, path)


def install_sigterm_dump(
    recorder: FlightRecorder, path, exit_code: int = 143
) -> None:
    """Write the flight dump when this process receives SIGTERM.

    The handler records the termination itself, writes the dump, and
    exits via ``os._exit`` — a terminated worker must die promptly, not
    unwind through arbitrary frames with a half-served batch.  143 is
    the conventional 128+SIGTERM status.
    """

    def on_sigterm(signum, frame):
        recorder.note("signal.sigterm")
        try:
            recorder.write(path, "sigterm")
        finally:
            os._exit(exit_code)

    signal.signal(signal.SIGTERM, on_sigterm)


def read_dump(path) -> dict | None:
    """Load a dump if present and parseable; ``None`` otherwise.

    Harvesting is best-effort by design: a worker that died before its
    handler ran (SIGKILL, a genuine segfault) leaves no dump, and the
    parent must carry on regardless.
    """
    try:
        with open(os.fspath(path), encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None

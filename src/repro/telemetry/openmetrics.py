"""OpenMetrics/Prometheus text exposition for metrics snapshots.

:func:`render_openmetrics` turns any ``repro.telemetry/metrics-1``
document — a single process's registry or the fleet-wide rollup — into
deterministic OpenMetrics text: families sorted by name, label sets
sorted, histogram buckets cumulative, terminated by ``# EOF``.  Two
identical snapshots render byte-identically, which is what lets CI
golden-file-diff the format.

Mapping from the registry's metric types:

* **counters** → ``<name>_total`` counter samples;
* **numeric gauges** → gauge samples (booleans render as 0/1);
* **string gauges** → ``<name>_info{value="..."} 1`` info samples;
* **histograms** → cumulative ``_bucket{le=...}`` series plus
  ``_sum``/``_count`` (the registry's power-of-two buckets become the
  ``le`` bounds; ``+Inf`` closes the series).

Dotted metric names sanitize to ``[a-zA-Z0-9_]`` with an optional
prefix, so ``fleet.jobs.ok`` scrapes as ``repro_fleet_jobs_ok_total``.

:class:`MetricsServer` serves the text live: a daemon-thread HTTP
server with three endpoints —

* ``/metrics``  — the OpenMetrics rendering of a fresh snapshot;
* ``/healthz``  — a JSON health report (queue depth, worker liveness,
  requeue counts — whatever the snapshot callable supplies);
* ``/readyz``   — 200 when the health report says ``ready``, 503
  otherwise (load-balancer style readiness).

``python -m repro.fleet serve --metrics-port`` runs one next to the
scheduler loop so a drain can be watched from outside the process.
"""

from __future__ import annotations

import json
import re
import threading

__all__ = [
    "MetricsServer",
    "render_openmetrics",
    "validate_openmetrics_text",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_][a-zA-Z0-9_]*(\{[^{}]*\})? -?[0-9.+eEinf]+$"
)


def _metric_name(name: str, prefix: str) -> str:
    flat = _NAME_RE.sub("_", name)
    if prefix:
        flat = f"{prefix}_{flat}"
    if not flat[0].isalpha() and flat[0] != "_":
        flat = f"_{flat}"
    return flat


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def render_openmetrics(document: dict, prefix: str = "repro") -> str:
    """Deterministic OpenMetrics text for a ``metrics-1`` document."""
    lines: list[str] = []

    for name, value in sorted(document.get("counters", {}).items()):
        flat = _metric_name(name, prefix)
        lines.append(f"# TYPE {flat} counter")
        lines.append(f"{flat}_total {_format_value(value)}")

    for name, value in sorted(document.get("gauges", {}).items()):
        flat = _metric_name(name, prefix)
        if value is None:
            continue
        if isinstance(value, (int, float)):
            lines.append(f"# TYPE {flat} gauge")
            lines.append(f"{flat} {_format_value(value)}")
        else:
            lines.append(f"# TYPE {flat}_info info")
            lines.append(
                f'{flat}_info{{value="{_escape_label(value)}"}} 1'
            )

    for name, histogram in sorted(document.get("histograms", {}).items()):
        flat = _metric_name(name, prefix)
        lines.append(f"# TYPE {flat} histogram")
        buckets = histogram.get("buckets", {})
        bounds = sorted(
            (int(key[3:]), count) for key, count in buckets.items()
        )
        cumulative = 0
        for bound, count in bounds:
            cumulative += count
            lines.append(f'{flat}_bucket{{le="{bound}"}} {cumulative}')
        lines.append(
            f'{flat}_bucket{{le="+Inf"}} {histogram.get("count", 0)}'
        )
        lines.append(f"{flat}_sum {_format_value(histogram.get('sum', 0))}")
        lines.append(f"{flat}_count {histogram.get('count', 0)}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def validate_openmetrics_text(text: str) -> list[str]:
    """Grammar-check exposition text; a problem list, empty = valid.

    Checks the line grammar (``name{labels} value`` or ``# ...``
    comments), that every sample's family was declared with a ``TYPE``
    line first, and that the document terminates with ``# EOF``.
    """
    problems: list[str] = []
    if not text.endswith("# EOF\n") and text.strip() != "# EOF":
        problems.append("document does not terminate with '# EOF'")
    declared: set[str] = set()
    for number, line in enumerate(text.splitlines(), start=1):
        if not line:
            problems.append(f"line {number}: empty line")
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 3 and parts[1] == "TYPE":
                declared.add(parts[2])
            continue
        if not _SAMPLE_RE.match(line):
            problems.append(f"line {number}: malformed sample {line!r}")
            continue
        family = line.split("{")[0].split(" ")[0]
        candidates = {family}
        for suffix in ("_total", "_bucket", "_sum", "_count", "_info"):
            if family.endswith(suffix):
                candidates.add(family[: -len(suffix)])
        if not candidates & declared:
            problems.append(
                f"line {number}: sample {family!r} has no TYPE declaration"
            )
    return problems


class MetricsServer:
    """Daemon-thread HTTP exposition for live metrics + health.

    ``snapshot`` is a zero-argument callable returning
    ``(metrics_document, health_dict)``; it is invoked per request, so
    scrapes always see current state.  ``port=0`` binds an ephemeral
    port (read :attr:`port` after :meth:`start`).
    """

    def __init__(self, snapshot, port: int = 0, host: str = "127.0.0.1"):
        self._snapshot = snapshot
        self._requested_port = port
        self._host = host
        self._httpd = None
        self._thread = None
        self.port: int | None = None

    def start(self) -> int:
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        snapshot = self._snapshot

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):  # silence per-request noise
                pass

            def _send(self, status: int, body: str, content_type: str):
                payload = body.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def do_GET(self):
                try:
                    metrics, health = snapshot()
                except Exception as error:  # noqa: BLE001 — report, don't die
                    self._send(
                        500, f"snapshot failed: {error}\n", "text/plain"
                    )
                    return
                if self.path == "/metrics":
                    self._send(
                        200,
                        render_openmetrics(metrics),
                        "application/openmetrics-text; version=1.0.0; "
                        "charset=utf-8",
                    )
                elif self.path == "/healthz":
                    self._send(
                        200,
                        json.dumps(health, indent=2, sort_keys=True) + "\n",
                        "application/json",
                    )
                elif self.path == "/readyz":
                    ready = bool(health.get("ready"))
                    self._send(
                        200 if ready else 503,
                        ("ready" if ready else "not ready") + "\n",
                        "text/plain",
                    )
                else:
                    self._send(404, "unknown path\n", "text/plain")

        self._httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), Handler
        )
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(5)
            self._thread = None

"""Module-level telemetry sink for code without a machine reference.

The snapshot subsystem operates *on* machines from the outside
(:func:`repro.snapshot.capture.capture` is a free function), so it
cannot carry a per-instance ``trace_hook`` attribute the way the CLB or
block cache do.  Instead it calls :func:`emit` here, which is a no-op
until a :class:`~repro.telemetry.tracer.Telemetry` installs a sink for
the duration of its attachment.

``set_sink`` returns the previous sink so nested attachments restore
correctly (last attached wins while it is active).
"""

from __future__ import annotations

__all__ = ["set_sink", "clear_sink", "emit", "active"]

_sink = None


def set_sink(fn):
    """Install ``fn(kind, fields_dict)`` as the sink; return the old one."""
    global _sink
    previous = _sink
    _sink = fn
    return previous


def clear_sink(previous=None) -> None:
    """Remove the sink (or restore ``previous``)."""
    global _sink
    _sink = previous


def active() -> bool:
    return _sink is not None


def emit(kind: str, **fields) -> None:
    if _sink is not None:
        _sink(kind, fields)

"""The :class:`Telemetry` facade: attach/detach one machine's telemetry.

One object owns the three layers of the subsystem for one machine:

* the **trace bus** plus a bounded :class:`TraceRecorder` (``trace``);
* the **metrics registry**, fed live from bus events (trap/syscall
  cycle histograms, compile-time histograms) and backfilled from the
  machine's own statistics blocks at collection time (``metrics``);
* the **profiler** on the raw instruction plane (``profile``).

``attach`` wires the hook fabric into every producer — hart dispatch,
block cache, CLB, crypto engine, key CSRs, snapshot sink, and (when a
kernel image is supplied) the kernel probe.  ``detach`` restores every
producer to its pristine, zero-overhead state.  Attachment never
mutates architectural state: the only side effect is a block-cache
flush, which is architecture-neutral by the fast path's equivalence
contract.
"""

from __future__ import annotations

from repro.telemetry import events as ev
from repro.telemetry import hooks as snapshot_hooks
from repro.telemetry.bus import DEFAULT_RECORD_LIMIT, TraceBus, TraceRecorder
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profile import Profiler

__all__ = ["Telemetry"]

_CLB_KINDS = (
    ev.CLB_ENC_HIT,
    ev.CLB_ENC_MISS,
    ev.CLB_DEC_HIT,
    ev.CLB_DEC_MISS,
    ev.CLB_EVICT,
    ev.CLB_INVALIDATE,
)
_ENGINE_KINDS = (ev.CRYPTO_OP, ev.CRYPTO_FAULT)
_BLOCK_KINDS = (
    ev.BLOCK_COMPILE,
    ev.BLOCK_HIT,
    ev.BLOCK_INVALIDATE,
    ev.BLOCK_FLUSH,
    ev.BLOCK_EVICT,
    ev.BLOCK_JIT,
)
_SPEC_KINDS = ev.SPEC_KINDS


class Telemetry:
    """Tracing, metrics and profiling for one attached machine."""

    def __init__(
        self,
        trace: bool = True,
        profile: bool = True,
        metrics: bool = True,
        record_limit: int = DEFAULT_RECORD_LIMIT,
    ):
        self.bus = TraceBus()
        self.recorder = TraceRecorder(record_limit) if trace else None
        self.registry = MetricsRegistry() if metrics else None
        self.profiler = Profiler() if profile else None
        self.probe = None
        self._machine = None
        self._image = None
        self._previous_sink = None
        self._open_traps: list = []

    @property
    def attached(self) -> bool:
        return self._machine is not None

    # -- lifecycle ---------------------------------------------------------

    def attach(self, machine, image=None) -> "Telemetry":
        if self.attached:
            raise RuntimeError("telemetry is already attached to a machine")
        self._machine = machine
        self._image = image
        bus = self.bus
        hart = machine.hart

        # All subscriptions first: the hart inspects bus.wants(...) at
        # attach time to decide what to instrument.
        if self.registry is not None:
            bus.subscribe(ev.TRAP_ENTER, self._metric_trap_enter)
            bus.subscribe(ev.TRAP_EXIT, self._metric_trap_exit)
            bus.subscribe(ev.SYSCALL_ENTER, self._metric_syscall_enter)
            bus.subscribe(ev.SYSCALL_EXIT, self._metric_syscall_exit)
            bus.subscribe(ev.BLOCK_COMPILE, self._metric_block_compile)
            for kind in ev.STRUCTURED_KINDS:
                bus.subscribe(kind, self._metric_any)
        if self.recorder is not None:
            for kind in ev.STRUCTURED_KINDS:
                bus.subscribe(kind, self.recorder)
        if self.profiler is not None:
            bus.subscribe(ev.INSN_RETIRE, self.profiler.on_insn)
        if image is not None and bus.wants_any(
            (ev.TRAP_ENTER, ev.TRAP_EXIT)
        ):
            from repro.telemetry.kernelprobe import KernelProbe

            self.probe = KernelProbe(bus, machine, image)

        # Producer wiring, cheapest-possible guards when not wanted.
        hook = bus.make_hook(lambda: hart.cycles)
        if bus.wants_any(_CLB_KINDS):
            machine.engine.clb.trace_hook = hook
        if bus.wants_any(_ENGINE_KINDS):
            machine.engine.trace_hook = hook
        if bus.wants_any(_BLOCK_KINDS):
            hart.blocks.trace_hook = hook
        if hart.spec is not None and bus.wants_any(_SPEC_KINDS):
            # A speculative engine attached *before* telemetry gets its
            # events cycle-stamped onto the same bus; one attached later
            # installs its own hook (see repro.machine.spec).
            hart.spec.trace_hook = hook
        if bus.wants(ev.KEY_WRITE):
            def key_hook(ksel, half):
                bus.emit(
                    ev.KEY_WRITE,
                    hart.cycles,
                    ksel=int(ksel),
                    half="hi" if half else "lo",
                )

            hart.csrs.key_write_hook = key_hook
        if bus.wants_any(
            (ev.SNAPSHOT_CAPTURE, ev.SNAPSHOT_RESTORE, ev.SNAPSHOT_FORK)
        ):
            self._previous_sink = snapshot_hooks.set_sink(
                lambda kind, fields: bus.emit(kind, hart.cycles, **fields)
            )
        hart.attach_tracer(bus)
        return self

    def detach(self) -> None:
        if not self.attached:
            return
        machine = self._machine
        hart = machine.hart
        hart.detach_tracer()
        machine.engine.clb.trace_hook = None
        machine.engine.trace_hook = None
        hart.blocks.trace_hook = None
        hart.csrs.key_write_hook = None
        if hart.spec is not None:
            hart.spec.trace_hook = None
        if self._previous_sink is not None or snapshot_hooks.active():
            snapshot_hooks.clear_sink(self._previous_sink)
            self._previous_sink = None
        if self.registry is not None:
            self.collect()
        self._machine = None

    # -- live metric feeders ----------------------------------------------

    @staticmethod
    def _trap_key(data: dict) -> str:
        suffix = "i" if data["interrupt"] else ""
        return f"{data['cause']}{suffix}"

    def _metric_any(self, event) -> None:
        self.registry.inc(f"events.{event.kind}")

    def _metric_trap_enter(self, event) -> None:
        key = self._trap_key(event.data)
        self.registry.inc(f"trap.cause.{key}.count")
        self._open_traps.append((key, event.cycle))

    def _metric_trap_exit(self, event) -> None:
        if self._open_traps:
            key, enter_cycle = self._open_traps.pop()
            self.registry.observe(
                f"trap.cause.{key}.cycles", event.cycle - enter_cycle
            )

    def _metric_syscall_enter(self, event) -> None:
        self.registry.inc(f"syscall.{event.data['name']}.count")

    def _metric_syscall_exit(self, event) -> None:
        self.registry.observe(
            f"syscall.{event.data['name']}.cycles", event.data["cycles"]
        )

    def _metric_block_compile(self, event) -> None:
        self.registry.observe("block.compile_ns", event.data["ns"])

    # -- collection --------------------------------------------------------

    def collect(self) -> None:
        """Backfill stats-derived metrics from the attached machine.

        Idempotent: counters mirrored from component statistics are
        *set*, not incremented, so repeated collection cannot double
        count.
        """
        registry = self.registry
        machine = self._machine
        if registry is None or machine is None:
            return
        hart = machine.hart
        clb = machine.engine.clb.stats
        engine = machine.engine.stats
        blocks = hart.blocks

        def mirror(name: str, value: int) -> None:
            registry.counter(name).value = value

        mirror("clb.enc.hits", clb.enc_hits)
        mirror("clb.enc.misses", clb.enc_misses)
        mirror("clb.dec.hits", clb.dec_hits)
        mirror("clb.dec.misses", clb.dec_misses)
        mirror("clb.invalidations", clb.invalidations)
        mirror("clb.evictions", clb.evictions)
        registry.set("clb.hit_ratio", clb.hit_ratio)
        mirror("crypto.encryptions", engine.encryptions)
        mirror("crypto.decryptions", engine.decryptions)
        mirror("crypto.integrity_faults", engine.integrity_faults)
        mirror("crypto.cycles", engine.cycles)
        for ksel, count in engine.per_key.items():
            letter = getattr(ksel, "letter", str(ksel))
            mirror(f"crypto.per_key.{letter}", count)
        mirror("block.hits", blocks.hits)
        mirror("block.misses", blocks.misses)
        mirror("block.translations", blocks.translations)
        mirror("block.invalidated", blocks.invalidated_blocks)
        mirror("block.flushes", blocks.flushes)
        mirror("block.evictions", blocks.evictions)
        mirror("block.compiled", hart.compiled_blocks)
        memo = machine.engine.memo
        mirror("crypto.memo.hits", memo.hits)
        mirror("crypto.memo.misses", memo.misses)
        registry.set("hart.cycles", hart.cycles)
        registry.set("hart.instret", hart.instret)
        if self.recorder is not None:
            registry.set("telemetry.events.recorded", len(self.recorder))
            registry.set("telemetry.events.dropped", self.recorder.dropped)
        if self.profiler is not None:
            registry.set("telemetry.profile.samples", self.profiler.total)

    # -- exports -----------------------------------------------------------

    def metrics_json(self) -> dict:
        if self.registry is None:
            raise RuntimeError("metrics plane is disabled")
        if self.attached:
            self.collect()
        return self.registry.to_json()

    def events_json(self) -> dict:
        if self.recorder is None:
            raise RuntimeError("trace plane is disabled")
        return self.recorder.to_json()

    def chrome_trace(self) -> dict:
        from repro.telemetry.chrometrace import chrome_trace

        if self.recorder is None:
            raise RuntimeError("trace plane is disabled")
        return chrome_trace(self.recorder.events)

    def symbol_table(self):
        """Symbols of the attached image (kernel + user), or None."""
        if self._image is None:
            return None
        from repro.machine.debug import SymbolTable

        table = SymbolTable()
        table.add_all(self._image.kernel_program.symbols)
        table.add_all(self._image.user_program.symbols)
        return table

    def flat_profile(self, top: int = 30) -> str:
        if self.profiler is None:
            raise RuntimeError("profile plane is disabled")
        return self.profiler.format_flat(self.symbol_table(), top=top)

    def profile_json(self, top: int | None = None) -> dict:
        if self.profiler is None:
            raise RuntimeError("profile plane is disabled")
        return self.profiler.to_json(self.symbol_table(), top=top)

"""Transient-leakage analyzer over the speculative trace plane.

Consumes the ``spec.*`` events a :class:`repro.machine.spec.
SpeculativeEngine` emits onto the trace bus and turns *tainted
transient* operations into findings, MAMBO-V style: an architectural
access to a secret is legitimate, but a **transient** operation whose
address, branch condition or crypto operand depends on secret data is
a side channel — its cache/BTB footprint survives the squash.

Finding kinds:

* ``transient-secret-load`` / ``transient-secret-store`` — a transient
  memory access whose *address* is tainted (the classic Spectre
  dead-drop: the address encodes the secret).
* ``secret-dependent-branch`` — a transient branch or indirect jump
  steered by tainted data (secret-dependent PC sequence).
* ``transient-key-csr-read`` — hardware *forwarded* a key CSR half
  inside a transient window.  RegVault's write-only key registers gate
  the read before any forward, so this fires only against the naive
  hardware model; blocked probe attempts are counted separately.
* ``secret-keyed-crypto`` — a transient ``cre``/``crd`` whose operand
  or tweak is tainted (a CLB lookup keyed on protected data; the CLB
  hit/miss timing difference is the channel).

A trace with **zero findings** is *clean*: windows may open and squash
freely — misprediction alone leaks nothing in this model — only
secret-dependence is flagged.  The negative analyzer test holds the
constant-time baseline workload to exactly that standard.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.events import (
    SPEC_BRANCH,
    SPEC_CRYPTO,
    SPEC_CSR_READ,
    SPEC_KINDS,
    SPEC_LOAD,
    SPEC_SQUASH,
    SPEC_STORE,
    SPEC_WINDOW,
)

__all__ = ["LEAKAGE_SCHEMA", "LeakageFinding", "LeakageAnalyzer"]

LEAKAGE_SCHEMA = "repro.telemetry/leakage-1"


@dataclass
class LeakageFinding:
    """One distinct (kind, pc) leak site aggregated over all windows."""

    kind: str
    pc: int
    window: int  # first window the site was observed in
    count: int = 1
    detail: str = ""

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "pc": self.pc,
            "window": self.window,
            "count": self.count,
            "detail": self.detail,
        }


class LeakageAnalyzer:
    """Aggregate ``spec.*`` events into a leakage report.

    Use either live (``analyzer.subscribe(bus)`` before the run) or
    post-hoc (``analyzer.analyze(recorder.events)``).
    """

    def __init__(self) -> None:
        self.windows = 0
        self.transient_instructions = 0
        #: Transient key-CSR reads the hardware refused to forward.
        self.blocked_key_csr_reads = 0
        self._findings: dict[tuple[str, int], LeakageFinding] = {}

    # -- ingestion ---------------------------------------------------------

    def subscribe(self, bus) -> "LeakageAnalyzer":
        for kind in SPEC_KINDS:
            bus.subscribe(kind, self.observe)
        return self

    def analyze(self, events) -> "LeakageAnalyzer":
        for event in events:
            self.observe(event)
        return self

    def observe(self, event) -> None:
        kind = event.kind
        data = event.data
        if kind == SPEC_WINDOW:
            self.windows += 1
        elif kind == SPEC_SQUASH:
            self.transient_instructions += data["executed"]
        elif kind in (SPEC_LOAD, SPEC_STORE):
            if data["tainted"]:
                access = "load" if kind == SPEC_LOAD else "store"
                self._record(
                    f"transient-secret-{access}", data["pc"], data["window"],
                    f"transient {access} address {data['address']:#x} "
                    "depends on secret data",
                )
        elif kind == SPEC_BRANCH:
            if data["tainted"]:
                self._record(
                    "secret-dependent-branch", data["pc"], data["window"],
                    "transient control flow steered by secret data",
                )
        elif kind == SPEC_CSR_READ:
            if data["key"] and data["forwarded"]:
                self._record(
                    "transient-key-csr-read", data["pc"], data["window"],
                    f"key CSR {data['csr']:#x} forwarded inside a "
                    "transient window",
                )
            elif data["key"]:
                self.blocked_key_csr_reads += 1
        elif kind == SPEC_CRYPTO:
            if data["tainted"]:
                self._record(
                    "secret-keyed-crypto", data["pc"], data["window"],
                    f"transient {data['op']} on ksel {data['ksel']} with "
                    f"secret-derived operand (clb hit={data['hit']})",
                )

    def _record(self, kind: str, pc: int, window: int, detail: str) -> None:
        key = (kind, pc)
        finding = self._findings.get(key)
        if finding is None:
            self._findings[key] = LeakageFinding(kind, pc, window,
                                                 detail=detail)
        else:
            finding.count += 1

    # -- results -----------------------------------------------------------

    @property
    def findings(self) -> list[LeakageFinding]:
        return sorted(
            self._findings.values(), key=lambda f: (f.kind, f.pc)
        )

    @property
    def clean(self) -> bool:
        return not self._findings

    def report(self) -> dict:
        findings = self.findings
        return {
            "schema": LEAKAGE_SCHEMA,
            "windows": self.windows,
            "transient_instructions": self.transient_instructions,
            "blocked": {"key_csr_reads": self.blocked_key_csr_reads},
            "findings": [finding.to_json() for finding in findings],
            "clean": not findings,
        }

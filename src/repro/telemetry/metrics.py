"""Hierarchical metrics registry: counters, gauges, histograms.

Metric names are dotted paths (``clb.enc.hits``,
``syscall.getppid.count``, ``trap.cause.8.cycles``) so consumers can
filter by prefix.  The JSON export (:data:`METRICS_SCHEMA`) is stable:
keys are emitted sorted, histograms use power-of-two bucket upper
bounds, and no wall-clock or environment data sneaks in — two runs
producing the same counters serialize byte-identically.
"""

from __future__ import annotations

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "METRICS_SCHEMA"]

METRICS_SCHEMA = "repro.telemetry/metrics-1"


class Counter:
    """Monotonic count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, delta: int = 1) -> None:
        self.value += delta

    def to_json(self):
        return self.value


class Gauge:
    """Last-set value (may be any JSON scalar)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = None

    def set(self, value) -> None:
        self.value = value

    def to_json(self):
        return self.value


class Histogram:
    """Distribution with power-of-two buckets.

    A sample ``v`` lands in the bucket whose upper bound is the smallest
    power of two ``>= max(v, 1)``; non-positive samples land in the
    first bucket.  Exports count/sum/min/max plus the sparse bucket map
    keyed ``le_<bound>``.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self.buckets: dict[int, int] = {}

    def observe(self, value) -> None:
        value = int(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bound = 1
        positive = max(value, 1)
        while bound < positive:
            bound <<= 1
        self.buckets[bound] = self.buckets.get(bound, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_json(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {
                f"le_{bound}": count
                for bound, count in sorted(self.buckets.items())
            },
        }


class MetricsRegistry:
    """Named metrics with lazy creation and a stable JSON export."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- write side --------------------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def inc(self, name: str, delta: int = 1) -> None:
        self.counter(name).inc(delta)

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def set(self, name: str, value) -> None:
        self.gauge(name).set(value)

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram()
        return metric

    def observe(self, name: str, value) -> None:
        self.histogram(name).observe(value)

    # -- read side ---------------------------------------------------------

    def counter_value(self, name: str) -> int:
        metric = self._counters.get(name)
        return metric.value if metric is not None else 0

    def names(self) -> list[str]:
        return sorted(
            set(self._counters) | set(self._gauges) | set(self._histograms)
        )

    def to_json(self) -> dict:
        return {
            "schema": METRICS_SCHEMA,
            "counters": {
                name: metric.to_json()
                for name, metric in sorted(self._counters.items())
            },
            "gauges": {
                name: metric.to_json()
                for name, metric in sorted(self._gauges.items())
            },
            "histograms": {
                name: metric.to_json()
                for name, metric in sorted(self._histograms.items())
            },
        }

"""Validators for the telemetry export formats.

Each validator returns a list of problem strings — empty means valid.
CI runs :func:`validate_chrome_trace` against the traced-workload
artifact; the unit tests run all three against fresh exports.
"""

from __future__ import annotations

from repro.telemetry.events import EVENT_SCHEMA
from repro.telemetry.metrics import METRICS_SCHEMA

__all__ = [
    "validate_events",
    "validate_chrome_trace",
    "validate_metrics",
    "validate_leakage",
]

_PHASES_NEEDING_DUR = {"X"}
_KNOWN_PHASES = {"X", "B", "E", "i", "I", "C", "M"}


def _check_payload(kind: str, payload: dict, where: str) -> list[str]:
    required = EVENT_SCHEMA.get(kind)
    if required is None:
        return [f"{where}: unknown event kind {kind!r}"]
    return [
        f"{where}: kind {kind!r} missing required field {field!r}"
        for field in required
        if field not in payload
    ]


def validate_events(document: dict) -> list[str]:
    """Validate a ``TraceRecorder.to_json()`` document."""
    problems: list[str] = []
    if document.get("schema") != "repro.telemetry/events-1":
        problems.append(f"bad schema id {document.get('schema')!r}")
    events = document.get("events")
    if not isinstance(events, list):
        return problems + ["'events' is not a list"]
    for index, event in enumerate(events):
        where = f"events[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        kind = event.get("kind")
        if not isinstance(kind, str):
            problems.append(f"{where}: missing 'kind'")
            continue
        if not isinstance(event.get("cycle"), int):
            problems.append(f"{where}: missing integer 'cycle'")
        problems.extend(_check_payload(kind, event, where))
    return problems


def validate_chrome_trace(document: dict) -> list[str]:
    """Validate a Trace Event Format document and its event payloads."""
    problems: list[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' is not a list"]
    if not events:
        problems.append("'traceEvents' is empty")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing 'name'")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append(f"{where}: missing integer {field!r}")
        if phase == "M":
            continue  # metadata events carry no timestamp
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"{where}: missing numeric 'ts'")
        if phase in _PHASES_NEEDING_DUR:
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: 'X' span needs dur >= 0")
        args = event.get("args")
        if isinstance(args, dict):
            kind = args.get("kind")
            if isinstance(kind, str) and not kind.startswith("counter."):
                problems.extend(_check_payload(kind, args, where))
    return problems


_FINDING_KINDS = {
    "transient-secret-load",
    "transient-secret-store",
    "secret-dependent-branch",
    "transient-key-csr-read",
    "secret-keyed-crypto",
}


def validate_leakage(document: dict) -> list[str]:
    """Validate a ``LeakageAnalyzer.report()`` document."""
    from repro.telemetry.leakage import LEAKAGE_SCHEMA

    problems: list[str] = []
    if document.get("schema") != LEAKAGE_SCHEMA:
        problems.append(f"bad schema id {document.get('schema')!r}")
    for field in ("windows", "transient_instructions"):
        value = document.get(field)
        if not isinstance(value, int) or value < 0:
            problems.append(f"'{field}' is not a non-negative integer")
    blocked = document.get("blocked")
    if not isinstance(blocked, dict) or not isinstance(
        blocked.get("key_csr_reads"), int
    ):
        problems.append("'blocked.key_csr_reads' is not an integer")
    findings = document.get("findings")
    if not isinstance(findings, list):
        return problems + ["'findings' is not a list"]
    for index, finding in enumerate(findings):
        where = f"findings[{index}]"
        if not isinstance(finding, dict):
            problems.append(f"{where}: not an object")
            continue
        if finding.get("kind") not in _FINDING_KINDS:
            problems.append(
                f"{where}: unknown finding kind {finding.get('kind')!r}"
            )
        for field in ("pc", "window", "count"):
            if not isinstance(finding.get(field), int):
                problems.append(f"{where}: missing integer {field!r}")
        if not isinstance(finding.get("detail"), str):
            problems.append(f"{where}: missing 'detail'")
    if document.get("clean") is not (len(findings) == 0):
        problems.append("'clean' flag inconsistent with findings list")
    return problems


def validate_metrics(document: dict) -> list[str]:
    """Validate a ``MetricsRegistry.to_json()`` document."""
    problems: list[str] = []
    if document.get("schema") != METRICS_SCHEMA:
        problems.append(f"bad schema id {document.get('schema')!r}")
    for section in ("counters", "gauges", "histograms"):
        table = document.get(section)
        if not isinstance(table, dict):
            problems.append(f"'{section}' is not an object")
            continue
        for name in table:
            if not isinstance(name, str) or not name:
                problems.append(f"{section}: bad metric name {name!r}")
    counters = document.get("counters")
    if isinstance(counters, dict):
        for name, value in counters.items():
            if not isinstance(value, int) or value < 0:
                problems.append(
                    f"counters.{name}: not a non-negative integer"
                )
    histograms = document.get("histograms")
    if isinstance(histograms, dict):
        for name, hist in histograms.items():
            if not isinstance(hist, dict):
                problems.append(f"histograms.{name}: not an object")
                continue
            for field in ("count", "sum", "buckets"):
                if field not in hist:
                    problems.append(f"histograms.{name}: missing {field!r}")
            buckets = hist.get("buckets")
            if isinstance(buckets, dict):
                total = sum(buckets.values())
                if total != hist.get("count"):
                    problems.append(
                        f"histograms.{name}: bucket sum {total} != "
                        f"count {hist.get('count')}"
                    )
    return problems

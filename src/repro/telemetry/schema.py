"""Validators for the telemetry export formats.

Each validator returns a list of problem strings — empty means valid.
CI runs :func:`validate_chrome_trace` against the traced-workload
artifact; the unit tests run all three against fresh exports.
"""

from __future__ import annotations

from repro.telemetry.events import EVENT_SCHEMA
from repro.telemetry.metrics import METRICS_SCHEMA

__all__ = [
    "validate_events",
    "validate_chrome_trace",
    "validate_metrics",
    "validate_leakage",
    "validate_profile",
    "validate_spans",
    "validate_flightrec",
]

_PHASES_NEEDING_DUR = {"X"}
_KNOWN_PHASES = {"X", "B", "E", "i", "I", "C", "M"}


def _check_payload(kind: str, payload: dict, where: str) -> list[str]:
    required = EVENT_SCHEMA.get(kind)
    if required is None:
        return [f"{where}: unknown event kind {kind!r}"]
    return [
        f"{where}: kind {kind!r} missing required field {field!r}"
        for field in required
        if field not in payload
    ]


def validate_events(document: dict) -> list[str]:
    """Validate a ``TraceRecorder.to_json()`` document."""
    problems: list[str] = []
    if document.get("schema") != "repro.telemetry/events-1":
        problems.append(f"bad schema id {document.get('schema')!r}")
    events = document.get("events")
    if not isinstance(events, list):
        return problems + ["'events' is not a list"]
    for index, event in enumerate(events):
        where = f"events[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        kind = event.get("kind")
        if not isinstance(kind, str):
            problems.append(f"{where}: missing 'kind'")
            continue
        if not isinstance(event.get("cycle"), int):
            problems.append(f"{where}: missing integer 'cycle'")
        problems.extend(_check_payload(kind, event, where))
    return problems


def validate_chrome_trace(document: dict) -> list[str]:
    """Validate a Trace Event Format document and its event payloads."""
    problems: list[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' is not a list"]
    if not events:
        problems.append("'traceEvents' is empty")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing 'name'")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append(f"{where}: missing integer {field!r}")
        if phase == "M":
            continue  # metadata events carry no timestamp
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"{where}: missing numeric 'ts'")
        if phase in _PHASES_NEEDING_DUR:
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: 'X' span needs dur >= 0")
        args = event.get("args")
        if isinstance(args, dict):
            kind = args.get("kind")
            if isinstance(kind, str) and not kind.startswith("counter."):
                problems.extend(_check_payload(kind, args, where))
    return problems


_FINDING_KINDS = {
    "transient-secret-load",
    "transient-secret-store",
    "secret-dependent-branch",
    "transient-key-csr-read",
    "secret-keyed-crypto",
}


def validate_leakage(document: dict) -> list[str]:
    """Validate a ``LeakageAnalyzer.report()`` document."""
    from repro.telemetry.leakage import LEAKAGE_SCHEMA

    problems: list[str] = []
    if document.get("schema") != LEAKAGE_SCHEMA:
        problems.append(f"bad schema id {document.get('schema')!r}")
    for field in ("windows", "transient_instructions"):
        value = document.get(field)
        if not isinstance(value, int) or value < 0:
            problems.append(f"'{field}' is not a non-negative integer")
    blocked = document.get("blocked")
    if not isinstance(blocked, dict) or not isinstance(
        blocked.get("key_csr_reads"), int
    ):
        problems.append("'blocked.key_csr_reads' is not an integer")
    findings = document.get("findings")
    if not isinstance(findings, list):
        return problems + ["'findings' is not a list"]
    for index, finding in enumerate(findings):
        where = f"findings[{index}]"
        if not isinstance(finding, dict):
            problems.append(f"{where}: not an object")
            continue
        if finding.get("kind") not in _FINDING_KINDS:
            problems.append(
                f"{where}: unknown finding kind {finding.get('kind')!r}"
            )
        for field in ("pc", "window", "count"):
            if not isinstance(finding.get(field), int):
                problems.append(f"{where}: missing integer {field!r}")
        if not isinstance(finding.get("detail"), str):
            problems.append(f"{where}: missing 'detail'")
    if document.get("clean") is not (len(findings) == 0):
        problems.append("'clean' flag inconsistent with findings list")
    return problems


def validate_profile(document: dict) -> list[str]:
    """Validate a ``Profiler.to_json()`` document."""
    problems: list[str] = []
    if document.get("schema") != "repro.telemetry/profile-1":
        problems.append(f"bad schema id {document.get('schema')!r}")
    for field in ("total_instructions", "distinct_pcs"):
        value = document.get(field)
        if not isinstance(value, int) or value < 0:
            problems.append(f"'{field}' is not a non-negative integer")
    rows = document.get("rows")
    if not isinstance(rows, list):
        return problems + ["'rows' is not a list"]
    for index, row in enumerate(rows):
        where = f"rows[{index}]"
        if not isinstance(row, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(row.get("symbol"), str):
            problems.append(f"{where}: missing 'symbol'")
        for field in ("count", "pcs", "low_pc"):
            if not isinstance(row.get(field), int):
                problems.append(f"{where}: missing integer {field!r}")
        if not isinstance(row.get("percent"), (int, float)):
            problems.append(f"{where}: missing numeric 'percent'")
    return problems


def validate_spans(document: dict) -> list[str]:
    """Validate a ``repro.telemetry/spans-1`` document (single or merged)."""
    from repro.telemetry.spans import SPANS_SCHEMA

    problems: list[str] = []
    if document.get("schema") != SPANS_SCHEMA:
        problems.append(f"bad schema id {document.get('schema')!r}")
    if document.get("merged"):
        processes = document.get("processes")
        if not isinstance(processes, list) or not all(
            isinstance(p, str) for p in processes
        ):
            problems.append("merged document: 'processes' is not a str list")
    elif not isinstance(document.get("process"), str):
        problems.append("'process' is not a string")
    dropped = document.get("dropped")
    if not isinstance(dropped, int) or dropped < 0:
        problems.append("'dropped' is not a non-negative integer")
    spans = document.get("spans")
    if not isinstance(spans, list):
        return problems + ["'spans' is not a list"]
    ids_seen: set[tuple[str | None, str]] = set()
    for index, span in enumerate(spans):
        where = f"spans[{index}]"
        if not isinstance(span, dict):
            problems.append(f"{where}: not an object")
            continue
        for field in ("name", "span_id", "process"):
            if not isinstance(span.get(field), str) or not span.get(field):
                problems.append(f"{where}: missing string {field!r}")
        for field in ("trace_id", "parent_id"):
            value = span.get(field)
            if value is not None and not isinstance(value, str):
                problems.append(f"{where}: {field!r} is neither str nor null")
        start = span.get("start_us")
        end = span.get("end_us")
        if not isinstance(start, int):
            problems.append(f"{where}: missing integer 'start_us'")
        if not isinstance(end, int):
            problems.append(f"{where}: missing integer 'end_us'")
        if isinstance(start, int) and isinstance(end, int) and end < start:
            problems.append(f"{where}: end_us {end} < start_us {start}")
        if not isinstance(span.get("attrs"), dict):
            problems.append(f"{where}: 'attrs' is not an object")
        key = (span.get("trace_id"), span.get("span_id"))
        if isinstance(key[1], str):
            if key in ids_seen:
                problems.append(
                    f"{where}: duplicate span_id {key[1]!r} in trace "
                    f"{key[0]!r}"
                )
            ids_seen.add(key)
    return problems


def validate_flightrec(document: dict) -> list[str]:
    """Validate a ``repro.telemetry/flightrec-1`` crash dump."""
    from repro.telemetry.flightrec import FLIGHTREC_SCHEMA

    problems: list[str] = []
    if document.get("schema") != FLIGHTREC_SCHEMA:
        problems.append(f"bad schema id {document.get('schema')!r}")
    for field in ("process", "reason"):
        if not isinstance(document.get(field), str):
            problems.append(f"'{field}' is not a string")
    limit = document.get("limit")
    if not isinstance(limit, int) or limit < 1:
        problems.append("'limit' is not a positive integer")
    for field in ("seen", "dropped"):
        value = document.get(field)
        if not isinstance(value, int) or value < 0:
            problems.append(f"'{field}' is not a non-negative integer")
    events = document.get("events")
    if not isinstance(events, list):
        return problems + ["'events' is not a list"]
    if isinstance(limit, int) and len(events) > limit:
        problems.append(f"{len(events)} events exceed ring limit {limit}")
    if (
        isinstance(document.get("seen"), int)
        and isinstance(document.get("dropped"), int)
        and document["seen"] - document["dropped"] != len(events)
    ):
        problems.append(
            f"seen {document['seen']} - dropped {document['dropped']} "
            f"!= {len(events)} events"
        )
    last_seq = 0
    for index, event in enumerate(events):
        where = f"events[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        seq = event.get("seq")
        if not isinstance(seq, int) or seq < 1:
            problems.append(f"{where}: missing positive integer 'seq'")
        elif seq <= last_seq:
            problems.append(f"{where}: seq {seq} not increasing")
        else:
            last_seq = seq
        if not isinstance(event.get("kind"), str):
            problems.append(f"{where}: missing 'kind'")
        if not isinstance(event.get("cycle"), int):
            problems.append(f"{where}: missing integer 'cycle'")
    return problems


def validate_metrics(document: dict) -> list[str]:
    """Validate a ``MetricsRegistry.to_json()`` document."""
    problems: list[str] = []
    if document.get("schema") != METRICS_SCHEMA:
        problems.append(f"bad schema id {document.get('schema')!r}")
    for section in ("counters", "gauges", "histograms"):
        table = document.get(section)
        if not isinstance(table, dict):
            problems.append(f"'{section}' is not an object")
            continue
        for name in table:
            if not isinstance(name, str) or not name:
                problems.append(f"{section}: bad metric name {name!r}")
    counters = document.get("counters")
    if isinstance(counters, dict):
        for name, value in counters.items():
            if not isinstance(value, int) or value < 0:
                problems.append(
                    f"counters.{name}: not a non-negative integer"
                )
    histograms = document.get("histograms")
    if isinstance(histograms, dict):
        for name, hist in histograms.items():
            if not isinstance(hist, dict):
                problems.append(f"histograms.{name}: not an object")
                continue
            for field in ("count", "sum", "buckets"):
                if field not in hist:
                    problems.append(f"histograms.{name}: missing {field!r}")
            buckets = hist.get("buckets")
            if isinstance(buckets, dict):
                total = sum(buckets.values())
                if total != hist.get("count"):
                    problems.append(
                        f"histograms.{name}: bucket sum {total} != "
                        f"count {hist.get('count')}"
                    )
    return problems

"""Exact PC-histogram profiler with symbol resolution.

Subscribes to the trace bus's raw instruction plane, so every retired
instruction bumps exactly one dict slot — no sampling, no skid.  The
flat profile aggregates PCs to their nearest preceding symbol (via
:class:`repro.machine.debug.SymbolTable`, fed from
:class:`repro.isa.objfile` / assembler symbol tables) and renders a
gprof-style table.
"""

from __future__ import annotations

__all__ = ["Profiler"]


class Profiler:
    """Accumulates an exact ``pc -> retired instruction count`` map."""

    def __init__(self):
        self.samples: dict[int, int] = {}

    # Raw-plane callback: called positionally as fn(ins, pc).
    def on_insn(self, ins, pc: int) -> None:
        samples = self.samples
        samples[pc] = samples.get(pc, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.samples.values())

    def flat(self, symbols=None, top: int | None = None) -> list[dict]:
        """Per-symbol rows sorted by descending count.

        ``symbols`` is a :class:`repro.machine.debug.SymbolTable` (or
        None, in which case each PC becomes its own ``0x...`` row).
        """
        by_symbol: dict[str, dict] = {}
        for pc, count in self.samples.items():
            if symbols is not None:
                located = symbols.nearest(pc)
                name = located[0] if located is not None else f"{pc:#x}"
            else:
                name = f"{pc:#x}"
            row = by_symbol.get(name)
            if row is None:
                row = by_symbol[name] = {
                    "symbol": name,
                    "count": 0,
                    "pcs": 0,
                    "low_pc": pc,
                }
            row["count"] += count
            row["pcs"] += 1
            if pc < row["low_pc"]:
                row["low_pc"] = pc
        total = self.total or 1
        rows = sorted(
            by_symbol.values(),
            key=lambda row: (-row["count"], row["low_pc"]),
        )
        for row in rows:
            row["percent"] = 100.0 * row["count"] / total
        return rows[:top] if top is not None else rows

    def format_flat(self, symbols=None, top: int = 30) -> str:
        """gprof-style flat profile text."""
        rows = self.flat(symbols, top=top)
        lines = [
            f"flat profile: {self.total} instructions, "
            f"{len(self.samples)} distinct pcs",
            f"{'%':>7s} {'count':>12s} {'pcs':>6s}  symbol",
        ]
        for row in rows:
            lines.append(
                f"{row['percent']:7.2f} {row['count']:12d} "
                f"{row['pcs']:6d}  {row['symbol']}"
            )
        return "\n".join(lines)

    def to_json(self, symbols=None, top: int | None = None) -> dict:
        return {
            "schema": "repro.telemetry/profile-1",
            "total_instructions": self.total,
            "distinct_pcs": len(self.samples),
            "rows": [
                {
                    "symbol": row["symbol"],
                    "count": row["count"],
                    "percent": row["percent"],
                    "pcs": row["pcs"],
                    "low_pc": row["low_pc"],
                }
                for row in self.flat(symbols, top=top)
            ],
        }

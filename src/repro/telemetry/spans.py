"""Distributed spans: one job's life across fleet processes.

A *span* is a named wall-clock interval recorded by one process — the
scheduler waiting on the queue, a worker forking a template, a job
executing.  Spans are stitched into *traces* by three identifiers:

* ``trace_id`` — minted deterministically from the job id at
  submission (:func:`mint_trace_id`), carried through the
  ``repro.fleet/job-1`` envelope into the worker and back in the
  result, so every span of one job's life shares it;
* ``span_id`` — unique within a trace (``<process>:<counter>``);
* ``parent_id`` — the enclosing span, propagated across the process
  boundary as ``trace.parent_span`` on the job envelope.

Each process owns a :class:`SpanRecorder`; per-worker span logs ride
home on batch replies and :func:`merge_span_logs` folds them into one
``repro.telemetry/spans-1`` document.  :func:`spans_to_chrome_trace`
renders the merged document as Chrome trace-event JSON with one lane
(pid) per process, loadable at ``ui.perfetto.dev``; :func:`trace_for`
extracts the spans of a single trace (queue wait → batch → fork →
execute) for programmatic reconstruction.

Timestamps are ``time.monotonic()`` microseconds.  On Linux the
monotonic clock is system-wide, so spans recorded in forked workers
share the scheduler's time base; exports normalize to the earliest
span anyway, so even a per-process clock would only skew lanes, never
corrupt them.  Spans are wall-clock observation and live strictly in
the timing plane: nothing here may influence a job's deterministic
payload (the fleet's neutrality tests enforce exactly that).
"""

from __future__ import annotations

import hashlib
import time
from contextlib import contextmanager

__all__ = [
    "SPANS_SCHEMA",
    "Span",
    "SpanRecorder",
    "merge_span_logs",
    "mint_trace_id",
    "spans_to_chrome_trace",
    "trace_for",
]

SPANS_SCHEMA = "repro.telemetry/spans-1"

#: Default cap on spans a recorder keeps before counting drops.
DEFAULT_SPAN_LIMIT = 100_000


def mint_trace_id(job_id: str) -> str:
    """Deterministic 16-hex-digit trace id for one job.

    A pure function of the job id, so retries after a worker crash —
    and re-runs of the same seeded mix — reuse the same trace id, and
    two runs of the same loadgen seed produce comparable traces.
    """
    blob = f"repro.telemetry.trace:{job_id}".encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def _now_us() -> int:
    return int(time.monotonic() * 1e6)


class Span:
    """One named interval in one process."""

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "process",
        "start_us", "end_us", "attrs",
    )

    def __init__(
        self,
        name: str,
        trace_id: str | None,
        span_id: str,
        parent_id: str | None,
        process: str,
        start_us: int,
        attrs: dict,
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.process = process
        self.start_us = start_us
        self.end_us: int | None = None
        self.attrs = attrs

    @property
    def finished(self) -> bool:
        return self.end_us is not None

    def end(self, **attrs) -> "Span":
        """Close the span (idempotent); extra attrs merge in."""
        if self.end_us is None:
            self.end_us = max(_now_us(), self.start_us)
        if attrs:
            self.attrs.update(attrs)
        return self

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "process": self.process,
            "start_us": self.start_us,
            "end_us": self.end_us if self.end_us is not None
            else self.start_us,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, trace={self.trace_id!r}, "
            f"id={self.span_id!r})"
        )


class SpanRecorder:
    """Per-process span log with a context stack for nesting.

    ``start``/``span`` default the trace id and parent to the innermost
    open context span, so producers deep in the stack (the fork path in
    :mod:`repro.fleet.jobs`) need no plumbing beyond the recorder
    itself.  The log is bounded: past ``limit`` new spans are counted
    as dropped rather than grown without bound.
    """

    def __init__(self, process: str, limit: int = DEFAULT_SPAN_LIMIT):
        self.process = process
        self.limit = limit
        self.spans: list[Span] = []
        self.dropped = 0
        self._ids = 0
        self._stack: list[Span] = []

    def __len__(self) -> int:
        return len(self.spans)

    def _next_id(self) -> str:
        self._ids += 1
        return f"{self.process}:{self._ids}"

    def start(
        self,
        name: str,
        trace_id: str | None = None,
        parent_id: str | None = None,
        **attrs,
    ) -> Span:
        """Open a span; defaults inherit from the innermost open span."""
        top = self._stack[-1] if self._stack else None
        if trace_id is None and top is not None:
            trace_id = top.trace_id
        if parent_id is None and top is not None:
            parent_id = top.span_id
        span = Span(
            name, trace_id, self._next_id(), parent_id, self.process,
            _now_us(), dict(attrs),
        )
        if len(self.spans) < self.limit:
            self.spans.append(span)
        else:
            self.dropped += 1
        return span

    @contextmanager
    def span(
        self,
        name: str,
        trace_id: str | None = None,
        parent_id: str | None = None,
        **attrs,
    ):
        """Context manager: the span encloses the block and nests."""
        span = self.start(name, trace_id, parent_id, **attrs)
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.end()

    def drain(self) -> list[dict]:
        """Serialize and clear every *finished* span (open ones stay).

        The fleet worker ships spans home on each batch reply; draining
        keeps a long-lived worker's log bounded by batch size.
        """
        done = [span for span in self.spans if span.finished]
        self.spans = [span for span in self.spans if not span.finished]
        return [span.to_json() for span in done]

    def to_json(self) -> dict:
        return {
            "schema": SPANS_SCHEMA,
            "process": self.process,
            "dropped": self.dropped,
            "spans": [span.to_json() for span in self.spans],
        }


def merge_span_logs(documents: list[dict]) -> dict:
    """Fold per-process ``spans-1`` documents into one merged document.

    Spans sort by ``(start_us, process, span_id)`` so the merged log is
    a stable global timeline; ``processes`` lists every contributing
    process in first-seen-by-time order.
    """
    spans: list[dict] = []
    dropped = 0
    for document in documents:
        dropped += document.get("dropped", 0)
        for span in document.get("spans", []):
            spans.append(span)
    spans.sort(key=lambda s: (
        s.get("start_us", 0), s.get("process", ""), s.get("span_id", "")
    ))
    processes: list[str] = []
    for span in spans:
        process = span.get("process", "")
        if process not in processes:
            processes.append(process)
    return {
        "schema": SPANS_SCHEMA,
        "merged": True,
        "processes": processes,
        "dropped": dropped,
        "spans": spans,
    }


def trace_for(document: dict, trace_id: str) -> list[dict]:
    """Every span belonging to one trace, in start order.

    A span belongs if its ``trace_id`` matches, or if it names the
    trace in ``attrs.trace_ids`` — the batch span covers several jobs
    and lists every trace it carried.
    """
    return [
        span for span in document.get("spans", [])
        if span.get("trace_id") == trace_id
        or trace_id in (span.get("attrs", {}).get("trace_ids") or ())
    ]


def spans_to_chrome_trace(document: dict) -> dict:
    """Render a (merged) spans document as Chrome trace-event JSON.

    One lane (pid) per process, in the merged document's process
    order; timestamps are normalized to the earliest span so the trace
    opens at t=0 in Perfetto.
    """
    spans = document.get("spans", [])
    processes = document.get("processes")
    if not processes:
        processes = []
        for span in spans:
            process = span.get("process", "")
            if process not in processes:
                processes.append(process)
    pids = {process: index for index, process in enumerate(processes)}
    epoch = min((span.get("start_us", 0) for span in spans), default=0)

    trace: list[dict] = []
    for process, pid in pids.items():
        trace.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process},
        })
    for span in spans:
        pid = pids.get(span.get("process", ""), 0)
        start = span.get("start_us", 0)
        end = span.get("end_us", start)
        args = {
            "span": span.get("name"),
            "trace_id": span.get("trace_id"),
            "span_id": span.get("span_id"),
            "parent_id": span.get("parent_id"),
        }
        attrs = span.get("attrs")
        if isinstance(attrs, dict):
            args.update(attrs)
        trace.append({
            "name": span.get("name", "span"),
            "cat": "spans",
            "ph": "X",
            "ts": start - epoch,
            "dur": max(end - start, 0),
            "pid": pid,
            "tid": 0,
            "args": args,
        })
    return {
        "traceEvents": trace,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": "repro.telemetry/chrome-trace-1",
            "source": SPANS_SCHEMA,
            "time_unit": "us (wall clock, normalized to trace start)",
        },
    }

"""Post-run telemetry summaries read from stats and guest memory.

Unlike the live trace bus, these helpers run *after* execution and
read what the machine already accounts for: engine/CLB statistics,
block-cache counters, and the kernel's own syscall audit table
(:mod:`repro.kernel.accounting`) straight out of guest memory.  They
need no tracer attached, which is what makes the per-attack telemetry
in ``repro.attacks --json`` free of any instrumentation overhead.
"""

from __future__ import annotations

from repro.errors import ReproError

__all__ = [
    "machine_summary",
    "read_syscall_counts",
    "session_telemetry",
    "aggregate_session_telemetry",
]


def machine_summary(machine) -> dict:
    """Counters every machine carries, telemetry attached or not."""
    hart = machine.hart
    blocks = hart.blocks
    return {
        "cycles": hart.cycles,
        "instructions": hart.instret,
        "engine": machine.engine.stats.snapshot(),
        "clb": machine.engine.clb.stats.snapshot(),
        "blocks": {
            "hits": blocks.hits,
            "misses": blocks.misses,
            "translations": blocks.translations,
            "invalidated": blocks.invalidated_blocks,
            "flushes": blocks.flushes,
        },
    }


def read_syscall_counts(machine, image) -> dict[str, int]:
    """Per-syscall counts from the kernel's audit table in guest memory."""
    from repro.kernel.accounting import AUDIT_RECORD
    from repro.kernel.structs import NUM_SYSCALLS
    from repro.kernel.syscalls import SYSCALL_NAMES

    layout = image.layout
    base = image.symbol("audit_table")
    stride = layout.sizeof(AUDIT_RECORD)
    offset = layout.struct_layout(AUDIT_RECORD).slot("count").offset
    counts: dict[str, int] = {}
    for nr in range(NUM_SYSCALLS):
        count = machine.memory.read_u64(base + nr * stride + offset)
        if count:
            counts[SYSCALL_NAMES.get(nr, f"sys{nr}")] = count
    return counts


def session_telemetry(session) -> dict:
    """CLB hit ratio, crypto ops and syscall counts for one session."""
    machine = session.machine
    clb = machine.engine.clb.stats
    engine = machine.engine.stats
    blocks = machine.hart.blocks
    telemetry = {
        "cycles": machine.hart.cycles,
        "instructions": machine.hart.instret,
        "clb": {
            "hits": clb.hits,
            "misses": clb.misses,
            "accesses": clb.accesses,
            "hit_ratio": clb.hit_ratio,
        },
        "crypto": {
            "encryptions": engine.encryptions,
            "decryptions": engine.decryptions,
            "operations": engine.operations,
            "integrity_faults": engine.integrity_faults,
            "cycles": engine.cycles,
        },
        "blocks": {
            "hits": blocks.hits,
            "misses": blocks.misses,
            "translations": blocks.translations,
        },
    }
    try:
        telemetry["syscalls"] = read_syscall_counts(machine, session.image)
    except ReproError:
        # Session never mapped the kernel data section (e.g. it halted
        # before boot); syscall counts are simply unavailable.
        telemetry["syscalls"] = {}
    return telemetry


def aggregate_session_telemetry(sessions) -> dict:
    """Fold per-session telemetry across an attack's sessions."""
    totals = {
        "sessions": len(sessions),
        "clb": {"hits": 0, "misses": 0, "accesses": 0, "hit_ratio": 0.0},
        "crypto": {
            "encryptions": 0,
            "decryptions": 0,
            "operations": 0,
            "integrity_faults": 0,
            "cycles": 0,
        },
        "syscalls": {},
    }
    for session in sessions:
        part = session_telemetry(session)
        for key in ("hits", "misses", "accesses"):
            totals["clb"][key] += part["clb"][key]
        for key in totals["crypto"]:
            totals["crypto"][key] += part["crypto"][key]
        for name, count in part["syscalls"].items():
            totals["syscalls"][name] = (
                totals["syscalls"].get(name, 0) + count
            )
    accesses = totals["clb"]["accesses"]
    totals["clb"]["hit_ratio"] = (
        totals["clb"]["hits"] / accesses if accesses else 0.0
    )
    totals["syscalls"] = dict(sorted(totals["syscalls"].items()))
    return totals

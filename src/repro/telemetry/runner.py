"""Run a named workload with telemetry attached.

The runner reuses the perf harness's workload catalogue
(:data:`repro.perf.workloads.INTERP_WORKLOADS`) so a traced run is the
same deterministic kernel boot the benchmarks measure — boot, run to
shutdown, then export whichever planes were enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.telemetry.tracer import Telemetry

__all__ = ["TelemetryRun", "run_workload", "workload_names"]


@dataclass
class TelemetryRun:
    """A finished traced run plus its exports."""

    workload: str
    telemetry: Telemetry
    halt_reason: str
    exit_code: int
    cycles: int
    instructions: int
    console: str = field(repr=False, default="")

    def summary(self) -> dict:
        return {
            "workload": self.workload,
            "halt_reason": self.halt_reason,
            "exit_code": self.exit_code,
            "cycles": self.cycles,
            "instructions": self.instructions,
        }


def workload_names() -> tuple[str, ...]:
    from repro.perf.workloads import INTERP_WORKLOADS

    return tuple(w.name for w in INTERP_WORKLOADS)


def run_workload(
    name: str,
    quick: bool = False,
    trace: bool = True,
    profile: bool = True,
    metrics: bool = True,
    max_steps: int | None = None,
    record_limit: int | None = None,
) -> TelemetryRun:
    """Boot ``name`` under telemetry and run it to completion."""
    from repro.perf.workloads import INTERP_WORKLOADS

    by_name = {w.name: w for w in INTERP_WORKLOADS}
    if name not in by_name:
        known = ", ".join(sorted(by_name))
        raise ValueError(f"unknown workload {name!r} (known: {known})")
    workload = by_name[name]
    session = workload.build_session(quick)

    kwargs = {} if record_limit is None else {"record_limit": record_limit}
    telemetry = Telemetry(
        trace=trace, profile=profile, metrics=metrics, **kwargs
    )
    telemetry.attach(session.machine, image=session.image)
    try:
        result = session.run(max_steps or workload.max_steps)
    finally:
        telemetry.detach()
    return TelemetryRun(
        workload=name,
        telemetry=telemetry,
        halt_reason=(
            result.halt_reason.name.lower() if result.halt_reason else "none"
        ),
        exit_code=result.exit_code,
        cycles=result.cycles,
        instructions=result.instructions,
        console=result.console,
    )

"""CLI: ``python -m repro.telemetry run <workload> [options]``.

Runs one of the perf workloads with telemetry attached and writes the
selected exports:

* ``metrics.json``  — hierarchical counters/gauges/histograms;
* ``events.json``   — the structured event stream;
* ``trace.json``    — Chrome trace-event JSON (load at ui.perfetto.dev);
* ``profile.txt`` / ``profile.json`` — symbolized flat profile.

With no plane flags, all three planes are enabled.  ``--validate``
checks every written document against its schema and fails the run on
any problem, which is how CI keeps the export formats honest.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Trace, profile and meter a simulated kernel run.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a workload with telemetry")
    run.add_argument("workload", help="workload name (see 'list')")
    run.add_argument(
        "--quick", action="store_true", help="scaled-down workload variant"
    )
    run.add_argument(
        "--trace", action="store_true", help="record the event stream"
    )
    run.add_argument(
        "--profile", action="store_true", help="collect a pc profile"
    )
    run.add_argument(
        "--metrics", action="store_true", help="collect the metrics registry"
    )
    run.add_argument(
        "--out-dir",
        type=Path,
        default=Path("telemetry-out"),
        help="directory for the export files (default: telemetry-out)",
    )
    run.add_argument(
        "--max-steps", type=int, default=None, help="step budget override"
    )
    run.add_argument(
        "--top", type=int, default=30, help="flat-profile row count"
    )
    run.add_argument(
        "--validate",
        action="store_true",
        help="validate every export against its schema; fail on problems",
    )

    sub.add_parser("list", help="list the available workloads")

    om = sub.add_parser(
        "openmetrics",
        help="render a metrics-1 JSON document as OpenMetrics text",
    )
    om.add_argument("metrics", type=Path, help="metrics.json to render")
    om.add_argument(
        "--output", type=Path, default=None,
        help="write the exposition text here (default: stdout)",
    )
    om.add_argument(
        "--check", action="store_true",
        help="also grammar-check the rendered text; fail on problems",
    )
    return parser


def _dump(path: Path, document: dict) -> None:
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)

    from repro.telemetry.runner import run_workload, workload_names

    if args.command == "list":
        for name in workload_names():
            print(name)
        return 0

    if args.command == "openmetrics":
        from repro.telemetry.openmetrics import (
            render_openmetrics,
            validate_openmetrics_text,
        )
        from repro.telemetry.schema import validate_metrics

        document = json.loads(args.metrics.read_text())
        problems = [f"{args.metrics}: {p}" for p in validate_metrics(document)]
        text = render_openmetrics(document)
        if args.check:
            problems += [
                f"{args.metrics} (rendered): {p}"
                for p in validate_openmetrics_text(text)
            ]
        if problems:
            for problem in problems:
                print(f"SCHEMA PROBLEM: {problem}", file=sys.stderr)
            return 1
        if args.output is not None:
            args.output.write_text(text)
        else:
            sys.stdout.write(text)
        return 0

    # No plane flags means "everything" — the common interactive case.
    if not (args.trace or args.profile or args.metrics):
        args.trace = args.profile = args.metrics = True

    run = run_workload(
        args.workload,
        quick=args.quick,
        trace=args.trace,
        profile=args.profile,
        metrics=args.metrics,
        max_steps=args.max_steps,
    )
    telemetry = run.telemetry

    out_dir = args.out_dir
    out_dir.mkdir(parents=True, exist_ok=True)
    written: dict[str, dict] = {}

    if args.metrics:
        written["metrics.json"] = telemetry.metrics_json()
    if args.trace:
        written["events.json"] = telemetry.events_json()
        written["trace.json"] = telemetry.chrome_trace()
    if args.profile:
        written["profile.json"] = telemetry.profile_json(top=args.top)
        (out_dir / "profile.txt").write_text(
            telemetry.flat_profile(top=args.top) + "\n"
        )
    for filename, document in written.items():
        _dump(out_dir / filename, document)

    for line in (
        f"workload:     {run.workload}",
        f"halt:         {run.halt_reason} (exit code {run.exit_code})",
        f"cycles:       {run.cycles}",
        f"instructions: {run.instructions}",
        f"outputs:      {out_dir}/"
        + ", ".join(sorted(written) + (["profile.txt"] if args.profile else [])),
    ):
        print(line)
    if args.profile:
        print()
        print(telemetry.flat_profile(top=min(args.top, 10)))

    if args.validate:
        from repro.telemetry.schema import (
            validate_chrome_trace,
            validate_events,
            validate_metrics,
            validate_profile,
        )

        validators = {
            "metrics.json": validate_metrics,
            "events.json": validate_events,
            "trace.json": validate_chrome_trace,
            "profile.json": validate_profile,
        }
        problems: list[str] = []
        checked: list[str] = []
        for filename, validate in validators.items():
            if filename in written:
                checked.append(filename)
                # Report the on-disk path of the failing document so the
                # offending artifact can be opened straight from CI logs.
                problems += [
                    f"{out_dir / filename}: {p}"
                    for p in validate(written[filename])
                ]
        if problems:
            for problem in problems:
                print(f"SCHEMA PROBLEM: {problem}", file=sys.stderr)
            return 1
        print(f"schema validation: OK ({', '.join(sorted(checked))})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""repro.telemetry — tracing, metrics and profiling for the simulator.

Three planes over one hook fabric:

* **trace** — typed, cycle-stamped events on a :class:`TraceBus`
  (:mod:`repro.telemetry.events` lists the kinds and their schemas);
* **metrics** — a hierarchical :class:`MetricsRegistry` of counters,
  gauges and histograms with a stable JSON export;
* **profile** — an exact pc histogram resolved against the kernel
  image's symbol table, exportable as flat-profile text or Chrome
  trace-event JSON (Perfetto-loadable).

:class:`Telemetry` is the facade that attaches all of it to a machine
and restores the zero-overhead disabled state on detach.  This module
deliberately keeps its imports lazy: components that emit events import
only the leaf :mod:`repro.telemetry.events` module.
"""

from __future__ import annotations

from repro.telemetry import events
from repro.telemetry.bus import TraceBus, TraceRecorder
from repro.telemetry.metrics import MetricsRegistry

__all__ = [
    "events",
    "TraceBus",
    "TraceRecorder",
    "MetricsRegistry",
    "Telemetry",
    "Profiler",
    "chrome_trace",
    "run_workload",
    "LeakageAnalyzer",
    "SpanRecorder",
    "FlightRecorder",
    "render_openmetrics",
]


def __getattr__(name: str):
    # Heavier pieces (facade pulls in machine-adjacent code paths) load
    # on first use so `import repro.telemetry` stays cheap for emitters.
    if name == "Telemetry":
        from repro.telemetry.tracer import Telemetry

        return Telemetry
    if name == "Profiler":
        from repro.telemetry.profile import Profiler

        return Profiler
    if name == "chrome_trace":
        from repro.telemetry.chrometrace import chrome_trace

        return chrome_trace
    if name == "run_workload":
        from repro.telemetry.runner import run_workload

        return run_workload
    if name == "LeakageAnalyzer":
        from repro.telemetry.leakage import LeakageAnalyzer

        return LeakageAnalyzer
    if name == "SpanRecorder":
        from repro.telemetry.spans import SpanRecorder

        return SpanRecorder
    if name == "FlightRecorder":
        from repro.telemetry.flightrec import FlightRecorder

        return FlightRecorder
    if name == "render_openmetrics":
        from repro.telemetry.openmetrics import render_openmetrics

        return render_openmetrics
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

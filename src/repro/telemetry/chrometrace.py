"""Chrome trace-event (Perfetto-loadable) export.

Converts a recorded event stream into the Trace Event Format JSON that
``ui.perfetto.dev`` and ``chrome://tracing`` load directly.  The time
axis is the simulated cycle counter mapped 1 cycle = 1 µs, so a span of
3000 cycles renders as 3 ms — durations read directly in cycles.

Track layout (single process, pid 0):

* ``traps``     — one ``X`` span per trap-enter/trap-exit pair;
* ``syscalls``  — one ``X`` span per completed syscall (from the kernel
  probe's ``syscall.exit`` events, which carry the cycle delta);
* ``sched``     — an instant per context switch;
* ``blocks``    — instants for block compile/invalidate/flush (per-hit
  events are summarized by the ``clb+blocks`` counter track instead);
* ``crypto``    — instants for key-CSR writes and integrity faults;
* ``snapshot``  — instants for capture/restore/fork;
* counter samples (``ph: "C"``) for cumulative CLB hits/misses, emitted
  at trap boundaries so the series stays bounded.

Every emitted trace event carries ``args.kind`` naming the source event
kind, which is what the schema validator cross-checks.
"""

from __future__ import annotations

from repro.machine.trap import Cause
from repro.telemetry import events as ev

__all__ = ["chrome_trace"]

_TRACKS = {
    "traps": 1,
    "syscalls": 2,
    "sched": 3,
    "blocks": 4,
    "crypto": 5,
    "snapshot": 6,
    "counters": 7,
}

_INSTANT_TRACKS = {
    ev.BLOCK_COMPILE: "blocks",
    ev.BLOCK_INVALIDATE: "blocks",
    ev.BLOCK_FLUSH: "blocks",
    ev.KEY_WRITE: "crypto",
    ev.CRYPTO_FAULT: "crypto",
    ev.CLB_INVALIDATE: "crypto",
    ev.SCHED_SWITCH: "sched",
    ev.SNAPSHOT_CAPTURE: "snapshot",
    ev.SNAPSHOT_RESTORE: "snapshot",
    ev.SNAPSHOT_FORK: "snapshot",
}


def _cause_name(cause: int, interrupt: bool) -> str:
    try:
        name = Cause(cause).name.lower()
    except ValueError:
        name = f"cause_{cause}"
    return f"irq:{name}" if interrupt else name


def _meta(name: str, tid: int) -> dict:
    return {
        "name": "thread_name",
        "ph": "M",
        "pid": 0,
        "tid": tid,
        "args": {"name": name},
    }


def chrome_trace(events, process_name: str = "repro machine") -> dict:
    """Build a Trace Event Format document from recorded events."""
    trace: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    trace.extend(_meta(name, tid) for name, tid in _TRACKS.items())

    open_traps: list = []
    open_syscalls: list = []
    clb_hits = 0
    clb_misses = 0
    clb_dirty = False

    def counter_sample(cycle: int) -> None:
        trace.append({
            "name": "clb",
            "ph": "C",
            "ts": cycle,
            "pid": 0,
            "tid": _TRACKS["counters"],
            "args": {"kind": "counter.clb", "hits": clb_hits,
                     "misses": clb_misses},
        })

    def instant(event, track: str) -> None:
        trace.append({
            "name": event.kind,
            "cat": track,
            "ph": "i",
            "s": "t",
            "ts": event.cycle,
            "pid": 0,
            "tid": _TRACKS[track],
            "args": {"kind": event.kind, **event.data},
        })

    last_cycle = 0
    for event in events:
        kind = event.kind
        last_cycle = max(last_cycle, event.cycle)
        if kind in (ev.CLB_ENC_HIT, ev.CLB_DEC_HIT):
            clb_hits += 1
            clb_dirty = True
        elif kind in (ev.CLB_ENC_MISS, ev.CLB_DEC_MISS):
            clb_misses += 1
            clb_dirty = True
        elif kind == ev.TRAP_ENTER:
            open_traps.append(event)
            if clb_dirty:
                counter_sample(event.cycle)
                clb_dirty = False
        elif kind == ev.TRAP_EXIT:
            if open_traps:
                enter = open_traps.pop()
                trace.append({
                    "name": _cause_name(
                        enter.data["cause"], enter.data["interrupt"]
                    ),
                    "cat": "traps",
                    "ph": "X",
                    "ts": enter.cycle,
                    "dur": max(event.cycle - enter.cycle, 0),
                    "pid": 0,
                    "tid": _TRACKS["traps"],
                    "args": {"kind": ev.TRAP_ENTER, **enter.data},
                })
        elif kind == ev.SYSCALL_ENTER:
            open_syscalls.append(event)
        elif kind == ev.SYSCALL_EXIT:
            if open_syscalls:
                open_syscalls.pop()
            trace.append({
                "name": event.data["name"],
                "cat": "syscalls",
                "ph": "X",
                "ts": event.cycle - event.data["cycles"],
                "dur": event.data["cycles"],
                "pid": 0,
                "tid": _TRACKS["syscalls"],
                "args": {"kind": kind, **event.data},
            })
        elif kind in _INSTANT_TRACKS:
            instant(event, _INSTANT_TRACKS[kind])
        # Remaining kinds (block.hit, clb hit/miss, crypto.op) are too
        # frequent for per-event rendering; the counter track and the
        # metrics export carry their aggregate story.

    # Anything still open at end-of-trace (e.g. the shutdown ecall never
    # mrets) renders as an instant so it is not silently lost.
    for event in open_traps + open_syscalls:
        name = (
            event.data["name"]
            if event.kind == ev.SYSCALL_ENTER
            else _cause_name(event.data["cause"], event.data["interrupt"])
        )
        track = "syscalls" if event.kind == ev.SYSCALL_ENTER else "traps"
        trace.append({
            "name": f"{name} (unterminated)",
            "cat": track,
            "ph": "i",
            "s": "t",
            "ts": event.cycle,
            "pid": 0,
            "tid": _TRACKS[track],
            "args": {"kind": event.kind, **event.data},
        })
    if clb_dirty:
        counter_sample(last_cycle)

    return {
        "traceEvents": trace,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": "repro.telemetry/chrome-trace-1",
            "time_unit": "1 cycle = 1 us",
        },
    }

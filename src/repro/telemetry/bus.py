"""The trace bus: publish/subscribe fabric for telemetry events.

Design constraints (see ``docs/telemetry.md``):

* **zero overhead when disabled** — components hold a ``trace_hook``
  attribute that is ``None`` by default and guard emissions with a
  single attribute test; the hart's per-instruction plane only exists
  at all while a tracer is attached (dispatch-table wrapping, the same
  mechanism ``Hart.attach_coverage`` always used);
* **observation only** — subscribers receive events but nothing they
  do can flow back into architectural state; the bus never raises into
  the emitting component;
* **cheap when enabled** — ``emit`` allocates one :class:`Event` and
  fans out to a list; the raw instruction plane skips even that.
"""

from __future__ import annotations

from repro.telemetry.events import Event

__all__ = ["TraceBus", "TraceRecorder"]

#: Default cap on recorded events before the recorder starts dropping.
DEFAULT_RECORD_LIMIT = 250_000


class TraceBus:
    """Dispatches events by kind to subscriber callables.

    Structured subscribers are called as ``fn(event)``; subscribers of
    the raw :data:`~repro.telemetry.events.INSN_RETIRE` plane are called
    positionally as ``fn(ins, pc)`` by the hart (the bus only stores
    them — see :meth:`subscribers`).
    """

    def __init__(self):
        self._subs: dict[str, list] = {}

    def subscribe(self, kind: str, fn) -> None:
        self._subs.setdefault(kind, []).append(fn)

    def unsubscribe(self, kind: str, fn) -> None:
        subs = self._subs.get(kind)
        if subs and fn in subs:
            subs.remove(fn)
            if not subs:
                del self._subs[kind]

    def wants(self, kind: str) -> bool:
        """Does anyone listen for ``kind``?  Producers may skip work."""
        return bool(self._subs.get(kind))

    def wants_any(self, kinds) -> bool:
        subs = self._subs
        return any(subs.get(kind) for kind in kinds)

    def subscribers(self, kind: str) -> list:
        """Snapshot of the subscriber list (for producer specialization)."""
        return list(self._subs.get(kind, ()))

    def emit(self, kind: str, cycle: int, **data) -> None:
        """Deliver a structured event; no-op without subscribers."""
        subs = self._subs.get(kind)
        if not subs:
            return
        event = Event(kind, cycle, data)
        for fn in subs:
            fn(event)

    def make_hook(self, cycle_source):
        """A component-side ``trace_hook(kind, **fields)`` adapter.

        ``cycle_source`` is a zero-argument callable returning the
        current cycle count (the attached hart's counter).
        """
        emit = self.emit

        def hook(kind: str, **fields) -> None:
            emit(kind, cycle_source(), **fields)

        return hook


class TraceRecorder:
    """Bounded in-memory event sink.

    Appends every delivered event up to ``limit``, then counts drops —
    tracing a long run must degrade to truncation, never to unbounded
    memory growth.
    """

    def __init__(self, limit: int = DEFAULT_RECORD_LIMIT):
        self.limit = limit
        self.events: list[Event] = []
        self.dropped = 0

    def __call__(self, event: Event) -> None:
        if len(self.events) < self.limit:
            self.events.append(event)
        else:
            self.dropped += 1

    def __len__(self) -> int:
        return len(self.events)

    def by_kind(self, kind: str) -> list[Event]:
        return [event for event in self.events if event.kind == kind]

    def counts(self) -> dict[str, int]:
        """Recorded event count per kind, sorted by kind."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return dict(sorted(counts.items()))

    def to_json(self) -> dict:
        return {
            "schema": "repro.telemetry/events-1",
            "dropped": self.dropped,
            "events": [event.to_json() for event in self.events],
        }

"""Kernel-level event derivation from machine-level traps.

The kernel in this reproduction is compiled IR running *on* the
simulated hart, so kernel events cannot be emitted by kernel code
without perturbing the very execution being observed.  Instead the
probe derives them machine-side, the way a hardware trace unit would:

* **syscall enter** — a trap with cause ``ECALL_FROM_U``; the syscall
  number is read from ``a7`` (the kernel ABI's syscall register) at
  trap entry, before the handler can clobber it;
* **syscall exit** — the next ``mret`` that returns to user privilege;
  the cycle delta between the pair is the full kernel path (trap entry
  asm, dispatch, audit, handler, trap exit asm);
* **context switch** — the ``current`` thread pointer (resolved through
  the kernel image's symbol table) is sampled at every trap exit; a
  ``tid`` change between consecutive samples is a switch.

Everything is read from guest memory/registers; nothing is written, so
the probe is architecturally invisible.
"""

from __future__ import annotations

from repro.kernel.sched import read_current_tid
from repro.kernel.syscalls import SYSCALL_NAMES
from repro.machine.hart import PrivilegeLevel
from repro.machine.trap import Cause
from repro.telemetry import events as ev

__all__ = ["KernelProbe"]

_ECALL_U = int(Cause.ECALL_FROM_U)


class KernelProbe:
    """Subscribes to trap events and re-emits kernel-level ones."""

    def __init__(self, bus, machine, image):
        self.bus = bus
        self.machine = machine
        self.image = image
        #: The in-flight syscall, if any: (nr, name, tid, enter_cycle).
        self._pending: tuple | None = None
        self._last_tid: int | None = None
        bus.subscribe(ev.TRAP_ENTER, self._on_trap_enter)
        bus.subscribe(ev.TRAP_EXIT, self._on_trap_exit)

    def _current_tid(self) -> int | None:
        return read_current_tid(self.machine.memory, self.image)

    def _on_trap_enter(self, event) -> None:
        data = event.data
        if data["interrupt"] or data["cause"] != _ECALL_U:
            return
        hart = self.machine.hart
        nr = hart.regs[17]  # a7 holds the syscall number at entry
        name = SYSCALL_NAMES.get(nr, f"sys{nr}")
        tid = self._current_tid()
        self._pending = (nr, name, tid, event.cycle)
        self.bus.emit(
            ev.SYSCALL_ENTER, event.cycle, nr=nr, name=name, tid=tid
        )

    def _on_trap_exit(self, event) -> None:
        if event.data["privilege"] == int(PrivilegeLevel.USER):
            pending = self._pending
            if pending is not None:
                nr, name, tid, enter_cycle = pending
                self._pending = None
                self.bus.emit(
                    ev.SYSCALL_EXIT,
                    event.cycle,
                    nr=nr,
                    name=name,
                    tid=tid,
                    cycles=event.cycle - enter_cycle,
                )
        tid = self._current_tid()
        if tid is not None:
            if self._last_tid is not None and tid != self._last_tid:
                self.bus.emit(
                    ev.SCHED_SWITCH,
                    event.cycle,
                    from_tid=self._last_tid,
                    to_tid=tid,
                )
            self._last_tid = tid

"""Event vocabulary of the telemetry trace bus.

Every structured event is identified by a dotted *kind* string and
carries a cycle timestamp (the hart's ``cycles`` counter at emission
time) plus a small payload dict whose required fields are listed in
:data:`EVENT_SCHEMA`.  Producers (hart, block cache, CLB, engine, CSR
file, kernel probe, snapshot subsystem) import the kind constants from
here; this module deliberately imports nothing from the rest of the
simulator so it can sit below every layer.

One kind is special: :data:`INSN_RETIRE` is the *raw plane*.  Its
subscribers are called positionally as ``fn(ins, pc)`` with the decoded
:class:`~repro.isa.instructions.Instruction` — no :class:`Event` object
is built — because it fires once per retired instruction and the fuzz
coverage map and the PC profiler cannot afford per-event allocation.
"""

from __future__ import annotations

__all__ = [
    "Event",
    "EVENT_SCHEMA",
    "STRUCTURED_KINDS",
    "INSN_RETIRE",
    "TRAP_ENTER",
    "TRAP_EXIT",
    "CLB_ENC_HIT",
    "CLB_ENC_MISS",
    "CLB_DEC_HIT",
    "CLB_DEC_MISS",
    "CLB_EVICT",
    "CLB_INVALIDATE",
    "BLOCK_COMPILE",
    "BLOCK_HIT",
    "BLOCK_INVALIDATE",
    "BLOCK_FLUSH",
    "BLOCK_EVICT",
    "BLOCK_JIT",
    "CODECACHE_LOAD",
    "CODECACHE_SAVE",
    "CODECACHE_INSTALL",
    "CODECACHE_REJECT",
    "CODECACHE_EVICT",
    "CRYPTO_OP",
    "CRYPTO_FAULT",
    "KEY_WRITE",
    "SYSCALL_ENTER",
    "SYSCALL_EXIT",
    "SCHED_SWITCH",
    "SNAPSHOT_CAPTURE",
    "SNAPSHOT_RESTORE",
    "SNAPSHOT_FORK",
    "SPEC_WINDOW",
    "SPEC_LOAD",
    "SPEC_STORE",
    "SPEC_BRANCH",
    "SPEC_CSR_READ",
    "SPEC_CRYPTO",
    "SPEC_SQUASH",
    "SPEC_KINDS",
]

#: Raw plane: one positional ``fn(ins, pc)`` call per retired instruction.
INSN_RETIRE = "insn.retire"

# -- machine ---------------------------------------------------------------
TRAP_ENTER = "trap.enter"
TRAP_EXIT = "trap.exit"
BLOCK_COMPILE = "block.compile"
BLOCK_HIT = "block.hit"
BLOCK_INVALIDATE = "block.invalidate"
BLOCK_FLUSH = "block.flush"
BLOCK_EVICT = "block.evict"
BLOCK_JIT = "block.jit"
KEY_WRITE = "key.csr_write"

# -- persistent code cache (repro.machine.codecache) ------------------------
# ``codecache.load`` carries the wall-clock nanoseconds the on-disk set
# took to import (the warm-start span); install/reject fire once per
# cached entry adopted into (or refused by) a hart.
CODECACHE_LOAD = "codecache.load"
CODECACHE_SAVE = "codecache.save"
CODECACHE_INSTALL = "codecache.install"
CODECACHE_REJECT = "codecache.reject"
CODECACHE_EVICT = "codecache.evict"

# -- crypto engine / CLB ---------------------------------------------------
CLB_ENC_HIT = "clb.enc.hit"
CLB_ENC_MISS = "clb.enc.miss"
CLB_DEC_HIT = "clb.dec.hit"
CLB_DEC_MISS = "clb.dec.miss"
CLB_EVICT = "clb.evict"
CLB_INVALIDATE = "clb.ksel_invalidate"
CRYPTO_OP = "crypto.op"
CRYPTO_FAULT = "crypto.integrity_fault"

# -- kernel (derived machine-side by the kernel probe) ---------------------
SYSCALL_ENTER = "syscall.enter"
SYSCALL_EXIT = "syscall.exit"
SCHED_SWITCH = "sched.switch"

# -- snapshot subsystem ----------------------------------------------------
SNAPSHOT_CAPTURE = "snapshot.capture"
SNAPSHOT_RESTORE = "snapshot.restore"
SNAPSHOT_FORK = "snapshot.fork"

# -- speculative front-end (repro.machine.spec) -----------------------------
# Emitted only while a SpeculativeEngine is attached AND a bus hook is
# installed; the default machine never produces them.  ``spec.window``
# opens a transient window (a mispredicted branch/return/indirect);
# every event in between describes one *transient* operation executed
# against shadow state; ``spec.squash`` closes the window and records
# why.  The ``tainted`` flags mark values/addresses derived from a
# configured secret range, a forwarded key CSR or a crypto result —
# the leakage analyzer turns tainted transient events into findings.
SPEC_WINDOW = "spec.window"
SPEC_LOAD = "spec.load"
SPEC_STORE = "spec.store"
SPEC_BRANCH = "spec.branch"
SPEC_CSR_READ = "spec.csr_read"
SPEC_CRYPTO = "spec.crypto"
SPEC_SQUASH = "spec.squash"

#: kind -> required payload field names (the event schema).
EVENT_SCHEMA: dict[str, tuple[str, ...]] = {
    TRAP_ENTER: ("cause", "interrupt", "pc", "tval"),
    TRAP_EXIT: ("pc", "privilege"),
    BLOCK_COMPILE: ("pc", "instructions", "ns"),
    BLOCK_HIT: ("pc", "instructions"),
    BLOCK_INVALIDATE: ("page", "blocks"),
    BLOCK_FLUSH: ("blocks",),
    BLOCK_EVICT: ("pc", "instructions"),
    BLOCK_JIT: ("pc", "instructions", "ns"),
    CODECACHE_LOAD: ("key", "entries", "ns"),
    CODECACHE_SAVE: ("key", "entries", "ns"),
    CODECACHE_INSTALL: ("pc", "kind"),
    CODECACHE_REJECT: ("pc", "kind"),
    CODECACHE_EVICT: ("key",),
    KEY_WRITE: ("ksel", "half"),
    CLB_ENC_HIT: ("ksel",),
    CLB_ENC_MISS: ("ksel",),
    CLB_DEC_HIT: ("ksel",),
    CLB_DEC_MISS: ("ksel",),
    CLB_EVICT: ("ksel",),
    CLB_INVALIDATE: ("ksel", "dropped"),
    CRYPTO_OP: ("op", "ksel", "cycles", "hit"),
    CRYPTO_FAULT: ("ksel",),
    SYSCALL_ENTER: ("nr", "name", "tid"),
    SYSCALL_EXIT: ("nr", "name", "tid", "cycles"),
    SCHED_SWITCH: ("from_tid", "to_tid"),
    SNAPSHOT_CAPTURE: ("pages", "include_pages"),
    SNAPSHOT_RESTORE: ("pages",),
    SNAPSHOT_FORK: ("pages",),
    SPEC_WINDOW: ("window", "pc", "target", "reason"),
    SPEC_LOAD: ("window", "pc", "address", "tainted"),
    SPEC_STORE: ("window", "pc", "address", "tainted"),
    SPEC_BRANCH: ("window", "pc", "taken", "tainted"),
    SPEC_CSR_READ: ("window", "pc", "csr", "key", "forwarded"),
    SPEC_CRYPTO: ("window", "pc", "op", "ksel", "tainted", "hit"),
    SPEC_SQUASH: ("window", "pc", "executed", "cause"),
}

#: Every speculative-plane kind (subscribe to these to observe windows).
SPEC_KINDS: tuple[str, ...] = (
    SPEC_WINDOW,
    SPEC_LOAD,
    SPEC_STORE,
    SPEC_BRANCH,
    SPEC_CSR_READ,
    SPEC_CRYPTO,
    SPEC_SQUASH,
)

#: Every structured (non-raw) kind, in schema order.
STRUCTURED_KINDS: tuple[str, ...] = tuple(EVENT_SCHEMA)


class Event:
    """One cycle-stamped structured event."""

    __slots__ = ("kind", "cycle", "data")

    def __init__(self, kind: str, cycle: int, data: dict):
        self.kind = kind
        self.cycle = cycle
        self.data = data

    def to_json(self) -> dict:
        return {"kind": self.kind, "cycle": self.cycle, **self.data}

    def __repr__(self) -> str:
        return f"Event({self.kind!r}, cycle={self.cycle}, {self.data!r})"

"""Two-pass text assembler for RV64IM + RegVault.

Accepts the subset of GNU-as syntax the rest of this project emits:

* labels (``name:``), comments (``#`` or ``;`` to end of line),
* sections ``.text`` / ``.data`` / ``.rodata`` / ``.bss``,
* data directives ``.byte .half .word .dword .zero .align .ascii .asciz``
  (``.dword`` accepts label references — used for function-pointer
  tables),
* constants ``.equ name, value``,
* all RV64IM instructions, CSR instructions (by CSR name or number),
* the RegVault primitives ``cre[x]k rd, rs[e:s], rt`` and
  ``crd[x]k rd, rs, rt, [e:s]``,
* the usual pseudo-instructions (``li la mv call ret j beqz ...``).

The assembler produces a :class:`Program`: per-section byte images with
base addresses, a symbol table and the entry point (``_start`` when
defined, otherwise the start of ``.text``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.crypto.primitives import ByteRange
from repro.errors import AssemblerError, EncodingError
from repro.isa import instructions as tab
from repro.isa.csrdefs import CSR_NAMES
from repro.isa.encoder import encode
from repro.isa.instructions import (
    Instruction,
    InstrFormat,
    REGISTER_ALIASES,
    parse_crypto_mnemonic,
)
from repro.utils.bits import sign_extend

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_CRYPTO_ENC_RE = re.compile(
    r"^(?P<rs>[\w.$]+)\s*\[\s*(?P<e>\d)\s*:\s*(?P<s>\d)\s*\]$"
)
_MEM_RE = re.compile(r"^(?P<off>[^()]*)\(\s*(?P<base>[\w.$]+)\s*\)$")

#: Default section load addresses (all within 31 bits so ``la`` can use
#: the lui/addi pair without 64-bit materialization).
DEFAULT_BASES = {
    ".text": 0x0001_0000,
    ".rodata": 0x0300_0000,
    ".data": 0x0400_0000,
    ".bss": 0x0600_0000,
}


@dataclass
class Section:
    """An output section being filled by the assembler."""

    name: str
    base: int
    data: bytearray = field(default_factory=bytearray)

    @property
    def pc(self) -> int:
        return self.base + len(self.data)

    def align(self, alignment: int) -> None:
        while len(self.data) % alignment:
            self.data.append(0)


@dataclass
class Program:
    """Result of assembling a source file."""

    sections: dict[str, Section]
    symbols: dict[str, int]
    entry: int

    def flatten(self) -> list[tuple[int, bytes]]:
        """Return (base_address, bytes) for every non-empty section."""
        return [
            (section.base, bytes(section.data))
            for section in self.sections.values()
            if section.data
        ]

    def symbol(self, name: str) -> int:
        if name not in self.symbols:
            raise AssemblerError(f"undefined symbol {name!r}")
        return self.symbols[name]


@dataclass
class _PendingInstr:
    """An instruction recorded in pass 1, encoded in pass 2."""

    address: int
    section: str
    offset: int  # byte offset within the section
    mnemonic: str
    operands: list[str]
    line: int


@dataclass
class _PendingData:
    """A data word that references a symbol (e.g. ``.dword handler``)."""

    section: str
    offset: int
    size: int
    expr: str
    line: int


class Assembler:
    """Two-pass assembler; see module docstring for the accepted syntax."""

    def __init__(self, bases: dict[str, int] | None = None):
        merged = dict(DEFAULT_BASES)
        if bases:
            merged.update(bases)
        self._bases = merged

    # -- public API -----------------------------------------------------------

    def assemble(self, source: str) -> Program:
        sections: dict[str, Section] = {}
        symbols: dict[str, int] = {}
        pending_instrs: list[_PendingInstr] = []
        pending_data: list[_PendingData] = []
        current: Section | None = None

        def section(name: str) -> Section:
            if name not in sections:
                if name not in self._bases:
                    raise AssemblerError(f"unknown section {name!r}")
                sections[name] = Section(name, self._bases[name])
            return sections[name]

        current = section(".text")

        for lineno, raw_line in enumerate(source.splitlines(), start=1):
            line = self._strip_comment(raw_line).strip()
            while line:
                match = _LABEL_RE.match(line)
                if match:
                    label = match.group(1)
                    if label in symbols:
                        raise AssemblerError(
                            f"duplicate label {label!r}", lineno
                        )
                    symbols[label] = current.pc
                    line = line[match.end():].strip()
                    continue
                break
            if not line:
                continue

            if line.startswith("."):
                current = self._directive(
                    line, lineno, current, section, symbols, pending_data
                )
                continue

            mnemonic, operands = self._split_instruction(line)
            expanded = self._expand_pseudo(mnemonic, operands, lineno, symbols)
            for exp_mnemonic, exp_operands in expanded:
                current.align(4)
                pending_instrs.append(
                    _PendingInstr(
                        address=current.pc,
                        section=current.name,
                        offset=len(current.data),
                        mnemonic=exp_mnemonic,
                        operands=exp_operands,
                        line=lineno,
                    )
                )
                current.data.extend(b"\x00\x00\x00\x00")

        # Pass 2: encode instructions and patch symbolic data.
        for pending in pending_instrs:
            instruction = self._build_instruction(pending, symbols)
            try:
                word = encode(instruction)
            except EncodingError as error:
                raise AssemblerError(str(error), pending.line) from error
            sec = sections[pending.section]
            sec.data[pending.offset:pending.offset + 4] = word.to_bytes(
                4, "little"
            )

        for datum in pending_data:
            value = self._eval(datum.expr, symbols, datum.line)
            sec = sections[datum.section]
            sec.data[datum.offset:datum.offset + datum.size] = (
                value & ((1 << (8 * datum.size)) - 1)
            ).to_bytes(datum.size, "little")

        entry = symbols.get("_start", sections[".text"].base)
        return Program(sections=sections, symbols=symbols, entry=entry)

    # -- pass 1 helpers ---------------------------------------------------------

    @staticmethod
    def _strip_comment(line: str) -> str:
        out = []
        in_string = False
        for ch in line:
            if ch == '"':
                in_string = not in_string
            if not in_string and ch in "#;":
                break
            out.append(ch)
        return "".join(out)

    def _directive(
        self, line, lineno, current, section, symbols, pending_data
    ) -> Section:
        parts = line.split(None, 1)
        name = parts[0]
        rest = parts[1].strip() if len(parts) > 1 else ""

        if name in (".text", ".data", ".rodata", ".bss"):
            return section(name)
        if name == ".section":
            return section(rest.split(",")[0].strip())
        if name in (".global", ".globl", ".option", ".file", ".size", ".type"):
            return current
        if name == ".align":
            alignment = 1 << self._eval(rest, symbols, lineno)
            current.align(alignment)
            return current
        if name == ".balign":
            current.align(self._eval(rest, symbols, lineno))
            return current
        if name in (".equ", ".set"):
            const_name, _, expr = rest.partition(",")
            symbols[const_name.strip()] = self._eval(
                expr.strip(), symbols, lineno
            )
            return current
        if name == ".zero":
            current.data.extend(b"\x00" * self._eval(rest, symbols, lineno))
            return current
        if name in (".byte", ".half", ".word", ".dword", ".quad"):
            size = {".byte": 1, ".half": 2, ".word": 4,
                    ".dword": 8, ".quad": 8}[name]
            current.align(min(size, 8))
            for item in self._split_commas(rest):
                item = item.strip()
                if self._is_literal(item, symbols):
                    value = self._eval(item, symbols, lineno)
                    current.data.extend(
                        (value & ((1 << (8 * size)) - 1)).to_bytes(
                            size, "little"
                        )
                    )
                else:
                    pending_data.append(
                        _PendingData(
                            section=current.name,
                            offset=len(current.data),
                            size=size,
                            expr=item,
                            line=lineno,
                        )
                    )
                    current.data.extend(b"\x00" * size)
            return current
        if name in (".ascii", ".asciz", ".string"):
            text = rest.strip()
            if not (text.startswith('"') and text.endswith('"')):
                raise AssemblerError(f"malformed string {rest!r}", lineno)
            decoded = (
                text[1:-1]
                .encode()
                .decode("unicode_escape")
                .encode("latin-1")
            )
            current.data.extend(decoded)
            if name in (".asciz", ".string"):
                current.data.append(0)
            return current
        raise AssemblerError(f"unknown directive {name!r}", lineno)

    @staticmethod
    def _split_instruction(line: str) -> tuple[str, list[str]]:
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        if len(parts) == 1:
            return mnemonic, []
        return mnemonic, Assembler._split_commas(parts[1])

    @staticmethod
    def _split_commas(text: str) -> list[str]:
        return [piece.strip() for piece in text.split(",") if piece.strip()]

    # -- expression evaluation ---------------------------------------------------

    def _is_literal(self, expr: str, symbols: dict[str, int]) -> bool:
        try:
            self._eval(expr, symbols, 0, allow_undefined=False)
            return True
        except AssemblerError:
            return False

    def _eval(
        self,
        expr: str,
        symbols: dict[str, int],
        lineno: int,
        allow_undefined: bool = False,
        dot: int | None = None,
    ) -> int:
        """Evaluate ``literal``, ``symbol``, ``.``, or ``sym +/- literal``.

        ``dot`` is the current instruction's address; ``.`` is only
        meaningful where the assembler knows it (branch/jump targets),
        which lets disassembler output (``beq a0, a1, . + 16``) be fed
        straight back in.
        """
        expr = expr.strip()
        if not expr:
            raise AssemblerError("empty expression", lineno)
        if expr == ".":
            if dot is None:
                raise AssemblerError(
                    "'.' is only valid in branch/jump targets", lineno
                )
            return dot
        for op_pos in range(len(expr) - 1, 0, -1):
            if expr[op_pos] in "+-" and expr[op_pos - 1] not in "+-eE(":
                left = expr[:op_pos].strip()
                right = expr[op_pos:].replace(" ", "")
                try:
                    return self._eval(
                        left, symbols, lineno, dot=dot
                    ) + int(right, 0)
                except (ValueError, AssemblerError):
                    continue
        if len(expr) == 3 and expr[0] == "'" and expr[2] == "'":
            return ord(expr[1])
        try:
            return int(expr, 0)
        except ValueError:
            pass
        if expr in symbols:
            return symbols[expr]
        if allow_undefined:
            return 0
        raise AssemblerError(f"cannot evaluate expression {expr!r}", lineno)

    # -- pseudo-instruction expansion -------------------------------------------

    def _expand_pseudo(
        self,
        mnemonic: str,
        ops: list[str],
        lineno: int,
        symbols: dict[str, int],
    ) -> list[tuple[str, list[str]]]:
        def expect(count: int) -> None:
            if len(ops) != count:
                raise AssemblerError(
                    f"{mnemonic} expects {count} operands, got {len(ops)}",
                    lineno,
                )

        if mnemonic == "nop":
            return [("addi", ["zero", "zero", "0"])]
        if mnemonic == "mv":
            expect(2)
            return [("addi", [ops[0], ops[1], "0"])]
        if mnemonic == "not":
            expect(2)
            return [("xori", [ops[0], ops[1], "-1"])]
        if mnemonic == "neg":
            expect(2)
            return [("sub", [ops[0], "zero", ops[1]])]
        if mnemonic == "negw":
            expect(2)
            return [("subw", [ops[0], "zero", ops[1]])]
        if mnemonic == "sext.w":
            expect(2)
            return [("addiw", [ops[0], ops[1], "0"])]
        if mnemonic == "seqz":
            expect(2)
            return [("sltiu", [ops[0], ops[1], "1"])]
        if mnemonic == "snez":
            expect(2)
            return [("sltu", [ops[0], "zero", ops[1]])]
        if mnemonic == "sltz":
            expect(2)
            return [("slt", [ops[0], ops[1], "zero"])]
        if mnemonic == "sgtz":
            expect(2)
            return [("slt", [ops[0], "zero", ops[1]])]
        if mnemonic in ("beqz", "bnez", "bltz", "bgez"):
            expect(2)
            base = {"beqz": "beq", "bnez": "bne",
                    "bltz": "blt", "bgez": "bge"}[mnemonic]
            return [(base, [ops[0], "zero", ops[1]])]
        if mnemonic == "blez":
            expect(2)
            return [("bge", ["zero", ops[0], ops[1]])]
        if mnemonic == "bgtz":
            expect(2)
            return [("blt", ["zero", ops[0], ops[1]])]
        if mnemonic in ("bgt", "ble", "bgtu", "bleu"):
            expect(3)
            base = {"bgt": "blt", "ble": "bge",
                    "bgtu": "bltu", "bleu": "bgeu"}[mnemonic]
            return [(base, [ops[1], ops[0], ops[2]])]
        if mnemonic == "j":
            expect(1)
            return [("jal", ["zero", ops[0]])]
        if mnemonic == "jal" and len(ops) == 1:
            return [("jal", ["ra", ops[0]])]
        if mnemonic == "call":
            expect(1)
            return [("jal", ["ra", ops[0]])]
        if mnemonic == "tail":
            expect(1)
            return [("jal", ["zero", ops[0]])]
        if mnemonic == "jr":
            expect(1)
            return [("jalr", ["zero", "0(" + ops[0] + ")"])]
        if mnemonic == "jalr" and len(ops) == 1:
            return [("jalr", ["ra", "0(" + ops[0] + ")"])]
        if mnemonic == "ret":
            expect(0)
            return [("jalr", ["zero", "0(ra)"])]
        if mnemonic == "csrr":
            expect(2)
            return [("csrrs", [ops[0], ops[1], "zero"])]
        if mnemonic == "csrw":
            expect(2)
            return [("csrrw", ["zero", ops[0], ops[1]])]
        if mnemonic == "csrs":
            expect(2)
            return [("csrrs", ["zero", ops[0], ops[1]])]
        if mnemonic == "csrc":
            expect(2)
            return [("csrrc", ["zero", ops[0], ops[1]])]
        if mnemonic == "csrwi":
            expect(2)
            return [("csrrwi", ["zero", ops[0], ops[1]])]
        if mnemonic == "li":
            expect(2)
            value = self._eval(ops[1], symbols, lineno)
            return self._expand_li(ops[0], value, lineno)
        if mnemonic == "la":
            expect(2)
            # Fixed two-instruction form; the address is resolved in pass 2
            # via %hi/%lo operand markers.
            return [
                ("lui", [ops[0], f"%hi({ops[1]})"]),
                ("addi", [ops[0], ops[0], f"%lo({ops[1]})"]),
            ]
        return [(mnemonic, ops)]

    def _expand_li(
        self, rd: str, value: int, lineno: int
    ) -> list[tuple[str, list[str]]]:
        """Materialize an arbitrary 64-bit constant."""
        if not -(1 << 63) <= value < (1 << 64):
            raise AssemblerError(f"li constant out of range: {value:#x}", lineno)
        value = sign_extend(value, 64)
        if -2048 <= value <= 2047:
            return [("addi", [rd, "zero", str(value)])]
        if -(1 << 31) <= value < (1 << 31):
            hi = (value + 0x800) >> 12
            lo = value - (hi << 12)
            out: list[tuple[str, list[str]]] = []
            if hi:
                out.append(("lui", [rd, f"%hi({value})"]))
                if lo:
                    out.append(("addiw", [rd, rd, str(lo)]))
            else:
                out.append(("addi", [rd, "zero", str(lo)]))
            return out
        # 64-bit constant: materialize the top 32 bits, then append the low
        # 32 bits in 11/11/10-bit chunks (each fits a signed 12-bit addi).
        upper = value >> 32
        lower = value & 0xFFFFFFFF
        out = self._expand_li(rd, sign_extend(upper, 32), lineno)
        out.append(("slli", [rd, rd, "11"]))
        out.append(("addi", [rd, rd, str((lower >> 21) & 0x7FF)]))
        out.append(("slli", [rd, rd, "11"]))
        out.append(("addi", [rd, rd, str((lower >> 10) & 0x7FF)]))
        out.append(("slli", [rd, rd, "10"]))
        out.append(("addi", [rd, rd, str(lower & 0x3FF)]))
        return out

    # -- pass 2: operand resolution ------------------------------------------

    def _build_instruction(
        self, pending: _PendingInstr, symbols: dict[str, int]
    ) -> Instruction:
        m = pending.mnemonic
        ops = pending.operands
        lineno = pending.line

        def reg(op: str) -> int:
            name = op.strip().lower()
            if name not in REGISTER_ALIASES:
                raise AssemblerError(f"unknown register {op!r}", lineno)
            return REGISTER_ALIASES[name]

        def imm(op: str) -> int:
            op = op.strip()
            if op.startswith("%hi(") and op.endswith(")"):
                address = self._eval(op[4:-1], symbols, lineno)
                return sign_extend(((address + 0x800) >> 12) << 12, 32)
            if op.startswith("%lo(") and op.endswith(")"):
                address = self._eval(op[4:-1], symbols, lineno)
                hi = (address + 0x800) >> 12
                return address - (hi << 12)
            return self._eval(op, symbols, lineno)

        def expect(count: int) -> None:
            if len(ops) != count:
                raise AssemblerError(
                    f"{m} expects {count} operands, got {len(ops)}", lineno
                )

        crypto = parse_crypto_mnemonic(m)
        if crypto is not None:
            is_encrypt, ksel = crypto
            expect(3 if is_encrypt else 4)
            if is_encrypt:
                match = _CRYPTO_ENC_RE.match(ops[1])
                if not match:
                    raise AssemblerError(
                        f"{m}: second operand must be rs[e:s], got {ops[1]!r}",
                        lineno,
                    )
                byte_range = ByteRange(int(match["e"]), int(match["s"]))
                return Instruction(
                    m, InstrFormat.CRYPTO,
                    rd=reg(ops[0]), rs1=reg(match["rs"]), rs2=reg(ops[2]),
                    ksel=ksel, byte_range=byte_range,
                )
            byte_range = ByteRange.parse(ops[3])
            return Instruction(
                m, InstrFormat.CRYPTO,
                rd=reg(ops[0]), rs1=reg(ops[1]), rs2=reg(ops[2]),
                ksel=ksel, byte_range=byte_range,
            )

        if m in tab.R_TYPE or m in tab.R_TYPE_32:
            expect(3)
            return Instruction(
                m, InstrFormat.R, rd=reg(ops[0]), rs1=reg(ops[1]),
                rs2=reg(ops[2]),
            )
        if (
            m in tab.I_TYPE_ALU
            or m in tab.I_TYPE_SHIFT
            or m in tab.I_TYPE_ALU_32
            or m in tab.I_TYPE_SHIFT_32
        ):
            expect(3)
            return Instruction(
                m, InstrFormat.I, rd=reg(ops[0]), rs1=reg(ops[1]),
                imm=imm(ops[2]),
            )
        if m in tab.LOADS:
            expect(2)
            offset, base = self._memory_operand(ops[1], lineno)
            return Instruction(
                m, InstrFormat.I, rd=reg(ops[0]), rs1=reg(base),
                imm=imm(offset),
            )
        if m in tab.STORES:
            expect(2)
            offset, base = self._memory_operand(ops[1], lineno)
            return Instruction(
                m, InstrFormat.S, rs2=reg(ops[0]), rs1=reg(base),
                imm=imm(offset),
            )
        if m in tab.BRANCHES:
            expect(3)
            target = self._eval(ops[2], symbols, lineno, dot=pending.address)
            return Instruction(
                m, InstrFormat.B, rs1=reg(ops[0]), rs2=reg(ops[1]),
                imm=target - pending.address,
            )
        if m in ("lui", "auipc"):
            expect(2)
            value = imm(ops[1])
            if -(1 << 19) <= value < (1 << 19) and not (
                ops[1].startswith("%hi")
            ):
                # Accept both raw 20-bit immediates and full byte addresses.
                value = sign_extend((value << 12) & 0xFFFFFFFF, 32)
            return Instruction(m, InstrFormat.U, rd=reg(ops[0]), imm=value)
        if m == "jal":
            expect(2)
            target = self._eval(ops[1], symbols, lineno, dot=pending.address)
            return Instruction(
                m, InstrFormat.J, rd=reg(ops[0]),
                imm=target - pending.address,
            )
        if m == "jalr":
            expect(2)
            offset, base = self._memory_operand(ops[1], lineno)
            return Instruction(
                m, InstrFormat.I, rd=reg(ops[0]), rs1=reg(base),
                imm=imm(offset),
            )
        if m == "fence":
            return Instruction(m, InstrFormat.I)
        if m in tab.CSR_OPS:
            expect(3)
            csr = self._csr_number(ops[1], lineno)
            if m.endswith("i"):
                uimm = imm(ops[2])
                if not 0 <= uimm <= 31:
                    raise AssemblerError(
                        f"CSR immediate out of range: {uimm}", lineno
                    )
                return Instruction(
                    m, InstrFormat.CSRI, rd=reg(ops[0]), rs1=uimm, csr=csr
                )
            return Instruction(
                m, InstrFormat.CSR, rd=reg(ops[0]), rs1=reg(ops[2]), csr=csr
            )
        if m in tab.SYSTEM_OPS:
            expect(0)
            return Instruction(m, InstrFormat.SYSTEM)

        raise AssemblerError(f"unknown mnemonic {m!r}", lineno)

    @staticmethod
    def _memory_operand(op: str, lineno: int) -> tuple[str, str]:
        match = _MEM_RE.match(op.strip())
        if not match:
            raise AssemblerError(
                f"malformed memory operand {op!r} (expected off(reg))", lineno
            )
        offset = match["off"].strip() or "0"
        return offset, match["base"]

    def _csr_number(self, op: str, lineno: int) -> int:
        name = op.strip().lower()
        if name in CSR_NAMES:
            return CSR_NAMES[name]
        try:
            return int(name, 0)
        except ValueError:
            raise AssemblerError(f"unknown CSR {op!r}", lineno) from None


def assemble(source: str, bases: dict[str, int] | None = None) -> Program:
    """Assemble ``source`` and return the :class:`Program`."""
    return Assembler(bases).assemble(source)

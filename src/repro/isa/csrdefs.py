"""CSR address assignments (standard RISC-V + RegVault key registers).

The RegVault key registers live in the custom supervisor read/write CSR
range (0x5C0+).  Each 128-bit key register occupies two CSR addresses
(low and high 64-bit halves).  The master key ``m`` is deliberately NOT
addressable: the paper forbids the kernel from reading or writing it —
it can only be *used* through ``cremk``/``crdmk`` instructions.
"""

from __future__ import annotations

from repro.crypto.keys import KeySelect

# -- standard machine-mode CSRs -------------------------------------------
MSTATUS = 0x300
MISA = 0x301
MEDELEG = 0x302
MIDELEG = 0x303
MIE = 0x304
MTVEC = 0x305
MSCRATCH = 0x340
MEPC = 0x341
MCAUSE = 0x342
MTVAL = 0x343
MIP = 0x344
MHARTID = 0xF14
MCYCLE = 0xB00
MINSTRET = 0xB02

# -- standard supervisor-mode CSRs ------------------------------------------
SSTATUS = 0x100
SIE = 0x104
STVEC = 0x105
SSCRATCH = 0x140
SEPC = 0x141
SCAUSE = 0x142
STVAL = 0x143
SIP = 0x144
SATP = 0x180

# -- user counters -----------------------------------------------------------
CYCLE = 0xC00
TIME = 0xC01
INSTRET = 0xC02

# -- RegVault key registers (custom S-mode range, write-only) ---------------
KEY_CSR_BASE = 0x5C0

#: (ksel, half) -> csr address; half 0 = low 64 bits, 1 = high 64 bits.
KEY_CSRS: dict[tuple[KeySelect, int], int] = {}
#: csr address -> (ksel, half)
KEY_CSR_LOOKUP: dict[int, tuple[KeySelect, int]] = {}
for _ksel in KeySelect:
    if _ksel is KeySelect.M:
        continue  # master key is not CSR-addressable
    for _half in (0, 1):
        _addr = KEY_CSR_BASE + int(_ksel) * 2 + _half
        KEY_CSRS[(_ksel, _half)] = _addr
        KEY_CSR_LOOKUP[_addr] = (_ksel, _half)

#: Assembly-visible CSR names.
CSR_NAMES: dict[str, int] = {
    "mstatus": MSTATUS,
    "misa": MISA,
    "medeleg": MEDELEG,
    "mideleg": MIDELEG,
    "mie": MIE,
    "mtvec": MTVEC,
    "mscratch": MSCRATCH,
    "mepc": MEPC,
    "mcause": MCAUSE,
    "mtval": MTVAL,
    "mip": MIP,
    "mhartid": MHARTID,
    "mcycle": MCYCLE,
    "minstret": MINSTRET,
    "sstatus": SSTATUS,
    "sie": SIE,
    "stvec": STVEC,
    "sscratch": SSCRATCH,
    "sepc": SEPC,
    "scause": SCAUSE,
    "stval": STVAL,
    "sip": SIP,
    "satp": SATP,
    "cycle": CYCLE,
    "time": TIME,
    "instret": INSTRET,
}
for (_ksel, _half), _addr in KEY_CSRS.items():
    CSR_NAMES[f"kreg{_ksel.letter}_{'hi' if _half else 'lo'}"] = _addr

CSR_NUM_TO_NAME = {num: name for name, num in CSR_NAMES.items()}

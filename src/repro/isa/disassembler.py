"""Instruction -> canonical assembly text."""

from __future__ import annotations

from repro.isa import instructions as tab
from repro.isa.instructions import ABI_NAMES, Instruction, InstrFormat


def _reg(num: int) -> str:
    return ABI_NAMES[num]


def _rel(imm: int) -> str:
    """PC-relative target, e.g. ``. + 16`` / ``. - 412``."""
    return f". - {-imm}" if imm < 0 else f". + {imm}"


def disassemble(ins: Instruction) -> str:
    """Render an instruction in the same syntax the assembler accepts.

    Branch/jump targets are shown as relative offsets (``. + imm``) since
    a lone instruction has no label context.
    """
    m = ins.mnemonic

    if ins.fmt is InstrFormat.CRYPTO:
        if m.startswith("cre"):
            return (
                f"{m} {_reg(ins.rd)}, {_reg(ins.rs1)}{ins.byte_range}, "
                f"{_reg(ins.rs2)}"
            )
        return (
            f"{m} {_reg(ins.rd)}, {_reg(ins.rs1)}, {_reg(ins.rs2)}, "
            f"{ins.byte_range}"
        )

    if m in tab.R_TYPE or m in tab.R_TYPE_32:
        return f"{m} {_reg(ins.rd)}, {_reg(ins.rs1)}, {_reg(ins.rs2)}"
    if (
        m in tab.I_TYPE_ALU
        or m in tab.I_TYPE_SHIFT
        or m in tab.I_TYPE_ALU_32
        or m in tab.I_TYPE_SHIFT_32
    ):
        return f"{m} {_reg(ins.rd)}, {_reg(ins.rs1)}, {ins.imm}"
    if m in tab.LOADS:
        return f"{m} {_reg(ins.rd)}, {ins.imm}({_reg(ins.rs1)})"
    if m in tab.STORES:
        return f"{m} {_reg(ins.rs2)}, {ins.imm}({_reg(ins.rs1)})"
    if m in tab.BRANCHES:
        return f"{m} {_reg(ins.rs1)}, {_reg(ins.rs2)}, {_rel(ins.imm)}"
    if m in ("lui", "auipc"):
        # Signed raw 20-bit immediate: the assembler sign-extends raw
        # values in [-2^19, 2^19), so this form re-assembles to the
        # same word for the whole encoding space (an unsigned render of
        # a negative immediate would be taken for a byte address).
        return f"{m} {_reg(ins.rd)}, {ins.imm >> 12}"
    if m == "jal":
        return f"jal {_reg(ins.rd)}, {_rel(ins.imm)}"
    if m == "jalr":
        return f"jalr {_reg(ins.rd)}, {ins.imm}({_reg(ins.rs1)})"
    if m == "fence":
        return "fence"
    if m in tab.CSR_OPS:
        operand = ins.rs1 if ins.fmt is InstrFormat.CSRI else _reg(ins.rs1)
        return f"{m} {_reg(ins.rd)}, {ins.csr:#x}, {operand}"
    if m in tab.SYSTEM_OPS:
        return m
    return f"<unknown {m}>"

"""RISC-V RV64IM + RegVault instruction set support.

Provides instruction encodings (including the ``cre``/``crd`` extension on
the custom-0/custom-1 opcodes), a decoder, an encoder, a two-pass text
assembler and a disassembler.
"""

from repro.isa.instructions import Instruction, InstrFormat
from repro.isa.decoder import decode
from repro.isa.encoder import encode
from repro.isa.assembler import Assembler, Program, assemble
from repro.isa.disassembler import disassemble

__all__ = [
    "Instruction",
    "InstrFormat",
    "decode",
    "encode",
    "Assembler",
    "Program",
    "assemble",
    "disassemble",
]

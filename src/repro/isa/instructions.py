"""Decoded instruction representation and instruction tables.

Each machine instruction is represented by an :class:`Instruction` with a
mnemonic and the operand fields relevant to its format.  The same object
is produced by the decoder and consumed by the encoder, the assembler,
the disassembler and the hart's execute stage.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.crypto.keys import KeySelect
from repro.crypto.primitives import ByteRange


class InstrFormat(enum.Enum):
    """RISC-V base encoding formats, plus the RegVault crypto format."""

    R = "R"
    I = "I"  # noqa: E741 - canonical RISC-V format name
    S = "S"
    B = "B"
    U = "U"
    J = "J"
    CSR = "CSR"
    CSRI = "CSRI"
    SYSTEM = "SYSTEM"
    CRYPTO = "CRYPTO"


@dataclass(frozen=True)
class Instruction:
    """A decoded (or to-be-encoded) instruction.

    Fields not used by the instruction's format are left at defaults.
    ``imm`` is always the *sign-extended* immediate value.
    """

    mnemonic: str
    fmt: InstrFormat
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    csr: int = 0
    ksel: KeySelect = KeySelect.A
    byte_range: ByteRange = ByteRange(0, 0)

    def __str__(self) -> str:
        from repro.isa.disassembler import disassemble

        return disassemble(self)


#: ABI register names, indexed by register number.
ABI_NAMES = (
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
)

#: Accepted register spellings -> register number.
REGISTER_ALIASES: dict[str, int] = {}
for _num, _name in enumerate(ABI_NAMES):
    REGISTER_ALIASES[_name] = _num
    REGISTER_ALIASES[f"x{_num}"] = _num
REGISTER_ALIASES["fp"] = 8  # frame pointer is s0

# ---------------------------------------------------------------------------
# Instruction tables: mnemonic -> (format, opcode, funct3, funct7/funct6/...)
# ---------------------------------------------------------------------------

OPCODE_LUI = 0b0110111
OPCODE_AUIPC = 0b0010111
OPCODE_JAL = 0b1101111
OPCODE_JALR = 0b1100111
OPCODE_BRANCH = 0b1100011
OPCODE_LOAD = 0b0000011
OPCODE_STORE = 0b0100011
OPCODE_OP_IMM = 0b0010011
OPCODE_OP_IMM_32 = 0b0011011
OPCODE_OP = 0b0110011
OPCODE_OP_32 = 0b0111011
OPCODE_MISC_MEM = 0b0001111
OPCODE_SYSTEM = 0b1110011
#: RegVault extension opcodes (RISC-V custom-0 / custom-1).
OPCODE_CRE = 0b0001011  # custom-0
OPCODE_CRD = 0b0101011  # custom-1

#: R-type: mnemonic -> (funct7, funct3)
R_TYPE = {
    "add": (0b0000000, 0b000),
    "sub": (0b0100000, 0b000),
    "sll": (0b0000000, 0b001),
    "slt": (0b0000000, 0b010),
    "sltu": (0b0000000, 0b011),
    "xor": (0b0000000, 0b100),
    "srl": (0b0000000, 0b101),
    "sra": (0b0100000, 0b101),
    "or": (0b0000000, 0b110),
    "and": (0b0000000, 0b111),
    "mul": (0b0000001, 0b000),
    "mulh": (0b0000001, 0b001),
    "mulhsu": (0b0000001, 0b010),
    "mulhu": (0b0000001, 0b011),
    "div": (0b0000001, 0b100),
    "divu": (0b0000001, 0b101),
    "rem": (0b0000001, 0b110),
    "remu": (0b0000001, 0b111),
}

#: R-type on the 32-bit ("W") opcode.
R_TYPE_32 = {
    "addw": (0b0000000, 0b000),
    "subw": (0b0100000, 0b000),
    "sllw": (0b0000000, 0b001),
    "srlw": (0b0000000, 0b101),
    "sraw": (0b0100000, 0b101),
    "mulw": (0b0000001, 0b000),
    "divw": (0b0000001, 0b100),
    "divuw": (0b0000001, 0b101),
    "remw": (0b0000001, 0b110),
    "remuw": (0b0000001, 0b111),
}

#: I-type ALU ops: mnemonic -> funct3
I_TYPE_ALU = {
    "addi": 0b000,
    "slti": 0b010,
    "sltiu": 0b011,
    "xori": 0b100,
    "ori": 0b110,
    "andi": 0b111,
}

#: Shift-immediate ops (RV64: 6-bit shamt): mnemonic -> (funct6, funct3)
I_TYPE_SHIFT = {
    "slli": (0b000000, 0b001),
    "srli": (0b000000, 0b101),
    "srai": (0b010000, 0b101),
}

#: 32-bit immediate ALU / shifts.
I_TYPE_ALU_32 = {"addiw": 0b000}
I_TYPE_SHIFT_32 = {
    "slliw": (0b0000000, 0b001),
    "srliw": (0b0000000, 0b101),
    "sraiw": (0b0100000, 0b101),
}

#: Loads: mnemonic -> funct3
LOADS = {
    "lb": 0b000,
    "lh": 0b001,
    "lw": 0b010,
    "ld": 0b011,
    "lbu": 0b100,
    "lhu": 0b101,
    "lwu": 0b110,
}

#: Stores: mnemonic -> funct3
STORES = {
    "sb": 0b000,
    "sh": 0b001,
    "sw": 0b010,
    "sd": 0b011,
}

#: Branches: mnemonic -> funct3
BRANCHES = {
    "beq": 0b000,
    "bne": 0b001,
    "blt": 0b100,
    "bge": 0b101,
    "bltu": 0b110,
    "bgeu": 0b111,
}

#: CSR ops: mnemonic -> funct3
CSR_OPS = {
    "csrrw": 0b001,
    "csrrs": 0b010,
    "csrrc": 0b011,
    "csrrwi": 0b101,
    "csrrsi": 0b110,
    "csrrci": 0b111,
}

#: SYSTEM instructions with fixed 32-bit encodings.
SYSTEM_OPS = {
    "ecall": 0x00000073,
    "ebreak": 0x00100073,
    "sret": 0x10200073,
    "mret": 0x30200073,
    "wfi": 0x10500073,
}

#: Sizes in bytes accessed by each load/store mnemonic.
ACCESS_SIZE = {
    "lb": 1, "lbu": 1, "sb": 1,
    "lh": 2, "lhu": 2, "sh": 2,
    "lw": 4, "lwu": 4, "sw": 4,
    "ld": 8, "sd": 8,
}


def crypto_mnemonic(is_encrypt: bool, ksel: KeySelect) -> str:
    """Build the assembly mnemonic, e.g. ``creak`` or ``crdmk``."""
    return f"{'cre' if is_encrypt else 'crd'}{ksel.letter}k"


def parse_crypto_mnemonic(mnemonic: str) -> tuple[bool, KeySelect] | None:
    """Recognize ``cre[x]k``/``crd[x]k``; return (is_encrypt, ksel) or None."""
    if len(mnemonic) == 5 and mnemonic.endswith("k"):
        prefix, letter = mnemonic[:3], mnemonic[3]
        if prefix in ("cre", "crd") and letter in "abcdefgm":
            return prefix == "cre", KeySelect.from_letter(letter)
    return None

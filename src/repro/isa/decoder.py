"""32-bit word -> Instruction decoder.

Besides the plain :func:`decode`, this module owns the interpreter's
decode memoization: :func:`decode_cached` backs both the hart's
single-step path and the basic-block translator with one bounded,
process-wide cache (decoded :class:`Instruction` objects are frozen, so
sharing them across harts is safe), and :func:`predecode` batch-decodes
a fetched window of words into the longest straight-line prefix a
translated block may contain.
"""

from __future__ import annotations

from typing import Sequence

from repro.crypto.keys import KeySelect
from repro.crypto.primitives import ByteRange
from repro.errors import DecodeError
from repro.isa import instructions as tab
from repro.isa.instructions import Instruction, InstrFormat
from repro.utils.bits import bits, sign_extend

# Reverse lookup tables built once at import time.
_R_BY_FUNCT = {v: k for k, v in tab.R_TYPE.items()}
_R32_BY_FUNCT = {v: k for k, v in tab.R_TYPE_32.items()}
_I_ALU_BY_F3 = {v: k for k, v in tab.I_TYPE_ALU.items()}
_SHIFT_BY_F3 = {f3: m for m, (_, f3) in tab.I_TYPE_SHIFT.items()}
_SHIFT32_BY = {(f7, f3): m for m, (f7, f3) in tab.I_TYPE_SHIFT_32.items()}
_LOAD_BY_F3 = {v: k for k, v in tab.LOADS.items()}
_STORE_BY_F3 = {v: k for k, v in tab.STORES.items()}
_BRANCH_BY_F3 = {v: k for k, v in tab.BRANCHES.items()}
_CSR_BY_F3 = {v: k for k, v in tab.CSR_OPS.items()}
_SYSTEM_BY_WORD = {v: k for k, v in tab.SYSTEM_OPS.items()}


def _fields(word: int) -> tuple[int, int, int, int, int]:
    return (
        bits(word, 11, 7),    # rd
        bits(word, 19, 15),   # rs1
        bits(word, 24, 20),   # rs2
        bits(word, 14, 12),   # funct3
        bits(word, 31, 25),   # funct7
    )


def decode(word: int) -> Instruction:
    """Decode a 32-bit instruction word.

    Raises :class:`DecodeError` for unrecognized encodings — the hart
    converts this into an illegal-instruction trap.
    """
    if not 0 <= word < (1 << 32):
        raise DecodeError(f"instruction word out of range: {word:#x}")
    opcode = word & 0x7F
    rd, rs1, rs2, funct3, funct7 = _fields(word)

    if opcode == tab.OPCODE_OP:
        mnemonic = _R_BY_FUNCT.get((funct7, funct3))
        if mnemonic is None:
            raise DecodeError(f"unknown OP encoding {word:#010x}")
        return Instruction(mnemonic, InstrFormat.R, rd=rd, rs1=rs1, rs2=rs2)

    if opcode == tab.OPCODE_OP_32:
        mnemonic = _R32_BY_FUNCT.get((funct7, funct3))
        if mnemonic is None:
            raise DecodeError(f"unknown OP-32 encoding {word:#010x}")
        return Instruction(mnemonic, InstrFormat.R, rd=rd, rs1=rs1, rs2=rs2)

    if opcode == tab.OPCODE_OP_IMM:
        if funct3 in _SHIFT_BY_F3 and funct3 != 0b000:
            funct6 = bits(word, 31, 26)
            shamt = bits(word, 25, 20)
            if funct3 == 0b001:
                mnemonic = "slli"
                if funct6 != 0:
                    raise DecodeError(f"bad slli encoding {word:#010x}")
            else:
                if funct6 == 0b000000:
                    mnemonic = "srli"
                elif funct6 == 0b010000:
                    mnemonic = "srai"
                else:
                    raise DecodeError(f"bad shift encoding {word:#010x}")
            return Instruction(mnemonic, InstrFormat.I, rd=rd, rs1=rs1, imm=shamt)
        mnemonic = _I_ALU_BY_F3.get(funct3)
        if mnemonic is None:
            raise DecodeError(f"unknown OP-IMM encoding {word:#010x}")
        return Instruction(
            mnemonic, InstrFormat.I, rd=rd, rs1=rs1,
            imm=sign_extend(bits(word, 31, 20), 12),
        )

    if opcode == tab.OPCODE_OP_IMM_32:
        if funct3 == 0b000:
            return Instruction(
                "addiw", InstrFormat.I, rd=rd, rs1=rs1,
                imm=sign_extend(bits(word, 31, 20), 12),
            )
        shamt = bits(word, 24, 20)
        mnemonic = _SHIFT32_BY.get((funct7, funct3))
        if mnemonic is None:
            raise DecodeError(f"unknown OP-IMM-32 encoding {word:#010x}")
        return Instruction(mnemonic, InstrFormat.I, rd=rd, rs1=rs1, imm=shamt)

    if opcode == tab.OPCODE_LOAD:
        mnemonic = _LOAD_BY_F3.get(funct3)
        if mnemonic is None:
            raise DecodeError(f"unknown LOAD encoding {word:#010x}")
        return Instruction(
            mnemonic, InstrFormat.I, rd=rd, rs1=rs1,
            imm=sign_extend(bits(word, 31, 20), 12),
        )

    if opcode == tab.OPCODE_STORE:
        mnemonic = _STORE_BY_F3.get(funct3)
        if mnemonic is None:
            raise DecodeError(f"unknown STORE encoding {word:#010x}")
        imm = (bits(word, 31, 25) << 5) | bits(word, 11, 7)
        return Instruction(
            mnemonic, InstrFormat.S, rs1=rs1, rs2=rs2,
            imm=sign_extend(imm, 12),
        )

    if opcode == tab.OPCODE_BRANCH:
        mnemonic = _BRANCH_BY_F3.get(funct3)
        if mnemonic is None:
            raise DecodeError(f"unknown BRANCH encoding {word:#010x}")
        imm = (
            (bits(word, 31, 31) << 12)
            | (bits(word, 7, 7) << 11)
            | (bits(word, 30, 25) << 5)
            | (bits(word, 11, 8) << 1)
        )
        return Instruction(
            mnemonic, InstrFormat.B, rs1=rs1, rs2=rs2,
            imm=sign_extend(imm, 13),
        )

    if opcode == tab.OPCODE_LUI:
        return Instruction(
            "lui", InstrFormat.U, rd=rd, imm=sign_extend(word & 0xFFFFF000, 32)
        )

    if opcode == tab.OPCODE_AUIPC:
        return Instruction(
            "auipc", InstrFormat.U, rd=rd, imm=sign_extend(word & 0xFFFFF000, 32)
        )

    if opcode == tab.OPCODE_JAL:
        imm = (
            (bits(word, 31, 31) << 20)
            | (bits(word, 19, 12) << 12)
            | (bits(word, 20, 20) << 11)
            | (bits(word, 30, 21) << 1)
        )
        return Instruction("jal", InstrFormat.J, rd=rd, imm=sign_extend(imm, 21))

    if opcode == tab.OPCODE_JALR:
        if funct3 != 0:
            raise DecodeError(f"bad jalr encoding {word:#010x}")
        return Instruction(
            "jalr", InstrFormat.I, rd=rd, rs1=rs1,
            imm=sign_extend(bits(word, 31, 20), 12),
        )

    if opcode == tab.OPCODE_MISC_MEM:
        return Instruction("fence", InstrFormat.I, rd=rd, rs1=rs1)

    if opcode == tab.OPCODE_SYSTEM:
        if word in _SYSTEM_BY_WORD:
            return Instruction(_SYSTEM_BY_WORD[word], InstrFormat.SYSTEM)
        mnemonic = _CSR_BY_F3.get(funct3)
        if mnemonic is None:
            raise DecodeError(f"unknown SYSTEM encoding {word:#010x}")
        fmt = InstrFormat.CSRI if mnemonic.endswith("i") else InstrFormat.CSR
        return Instruction(
            mnemonic, fmt, rd=rd, rs1=rs1, csr=bits(word, 31, 20)
        )

    if opcode in (tab.OPCODE_CRE, tab.OPCODE_CRD):
        is_encrypt = opcode == tab.OPCODE_CRE
        if funct7 & 0b1000000:
            raise DecodeError(f"reserved RegVault encoding {word:#010x}")
        end, start = (funct7 >> 3) & 0b111, funct7 & 0b111
        if start > end:
            raise DecodeError(
                f"invalid RegVault byte range [{end}:{start}] in {word:#010x}"
            )
        ksel = KeySelect(funct3)
        return Instruction(
            tab.crypto_mnemonic(is_encrypt, ksel),
            InstrFormat.CRYPTO,
            rd=rd, rs1=rs1, rs2=rs2,
            ksel=ksel, byte_range=ByteRange(end, start),
        )

    raise DecodeError(f"unknown opcode {opcode:#04x} in word {word:#010x}")


# --------------------------------------------------------------- memoization --

#: One decode cache for the whole process: every hart (and the block
#: translator) shares it, so multi-machine runs pay the decode cost for
#: a given encoding once, and long sweeps cannot leak memory through
#: per-hart caches.  The cap is generous — a whole kernel image decodes
#: to a few thousand distinct words — and overflow simply clears the
#: cache (refilling is cheap and correctness is unaffected).
_DECODE_CACHE: dict[int, Instruction] = {}
DECODE_CACHE_MAX = 1 << 16


def decode_cached(word: int) -> Instruction:
    """Memoized :func:`decode`; failures are not cached."""
    ins = _DECODE_CACHE.get(word)
    if ins is None:
        if len(_DECODE_CACHE) >= DECODE_CACHE_MAX:
            _DECODE_CACHE.clear()
        ins = decode(word)
        _DECODE_CACHE[word] = ins
    return ins


def decode_cache_size() -> int:
    return len(_DECODE_CACHE)


def clear_decode_cache() -> None:
    _DECODE_CACHE.clear()


# ------------------------------------------------------------ batch predecode --

#: Mnemonics that end a translated basic block.  Control transfers end a
#: block because the successor PC is dynamic; CSR ops end one so that
#: architectural-state changes (mstatus/mie/mtvec/key CSRs) take effect
#: before any later predecoded instruction executes; wfi ends one so the
#: machine loop can observe ``waiting_for_interrupt`` immediately.
BLOCK_TERMINATORS = (
    frozenset(tab.BRANCHES)
    | frozenset(tab.CSR_OPS)
    | frozenset(tab.SYSTEM_OPS)
    | frozenset({"jal", "jalr"})
)


def predecode(words: Sequence[int]) -> list[Instruction]:
    """Decode a fetched window of words into one basic block.

    Decoding stops *after* the first block-terminating instruction, or
    *before* the first word that does not decode (the block then ends
    early and the single-step path raises the architectural
    illegal-instruction trap when execution actually reaches it).
    """
    block: list[Instruction] = []
    for word in words:
        try:
            ins = decode_cached(word)
        except DecodeError:
            break
        block.append(ins)
        if ins.mnemonic in BLOCK_TERMINATORS:
            break
    return block

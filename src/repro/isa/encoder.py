"""Instruction -> 32-bit word encoder."""

from __future__ import annotations

from repro.errors import EncodingError
from repro.isa import instructions as tab
from repro.isa.instructions import Instruction, InstrFormat
from repro.utils.bits import mask


def _check_reg(value: int, what: str) -> int:
    if not 0 <= value <= 31:
        raise EncodingError(f"{what} out of range: {value}")
    return value


def _check_imm(value: int, bits: int, what: str) -> int:
    low, high = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not low <= value <= high:
        raise EncodingError(
            f"{what} {value} does not fit in {bits}-bit signed immediate"
        )
    return value & mask(bits)


def _encode_r(opcode: int, funct3: int, funct7: int, ins: Instruction) -> int:
    return (
        (funct7 << 25)
        | (_check_reg(ins.rs2, "rs2") << 20)
        | (_check_reg(ins.rs1, "rs1") << 15)
        | (funct3 << 12)
        | (_check_reg(ins.rd, "rd") << 7)
        | opcode
    )


def _encode_i(opcode: int, funct3: int, ins: Instruction) -> int:
    imm = _check_imm(ins.imm, 12, "immediate")
    return (
        (imm << 20)
        | (_check_reg(ins.rs1, "rs1") << 15)
        | (funct3 << 12)
        | (_check_reg(ins.rd, "rd") << 7)
        | opcode
    )


def _encode_s(opcode: int, funct3: int, ins: Instruction) -> int:
    imm = _check_imm(ins.imm, 12, "store offset")
    return (
        ((imm >> 5) << 25)
        | (_check_reg(ins.rs2, "rs2") << 20)
        | (_check_reg(ins.rs1, "rs1") << 15)
        | (funct3 << 12)
        | ((imm & 0x1F) << 7)
        | opcode
    )


def _encode_b(opcode: int, funct3: int, ins: Instruction) -> int:
    if ins.imm % 2:
        raise EncodingError(f"branch offset must be even, got {ins.imm}")
    imm = _check_imm(ins.imm, 13, "branch offset")
    return (
        (((imm >> 12) & 1) << 31)
        | (((imm >> 5) & 0x3F) << 25)
        | (_check_reg(ins.rs2, "rs2") << 20)
        | (_check_reg(ins.rs1, "rs1") << 15)
        | (funct3 << 12)
        | (((imm >> 1) & 0xF) << 8)
        | (((imm >> 11) & 1) << 7)
        | opcode
    )


def _encode_u(opcode: int, ins: Instruction) -> int:
    imm = ins.imm
    if not -(1 << 31) <= imm < (1 << 32):
        raise EncodingError(f"U-type immediate out of range: {imm:#x}")
    if imm & 0xFFF:
        raise EncodingError("U-type immediate must be 4KiB aligned")
    return ((imm & 0xFFFFF000) & 0xFFFFFFFF) | (_check_reg(ins.rd, "rd") << 7) | opcode


def _encode_j(opcode: int, ins: Instruction) -> int:
    if ins.imm % 2:
        raise EncodingError(f"jump offset must be even, got {ins.imm}")
    imm = _check_imm(ins.imm, 21, "jump offset")
    return (
        (((imm >> 20) & 1) << 31)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 12) & 0xFF) << 12)
        | (_check_reg(ins.rd, "rd") << 7)
        | opcode
    )


def _encode_crypto(ins: Instruction) -> int:
    """RegVault encoding: funct7[5:0] = (end << 3) | start, funct3 = ksel."""
    opcode = tab.OPCODE_CRE if ins.mnemonic.startswith("cre") else tab.OPCODE_CRD
    funct7 = (ins.byte_range.end << 3) | ins.byte_range.start
    return _encode_r(opcode, int(ins.ksel), funct7, ins)


def encode(ins: Instruction) -> int:
    """Encode an :class:`Instruction` into its 32-bit machine word."""
    m = ins.mnemonic

    if m in tab.R_TYPE:
        funct7, funct3 = tab.R_TYPE[m]
        return _encode_r(tab.OPCODE_OP, funct3, funct7, ins)
    if m in tab.R_TYPE_32:
        funct7, funct3 = tab.R_TYPE_32[m]
        return _encode_r(tab.OPCODE_OP_32, funct3, funct7, ins)
    if m in tab.I_TYPE_ALU:
        return _encode_i(tab.OPCODE_OP_IMM, tab.I_TYPE_ALU[m], ins)
    if m in tab.I_TYPE_SHIFT:
        funct6, funct3 = tab.I_TYPE_SHIFT[m]
        if not 0 <= ins.imm <= 63:
            raise EncodingError(f"shift amount out of range: {ins.imm}")
        return (
            (((funct6 << 6) | ins.imm) << 20)
            | (_check_reg(ins.rs1, "rs1") << 15)
            | (funct3 << 12)
            | (_check_reg(ins.rd, "rd") << 7)
            | tab.OPCODE_OP_IMM
        )
    if m in tab.I_TYPE_ALU_32:
        return _encode_i(tab.OPCODE_OP_IMM_32, tab.I_TYPE_ALU_32[m], ins)
    if m in tab.I_TYPE_SHIFT_32:
        funct7, funct3 = tab.I_TYPE_SHIFT_32[m]
        if not 0 <= ins.imm <= 31:
            raise EncodingError(f"shift amount out of range: {ins.imm}")
        return (
            ((funct7 << 5 | ins.imm) << 20)
            | (_check_reg(ins.rs1, "rs1") << 15)
            | (funct3 << 12)
            | (_check_reg(ins.rd, "rd") << 7)
            | tab.OPCODE_OP_IMM_32
        )
    if m in tab.LOADS:
        return _encode_i(tab.OPCODE_LOAD, tab.LOADS[m], ins)
    if m in tab.STORES:
        return _encode_s(tab.OPCODE_STORE, tab.STORES[m], ins)
    if m in tab.BRANCHES:
        return _encode_b(tab.OPCODE_BRANCH, tab.BRANCHES[m], ins)
    if m == "lui":
        return _encode_u(tab.OPCODE_LUI, ins)
    if m == "auipc":
        return _encode_u(tab.OPCODE_AUIPC, ins)
    if m == "jal":
        return _encode_j(tab.OPCODE_JAL, ins)
    if m == "jalr":
        return _encode_i(tab.OPCODE_JALR, 0b000, ins)
    if m == "fence":
        return _encode_i(tab.OPCODE_MISC_MEM, 0b000, ins)
    if m in tab.CSR_OPS:
        funct3 = tab.CSR_OPS[m]
        if not 0 <= ins.csr <= 0xFFF:
            raise EncodingError(f"CSR number out of range: {ins.csr:#x}")
        return (
            (ins.csr << 20)
            | (_check_reg(ins.rs1, "rs1/uimm") << 15)
            | (funct3 << 12)
            | (_check_reg(ins.rd, "rd") << 7)
            | tab.OPCODE_SYSTEM
        )
    if m in tab.SYSTEM_OPS:
        return tab.SYSTEM_OPS[m]
    if ins.fmt is InstrFormat.CRYPTO:
        return _encode_crypto(ins)

    raise EncodingError(f"cannot encode mnemonic {m!r}")

"""A minimal object-file format for assembled programs.

Lets kernels and workloads be built once and shipped/loaded without the
assembler — the moral equivalent of an ELF for this toolchain.  The
format ("RVO1") is deliberately simple and versioned:

```
magic    4s   b"RVO1"
entry    <Q
nsect    <I
  per section:  name-len <H, name, base <Q, size <Q, bytes
nsym     <I
  per symbol:   name-len <H, name, value <Q
crc32    <I   over everything before it
```

All integers little-endian.  :func:`save_program`/:func:`load_program`
work on paths or file objects; :func:`dumps`/:func:`loads` on bytes.
"""

from __future__ import annotations

import io
import struct
import zlib

from repro.errors import ReproError
from repro.isa.assembler import Program, Section

MAGIC = b"RVO1"


class ObjFileError(ReproError):
    """Malformed or corrupted object file."""


def dumps(program: Program) -> bytes:
    """Serialize a Program to bytes."""
    out = io.BytesIO()
    out.write(MAGIC)
    out.write(struct.pack("<Q", program.entry))

    sections = [s for s in program.sections.values()]
    out.write(struct.pack("<I", len(sections)))
    for section in sections:
        name = section.name.encode()
        out.write(struct.pack("<H", len(name)))
        out.write(name)
        out.write(struct.pack("<QQ", section.base, len(section.data)))
        out.write(bytes(section.data))

    symbols = sorted(program.symbols.items())
    out.write(struct.pack("<I", len(symbols)))
    for name_str, value in symbols:
        name = name_str.encode()
        out.write(struct.pack("<H", len(name)))
        out.write(name)
        out.write(struct.pack("<Q", value))

    body = out.getvalue()
    return body + struct.pack("<I", zlib.crc32(body))


def loads(blob: bytes) -> Program:
    """Deserialize a Program from bytes (CRC-checked)."""
    if len(blob) < len(MAGIC) + 4:
        raise ObjFileError("object file truncated")
    body, (crc,) = blob[:-4], struct.unpack("<I", blob[-4:])
    if zlib.crc32(body) != crc:
        raise ObjFileError("object file checksum mismatch")

    stream = io.BytesIO(body)
    if stream.read(4) != MAGIC:
        raise ObjFileError("bad magic (not an RVO1 object file)")

    def read(fmt: str):
        size = struct.calcsize(fmt)
        data = stream.read(size)
        if len(data) != size:
            raise ObjFileError("object file truncated")
        return struct.unpack(fmt, data)

    def read_name() -> str:
        (length,) = read("<H")
        raw = stream.read(length)
        if len(raw) != length:
            raise ObjFileError("object file truncated")
        return raw.decode()

    (entry,) = read("<Q")
    (nsect,) = read("<I")
    sections: dict[str, Section] = {}
    for _ in range(nsect):
        name = read_name()
        base, size = read("<QQ")
        data = stream.read(size)
        if len(data) != size:
            raise ObjFileError("object file truncated")
        sections[name] = Section(name, base, bytearray(data))

    (nsym,) = read("<I")
    symbols: dict[str, int] = {}
    for _ in range(nsym):
        name = read_name()
        (value,) = read("<Q")
        symbols[name] = value

    return Program(sections=sections, symbols=symbols, entry=entry)


def save_program(program: Program, path) -> None:
    """Write a Program to ``path``."""
    with open(path, "wb") as handle:
        handle.write(dumps(program))


def load_program(path) -> Program:
    """Read a Program from ``path``."""
    with open(path, "rb") as handle:
        return loads(handle.read())

"""Typed structure copying (the paper's ``memcpy`` handling, §2.4.2).

A raw byte copy of a struct with randomized fields is *wrong* under
RegVault: ciphertexts are bound to their storage addresses through the
tweak, so the bytes landing at a new address decrypt to garbage (or
trip the integrity check).  The paper's compiler "identifies the copied
data type by tracing the type information of the source and destination
pointers, then re-encrypts the annotated fields within the copied data
using the new addresses as tweaks".

:func:`build_typed_copy` generates exactly that: a
``copy_<struct>(dst, src)`` function whose field accesses go through
the typed IR — the instrumentation pass then decrypts each annotated
field with the *source* address tweak and re-encrypts with the
*destination* address tweak.  Unannotated fields degrade to plain
moves, and the baseline build compiles the same function into an
ordinary field-wise memcpy.
"""

from __future__ import annotations

from repro.compiler import ir
from repro.compiler.builder import IRBuilder
from repro.compiler.types import (
    ArrayType,
    FunctionType,
    I64,
    StructType,
    VOID,
)
from repro.errors import IRError


def copy_function_name(struct: StructType) -> str:
    return f"copy_{struct.name}"


def build_typed_copy(
    module: ir.Module, struct: StructType, name: str | None = None
) -> ir.Function:
    """Generate ``copy_<struct>(dst, src)`` and add it to ``module``.

    Nested struct fields are copied through their own generated copy
    functions (created on demand); fixed-size array fields are copied
    element-wise with the element annotation honored.
    """
    name = name or copy_function_name(struct)
    if name in module.functions:
        return module.functions[name]

    func = ir.Function(name, FunctionType(VOID, (I64, I64)), ["dst", "src"])
    module.add_function(func)
    b = IRBuilder(func)
    b.block("entry")
    dst, src = func.params

    for field in struct.fields:
        if isinstance(field.type, StructType):
            inner = build_typed_copy(module, field.type)
            dst_field = b.field_addr(dst, struct, field.name)
            src_field = b.field_addr(src, struct, field.name)
            b.call(inner.name, [dst_field, src_field], returns=False)
        elif isinstance(field.type, ArrayType):
            _copy_array_field(b, struct, field, dst, src)
        else:
            value = b.load_field(src, struct, field.name)
            b.store_field(dst, struct, field.name, value)
    b.ret()
    return func


def _copy_array_field(b: IRBuilder, struct, field, dst, src) -> None:
    element = field.type.element
    if isinstance(element, (StructType, ArrayType)):
        raise IRError(
            f"typed copy of nested aggregate arrays is not supported "
            f"({struct.name}.{field.name})"
        )
    dst_base = b.field_addr(dst, struct, field.name)
    src_base = b.field_addr(src, struct, field.name)
    for index in range(field.type.count):
        src_el = b.index_addr(
            src_base, ir.Const(index),
            elem_type=element, elem_annotation=field.annotation,
        )
        dst_el = b.index_addr(
            dst_base, ir.Const(index),
            elem_type=element, elem_annotation=field.annotation,
        )
        value = b.load(src_el, element, field.annotation, key=field.key)
        b.store(dst_el, value, element, field.annotation, key=field.key)

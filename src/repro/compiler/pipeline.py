"""Compiler driver: options, pass ordering, module assembly.

``compile_module`` turns an IR :class:`~repro.compiler.ir.Module` into
assembly text under a protection configuration, mirroring the paper's
build matrix (baseline / RA / FP / NON-CONTROL / FULL, Figure 5):

1. build ``__init_globals`` from declarative global initializers (so
   protected data is encrypted with the live keys at runtime),
2. RegVault instrumentation (annotation + function-pointer lowering),
3. sensitivity analysis,
4. register allocation with spill protection,
5. RV64 code generation and data-section emission.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler import ir
from repro.compiler.builder import IRBuilder
from repro.compiler.codegen import CodegenOptions, FunctionCodegen, emit_globals
from repro.compiler.instrument import InstrumentOptions, InstrumentPass
from repro.compiler.layout import LayoutEngine
from repro.compiler.sensitivity import analyze_sensitivity
from repro.compiler.types import (
    ArrayType,
    FunctionType,
    StructType,
    VOID,
)
from repro.errors import IRError


@dataclass(frozen=True)
class CompileOptions:
    """One protection configuration (paper §4.4.2)."""

    name: str = "full"
    #: Run scalar optimizations (folding, copy-prop, DCE) after lowering.
    optimize: bool = True
    #: Return-address protection (compiler option, §3.1.1).
    ra: bool = True
    #: Function-pointer protection (compiler option, §3.1.2).
    fp: bool = True
    #: Honor __rand/__rand_integrity annotations (§3.2).
    noncontrol: bool = True
    #: Register-spilling protection (§2.4.4).
    protect_spills: bool = True

    @classmethod
    def baseline(cls) -> "CompileOptions":
        return cls("baseline", ra=False, fp=False, noncontrol=False,
                   protect_spills=False)

    @classmethod
    def ra_only(cls) -> "CompileOptions":
        return cls("ra", ra=True, fp=False, noncontrol=False,
                   protect_spills=False)

    @classmethod
    def fp_only(cls) -> "CompileOptions":
        return cls("fp", ra=False, fp=True, noncontrol=False,
                   protect_spills=False)

    @classmethod
    def noncontrol_only(cls) -> "CompileOptions":
        return cls("noncontrol", ra=False, fp=False, noncontrol=True,
                   protect_spills=False)

    @classmethod
    def full(cls) -> "CompileOptions":
        return cls("full", ra=True, fp=True, noncontrol=True,
                   protect_spills=True)

    @property
    def any_protection(self) -> bool:
        return self.ra or self.fp or self.noncontrol or self.protect_spills


@dataclass
class FrameInfo:
    """Stack frame facts for one compiled function."""

    frame_size: int
    ra_offset: int | None  # None for leaf functions (ra never saved)


@dataclass
class CompiledModule:
    """Assembly plus the metadata consumers need (kernel, attacks, tests)."""

    asm: str
    layout: LayoutEngine
    options: CompileOptions
    function_names: list[str] = field(default_factory=list)
    frames: dict[str, FrameInfo] = field(default_factory=dict)


INIT_GLOBALS_NAME = "__init_globals"


def _build_init_globals(module: ir.Module) -> ir.Function | None:
    """Generate a function that installs declarative global initializers.

    Because the stores go through the typed IR, protected fields come out
    encrypted with the storage-address tweaks — the moral equivalent of
    the paper's boot-time randomization of statically allocated data
    (§3.2.4 re-allocates static page tables for the same reason).
    """
    specs = [
        g for g in module.globals.values()
        if isinstance(g.init, (dict, list))
        or (isinstance(g.init, int) and g.annotation.protected)
    ]
    if not specs:
        return None
    func = ir.Function(INIT_GLOBALS_NAME, FunctionType(VOID, ()))
    builder = IRBuilder(func)
    builder.block("entry")

    def value_operand(value):
        if isinstance(value, tuple) and value[0] == "func":
            return builder.addr_of_func(value[1])
        if isinstance(value, int):
            return ir.Const(value)
        raise IRError(f"unsupported initializer value {value!r}")

    for gvar in specs:
        base = builder.addr_of_global(gvar.name)
        if isinstance(gvar.init, dict):
            if not isinstance(gvar.type, StructType):
                raise IRError(
                    f"dict initializer on non-struct global {gvar.name}"
                )
            for field_name, value in gvar.init.items():
                builder.store_field(
                    base, gvar.type, field_name, value_operand(value)
                )
        elif isinstance(gvar.init, list):
            if not isinstance(gvar.type, ArrayType):
                raise IRError(
                    f"list initializer on non-array global {gvar.name}"
                )
            element = gvar.type.element
            for index, value in enumerate(gvar.init):
                addr = builder.index_addr(
                    base, ir.Const(index), elem_type=element,
                    elem_annotation=gvar.annotation,
                )
                builder.store(
                    addr, value_operand(value), element, gvar.annotation
                )
        else:  # annotated scalar
            builder.store(base, ir.Const(gvar.init), gvar.type,
                          gvar.annotation)
    builder.ret()
    return func


def compile_module(
    module: ir.Module, options: CompileOptions | None = None
) -> CompiledModule:
    """Compile ``module`` under ``options`` (default: full protection).

    The module is not mutated: lowering runs on a deep copy, so one IR
    module can be compiled under every protection configuration (that is
    how the Figure 5 benchmark matrix is produced).
    """
    import copy

    options = options or CompileOptions.full()
    layout = LayoutEngine(honor_annotations=options.noncontrol)

    from repro.compiler.verify import verify_module

    verify_module(module)
    module = copy.deepcopy(module)
    init_func = _build_init_globals(module)
    functions = dict(module.functions)
    if init_func is not None:
        if INIT_GLOBALS_NAME in functions:
            raise IRError(f"{INIT_GLOBALS_NAME} is reserved")
        functions[INIT_GLOBALS_NAME] = init_func

    instrument = InstrumentPass(
        layout,
        InstrumentOptions(noncontrol=options.noncontrol, fp=options.fp),
    )
    codegen_options = CodegenOptions(
        ra=options.ra, protect_spills=options.protect_spills
    )

    lines: list[str] = [".text"]
    names: list[str] = []
    frames: dict[str, FrameInfo] = {}
    for func in functions.values():
        instrument.run(func)
        if options.optimize:
            from repro.compiler.optimize import optimize_function

            optimize_function(func)
        analyze_sensitivity(func)
        generator = FunctionCodegen(func, layout, codegen_options)
        lines.extend(generator.generate())
        lines.append("")
        names.append(func.name)
        frames[func.name] = FrameInfo(
            frame_size=generator.frame_size,
            ra_offset=generator.ra_offset,
        )

    lines.extend(emit_globals(module, layout))
    return CompiledModule(
        asm="\n".join(lines) + "\n",
        layout=layout,
        options=options,
        function_names=names,
        frames=frames,
    )

"""Liveness analysis and linear-scan register allocation.

Implements the register discipline the paper's backend needs:

* virtual registers are mapped to physical registers by linear scan;
* values live across calls are only placed in callee-saved registers;
* **sensitive values** (see :mod:`repro.compiler.sensitivity`) receive a
  high spill cost, so they are "less likely to be spilled" (§2.4.4);
* when ``protect_spills`` is on, a sensitive value that crosses a call
  is *not* handed to a callee-saved register (the callee would spill it
  to its own frame in plaintext) — it is forced into an **encrypted
  spill slot** instead, realizing the paper's cross-call spilling
  protection.

Spilled sensitive values are flagged so the code generator wraps their
slot accesses in ``cre``/``crd`` with the dedicated spill key.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler import ir

#: Allocatable caller-saved registers (t4-t6 are reserved as scratch).
CALLER_SAVED_POOL = ("t0", "t1", "t2", "t3")
#: Allocatable callee-saved registers.
CALLEE_SAVED_POOL = (
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11"
)
#: Codegen scratch registers (never allocated).
SCRATCH = ("t4", "t5", "t6")

#: Instructions that clobber caller-saved state.
_CALL_LIKE = (ir.Call, ir.CallIndirect)


def _is_call_like(instr: ir.Instr) -> bool:
    if isinstance(instr, _CALL_LIKE):
        return True
    return isinstance(instr, ir.Intrinsic) and instr.name == "ecall"


@dataclass
class Interval:
    """Live interval of one virtual register."""

    vreg: int
    start: int
    end: int
    sensitive: bool = False
    crosses_call: bool = False

    def overlaps_position(self, pos: int) -> bool:
        return self.start <= pos <= self.end


@dataclass
class Allocation:
    """Result of register allocation for a function."""

    #: vreg id -> physical register name.
    registers: dict[int, str] = field(default_factory=dict)
    #: vreg id -> spill slot index.
    slots: dict[int, int] = field(default_factory=dict)
    #: spill slot indices that must be encrypted (sensitive data).
    protected_slots: set[int] = field(default_factory=set)
    #: callee-saved registers the prologue must save.
    used_callee_saved: list[str] = field(default_factory=list)
    num_slots: int = 0

    def location(self, vreg_id: int) -> tuple[str, int | str]:
        if vreg_id in self.registers:
            return ("reg", self.registers[vreg_id])
        if vreg_id in self.slots:
            return ("slot", self.slots[vreg_id])
        raise KeyError(f"vreg {vreg_id} was never allocated")


# ---------------------------------------------------------------- liveness --


def _defs_uses(instr: ir.Instr) -> tuple[set[int], set[int]]:
    defs = {instr.result.id} if instr.result is not None else set()
    uses = {
        op.id for op in instr.operands() if isinstance(op, ir.VReg)
    }
    return defs, uses


def block_liveness(func: ir.Function) -> tuple[dict, dict]:
    """Backward dataflow; returns (live_in, live_out) per block label."""
    gen: dict[str, set[int]] = {}
    kill: dict[str, set[int]] = {}
    succ: dict[str, list[str]] = {}
    for block in func.blocks:
        g: set[int] = set()
        k: set[int] = set()
        for instr in block.instructions:
            defs, uses = _defs_uses(instr)
            g |= uses - k
            k |= defs
        gen[block.label] = g
        kill[block.label] = k
        terminator = block.terminator
        succ[block.label] = terminator.successors() if terminator else []

    live_in = {b.label: set() for b in func.blocks}
    live_out = {b.label: set() for b in func.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(func.blocks):
            label = block.label
            out: set[int] = set()
            for s in succ[label]:
                out |= live_in[s]
            new_in = gen[label] | (out - kill[label])
            if out != live_out[label] or new_in != live_in[label]:
                live_out[label] = out
                live_in[label] = new_in
                changed = True
    return live_in, live_out


# ----------------------------------------------------------- interval build --


def build_intervals(func: ir.Function) -> tuple[list[Interval], list[int]]:
    """Number instructions, build per-vreg intervals, find call positions."""
    live_in, live_out = block_liveness(func)

    position = 0
    block_bounds: dict[str, tuple[int, int]] = {}
    instr_positions: list[tuple[int, ir.Instr]] = []
    for block in func.blocks:
        start = position
        for instr in block.instructions:
            instr_positions.append((position, instr))
            position += 2
        block_bounds[block.label] = (start, max(start, position - 2))

    starts: dict[int, int] = {}
    ends: dict[int, int] = {}
    def_positions: dict[int, set[int]] = {}

    def extend(vreg_id: int, pos: int) -> None:
        if vreg_id not in starts or pos < starts[vreg_id]:
            starts[vreg_id] = pos
        if vreg_id not in ends or pos > ends[vreg_id]:
            ends[vreg_id] = pos

    # Parameters are live from before the first instruction.
    for param in func.params:
        extend(param.id, -1)

    for pos, instr in instr_positions:
        defs, uses = _defs_uses(instr)
        for v in defs:
            extend(v, pos)
            def_positions.setdefault(v, set()).add(pos)
        for v in uses:
            extend(v, pos)

    for block in func.blocks:
        b_start, b_end = block_bounds[block.label]
        for v in live_in[block.label]:
            extend(v, b_start)
        for v in live_out[block.label]:
            extend(v, b_end)

    call_positions = [
        pos for pos, instr in instr_positions if _is_call_like(instr)
    ]

    intervals = []
    for vreg_id, start in starts.items():
        end = ends[vreg_id]
        defs = def_positions.get(vreg_id, set())
        # A call clobbers caller-saved state.  The interval survives it
        # unless the call IS its defining instruction (the value is
        # born after the clobber) or its final use (arguments are read
        # into a-registers before the jump).
        crosses = any(
            start <= cp <= end
            and not (cp == start and cp in defs)
            and cp != end
            for cp in call_positions
        )
        intervals.append(
            Interval(
                vreg=vreg_id,
                start=start,
                end=end,
                sensitive=vreg_id in func.sensitive,
                crosses_call=crosses,
            )
        )
    intervals.sort(key=lambda iv: (iv.start, iv.end))
    return intervals, call_positions


# -------------------------------------------------------------- linear scan --


def allocate(func: ir.Function, protect_spills: bool = True) -> Allocation:
    """Linear-scan allocation with RegVault spill policies."""
    intervals, _ = build_intervals(func)
    allocation = Allocation()

    free_caller = list(CALLER_SAVED_POOL)
    free_callee = list(CALLEE_SAVED_POOL)
    active: list[tuple[Interval, str, bool]] = []  # (interval, reg, is_callee)
    next_slot = 0

    def assign_slot(interval: Interval) -> None:
        nonlocal next_slot
        allocation.slots[interval.vreg] = next_slot
        if interval.sensitive and protect_spills:
            allocation.protected_slots.add(next_slot)
        next_slot += 1

    def expire(current_start: int) -> None:
        still_active = []
        for entry in active:
            interval, reg, is_callee = entry
            if interval.end < current_start:
                (free_callee if is_callee else free_caller).append(reg)
            else:
                still_active.append(entry)
        active[:] = still_active

    for interval in intervals:
        expire(interval.start)

        needs_callee = interval.crosses_call
        if needs_callee and interval.sensitive and protect_spills:
            # Cross-call spilling protection: do not let a callee spill
            # this plaintext; keep it in an encrypted caller slot.
            assign_slot(interval)
            continue

        pool = free_callee if needs_callee else free_caller
        fallback = free_callee if not needs_callee else None
        if pool:
            reg = pool.pop(0)
            is_callee = pool is free_callee
        elif fallback:
            reg = fallback.pop(0)
            is_callee = True
        else:
            # Spill: evict the longest-living compatible non-sensitive
            # interval if it outlives us, else spill ourselves.
            candidates = [
                entry for entry in active
                if entry[2] == needs_callee or entry[2]
            ]
            victim = None
            for entry in sorted(
                candidates,
                key=lambda e: (e[0].sensitive, -e[0].end),
            ):
                if (
                    e_compatible(entry, needs_callee)
                    and entry[0].end > interval.end
                ):
                    victim = entry
                    break
            if victim is not None and not victim[0].sensitive:
                # Retroactively demote the victim to a spill slot for its
                # whole interval (allocation precedes codegen, so its def
                # will simply be committed to the slot instead).
                active.remove(victim)
                allocation.registers.pop(victim[0].vreg, None)
                assign_slot(victim[0])
                reg, is_callee = victim[1], victim[2]
            else:
                assign_slot(interval)
                continue

        if is_callee and reg not in allocation.used_callee_saved:
            allocation.used_callee_saved.append(reg)
        allocation.registers[interval.vreg] = reg
        active.append((interval, reg, is_callee))

    allocation.num_slots = next_slot
    return allocation


def e_compatible(entry: tuple[Interval, str, bool], needs_callee: bool) -> bool:
    """A victim is compatible if its register satisfies our pool need."""
    _, _, is_callee = entry
    return is_callee or not needs_callee

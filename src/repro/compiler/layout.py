"""Annotation-aware struct layout.

Layout depends on whether non-control-data protection is enabled: the
baseline kernel build ignores annotations (natural sizes), the RegVault
build expands annotated fields to ciphertext-block storage.  This is
exactly what the paper's annotation macros do at compile time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.types import (
    Annotation,
    ArrayType,
    StructType,
    Type,
    storage_align,
    storage_size,
)
from repro.errors import IRError


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


@dataclass(frozen=True)
class FieldSlot:
    """Resolved placement of one field."""

    name: str
    offset: int
    size: int
    type: Type
    annotation: Annotation


@dataclass(frozen=True)
class StructLayout:
    """Resolved placement of all fields of a struct."""

    struct: StructType
    slots: tuple[FieldSlot, ...]
    size: int
    align: int

    def slot(self, name: str) -> FieldSlot:
        for s in self.slots:
            if s.name == name:
                return s
        raise IRError(f"struct {self.struct.name} has no field {name!r}")


class LayoutEngine:
    """Computes (and caches) layouts under a protection policy.

    ``honor_annotations=False`` reproduces the unprotected baseline
    layout; ``True`` applies RegVault storage expansion.
    """

    def __init__(self, honor_annotations: bool = True):
        self.honor_annotations = honor_annotations
        self._cache: dict[str, StructLayout] = {}

    def effective_annotation(self, annotation: Annotation) -> Annotation:
        return annotation if self.honor_annotations else Annotation.NONE

    def struct_layout(self, struct: StructType) -> StructLayout:
        cached = self._cache.get(struct.name)
        if cached is not None and cached.struct == struct:
            return cached

        offset = 0
        max_align = 1
        slots = []
        for field in struct.fields:
            annotation = self.effective_annotation(field.annotation)
            if isinstance(field.type, StructType):
                if annotation.protected:
                    raise IRError(
                        "annotations apply to scalar fields, not nested "
                        f"structs ({struct.name}.{field.name})"
                    )
                inner = self.struct_layout(field.type)
                size, align = inner.size, inner.align
            elif isinstance(field.type, ArrayType):
                if annotation.protected:
                    element_size = storage_size(field.type.element, annotation)
                    align = storage_align(field.type.element, annotation)
                    size = element_size * field.type.count
                else:
                    size, align = field.type.size, field.type.align
            else:
                size = storage_size(field.type, annotation)
                align = storage_align(field.type, annotation)
            offset = _align_up(offset, align)
            slots.append(
                FieldSlot(field.name, offset, size, field.type, annotation)
            )
            offset += size
            max_align = max(max_align, align)

        layout = StructLayout(
            struct=struct,
            slots=tuple(slots),
            size=_align_up(offset, max_align) if offset else 0,
            align=max_align,
        )
        self._cache[struct.name] = layout
        return layout

    def sizeof(self, type_: Type, annotation: Annotation = Annotation.NONE) -> int:
        annotation = self.effective_annotation(annotation)
        if isinstance(type_, StructType):
            return self.struct_layout(type_).size
        if isinstance(type_, ArrayType):
            return self.sizeof(type_.element, annotation) * type_.count
        return storage_size(type_, annotation)

    def alignof(self, type_: Type, annotation: Annotation = Annotation.NONE) -> int:
        annotation = self.effective_annotation(annotation)
        if isinstance(type_, StructType):
            return self.struct_layout(type_).align
        if isinstance(type_, ArrayType):
            return self.alignof(type_.element, annotation)
        return storage_align(type_, annotation)

"""IR well-formedness verification.

Catches malformed IR before it reaches lowering/codegen, where the
failure modes are much harder to diagnose (silent wrong code, assembler
errors pointing at generated text).  Checked properties:

* every block ends in exactly one terminator, with no instructions
  after it;
* every branch target names an existing block;
* every virtual register is defined exactly once (the IR is not SSA,
  but only :class:`~repro.compiler.ir.Move` may redefine — mutable
  loop variables are Moves by construction);
* every used register has a definition somewhere in the function
  (parameters count as definitions);
* locals referenced by ``AddrOfLocal`` are declared;
* call arities match the callee's signature when the callee is known.

``verify_module`` walks every function and raises
:class:`~repro.errors.IRError` listing all findings.
"""

from __future__ import annotations

from repro.compiler import ir
from repro.errors import IRError


def verify_function(func: ir.Function, module: ir.Module | None = None) -> None:
    """Raise :class:`IRError` when the function is malformed."""
    problems: list[str] = []
    labels = {block.label for block in func.blocks}

    if not func.blocks:
        raise IRError(f"{func.name}: function has no blocks")

    defined: set[int] = {param.id for param in func.params}
    move_targets: set[int] = set()

    # Pass 1: definitions, terminator discipline, branch targets.
    for block in func.blocks:
        if not block.instructions:
            problems.append(f"block {block.label} is empty")
            continue
        terminator = block.instructions[-1]
        if not isinstance(terminator, ir.Terminator):
            problems.append(f"block {block.label} lacks a terminator")
        for index, instr in enumerate(block.instructions):
            if isinstance(instr, ir.Terminator):
                if index != len(block.instructions) - 1:
                    problems.append(
                        f"block {block.label}: instructions after "
                        f"terminator at position {index}"
                    )
                for target in instr.successors():
                    if target not in labels:
                        problems.append(
                            f"block {block.label}: branch to unknown "
                            f"block {target!r}"
                        )
            result = instr.result
            if result is not None:
                if isinstance(instr, ir.Move):
                    move_targets.add(result.id)
                elif result.id in defined and result.id not in move_targets:
                    problems.append(
                        f"%v{result.id} defined more than once "
                        f"(in block {block.label})"
                    )
                defined.add(result.id)

    # Pass 2: uses, locals, call arities.
    for block in func.blocks:
        for instr in block.instructions:
            for operand in instr.operands():
                if isinstance(operand, ir.VReg) and operand.id not in defined:
                    problems.append(
                        f"block {block.label}: use of undefined "
                        f"%v{operand.id} in `{instr}`"
                    )
            if isinstance(instr, ir.AddrOfLocal):
                if instr.local not in func.locals:
                    problems.append(
                        f"block {block.label}: unknown local "
                        f"{instr.local!r}"
                    )
            if isinstance(instr, ir.Call) and module is not None:
                callee = module.functions.get(instr.func)
                if callee is not None and len(instr.args) != len(
                    callee.type.params
                ):
                    problems.append(
                        f"block {block.label}: call to {instr.func} with "
                        f"{len(instr.args)} args, expects "
                        f"{len(callee.type.params)}"
                    )

    if problems:
        summary = "\n  ".join(problems)
        raise IRError(f"{func.name}: malformed IR:\n  {summary}")


def verify_module(module: ir.Module) -> None:
    """Verify every function; report the first offender fully."""
    for func in module.functions.values():
        verify_function(func, module)
    for gvar in module.globals.values():
        if isinstance(gvar.init, list):
            from repro.compiler.types import ArrayType

            if isinstance(gvar.type, ArrayType) and (
                len(gvar.init) > gvar.type.count
            ):
                raise IRError(
                    f"global {gvar.name}: {len(gvar.init)} initializers "
                    f"for {gvar.type.count} elements"
                )

"""RegVault instrumentation pass (§2.4.2).

Lowers typed :class:`Load`/:class:`Store`/address instructions into raw
memory operations, inserting ``cre`` before stores and ``crd`` after
loads of protected data:

* annotated scalar fields (``__rand`` / ``__rand_integrity``) use their
  **storage address as the tweak** to defeat spatial substitution;
* function-pointer loads/stores are instrumented when the ``fp``
  compiler option is on, with the dedicated function-pointer key
  (Table 2);
* ``__rand_integrity`` 64-bit data is split into two ciphertext words
  (Figure 2c): low half encrypted with range [3:0] at ``addr``, high
  half with range [7:4] at ``addr + 8``, reassembled with ``or``.

The pass is layout-aware: field offsets and array strides are resolved
against the active :class:`~repro.compiler.layout.LayoutEngine`, so the
same IR compiles to both the baseline and the protected kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler import ir
from repro.compiler.layout import LayoutEngine
from repro.compiler.types import (
    Annotation,
    IntType,
    PointerType,
    Type,
    integrity_range_for,
)
from repro.crypto.keys import KeySelect
from repro.errors import IRError


@dataclass
class InstrumentOptions:
    """Which protections the compiler applies (paper's build configs)."""

    #: Honor ``__rand``/``__rand_integrity`` annotations (non-control data).
    noncontrol: bool = True
    #: Instrument function-pointer loads/stores (compiler option, §2.4.1).
    fp: bool = True
    #: Default key for annotated non-control data.
    data_key: KeySelect = KeySelect.D
    #: Dedicated key for function pointers (§3.1.2).
    fp_key: KeySelect = KeySelect.B


def _natural_width(type_: Type) -> tuple[int, bool]:
    """(bytes, signed) for a raw access of an unprotected value."""
    if isinstance(type_, PointerType):
        return 8, False
    if isinstance(type_, IntType):
        return type_.size, type_.bits < 64
    raise IRError(f"cannot load/store value of type {type_}")


class InstrumentPass:
    """Rewrites one function in place."""

    def __init__(self, layout: LayoutEngine, options: InstrumentOptions):
        self.layout = layout
        self.options = options

    # -- helpers ---------------------------------------------------------------

    def _should_protect(self, type_: Type, annotation: Annotation) -> bool:
        if annotation.protected and self.options.noncontrol:
            return True
        if (
            self.options.fp
            and isinstance(type_, PointerType)
            and type_.is_function_pointer
        ):
            return True
        return False

    def _key_for(
        self, type_: Type, annotation: Annotation, override: KeySelect | None
    ) -> KeySelect:
        if override is not None:
            return override
        if isinstance(type_, PointerType) and type_.is_function_pointer:
            return self.options.fp_key
        return self.options.data_key

    @staticmethod
    def _is_split(type_: Type, annotation: Annotation) -> bool:
        """True for the two-ciphertext 64-bit integrity scheme (Fig 2c)."""
        if not annotation.has_integrity:
            return False
        if isinstance(type_, PointerType):
            return True
        return isinstance(type_, IntType) and type_.bits == 64

    # -- the pass ---------------------------------------------------------------

    def run(self, func: ir.Function) -> None:
        for block in func.blocks:
            new_instrs: list[ir.Instr] = []
            for instr in block.instructions:
                if isinstance(instr, ir.Load):
                    new_instrs.extend(self._lower_load(func, instr))
                elif isinstance(instr, ir.Store):
                    new_instrs.extend(self._lower_store(func, instr))
                elif isinstance(instr, ir.FieldAddr):
                    new_instrs.extend(self._lower_field_addr(func, instr))
                elif isinstance(instr, ir.IndexAddr):
                    new_instrs.extend(self._lower_index_addr(func, instr))
                else:
                    new_instrs.append(instr)
            block.instructions = new_instrs

    def _lower_field_addr(self, func, instr: ir.FieldAddr):
        layout = self.layout.struct_layout(instr.struct)
        offset = layout.slot(instr.field).offset
        return [
            ir.BinOp("add", instr.result, instr.base, ir.Const(offset))
        ]

    def _lower_index_addr(self, func: ir.Function, instr: ir.IndexAddr):
        if instr.elem_type is not None:
            stride = self.layout.sizeof(instr.elem_type, instr.elem_annotation)
        else:
            stride = instr.stride
        if stride <= 0:
            raise IRError("IndexAddr with non-positive stride")
        # base + index * stride, folded when the index is constant.
        if isinstance(instr.index, ir.Const):
            return [
                ir.BinOp(
                    "add", instr.result, instr.base,
                    ir.Const(instr.index.value * stride),
                )
            ]
        scaled = func.new_reg(name="idx_scaled")
        return [
            ir.BinOp("mul", scaled, instr.index, ir.Const(stride)),
            ir.BinOp("add", instr.result, instr.base, scaled),
        ]

    def _lower_load(self, func: ir.Function, instr: ir.Load):
        protect = self._should_protect(instr.type, instr.annotation)
        if not protect:
            width, signed = _natural_width(instr.type)
            return [ir.RawLoad(instr.result, instr.ptr, width, signed)]

        key = self._key_for(instr.type, instr.annotation, instr.key)
        annotation = (
            instr.annotation
            if instr.annotation.protected
            else Annotation.RAND  # fp protection without explicit annotation
        )
        if self._is_split(instr.type, annotation):
            lo_ct = func.new_reg(name="ct_lo")
            hi_ct = func.new_reg(name="ct_hi")
            hi_addr = func.new_reg(name="addr_hi")
            lo_pt = func.new_reg(name="pt_lo")
            hi_pt = func.new_reg(name="pt_hi")
            return [
                ir.RawLoad(lo_ct, instr.ptr, 8),
                ir.BinOp("add", hi_addr, instr.ptr, ir.Const(8)),
                ir.RawLoad(hi_ct, hi_addr, 8),
                ir.CryptoOp(lo_pt, "dec", lo_ct, instr.ptr, key, (3, 0)),
                ir.CryptoOp(hi_pt, "dec", hi_ct, hi_addr, key, (7, 4)),
                ir.BinOp("or", instr.result, lo_pt, hi_pt),
            ]
        byte_range = integrity_range_for(instr.type)
        if not annotation.has_integrity:
            byte_range = (7, 0)
        ciphertext = func.new_reg(name="ct")
        return [
            ir.RawLoad(ciphertext, instr.ptr, 8),
            ir.CryptoOp(
                instr.result, "dec", ciphertext, instr.ptr, key, byte_range
            ),
        ]

    def _lower_store(self, func: ir.Function, instr: ir.Store):
        protect = self._should_protect(instr.type, instr.annotation)
        if not protect:
            width, _ = _natural_width(instr.type)
            return [ir.RawStore(instr.ptr, instr.value, width)]

        key = self._key_for(instr.type, instr.annotation, instr.key)
        annotation = (
            instr.annotation
            if instr.annotation.protected
            else Annotation.RAND
        )
        if self._is_split(instr.type, annotation):
            lo_ct = func.new_reg(name="ct_lo")
            hi_ct = func.new_reg(name="ct_hi")
            hi_addr = func.new_reg(name="addr_hi")
            return [
                ir.CryptoOp(lo_ct, "enc", instr.value, instr.ptr, key, (3, 0)),
                ir.BinOp("add", hi_addr, instr.ptr, ir.Const(8)),
                ir.CryptoOp(hi_ct, "enc", instr.value, hi_addr, key, (7, 4)),
                ir.RawStore(instr.ptr, lo_ct, 8),
                ir.RawStore(hi_addr, hi_ct, 8),
            ]
        byte_range = integrity_range_for(instr.type)
        if not annotation.has_integrity:
            byte_range = (7, 0)
        ciphertext = func.new_reg(name="ct")
        return [
            ir.CryptoOp(
                ciphertext, "enc", instr.value, instr.ptr, key, byte_range
            ),
            ir.RawStore(instr.ptr, ciphertext, 8),
        ]


def count_crypto_ops(func: ir.Function) -> int:
    """Number of crypto primitives in a lowered function (test helper)."""
    return sum(
        isinstance(instr, ir.CryptoOp)
        for block in func.blocks
        for instr in block.instructions
    )

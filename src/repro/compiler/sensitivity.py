"""Sensitive-register identification (§2.4.4).

The paper marks as sensitive: (1) the plaintext registers of RegVault
cryptographic operations, and (2) registers propagated from or to other
sensitive registers.  Here that becomes a dataflow fixpoint over virtual
registers of the lowered IR:

* seeds: results of ``crypto.dec`` and the value operand of
  ``crypto.enc`` (both hold plaintext of protected data);
* forward propagation: the result of a ``Move``/``BinOp`` with a
  sensitive operand is sensitive.

The result feeds the register allocator (sensitive values are costly to
spill) and the spill-protection pass (if they do spill, the slot is
encrypted).
"""

from __future__ import annotations

from repro.compiler import ir


def analyze_sensitivity(func: ir.Function) -> set[int]:
    """Return (and record on the function) the set of sensitive vreg ids."""
    sensitive: set[int] = set()

    # Seeds.
    for block in func.blocks:
        for instr in block.instructions:
            if isinstance(instr, ir.CryptoOp):
                if instr.op == "dec":
                    sensitive.add(instr.result.id)
                elif isinstance(instr.value, ir.VReg):
                    sensitive.add(instr.value.id)

    # Forward propagation through value-preserving/derived operations.
    changed = True
    while changed:
        changed = False
        for block in func.blocks:
            for instr in block.instructions:
                if isinstance(instr, (ir.Move, ir.BinOp)):
                    if instr.result.id in sensitive:
                        continue
                    for operand in instr.operands():
                        if (
                            isinstance(operand, ir.VReg)
                            and operand.id in sensitive
                        ):
                            sensitive.add(instr.result.id)
                            changed = True
                            break

    func.sensitive = sensitive
    return sensitive

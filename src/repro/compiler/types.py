"""Type system with RegVault annotations.

The paper marks sensitive data with field-sensitive annotation macros on
*types* (§2.4.1):

* ``__rand`` — confidentiality only;
* ``__rand_integrity`` — confidentiality and integrity.

"These macros set storage sizes and alignments properly": an annotated
field's in-memory representation is ciphertext, and ciphertext blocks
are 64-bit, so annotated sub-64-bit fields widen to 8 bytes and
64-bit-with-integrity fields widen to 16 bytes (two ciphertext words,
Figure 2c).  :func:`storage_size` and :func:`storage_align` implement
that contract; :mod:`repro.compiler.layout` applies it to structs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field as dc_field

from repro.errors import IRError


class Annotation(enum.Enum):
    """RegVault protection annotations for struct fields."""

    NONE = "none"
    RAND = "__rand"
    RAND_INTEGRITY = "__rand_integrity"

    @property
    def protected(self) -> bool:
        return self is not Annotation.NONE

    @property
    def has_integrity(self) -> bool:
        return self is Annotation.RAND_INTEGRITY


class Type:
    """Base class for IR types."""

    size = 0       # natural (unannotated) size in bytes
    align = 1

    def __repr__(self) -> str:
        return str(self)


class VoidType(Type):
    size = 0
    align = 1

    def __str__(self) -> str:
        return "void"

    def __eq__(self, other) -> bool:
        return isinstance(other, VoidType)

    def __hash__(self) -> int:
        return hash("void")


@dataclass(frozen=True)
class IntType(Type):
    bits: int

    def __post_init__(self):
        if self.bits not in (8, 16, 32, 64):
            raise IRError(f"unsupported integer width {self.bits}")

    @property
    def size(self) -> int:
        return self.bits // 8

    @property
    def align(self) -> int:
        return self.bits // 8

    def __str__(self) -> str:
        return f"i{self.bits}"


@dataclass(frozen=True)
class PointerType(Type):
    pointee: Type

    size = 8
    align = 8

    def __str__(self) -> str:
        return f"{self.pointee}*"

    @property
    def is_function_pointer(self) -> bool:
        return isinstance(self.pointee, FunctionType)


@dataclass(frozen=True)
class FunctionType(Type):
    ret: Type
    params: tuple[Type, ...]

    size = 0
    align = 1

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        return f"{self.ret}({params})"


@dataclass(frozen=True)
class ArrayType(Type):
    element: Type
    count: int

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"

    @property
    def size(self) -> int:
        return self.element.size * self.count

    @property
    def align(self) -> int:
        return self.element.align


@dataclass(frozen=True)
class Field:
    """A struct field, optionally annotated.

    ``key`` selects which RegVault key register protects the field
    (Table 2 dedicates keys per data class to defeat cross-data-type
    substitution); ``None`` uses the default non-control-data key.

    >>> Field("uid", I32, Annotation.RAND_INTEGRITY)   # kuid_t uid __rand_integrity
    ... # doctest: +ELLIPSIS
    Field(name='uid', type=i32, annotation=<Annotation.RAND_INTEGRITY: '__rand_integrity'>, key=None)
    """

    name: str
    type: Type
    annotation: Annotation = Annotation.NONE
    key: object | None = None  # KeySelect; object to avoid import cycle


@dataclass(frozen=True)
class StructType(Type):
    name: str
    fields: tuple[Field, ...] = dc_field(default_factory=tuple)

    def __str__(self) -> str:
        return f"%{self.name}"

    def field_named(self, name: str) -> Field:
        for f in self.fields:
            if f.name == name:
                return f
        raise IRError(f"struct {self.name} has no field {name!r}")

    @property
    def has_protected_fields(self) -> bool:
        return any(f.annotation.protected for f in self.fields)


# Singletons for common types.
VOID = VoidType()
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)


def storage_size(type_: Type, annotation: Annotation) -> int:
    """In-memory bytes a value occupies under an annotation.

    Unannotated data keeps its natural size.  Annotated data is stored
    as QARMA ciphertext blocks:

    * <= 32-bit integers and ``__rand`` 64-bit data / pointers: one
      64-bit ciphertext (8 bytes);
    * ``__rand_integrity`` 64-bit data: two 64-bit ciphertexts
      (16 bytes, Figure 2c — each half carries 32 data bits plus 32
      zero-check bits).
    """
    if not annotation.protected:
        return type_.size
    if isinstance(type_, PointerType):
        if annotation.has_integrity:
            return 16
        return 8
    if isinstance(type_, IntType):
        if type_.bits == 64 and annotation.has_integrity:
            return 16
        return 8
    raise IRError(f"cannot annotate type {type_} with {annotation.value}")


def storage_align(type_: Type, annotation: Annotation) -> int:
    """Alignment of a value's in-memory representation."""
    return 8 if annotation.protected else type_.align


def integrity_range_for(type_: Type) -> tuple[int, int]:
    """The ``[e:s]`` byte range used when encrypting a single-block value.

    Full-width (pointer / ``__rand`` i64) data uses [7:0]; narrower data
    uses a partial range so the zero bytes outside it provide the
    integrity check (Figure 2a/2b).
    """
    if isinstance(type_, PointerType):
        return (7, 0)
    if isinstance(type_, IntType):
        return {8: (0, 0), 16: (1, 0), 32: (3, 0), 64: (7, 0)}[type_.bits]
    raise IRError(f"no integrity range for type {type_}")

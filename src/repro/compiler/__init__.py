"""Mini compiler with RegVault instrumentation (§2.4).

Plays the role of the paper's extended Clang/LLVM 11: a typed IR with
annotation-aware struct layout, an instrumentation pass that wraps loads
and stores of annotated data in ``cre``/``crd`` primitives, sensitive-
value dataflow, a linear-scan register allocator with protected spill
slots, and an RV64 code generator.
"""

from repro.compiler.types import (
    Annotation,
    ArrayType,
    Field,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    VoidType,
    I8,
    I16,
    I32,
    I64,
    VOID,
)
from repro.compiler.ir import Module, Function, Block, VReg, Const
from repro.compiler.builder import IRBuilder
from repro.compiler.pipeline import CompileOptions, compile_module

__all__ = [
    "Annotation",
    "ArrayType",
    "Field",
    "FunctionType",
    "IntType",
    "PointerType",
    "StructType",
    "VoidType",
    "I8",
    "I16",
    "I32",
    "I64",
    "VOID",
    "Module",
    "Function",
    "Block",
    "VReg",
    "Const",
    "IRBuilder",
    "CompileOptions",
    "compile_module",
]

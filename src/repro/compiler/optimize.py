"""Scalar optimizations: constant folding, copy propagation, DCE.

Runs after the RegVault instrumentation pass (so address arithmetic
materialized by lowering gets cleaned up) and before register
allocation.  Scope is deliberately conservative:

* analyses are per-block (no global value numbering) except DCE,
  which is function-wide;
* ``Move`` results may be redefined (loop variables), so copy/constant
  information is only propagated for single-definition registers;
* crypto operations are **never** folded or eliminated: a ``crd`` can
  trap (its execution is an architectural side effect), and constant-
  folding a ``cre`` would require the key material, which the compiler
  must not embed.
"""

from __future__ import annotations

from repro.compiler import ir
from repro.utils.bits import MASK64, to_signed64, to_unsigned64

_FOLDABLE = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << (b & 63),
    "shr": lambda a, b: (a & MASK64) >> (b & 63),
    "sra": lambda a, b: to_signed64(a) >> (b & 63),
}

_CMP_FOLD = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: to_signed64(a) < to_signed64(b),
    "le": lambda a, b: to_signed64(a) <= to_signed64(b),
    "gt": lambda a, b: to_signed64(a) > to_signed64(b),
    "ge": lambda a, b: to_signed64(a) >= to_signed64(b),
    "ltu": lambda a, b: (a & MASK64) < (b & MASK64),
    "leu": lambda a, b: (a & MASK64) <= (b & MASK64),
    "gtu": lambda a, b: (a & MASK64) > (b & MASK64),
    "geu": lambda a, b: (a & MASK64) >= (b & MASK64),
}

#: Instruction classes whose execution has effects beyond their result.
_SIDE_EFFECTS = (
    ir.Store,
    ir.RawStore,
    ir.Call,
    ir.CallIndirect,
    ir.Intrinsic,
    ir.CryptoOp,        # crd traps; cre consumes key state
    ir.Terminator,
)


def _redefined_registers(func: ir.Function) -> set[int]:
    """Registers defined more than once (mutable loop variables)."""
    seen: set[int] = set()
    redefined: set[int] = set()
    for block in func.blocks:
        for instr in block.instructions:
            if instr.result is not None:
                if instr.result.id in seen:
                    redefined.add(instr.result.id)
                seen.add(instr.result.id)
    return redefined


def fold_constants(func: ir.Function) -> int:
    """Block-local constant folding and copy propagation.

    Returns the number of instructions simplified.
    """
    redefined = _redefined_registers(func)
    changed = 0

    for block in func.blocks:
        constants: dict[int, int] = {}
        copies: dict[int, ir.Operand] = {}

        def resolve(operand: ir.Operand) -> ir.Operand:
            if isinstance(operand, ir.VReg):
                if operand.id in constants:
                    return ir.Const(constants[operand.id])
                if operand.id in copies:
                    return copies[operand.id]
            return operand

        new_instructions = []
        for instr in block.instructions:
            if isinstance(instr, ir.BinOp):
                lhs, rhs = resolve(instr.lhs), resolve(instr.rhs)
                if (
                    isinstance(lhs, ir.Const)
                    and isinstance(rhs, ir.Const)
                    and instr.op in _FOLDABLE
                    and instr.result.id not in redefined
                ):
                    value = to_unsigned64(
                        _FOLDABLE[instr.op](lhs.value, rhs.value)
                    )
                    constants[instr.result.id] = value
                    new_instructions.append(
                        ir.Move(instr.result, ir.Const(to_signed64(value)))
                    )
                    changed += 1
                    continue
                if lhs is not instr.lhs or rhs is not instr.rhs:
                    changed += 1
                new_instructions.append(
                    ir.BinOp(instr.op, instr.result, lhs, rhs)
                )
                continue
            if isinstance(instr, ir.Cmp):
                lhs, rhs = resolve(instr.lhs), resolve(instr.rhs)
                if (
                    isinstance(lhs, ir.Const)
                    and isinstance(rhs, ir.Const)
                    and instr.result.id not in redefined
                ):
                    value = int(_CMP_FOLD[instr.op](lhs.value, rhs.value))
                    constants[instr.result.id] = value
                    new_instructions.append(
                        ir.Move(instr.result, ir.Const(value))
                    )
                    changed += 1
                    continue
                new_instructions.append(
                    ir.Cmp(instr.op, instr.result, lhs, rhs)
                )
                continue
            if isinstance(instr, ir.Move):
                source = resolve(instr.source)
                if instr.result.id not in redefined:
                    if isinstance(source, ir.Const):
                        constants[instr.result.id] = to_unsigned64(
                            source.value
                        )
                    elif (
                        isinstance(source, ir.VReg)
                        and source.id not in redefined
                    ):
                        copies[instr.result.id] = source
                new_instructions.append(ir.Move(instr.result, source))
                continue

            # Generic: rewrite operands where we can (keeps the original
            # instruction object shape via dataclass replace).
            new_instructions.append(_rewrite_operands(instr, resolve))
        block.instructions = new_instructions
    return changed


def _rewrite_operands(instr: ir.Instr, resolve) -> ir.Instr:
    import dataclasses

    replacements = {}
    for field in dataclasses.fields(instr):
        value = getattr(instr, field.name)
        if isinstance(value, (ir.VReg, ir.Const)) and field.name not in (
            "result",
        ):
            resolved = resolve(value)
            if resolved is not value:
                replacements[field.name] = resolved
        elif isinstance(value, list) and value and isinstance(
            value[0], (ir.VReg, ir.Const)
        ):
            resolved_list = [resolve(item) for item in value]
            if any(a is not b for a, b in zip(resolved_list, value)):
                replacements[field.name] = resolved_list
    if not replacements:
        return instr
    return dataclasses.replace(instr, **replacements)


def eliminate_dead_code(func: ir.Function) -> int:
    """Remove result-producing instructions whose values are never used.

    Side-effecting instructions (stores, calls, intrinsics, crypto
    operations, terminators) are always kept.  Iterates to a fixpoint.
    Returns the number of instructions removed.
    """
    removed_total = 0
    while True:
        used: set[int] = set()
        for block in func.blocks:
            for instr in block.instructions:
                for operand in instr.operands():
                    if isinstance(operand, ir.VReg):
                        used.add(operand.id)

        removed = 0
        for block in func.blocks:
            kept = []
            for instr in block.instructions:
                if isinstance(instr, _SIDE_EFFECTS):
                    kept.append(instr)
                elif instr.result is not None and instr.result.id not in used:
                    removed += 1
                else:
                    kept.append(instr)
            block.instructions = kept
        removed_total += removed
        if not removed:
            return removed_total


def optimize_function(func: ir.Function) -> dict:
    """Run the pipeline; returns simplification statistics."""
    folded = fold_constants(func)
    removed = eliminate_dead_code(func)
    return {"folded": folded, "removed": removed}
